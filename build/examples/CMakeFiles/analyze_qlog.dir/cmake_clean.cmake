file(REMOVE_RECURSE
  "CMakeFiles/analyze_qlog.dir/analyze_qlog.cpp.o"
  "CMakeFiles/analyze_qlog.dir/analyze_qlog.cpp.o.d"
  "analyze_qlog"
  "analyze_qlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_qlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
