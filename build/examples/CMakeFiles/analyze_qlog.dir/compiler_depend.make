# Empty compiler generated dependencies file for analyze_qlog.
# This may be replaced when dependencies are built.
