# Empty dependencies file for scan_to_qlog.
# This may be replaced when dependencies are built.
