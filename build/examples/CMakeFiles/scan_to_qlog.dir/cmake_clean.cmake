file(REMOVE_RECURSE
  "CMakeFiles/scan_to_qlog.dir/scan_to_qlog.cpp.o"
  "CMakeFiles/scan_to_qlog.dir/scan_to_qlog.cpp.o.d"
  "scan_to_qlog"
  "scan_to_qlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_to_qlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
