# Empty compiler generated dependencies file for vec_demo.
# This may be replaced when dependencies are built.
