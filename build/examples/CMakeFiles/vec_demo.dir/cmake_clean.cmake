file(REMOVE_RECURSE
  "CMakeFiles/vec_demo.dir/vec_demo.cpp.o"
  "CMakeFiles/vec_demo.dir/vec_demo.cpp.o.d"
  "vec_demo"
  "vec_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
