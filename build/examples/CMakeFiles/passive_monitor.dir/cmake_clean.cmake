file(REMOVE_RECURSE
  "CMakeFiles/passive_monitor.dir/passive_monitor.cpp.o"
  "CMakeFiles/passive_monitor.dir/passive_monitor.cpp.o.d"
  "passive_monitor"
  "passive_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passive_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
