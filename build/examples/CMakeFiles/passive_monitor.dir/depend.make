# Empty dependencies file for passive_monitor.
# This may be replaced when dependencies are built.
