file(REMOVE_RECURSE
  "CMakeFiles/test_quic_stream.dir/test_quic_stream.cpp.o"
  "CMakeFiles/test_quic_stream.dir/test_quic_stream.cpp.o.d"
  "test_quic_stream"
  "test_quic_stream.pdb"
  "test_quic_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quic_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
