# Empty dependencies file for test_quic_robustness.
# This may be replaced when dependencies are built.
