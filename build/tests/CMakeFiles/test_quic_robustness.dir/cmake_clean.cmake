file(REMOVE_RECURSE
  "CMakeFiles/test_quic_robustness.dir/test_quic_robustness.cpp.o"
  "CMakeFiles/test_quic_robustness.dir/test_quic_robustness.cpp.o.d"
  "test_quic_robustness"
  "test_quic_robustness.pdb"
  "test_quic_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quic_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
