# Empty dependencies file for test_quic_connection.
# This may be replaced when dependencies are built.
