file(REMOVE_RECURSE
  "CMakeFiles/test_quic_connection.dir/test_quic_connection.cpp.o"
  "CMakeFiles/test_quic_connection.dir/test_quic_connection.cpp.o.d"
  "test_quic_connection"
  "test_quic_connection.pdb"
  "test_quic_connection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quic_connection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
