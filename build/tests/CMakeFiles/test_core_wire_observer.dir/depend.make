# Empty dependencies file for test_core_wire_observer.
# This may be replaced when dependencies are built.
