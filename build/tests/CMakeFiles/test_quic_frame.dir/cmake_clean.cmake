file(REMOVE_RECURSE
  "CMakeFiles/test_quic_frame.dir/test_quic_frame.cpp.o"
  "CMakeFiles/test_quic_frame.dir/test_quic_frame.cpp.o.d"
  "test_quic_frame"
  "test_quic_frame.pdb"
  "test_quic_frame[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quic_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
