# Empty dependencies file for test_quic_frame.
# This may be replaced when dependencies are built.
