# Empty dependencies file for test_core_observer.
# This may be replaced when dependencies are built.
