file(REMOVE_RECURSE
  "CMakeFiles/test_core_observer.dir/test_core_observer.cpp.o"
  "CMakeFiles/test_core_observer.dir/test_core_observer.cpp.o.d"
  "test_core_observer"
  "test_core_observer.pdb"
  "test_core_observer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
