file(REMOVE_RECURSE
  "CMakeFiles/test_core_accuracy.dir/test_core_accuracy.cpp.o"
  "CMakeFiles/test_core_accuracy.dir/test_core_accuracy.cpp.o.d"
  "test_core_accuracy"
  "test_core_accuracy.pdb"
  "test_core_accuracy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
