file(REMOVE_RECURSE
  "CMakeFiles/test_qlog_store.dir/test_qlog_store.cpp.o"
  "CMakeFiles/test_qlog_store.dir/test_qlog_store.cpp.o.d"
  "test_qlog_store"
  "test_qlog_store.pdb"
  "test_qlog_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qlog_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
