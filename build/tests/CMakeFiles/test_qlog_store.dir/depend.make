# Empty dependencies file for test_qlog_store.
# This may be replaced when dependencies are built.
