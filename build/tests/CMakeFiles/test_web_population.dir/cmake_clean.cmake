file(REMOVE_RECURSE
  "CMakeFiles/test_web_population.dir/test_web_population.cpp.o"
  "CMakeFiles/test_web_population.dir/test_web_population.cpp.o.d"
  "test_web_population"
  "test_web_population.pdb"
  "test_web_population[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_web_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
