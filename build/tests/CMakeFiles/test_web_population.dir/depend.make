# Empty dependencies file for test_web_population.
# This may be replaced when dependencies are built.
