# Empty compiler generated dependencies file for test_quic_packet.
# This may be replaced when dependencies are built.
