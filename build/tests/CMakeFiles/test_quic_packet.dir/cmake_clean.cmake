file(REMOVE_RECURSE
  "CMakeFiles/test_quic_packet.dir/test_quic_packet.cpp.o"
  "CMakeFiles/test_quic_packet.dir/test_quic_packet.cpp.o.d"
  "test_quic_packet"
  "test_quic_packet.pdb"
  "test_quic_packet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quic_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
