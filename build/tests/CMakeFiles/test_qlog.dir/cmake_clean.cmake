file(REMOVE_RECURSE
  "CMakeFiles/test_qlog.dir/test_qlog.cpp.o"
  "CMakeFiles/test_qlog.dir/test_qlog.cpp.o.d"
  "test_qlog"
  "test_qlog.pdb"
  "test_qlog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
