# Empty compiler generated dependencies file for test_qlog.
# This may be replaced when dependencies are built.
