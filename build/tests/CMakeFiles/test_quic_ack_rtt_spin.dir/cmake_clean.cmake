file(REMOVE_RECURSE
  "CMakeFiles/test_quic_ack_rtt_spin.dir/test_quic_ack_rtt_spin.cpp.o"
  "CMakeFiles/test_quic_ack_rtt_spin.dir/test_quic_ack_rtt_spin.cpp.o.d"
  "test_quic_ack_rtt_spin"
  "test_quic_ack_rtt_spin.pdb"
  "test_quic_ack_rtt_spin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quic_ack_rtt_spin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
