# Empty compiler generated dependencies file for test_quic_ack_rtt_spin.
# This may be replaced when dependencies are built.
