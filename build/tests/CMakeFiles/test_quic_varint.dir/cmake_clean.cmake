file(REMOVE_RECURSE
  "CMakeFiles/test_quic_varint.dir/test_quic_varint.cpp.o"
  "CMakeFiles/test_quic_varint.dir/test_quic_varint.cpp.o.d"
  "test_quic_varint"
  "test_quic_varint.pdb"
  "test_quic_varint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quic_varint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
