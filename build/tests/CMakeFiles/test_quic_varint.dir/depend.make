# Empty dependencies file for test_quic_varint.
# This may be replaced when dependencies are built.
