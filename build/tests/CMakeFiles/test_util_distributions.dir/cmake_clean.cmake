file(REMOVE_RECURSE
  "CMakeFiles/test_util_distributions.dir/test_util_distributions.cpp.o"
  "CMakeFiles/test_util_distributions.dir/test_util_distributions.cpp.o.d"
  "test_util_distributions"
  "test_util_distributions.pdb"
  "test_util_distributions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
