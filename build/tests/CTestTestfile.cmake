# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util_rng[1]_include.cmake")
include("/root/repo/build/tests/test_util_stats[1]_include.cmake")
include("/root/repo/build/tests/test_util_distributions[1]_include.cmake")
include("/root/repo/build/tests/test_util_misc[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_quic_varint[1]_include.cmake")
include("/root/repo/build/tests/test_quic_packet[1]_include.cmake")
include("/root/repo/build/tests/test_quic_frame[1]_include.cmake")
include("/root/repo/build/tests/test_quic_ack_rtt_spin[1]_include.cmake")
include("/root/repo/build/tests/test_quic_stream[1]_include.cmake")
include("/root/repo/build/tests/test_quic_connection[1]_include.cmake")
include("/root/repo/build/tests/test_qlog[1]_include.cmake")
include("/root/repo/build/tests/test_core_observer[1]_include.cmake")
include("/root/repo/build/tests/test_core_accuracy[1]_include.cmake")
include("/root/repo/build/tests/test_core_wire_observer[1]_include.cmake")
include("/root/repo/build/tests/test_web_population[1]_include.cmake")
include("/root/repo/build/tests/test_scanner[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_vec[1]_include.cmake")
include("/root/repo/build/tests/test_quic_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_qlog_store[1]_include.cmake")
include("/root/repo/build/tests/test_core_flow_monitor[1]_include.cmake")
