file(REMOVE_RECURSE
  "libspinscope_web.a"
)
