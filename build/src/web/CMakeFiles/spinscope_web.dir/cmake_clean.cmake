file(REMOVE_RECURSE
  "CMakeFiles/spinscope_web.dir/population.cpp.o"
  "CMakeFiles/spinscope_web.dir/population.cpp.o.d"
  "libspinscope_web.a"
  "libspinscope_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinscope_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
