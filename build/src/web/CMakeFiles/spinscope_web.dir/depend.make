# Empty dependencies file for spinscope_web.
# This may be replaced when dependencies are built.
