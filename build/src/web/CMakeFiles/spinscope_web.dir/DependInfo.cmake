
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/population.cpp" "src/web/CMakeFiles/spinscope_web.dir/population.cpp.o" "gcc" "src/web/CMakeFiles/spinscope_web.dir/population.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quic/CMakeFiles/spinscope_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spinscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/spinscope_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
