file(REMOVE_RECURSE
  "CMakeFiles/spinscope_util.dir/distributions.cpp.o"
  "CMakeFiles/spinscope_util.dir/distributions.cpp.o.d"
  "CMakeFiles/spinscope_util.dir/format.cpp.o"
  "CMakeFiles/spinscope_util.dir/format.cpp.o.d"
  "CMakeFiles/spinscope_util.dir/stats.cpp.o"
  "CMakeFiles/spinscope_util.dir/stats.cpp.o.d"
  "libspinscope_util.a"
  "libspinscope_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinscope_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
