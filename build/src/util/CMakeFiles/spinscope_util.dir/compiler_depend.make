# Empty compiler generated dependencies file for spinscope_util.
# This may be replaced when dependencies are built.
