file(REMOVE_RECURSE
  "libspinscope_util.a"
)
