# Empty dependencies file for spinscope_scanner.
# This may be replaced when dependencies are built.
