file(REMOVE_RECURSE
  "libspinscope_scanner.a"
)
