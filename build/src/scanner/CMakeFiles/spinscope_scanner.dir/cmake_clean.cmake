file(REMOVE_RECURSE
  "CMakeFiles/spinscope_scanner.dir/campaign.cpp.o"
  "CMakeFiles/spinscope_scanner.dir/campaign.cpp.o.d"
  "CMakeFiles/spinscope_scanner.dir/http3_mini.cpp.o"
  "CMakeFiles/spinscope_scanner.dir/http3_mini.cpp.o.d"
  "libspinscope_scanner.a"
  "libspinscope_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinscope_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
