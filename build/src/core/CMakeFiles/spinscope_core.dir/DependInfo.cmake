
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy.cpp" "src/core/CMakeFiles/spinscope_core.dir/accuracy.cpp.o" "gcc" "src/core/CMakeFiles/spinscope_core.dir/accuracy.cpp.o.d"
  "/root/repo/src/core/flow_monitor.cpp" "src/core/CMakeFiles/spinscope_core.dir/flow_monitor.cpp.o" "gcc" "src/core/CMakeFiles/spinscope_core.dir/flow_monitor.cpp.o.d"
  "/root/repo/src/core/observer.cpp" "src/core/CMakeFiles/spinscope_core.dir/observer.cpp.o" "gcc" "src/core/CMakeFiles/spinscope_core.dir/observer.cpp.o.d"
  "/root/repo/src/core/wire_observer.cpp" "src/core/CMakeFiles/spinscope_core.dir/wire_observer.cpp.o" "gcc" "src/core/CMakeFiles/spinscope_core.dir/wire_observer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quic/CMakeFiles/spinscope_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/qlog/CMakeFiles/spinscope_qlog.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/spinscope_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spinscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
