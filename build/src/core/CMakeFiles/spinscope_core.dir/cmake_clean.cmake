file(REMOVE_RECURSE
  "CMakeFiles/spinscope_core.dir/accuracy.cpp.o"
  "CMakeFiles/spinscope_core.dir/accuracy.cpp.o.d"
  "CMakeFiles/spinscope_core.dir/flow_monitor.cpp.o"
  "CMakeFiles/spinscope_core.dir/flow_monitor.cpp.o.d"
  "CMakeFiles/spinscope_core.dir/observer.cpp.o"
  "CMakeFiles/spinscope_core.dir/observer.cpp.o.d"
  "CMakeFiles/spinscope_core.dir/wire_observer.cpp.o"
  "CMakeFiles/spinscope_core.dir/wire_observer.cpp.o.d"
  "libspinscope_core.a"
  "libspinscope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinscope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
