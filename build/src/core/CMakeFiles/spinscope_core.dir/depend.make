# Empty dependencies file for spinscope_core.
# This may be replaced when dependencies are built.
