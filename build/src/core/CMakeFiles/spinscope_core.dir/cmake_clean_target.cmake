file(REMOVE_RECURSE
  "libspinscope_core.a"
)
