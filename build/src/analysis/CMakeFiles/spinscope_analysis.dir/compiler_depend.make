# Empty compiler generated dependencies file for spinscope_analysis.
# This may be replaced when dependencies are built.
