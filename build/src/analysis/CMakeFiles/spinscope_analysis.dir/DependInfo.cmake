
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/accuracy.cpp" "src/analysis/CMakeFiles/spinscope_analysis.dir/accuracy.cpp.o" "gcc" "src/analysis/CMakeFiles/spinscope_analysis.dir/accuracy.cpp.o.d"
  "/root/repo/src/analysis/adoption.cpp" "src/analysis/CMakeFiles/spinscope_analysis.dir/adoption.cpp.o" "gcc" "src/analysis/CMakeFiles/spinscope_analysis.dir/adoption.cpp.o.d"
  "/root/repo/src/analysis/csv.cpp" "src/analysis/CMakeFiles/spinscope_analysis.dir/csv.cpp.o" "gcc" "src/analysis/CMakeFiles/spinscope_analysis.dir/csv.cpp.o.d"
  "/root/repo/src/analysis/longitudinal.cpp" "src/analysis/CMakeFiles/spinscope_analysis.dir/longitudinal.cpp.o" "gcc" "src/analysis/CMakeFiles/spinscope_analysis.dir/longitudinal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spinscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scanner/CMakeFiles/spinscope_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/spinscope_web.dir/DependInfo.cmake"
  "/root/repo/build/src/qlog/CMakeFiles/spinscope_qlog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spinscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/quic/CMakeFiles/spinscope_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/spinscope_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
