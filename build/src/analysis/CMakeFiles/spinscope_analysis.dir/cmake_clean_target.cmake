file(REMOVE_RECURSE
  "libspinscope_analysis.a"
)
