file(REMOVE_RECURSE
  "CMakeFiles/spinscope_analysis.dir/accuracy.cpp.o"
  "CMakeFiles/spinscope_analysis.dir/accuracy.cpp.o.d"
  "CMakeFiles/spinscope_analysis.dir/adoption.cpp.o"
  "CMakeFiles/spinscope_analysis.dir/adoption.cpp.o.d"
  "CMakeFiles/spinscope_analysis.dir/csv.cpp.o"
  "CMakeFiles/spinscope_analysis.dir/csv.cpp.o.d"
  "CMakeFiles/spinscope_analysis.dir/longitudinal.cpp.o"
  "CMakeFiles/spinscope_analysis.dir/longitudinal.cpp.o.d"
  "libspinscope_analysis.a"
  "libspinscope_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinscope_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
