file(REMOVE_RECURSE
  "CMakeFiles/spinscope_netsim.dir/link.cpp.o"
  "CMakeFiles/spinscope_netsim.dir/link.cpp.o.d"
  "CMakeFiles/spinscope_netsim.dir/simulator.cpp.o"
  "CMakeFiles/spinscope_netsim.dir/simulator.cpp.o.d"
  "libspinscope_netsim.a"
  "libspinscope_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinscope_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
