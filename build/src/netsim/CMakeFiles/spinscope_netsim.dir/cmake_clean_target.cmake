file(REMOVE_RECURSE
  "libspinscope_netsim.a"
)
