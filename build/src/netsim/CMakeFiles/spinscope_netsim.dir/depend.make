# Empty dependencies file for spinscope_netsim.
# This may be replaced when dependencies are built.
