
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quic/ack_tracker.cpp" "src/quic/CMakeFiles/spinscope_quic.dir/ack_tracker.cpp.o" "gcc" "src/quic/CMakeFiles/spinscope_quic.dir/ack_tracker.cpp.o.d"
  "/root/repo/src/quic/connection.cpp" "src/quic/CMakeFiles/spinscope_quic.dir/connection.cpp.o" "gcc" "src/quic/CMakeFiles/spinscope_quic.dir/connection.cpp.o.d"
  "/root/repo/src/quic/frame.cpp" "src/quic/CMakeFiles/spinscope_quic.dir/frame.cpp.o" "gcc" "src/quic/CMakeFiles/spinscope_quic.dir/frame.cpp.o.d"
  "/root/repo/src/quic/packet.cpp" "src/quic/CMakeFiles/spinscope_quic.dir/packet.cpp.o" "gcc" "src/quic/CMakeFiles/spinscope_quic.dir/packet.cpp.o.d"
  "/root/repo/src/quic/rtt_estimator.cpp" "src/quic/CMakeFiles/spinscope_quic.dir/rtt_estimator.cpp.o" "gcc" "src/quic/CMakeFiles/spinscope_quic.dir/rtt_estimator.cpp.o.d"
  "/root/repo/src/quic/spin.cpp" "src/quic/CMakeFiles/spinscope_quic.dir/spin.cpp.o" "gcc" "src/quic/CMakeFiles/spinscope_quic.dir/spin.cpp.o.d"
  "/root/repo/src/quic/stream.cpp" "src/quic/CMakeFiles/spinscope_quic.dir/stream.cpp.o" "gcc" "src/quic/CMakeFiles/spinscope_quic.dir/stream.cpp.o.d"
  "/root/repo/src/quic/types.cpp" "src/quic/CMakeFiles/spinscope_quic.dir/types.cpp.o" "gcc" "src/quic/CMakeFiles/spinscope_quic.dir/types.cpp.o.d"
  "/root/repo/src/quic/varint.cpp" "src/quic/CMakeFiles/spinscope_quic.dir/varint.cpp.o" "gcc" "src/quic/CMakeFiles/spinscope_quic.dir/varint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spinscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/spinscope_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
