file(REMOVE_RECURSE
  "libspinscope_quic.a"
)
