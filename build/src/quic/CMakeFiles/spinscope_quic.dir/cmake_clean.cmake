file(REMOVE_RECURSE
  "CMakeFiles/spinscope_quic.dir/ack_tracker.cpp.o"
  "CMakeFiles/spinscope_quic.dir/ack_tracker.cpp.o.d"
  "CMakeFiles/spinscope_quic.dir/connection.cpp.o"
  "CMakeFiles/spinscope_quic.dir/connection.cpp.o.d"
  "CMakeFiles/spinscope_quic.dir/frame.cpp.o"
  "CMakeFiles/spinscope_quic.dir/frame.cpp.o.d"
  "CMakeFiles/spinscope_quic.dir/packet.cpp.o"
  "CMakeFiles/spinscope_quic.dir/packet.cpp.o.d"
  "CMakeFiles/spinscope_quic.dir/rtt_estimator.cpp.o"
  "CMakeFiles/spinscope_quic.dir/rtt_estimator.cpp.o.d"
  "CMakeFiles/spinscope_quic.dir/spin.cpp.o"
  "CMakeFiles/spinscope_quic.dir/spin.cpp.o.d"
  "CMakeFiles/spinscope_quic.dir/stream.cpp.o"
  "CMakeFiles/spinscope_quic.dir/stream.cpp.o.d"
  "CMakeFiles/spinscope_quic.dir/types.cpp.o"
  "CMakeFiles/spinscope_quic.dir/types.cpp.o.d"
  "CMakeFiles/spinscope_quic.dir/varint.cpp.o"
  "CMakeFiles/spinscope_quic.dir/varint.cpp.o.d"
  "libspinscope_quic.a"
  "libspinscope_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinscope_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
