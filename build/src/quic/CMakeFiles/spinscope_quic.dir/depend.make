# Empty dependencies file for spinscope_quic.
# This may be replaced when dependencies are built.
