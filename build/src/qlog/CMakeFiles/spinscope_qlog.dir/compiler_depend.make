# Empty compiler generated dependencies file for spinscope_qlog.
# This may be replaced when dependencies are built.
