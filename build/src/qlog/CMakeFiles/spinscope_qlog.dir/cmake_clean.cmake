file(REMOVE_RECURSE
  "CMakeFiles/spinscope_qlog.dir/store.cpp.o"
  "CMakeFiles/spinscope_qlog.dir/store.cpp.o.d"
  "CMakeFiles/spinscope_qlog.dir/trace.cpp.o"
  "CMakeFiles/spinscope_qlog.dir/trace.cpp.o.d"
  "libspinscope_qlog.a"
  "libspinscope_qlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinscope_qlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
