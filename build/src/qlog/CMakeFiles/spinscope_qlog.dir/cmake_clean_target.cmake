file(REMOVE_RECURSE
  "libspinscope_qlog.a"
)
