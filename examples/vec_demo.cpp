// examples/vec_demo.cpp
//
// The Valid Edge Counter (VEC) extension in action: De Vaere et al.'s
// three-bit measurement facility (the paper's §2.1 related work) marks spin
// edges with a 2-bit validity counter so passive observers can tell genuine
// edges from reordering artefacts.
//
// This demo pushes a transfer over a badly reordering path and compares
// three observers: naive, RFC 9312 heuristics, and VEC-aware.

#include <cstdio>

#include "core/wire_observer.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"
#include "scanner/http3_mini.hpp"

using namespace spinscope;

int main() {
    netsim::Simulator sim;
    util::Rng rng{99};

    // A 36 ms path with heavy reordering on the observed direction.
    netsim::LinkConfig link;
    link.base_delay = util::Duration::millis(18);
    link.reorder_probability = 0.05;
    link.reorder_extra_min = util::Duration::millis(1);
    link.reorder_extra_max = util::Duration::millis(9);
    netsim::Path path{sim, link, link, rng};

    core::WireSpinTap naive;
    core::ObserverConfig heuristics_config;
    heuristics_config.min_plausible_rtt = util::Duration::millis(2);
    heuristics_config.dynamic_reject_ratio = 0.25;
    core::WireSpinTap heuristics{heuristics_config};
    core::ObserverConfig vec_config;
    vec_config.require_vec = true;
    core::WireSpinTap vec_aware{vec_config};
    path.return_link().add_tap(naive.tap());
    path.return_link().add_tap(heuristics.tap());
    path.return_link().add_tap(vec_aware.tap());

    quic::SpinConfig spin{quic::SpinPolicy::spin, 0, quic::SpinPolicy::always_zero};
    spin.enable_vec = true;

    quic::ConnectionConfig client_cfg;
    client_cfg.role = quic::Role::client;
    client_cfg.spin = spin;
    quic::Connection client{sim, client_cfg, rng.fork(1), [&](netsim::Datagram dg) {
                                path.forward_link().send(std::move(dg));
                            }};
    quic::ConnectionConfig server_cfg;
    server_cfg.role = quic::Role::server;
    server_cfg.spin = spin;
    quic::Connection server{sim, server_cfg, rng.fork(2), [&](netsim::Datagram dg) {
                                path.return_link().send(std::move(dg));
                            }};
    path.forward_link().set_receiver(
        [&server](spinscope::bytes::ConstByteSpan dg) { server.on_datagram(dg); });
    path.return_link().set_receiver(
        [&client](spinscope::bytes::ConstByteSpan dg) { client.on_datagram(dg); });

    server.on_stream_complete = [&](std::uint64_t id, std::vector<std::uint8_t>) {
        if (id != scanner::kRequestStream) return;
        server.send_stream(scanner::kRequestStream, scanner::build_body(400'000), true);
    };
    client.on_handshake_complete = [&] {
        client.send_stream(scanner::kRequestStream,
                           scanner::build_request("www.vec.example"), true);
    };
    client.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
        client.close(0, "done");
    };
    client.connect();
    sim.run_until(util::TimePoint::origin() + util::Duration::seconds(120));

    const double true_rtt = path.base_rtt().as_ms();
    std::printf("transfer over a %0.0f ms path with %.0f%% reordering\n", true_rtt,
                link.reorder_probability * 100.0);
    std::printf("reordered datagrams on observed direction: %llu of %llu\n\n",
                static_cast<unsigned long long>(path.return_link().stats().reordered),
                static_cast<unsigned long long>(path.return_link().stats().sent));
    std::printf("%-24s %8s %12s %12s %9s\n", "observer", "samples", "mean est.", "min est.",
                "rejects");
    std::printf("%s\n", std::string(70, '-').c_str());
    const auto row = [&](const char* name, const core::WireSpinTap& tap) {
        std::printf("%-24s %8zu %9.2f ms %9.2f ms %9zu\n", name,
                    tap.result().samples_ms.size(), tap.result().mean_ms(),
                    tap.result().min_ms(), tap.rejected_samples());
    };
    row("naive", naive);
    row("RFC 9312 heuristics", heuristics);
    row("VEC-aware", vec_aware);
    std::printf("\ntrue network RTT: %.2f ms; stack estimate: %.2f ms\n", true_rtt,
                client.rtt().has_samples() ? client.rtt().smoothed_rtt().as_ms() : 0.0);
    std::printf("The naive observer's minimum collapses under reordering; the VEC\n"
                "observer only accepts endpoint-validated edges and stays near truth.\n");
    return 0;
}
