// examples/campaign_mini.cpp
//
// A miniature version of the paper's full measurement campaign, end to end:
// synthesize a small web population, scan every domain over HTTP/3-mini,
// classify spin behaviour, and print an adoption overview plus the accuracy
// headlines — the whole §3 pipeline in one runnable program.
//
// The run is fully instrumented: a telemetry::MetricsRegistry collects
// simulator, link, QUIC and scanner metrics across every attempt, prints the
// campaign snapshot, and writes a machine-readable JSON sidecar
// (campaign_mini.telemetry.json) for offline attribution.

#include <cstdio>

#include "analysis/accuracy.hpp"
#include "analysis/adoption.hpp"
#include "core/accuracy.hpp"
#include "scanner/campaign.hpp"
#include "telemetry/export.hpp"
#include "web/population.hpp"

using namespace spinscope;

int main(int argc, char** argv) {
    // 1:20000 scale keeps this example under a second; pass a different
    // divisor to look at larger universes.
    double scale = 20000.0;
    if (argc > 1) scale = std::atof(argv[1]);

    std::printf("building synthetic web population (1:%.0f of the paper's universe)...\n",
                scale);
    web::Population population{{scale, 20230520}};
    std::printf("  %zu domains, %zu organizations, %zu webserver stacks\n\n",
                population.domains().size(), population.orgs().size(),
                population.stacks().size());

    scanner::ScanOptions options;
    options.week = 57;  // CW 20/2023
    scanner::Campaign campaign{population, options};

    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    campaign.set_progress(200, [](const scanner::CampaignStats& stats) {
        std::printf("  ...%llu domains scanned (%.0f domains/sec, QUIC-ok %.1f %%)\n",
                    static_cast<unsigned long long>(stats.domains_scanned),
                    stats.domains_per_sec(), stats.quic_ok_rate() * 100.0);
    });

    analysis::AdoptionAggregator adoption{population, false};
    analysis::AccuracyAggregator accuracy;
    std::uint64_t connections = 0;
    const scanner::CampaignStats stats =
        campaign.run([&](const web::Domain& domain, scanner::DomainScan&& scan) {
            for (const auto& trace : scan.connections) {
                if (trace.outcome != qlog::ConnectionOutcome::ok) continue;
                ++connections;
                accuracy.add(core::assess_connection(trace));
            }
            adoption.add(domain, scan);
        });
    std::printf("scanned %llu domains, %llu QUIC connections\n\n",
                static_cast<unsigned long long>(stats.domains_scanned),
                static_cast<unsigned long long>(connections));

    std::printf("--- adoption (Table 1 shape) ---\n%s\n",
                adoption.render_overview_table().c_str());
    std::printf("--- configuration (Table 3 shape) ---\n%s\n",
                adoption.render_config_table().c_str());
    std::printf("--- organizations (Table 2 shape) ---\n%s\n",
                adoption.render_org_table(5).c_str());
    std::printf("--- RTT accuracy (Figures 3/4 headlines) ---\n%s\n",
                accuracy.render_headlines().c_str());

    std::printf("--- campaign telemetry ---\n%s\n", stats.render().c_str());
    const char* sidecar = "campaign_mini.telemetry.json";
    if (telemetry::write_json_file(registry, sidecar)) {
        std::printf("wrote %s (%zu metrics)\n", sidecar, registry.size());
    } else {
        std::fprintf(stderr, "failed to write %s\n", sidecar);
        return 1;
    }
    return 0;
}
