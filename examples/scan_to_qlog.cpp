// examples/scan_to_qlog.cpp
//
// The "measurement machine" half of the paper's workflow: run a campaign
// sweep and persist every connection trace into an on-disk qlog dataset
// (the Appendix B artifact format). Analysis happens later and elsewhere —
// see examples/analyze_qlog.cpp.
//
// usage: scan_to_qlog <output-dir> [scale] [week] [--ipv6]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "qlog/store.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

using namespace spinscope;

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <output-dir> [scale=20000] [week=57] [--ipv6]\n",
                     argv[0]);
        return 1;
    }
    const std::filesystem::path out_dir = argv[1];
    const double scale = argc > 2 ? std::atof(argv[2]) : 20000.0;
    const int week = argc > 3 ? std::atoi(argv[3]) : 57;
    bool ipv6 = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ipv6") == 0) ipv6 = true;
    }

    web::Population population{{scale, 20230520}};
    scanner::ScanOptions options;
    options.week = week;
    options.ipv6 = ipv6;
    scanner::Campaign campaign{population, options};

    qlog::TraceStoreWriter writer{out_dir};
    std::uint64_t domains = 0;
    campaign.run([&](const web::Domain& domain, scanner::DomainScan&& scan) {
        ++domains;
        for (const auto& trace : scan.connections) {
            writer.append({domain.id, week, ipv6, domain.org}, trace);
        }
    });
    writer.close();

    std::printf("scanned %llu domains (scale 1:%.0f, week %d, %s)\n",
                static_cast<unsigned long long>(domains), scale, week,
                ipv6 ? "IPv6" : "IPv4");
    std::printf("wrote %llu traces in %zu shard(s) to %s\n",
                static_cast<unsigned long long>(writer.traces_written()),
                writer.shards_written(), out_dir.string().c_str());
    return 0;
}
