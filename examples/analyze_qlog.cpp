// examples/analyze_qlog.cpp
//
// The "analysis machine" half of the paper's workflow: read an on-disk qlog
// dataset produced by scan_to_qlog and re-derive the adoption and accuracy
// results purely from the stored traces — no access to the population or
// simulator, exactly like analyzing the released measurement artifacts.
//
// usage: analyze_qlog <dataset-dir>

#include <cstdio>
#include <map>

#include "analysis/accuracy.hpp"
#include "core/accuracy.hpp"
#include "qlog/store.hpp"
#include "util/format.hpp"

using namespace spinscope;

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <dataset-dir>\n", argv[0]);
        return 1;
    }
    qlog::TraceStoreReader reader{argv[1]};
    if (reader.shards().empty()) {
        std::fprintf(stderr, "no shards found in %s\n", argv[1]);
        return 1;
    }

    // Per-domain folding (a domain may have several connections).
    struct DomainState {
        bool quic_ok = false;
        core::SpinBehavior best = core::SpinBehavior::no_one_rtt;
    };
    std::map<std::uint32_t, DomainState> domains;
    analysis::AccuracyAggregator accuracy;
    std::uint64_t connections = 0;
    std::uint64_t ok_connections = 0;

    reader.for_each([&](const qlog::ScanContext& context, const qlog::Trace& trace) {
        ++connections;
        auto& state = domains[context.domain_id];
        if (trace.outcome != qlog::ConnectionOutcome::ok) return;
        ++ok_connections;
        state.quic_ok = true;
        const auto assessment = core::assess_connection(trace);
        accuracy.add(assessment);
        // Precedence: spinning > greased > all_one > all_zero.
        const auto rank = [](core::SpinBehavior b) {
            switch (b) {
                case core::SpinBehavior::spinning: return 4;
                case core::SpinBehavior::greased: return 3;
                case core::SpinBehavior::all_one: return 2;
                case core::SpinBehavior::all_zero: return 1;
                case core::SpinBehavior::no_one_rtt: return 0;
            }
            return 0;
        };
        if (rank(assessment.behavior) > rank(state.best)) state.best = assessment.behavior;
    });

    std::uint64_t quic = 0;
    std::map<core::SpinBehavior, std::uint64_t> by_class;
    for (const auto& [id, state] : domains) {
        if (!state.quic_ok) continue;
        ++quic;
        ++by_class[state.best];
    }

    std::printf("dataset: %zu shard(s), %llu traces (%llu malformed skipped)\n",
                reader.shards().size(), static_cast<unsigned long long>(connections),
                static_cast<unsigned long long>(reader.malformed_records()));
    std::printf("domains with QUIC: %llu; OK connections: %llu\n\n",
                static_cast<unsigned long long>(quic),
                static_cast<unsigned long long>(ok_connections));
    const auto share = [&](core::SpinBehavior b) {
        return quic == 0 ? 0.0
                         : static_cast<double>(by_class[b]) / static_cast<double>(quic);
    };
    std::printf("spin classification of QUIC domains (Table 1/3 shape):\n");
    std::printf("  spinning : %6llu (%s)\n",
                static_cast<unsigned long long>(by_class[core::SpinBehavior::spinning]),
                util::percent(share(core::SpinBehavior::spinning)).c_str());
    std::printf("  greased  : %6llu (%s)\n",
                static_cast<unsigned long long>(by_class[core::SpinBehavior::greased]),
                util::percent(share(core::SpinBehavior::greased), 2).c_str());
    std::printf("  all one  : %6llu (%s)\n",
                static_cast<unsigned long long>(by_class[core::SpinBehavior::all_one]),
                util::percent(share(core::SpinBehavior::all_one), 2).c_str());
    std::printf("  all zero : %6llu (%s)\n\n",
                static_cast<unsigned long long>(by_class[core::SpinBehavior::all_zero]),
                util::percent(share(core::SpinBehavior::all_zero)).c_str());
    std::printf("accuracy headlines (Figures 3/4 shape):\n%s\n",
                accuracy.render_headlines().c_str());
    return 0;
}
