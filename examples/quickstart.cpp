// examples/quickstart.cpp
//
// Minimal end-to-end tour of the spinscope API:
//  1. build a client/server QUIC connection over a simulated path,
//  2. fetch a page with the HTTP/3-mini scanner logic,
//  3. measure the RTT passively from the spin bit and compare it with the
//     QUIC stack's own estimate — the comparison at the heart of the paper.

#include <cstdio>

#include "core/accuracy.hpp"
#include "core/wire_observer.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"
#include "scanner/http3_mini.hpp"
#include "util/format.hpp"

using namespace spinscope;

int main() {
    netsim::Simulator sim;
    util::Rng rng{42};

    // A 30 ms-RTT path with mild jitter.
    netsim::LinkConfig link;
    link.base_delay = util::Duration::millis(15);
    link.jitter_scale = util::Duration::millis(1);
    netsim::Path path{sim, link, link, rng};

    // A passive on-path observer on the server->client direction, like a
    // middlebox colocated with the client's access network.
    core::WireSpinTap wire_observer;
    path.return_link().add_tap(wire_observer.tap());

    // Client: the measuring endpoint, records a qlog trace.
    qlog::Trace trace;
    trace.host = "www.example.org";
    trace.ip = "192.0.2.80";
    quic::ConnectionConfig client_cfg;
    client_cfg.role = quic::Role::client;
    client_cfg.spin = {quic::SpinPolicy::spin, 0, quic::SpinPolicy::always_zero};
    quic::Connection client{
        sim, client_cfg, rng.fork(1),
        [&path](netsim::Datagram dg) { path.forward_link().send(std::move(dg)); }, &trace};

    // Server: spin-enabled, answers the request with a 40 kB page after a
    // 5 ms think time.
    quic::ConnectionConfig server_cfg;
    server_cfg.role = quic::Role::server;
    server_cfg.spin = {quic::SpinPolicy::spin, 0, quic::SpinPolicy::always_zero};
    quic::Connection server{
        sim, server_cfg, rng.fork(2),
        [&path](netsim::Datagram dg) { path.return_link().send(std::move(dg)); }, nullptr};

    path.forward_link().set_receiver(
        [&server](spinscope::bytes::ConstByteSpan dg) { server.on_datagram(dg); });
    path.return_link().set_receiver(
        [&client](spinscope::bytes::ConstByteSpan dg) { client.on_datagram(dg); });

    server.on_stream_complete = [&](std::uint64_t id, std::vector<std::uint8_t>) {
        if (id != scanner::kRequestStream) return;
        sim.schedule_after(util::Duration::millis(5), [&] {
            server.send_stream(scanner::kRequestStream,
                               scanner::build_response_headers(200, "", "example-stack"),
                               false);
            server.send_stream(scanner::kRequestStream, scanner::build_body(40'000), true);
        });
    };
    client.on_handshake_complete = [&] {
        client.send_stream(scanner::kRequestStream,
                           scanner::build_request("www.example.org"), true);
    };
    client.on_stream_complete = [&](std::uint64_t id, std::vector<std::uint8_t> data) {
        if (id != scanner::kRequestStream) return;
        const auto response = scanner::parse_response(data);
        std::printf("response: status=%d server=%s body=%zu bytes\n",
                    response ? response->status : -1,
                    response ? response->server_name.c_str() : "?",
                    response ? response->body_bytes : 0);
        client.close(0, "done");
    };

    client.connect();
    sim.run_until(util::TimePoint::origin() + util::Duration::seconds(30));
    client.finalize_trace();
    trace.outcome = qlog::ConnectionOutcome::ok;

    // Offline analysis of the client's qlog — the paper's §3.3 pipeline.
    const auto assessment = core::assess_connection(trace);
    std::printf("\nconnection classified as: %s\n", core::to_cstring(assessment.behavior));
    std::printf("QUIC stack RTT  : mean %.2f ms (min %.2f ms, %zu samples)\n",
                assessment.quic_mean_ms, assessment.quic_min_ms,
                trace.metrics.rtt_samples_ms.size());
    std::printf("spin-bit RTT (R): mean %.2f ms (%zu samples, %zu edges)\n",
                assessment.spin_received.mean_ms(), assessment.spin_received.samples_ms.size(),
                assessment.spin_received.edge_count);
    if (const auto ratio = assessment.mapped_ratio(core::PacketOrder::received)) {
        std::printf("mapped ratio    : %.2f\n", *ratio);
    }
    std::printf("\nwire observer saw %zu short-header packets, %zu spin samples, mean %.2f ms\n",
                wire_observer.short_header_packets(),
                wire_observer.result().samples_ms.size(), wire_observer.result().mean_ms());
    std::printf("events processed: %llu, sim time: %s\n",
                static_cast<unsigned long long>(sim.processed()),
                util::to_string(sim.now() - util::TimePoint::origin()).c_str());
    return 0;
}
