// examples/passive_monitor.cpp
//
// A network operator's view: a passive on-path observer (core::WireSpinTap)
// watching several concurrent QUIC flows through the same bottleneck-ish
// path segment, without any access to endpoint state — the paper's
// motivating deployment scenario (§1).
//
// Demonstrates:
//  * per-flow spin-RTT estimation from raw datagrams,
//  * the effect of packet reordering on a naive observer,
//  * the RFC 9312 plausibility heuristics rescuing the estimate,
//  * that flows with a disabled spin bit yield nothing (by design).

#include <cstdio>
#include <memory>
#include <vector>

#include "core/wire_observer.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"
#include "scanner/http3_mini.hpp"
#include "util/format.hpp"

using namespace spinscope;

namespace {

struct Flow {
    const char* name;
    util::Duration rtt;
    quic::SpinPolicy server_policy;
    double reorder_probability;
};

struct FlowRun {
    std::unique_ptr<netsim::Path> path;
    std::unique_ptr<quic::Connection> client;
    std::unique_ptr<quic::Connection> server;
    core::WireSpinTap naive_observer;
    core::WireSpinTap hardened_observer;

    FlowRun() : hardened_observer{hardened_config()} {}

    static core::ObserverConfig hardened_config() {
        core::ObserverConfig config;
        config.min_plausible_rtt = util::Duration::millis(2);
        config.dynamic_reject_ratio = 0.25;  // RFC 9312-style filtering
        return config;
    }
};

}  // namespace

int main() {
    netsim::Simulator sim;
    util::Rng rng{7};

    const Flow flows[] = {
        {"eu-shared-host   (spins)       ", util::Duration::millis(24), quic::SpinPolicy::spin,
         0.0},
        {"us-shared-host   (spins)       ", util::Duration::millis(110), quic::SpinPolicy::spin,
         0.0},
        {"reordered-path   (spins)       ", util::Duration::millis(40), quic::SpinPolicy::spin,
         0.02},
        {"cdn-edge         (disabled)    ", util::Duration::millis(8),
         quic::SpinPolicy::always_zero, 0.0},
        {"greasing-server  (per packet)  ", util::Duration::millis(30),
         quic::SpinPolicy::grease_per_packet, 0.0},
    };

    std::vector<std::unique_ptr<FlowRun>> runs;
    for (const auto& flow : flows) {
        auto run = std::make_unique<FlowRun>();
        netsim::LinkConfig link;
        link.base_delay = flow.rtt / 2;
        link.jitter_scale = (flow.rtt / 2).scaled(0.03);
        link.reorder_probability = flow.reorder_probability;
        run->path = std::make_unique<netsim::Path>(sim, link, link, rng);

        // The operator taps the server->client direction.
        run->path->return_link().add_tap(run->naive_observer.tap());
        run->path->return_link().add_tap(run->hardened_observer.tap());

        quic::ConnectionConfig client_cfg;
        client_cfg.role = quic::Role::client;
        client_cfg.spin = {quic::SpinPolicy::spin, 0, quic::SpinPolicy::always_zero};
        run->client = std::make_unique<quic::Connection>(
            sim, client_cfg, rng.fork(1),
            [path = run->path.get()](netsim::Datagram dg) {
                path->forward_link().send(std::move(dg));
            });

        quic::ConnectionConfig server_cfg;
        server_cfg.role = quic::Role::server;
        server_cfg.spin = {flow.server_policy, 0, quic::SpinPolicy::always_zero};
        run->server = std::make_unique<quic::Connection>(
            sim, server_cfg, rng.fork(2),
            [path = run->path.get()](netsim::Datagram dg) {
                path->return_link().send(std::move(dg));
            });

        run->path->forward_link().set_receiver(
            [server = run->server.get()](spinscope::bytes::ConstByteSpan dg) {
                server->on_datagram(dg);
            });
        run->path->return_link().set_receiver(
            [client = run->client.get()](spinscope::bytes::ConstByteSpan dg) {
                client->on_datagram(dg);
            });

        run->server->on_stream_complete = [server = run->server.get()](
                                              std::uint64_t id, std::vector<std::uint8_t>) {
            if (id != scanner::kRequestStream) return;
            server->send_stream(scanner::kRequestStream, scanner::build_body(120'000), true);
        };
        run->client->on_handshake_complete = [client = run->client.get()] {
            client->send_stream(scanner::kRequestStream,
                                scanner::build_request("www.flow.example"), true);
        };
        run->client->on_stream_complete =
            [client = run->client.get()](std::uint64_t, std::vector<std::uint8_t>) {
                client->close(0, "done");
            };
        run->client->connect();
        runs.push_back(std::move(run));
    }

    sim.run_until(util::TimePoint::origin() + util::Duration::seconds(60));

    std::printf("passive on-path spin monitor — per-flow results\n");
    std::printf("%-34s %10s %14s %14s %14s %8s\n", "flow", "true RTT", "naive est.",
                "hardened est.", "stack est.", "rejects");
    std::printf("%s\n", std::string(98, '-').c_str());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto& flow = flows[i];
        const auto& run = *runs[i];
        const auto& naive = run.naive_observer.result();
        const auto& hardened = run.hardened_observer.result();
        const auto stack_ms =
            run.client->rtt().has_samples() ? run.client->rtt().smoothed_rtt().as_ms() : 0.0;
        std::printf("%-34s %8.1f ms %10.1f ms  (min %5.2f) %9.1f ms %9.1f ms %5zu\n",
                    flow.name, flow.rtt.as_ms(), naive.mean_ms(), naive.min_ms(),
                    hardened.mean_ms(), stack_ms, run.hardened_observer.rejected_samples());
    }
    std::printf("\nNote how the disabled flow yields no samples, per-packet greasing looks\n"
                "like nonsense ultra-short periods, and the heuristics clean up the\n"
                "reordered path (paper §2.1/§5.2, RFC 9312 §4.2).\n");
    return 0;
}
