#include "scanner/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "scanner/journal.hpp"
#include "scanner/shard.hpp"
#include "telemetry/export.hpp"
#include "telemetry/resource.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace.hpp"
#include "util/distributions.hpp"
#include "util/format.hpp"
#include "util/proc.hpp"

namespace spinscope::scanner {

using netsim::Datagram;
using netsim::LinkConfig;
using netsim::Path;
using netsim::Simulator;
using quic::Connection;
using quic::ConnectionConfig;
using util::Duration;
using util::Rng;
using util::TimePoint;

void ScanOptions::validate() {
    const auto checked_probability = [](double p, const char* name) {
        if (std::isnan(p)) {
            throw std::invalid_argument(std::string{"scanner: ScanOptions."} + name +
                                        " is NaN");
        }
        return std::clamp(p, 0.0, 1.0);
    };
    loss_rate = checked_probability(loss_rate, "loss_rate");
    reorder_rate = checked_probability(reorder_rate, "reorder_rate");
    if (max_redirects < 0) {
        throw std::invalid_argument("scanner: ScanOptions.max_redirects is negative");
    }
    if (attempt_deadline.is_negative() || attempt_deadline.is_zero()) {
        throw std::invalid_argument("scanner: ScanOptions.attempt_deadline must be > 0");
    }
    if (domain_deadline.is_negative() || domain_deadline.is_zero()) {
        throw std::invalid_argument("scanner: ScanOptions.domain_deadline must be > 0");
    }
    if (max_attempt_records == 0) {
        throw std::invalid_argument("scanner: ScanOptions.max_attempt_records must be >= 1");
    }
    if (journal_segment_bytes == 0) {
        throw std::invalid_argument(
            "scanner: ScanOptions.journal_segment_bytes must be >= 1");
    }
    retry.validate();
    worker_restart.validate();
    journal_retry.validate();
    if (fault_plan) fault_plan->validate();
    if (observer) observer->validate();
    ShardConfig{threads, chunk_domains}.validate();
}

bool DomainScan::quic_ok() const noexcept {
    return std::any_of(connections.begin(), connections.end(), [](const qlog::Trace& t) {
        return t.outcome == qlog::ConnectionOutcome::ok;
    });
}

std::string CampaignStats::render() const {
    util::TextTable table;
    table.add_row({"campaign", "value"});
    table.add_row({"domains scanned", util::group_digits(domains_scanned)});
    table.add_row({"domains resolved", util::group_digits(domains_resolved)});
    table.add_row({"domains QUIC ok", util::group_digits(domains_quic_ok)});
    table.add_row({"QUIC-ok rate (resolved)", util::percent(quic_ok_rate())});
    table.add_row({"connections", util::group_digits(connections)});
    table.add_row({"redirects followed", util::group_digits(redirects_followed)});
    table.add_row({"retries", util::group_digits(retries)});
    table.add_row({"domains recovered by retry", util::group_digits(domains_recovered_by_retry)});
    table.add_row({"domains errored", util::group_digits(domains_errored)});
    // Recovery rows only when the supervisor actually intervened — the
    // healthy sweep's table stays as it always was.
    if (chunks_quarantined > 0 || domains_quarantined > 0) {
        table.add_row({"chunks quarantined", util::group_digits(chunks_quarantined)});
        table.add_row({"domains quarantined", util::group_digits(domains_quarantined)});
    }
    if (worker_restarts > 0) {
        table.add_row({"worker restarts", util::group_digits(worker_restarts)});
    }
    if (proc_restarts > 0) {
        table.add_row({"process restarts", util::group_digits(proc_restarts)});
    }
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        table.add_row({std::string{"outcome "} +
                           qlog::to_cstring(static_cast<qlog::ConnectionOutcome>(i)),
                       util::group_digits(outcomes[i])});
    }
    // Server-fault exposure rows only when some fault fired — the healthy
    // sweep's table stays as it always was.
    for (std::size_t i = 1; i < server_faults.size(); ++i) {
        if (server_faults[i] == 0) continue;
        table.add_row({std::string{"server fault "} +
                           faults::to_cstring(static_cast<faults::ServerFaultMode>(i)),
                       util::group_digits(server_faults[i])});
    }
    table.add_row({"wall seconds", util::fixed(wall_seconds, 2)});
    table.add_row({"domains/sec", util::fixed(domains_per_sec(), 1)});
    return table.render(true);
}

Campaign::AttemptOutcome Campaign::run_attempt(const web::Domain& domain,
                                               const std::string& host, int redirect_hop,
                                               int retry, bool serve_redirect,
                                               Duration deadline,
                                               telemetry::MetricsRegistry* metrics,
                                               bytes::BufferPool* pool,
                                               core::ConstrainedMonitor* observer) const {
    // The watchdog capped this attempt below the normal per-attempt
    // deadline: a cut-off is then a kill, not an ordinary timeout.
    const bool watchdog_capped = deadline < options_.attempt_deadline;
    const web::PopulationModel& pop = *model_;
    // Redirect follow-ups are profiled as their own phase: their cost is
    // extra connections, which the first-attempt phase must not absorb.
    std::optional<telemetry::ScopedTimer> attempt_timer;
    if (metrics != nullptr) {
        attempt_timer.emplace(*metrics, redirect_hop == 0 ? "scanner.phase.attempt_ms"
                                                          : "scanner.phase.redirect_ms");
    }
    AttemptOutcome out;
    out.trace.host = host;
    out.trace.ip = pop.host_address(domain, options_.ipv6);

    Simulator sim;
    // Attempt randomness is a domain-keyed sub-stream (the sharded
    // determinism contract, DESIGN.md §9): never a function of scan order,
    // shard assignment or thread count. (hop | retry << 16) keeps retry 0
    // byte-identical to the pre-retry seeding while giving every retry an
    // independent stream.
    const std::uint64_t attempt_key = static_cast<std::uint64_t>(redirect_hop) |
                                      (static_cast<std::uint64_t>(retry) << 16);
    const std::uint64_t attempt_seed =
        util::derive_stream_seed(options_.seed, domain.id) ^
        (static_cast<std::uint64_t>(options_.week) << 32) ^
        (options_.ipv6 ? 0x10000ULL : 0ULL) ^ attempt_key;
    Rng rng{attempt_seed};
    // Fault decisions run on their own streams so attaching a fault plan (or
    // drawing a server-fault lottery that comes up healthy) never perturbs
    // the attempt's own randomness.
    Rng server_fault_rng{~attempt_seed};

    const auto one_way = Duration::from_ms(domain.rtt_ms() / 2.0);
    LinkConfig link;
    link.base_delay = one_way;
    link.jitter_scale = one_way.scaled(0.03);
    link.jitter_sigma = 0.5;
    link.loss_probability = options_.loss_rate;
    link.reorder_probability = options_.reorder_rate;
    link.reorder_extra_min = Duration::micros(60);
    link.reorder_extra_max = Duration::from_ms(1.5);
    Path path{sim, link, link, rng};
    // The constrained observer sits on the server→client direction — the
    // one the paper's passive measurement watches (the server reflects the
    // client's spin; its packets carry the measurable wave) and the one
    // whose DCID is the client-chosen connection ID.
    if (observer != nullptr) path.return_link().add_tap(observer->tap());
    if (options_.fault_plan) {
        path.forward_link().attach_faults(*options_.fault_plan, Rng{attempt_seed ^ 0xFA017'F0ULL});
        path.return_link().attach_faults(*options_.fault_plan, Rng{attempt_seed ^ 0xFA017'F1ULL});
    }

    ConnectionConfig client_cfg;
    client_cfg.role = quic::Role::client;
    client_cfg.spin = options_.client_spin;
    client_cfg.handshake_timeout = Duration::seconds(5);
    Connection client{sim, client_cfg, rng.fork(100),
                      [&path](Datagram dg) { path.forward_link().send(std::move(dg)); },
                      &out.trace, pool};

    // Shared attempt epilogue: trace finalization (its own profiled phase),
    // the deadline-vs-drained outcome decision, and per-attempt telemetry.
    const auto finish_attempt = [&](bool drained, bool got_response) {
        {
            std::optional<telemetry::ScopedTimer> finalize_timer;
            if (metrics != nullptr) {
                finalize_timer.emplace(*metrics, "scanner.phase.finalize_ms");
            }
            client.finalize_trace();
            if (got_response) {
                out.trace.outcome = qlog::ConnectionOutcome::ok;
            } else if (!drained && !client.failed() && !client.closed()) {
                // The deadline cut the simulation short with events still
                // pending: the attempt neither completed nor failed on its
                // own. Record that distinctly instead of pretending the
                // queue drained (the old behaviour left `aborted`, which
                // conflated deadline hits with protocol-level aborts) — and
                // distinguish the watchdog's kill from the ordinary
                // per-attempt timeout.
                out.trace.outcome = watchdog_capped
                                        ? qlog::ConnectionOutcome::watchdog_cancelled
                                        : qlog::ConnectionOutcome::attempt_timeout;
            }
        }
        out.sim_elapsed = sim.now() - TimePoint::origin();
        if (metrics != nullptr) {
            sim.publish_metrics(*metrics);
            path.forward_link().publish_metrics(*metrics, "netsim.link.forward");
            path.return_link().publish_metrics(*metrics, "netsim.link.return");
            client.publish_metrics(*metrics);
            telemetry::record_sim_time(*metrics, "scanner.attempt_sim_ms",
                                       sim.now() - TimePoint::origin());
        }
    };

    if (!domain.quic) {
        // Nothing QUIC-capable listens: Initials vanish, the client retries
        // via PTO and gives up at the handshake timeout (paper §3.3: "check
        // whether the endpoints answer to QUIC packets").
        client.connect();
        const bool drained = sim.run_until(TimePoint::origin() + deadline);
        finish_attempt(drained, /*got_response=*/false);
        return out;
    }

    const auto& stack = pop.stack_of(domain);
    const bool spins = pop.host_spins(domain, options_.week, options_.ipv6);

    // Serving-side fault lottery: the mode is a host property, whether it
    // fires is a per-attempt draw (transient faults are what retries can
    // beat). A healthy profile draws nothing, keeping fault-free campaigns
    // byte-identical.
    const faults::ServerFaultProfile fault_profile =
        pop.server_fault_profile(domain, options_.ipv6);
    faults::ServerFaultMode active_fault = faults::ServerFaultMode::none;
    if (!fault_profile.healthy() &&
        server_fault_rng.chance(fault_profile.per_attempt_probability)) {
        active_fault = fault_profile.mode;
    }
    out.server_fault = active_fault;

    ConnectionConfig server_cfg;
    server_cfg.role = quic::Role::server;
    server_cfg.spin = spins ? stack.spin_enabled
                            : quic::SpinConfig{pop.host_disabled_policy(domain, options_.ipv6),
                                               0, quic::SpinPolicy::always_zero};
    server_cfg.params.max_ack_delay = stack.max_ack_delay;
    server_cfg.fault_stall_handshake =
        active_fault == faults::ServerFaultMode::handshake_stall;
    server_cfg.fault_never_ack = active_fault == faults::ServerFaultMode::never_ack;
    Connection server{sim, server_cfg, rng.fork(200),
                      [&path](Datagram dg) { path.return_link().send(std::move(dg)); },
                      nullptr, pool};

    path.forward_link().set_receiver(
        [&server](bytes::ConstByteSpan dg) { server.on_datagram(dg); });
    path.return_link().set_receiver(
        [&client](bytes::ConstByteSpan dg) { client.on_datagram(dg); });

    // --- server application (HTTP/3-mini) -----------------------------------
    server.on_handshake_complete = [&server] {
        server.send_stream(kServerControlStream, build_settings(true), true);
    };
    server.on_stream_complete = [&, serve_redirect](std::uint64_t stream_id,
                                                    std::vector<std::uint8_t> data) {
        if (stream_id != kRequestStream) return;
        const auto requested = parse_request(data);
        const std::string redirect_target =
            serve_redirect ? pop.domain_name(domain) : std::string{};
        const Duration header_delay = stack.header_delay.sample(rng);
        (void)requested;

        sim.schedule_after(header_delay, [&, redirect_target, active_fault] {
            if (server.closed() || server.failed()) return;
            if (active_fault == faults::ServerFaultMode::garbage_payload) {
                // Instead of a response, emit an undecodable 1-RTT payload
                // (unknown frame type + noise). The client must classify
                // this as protocol_error — never crash or hang.
                std::vector<std::uint8_t> junk(48);
                junk[0] = 0x21;  // unknown frame type
                for (std::size_t i = 1; i < junk.size(); ++i) {
                    junk[i] = static_cast<std::uint8_t>(server_fault_rng.next());
                }
                server.send_raw_payload(std::move(junk));
                return;
            }
            if (active_fault == faults::ServerFaultMode::mid_transfer_abort) {
                // Headers arrive, then the server tears the connection down
                // where the body should begin (worker crash, LB drain).
                server.send_stream(kRequestStream,
                                   build_response_headers(200, "", stack.name), false);
                sim.schedule_after(stack.body_delay.sample(server_fault_rng), [&] {
                    if (server.closed() || server.failed()) return;
                    server.close(0x10c, "backend worker lost");
                });
                return;
            }
            if (!redirect_target.empty()) {
                server.send_stream(
                    kRequestStream,
                    build_response_headers(301, redirect_target, stack.name), true);
                return;
            }
            server.send_stream(kRequestStream,
                               build_response_headers(200, "", stack.name), false);
            const double sampled =
                util::sample_lognormal(rng, stack.body_log_mu, stack.body_log_sigma);
            const auto body_size = static_cast<std::size_t>(
                std::clamp(sampled, 400.0, 300'000.0));
            // Dynamic pages are generated and flushed in pieces (template
            // rendering, database queries); each app-limited pause can land
            // between two spin edges and inflate one RTT sample — the §5.2
            // end-host-delay effect.
            std::size_t chunk_count = 1;
            if (rng.chance(stack.chunked_body_rate)) {
                chunk_count = 2 + rng.uniform_u64(3);  // 2..4 chunks
            }
            Duration at = Duration::zero();
            std::size_t offset = 0;
            for (std::size_t chunk = 0; chunk < chunk_count; ++chunk) {
                at += stack.body_delay.sample(rng);
                const std::size_t end =
                    chunk + 1 == chunk_count ? body_size
                                             : body_size * (chunk + 1) / chunk_count;
                const std::size_t part = end - offset;
                const bool fin = chunk + 1 == chunk_count;
                sim.schedule_after(at, [&, part, fin] {
                    if (server.closed() || server.failed()) return;
                    server.send_stream(kRequestStream, build_body(part), fin);
                });
                offset = end;
            }
        });
    };

    // --- client application --------------------------------------------------
    bool got_response = false;
    client.on_handshake_complete = [&client, &host] {
        client.send_stream(kClientControlStream, build_settings(false), true);
        client.send_stream(kRequestStream, build_request(host), true);
    };
    client.on_stream_complete = [&](std::uint64_t stream_id, std::vector<std::uint8_t> data) {
        if (stream_id != kRequestStream) return;
        out.response = parse_response(data);
        got_response = true;
        client.close(0, "done");
    };

    client.connect();
    const bool drained = sim.run_until(TimePoint::origin() + deadline);
    finish_attempt(drained, got_response);
    return out;
}

DomainScan Campaign::scan_domain(const web::Domain& domain) const {
    // One-off scans get a transient pool: the first attempt seeds it and
    // later attempts of the same domain reuse the recycled datagram storage.
    bytes::BufferPool pool;
    DomainScan scan = scan_domain_into(domain, metrics_, &pool);
    if (metrics_ != nullptr) pool.publish_metrics(*metrics_);
    return scan;
}

std::size_t Campaign::chunk_count() const {
    return ShardPlan{model_->domain_count(), options_.chunk_domains}.chunk_count();
}

std::vector<std::uint32_t> Campaign::chunk_domain_ids(std::size_t chunk_index) const {
    // Domain ids ARE global indices (PopulationModel's purity contract), so
    // the chunk's ids follow from the geometry alone — no materialization.
    const ShardPlan plan{model_->domain_count(), options_.chunk_domains};
    if (chunk_index >= plan.chunk_count()) {
        throw std::out_of_range("scanner: chunk_domain_ids index past chunk_count()");
    }
    std::vector<std::uint32_t> ids;
    ids.reserve(plan.chunk_end(chunk_index) - plan.chunk_begin(chunk_index));
    for (std::size_t i = plan.chunk_begin(chunk_index); i < plan.chunk_end(chunk_index);
         ++i) {
        ids.push_back(static_cast<std::uint32_t>(i));
    }
    return ids;
}

ScannedChunk Campaign::scan_chunk(std::size_t chunk_index) const {
    const ShardPlan plan{model_->domain_count(), options_.chunk_domains};
    if (chunk_index >= plan.chunk_count()) {
        throw std::out_of_range("scanner: scan_chunk index past chunk_count()");
    }
    if (options_.chunk_fault_hook) options_.chunk_fault_hook(chunk_index);
    // The worker regenerates exactly its own chunk's domains and drops them
    // with this frame: chunk scans touch O(chunk_domains) population memory
    // no matter how large the universe is.
    const web::DomainBlock block = model_->materialize(
        static_cast<std::uint32_t>(plan.chunk_begin(chunk_index)),
        static_cast<std::uint32_t>(plan.chunk_end(chunk_index)));
    // Chunk-private registry and pool, exactly as run()'s workers build them:
    // the snapshot below must be byte-identical to what run() journals for
    // this chunk, or the reducer's merged telemetry would drift.
    std::unique_ptr<telemetry::MetricsRegistry> metrics;
    if (metrics_ != nullptr) metrics = std::make_unique<telemetry::MetricsRegistry>();
    bytes::BufferPool pool;
    ScannedChunk out;
    out.scans.reserve(block.size());
    for (const web::Domain& domain : block.domains) {
        DomainScan scan;
        try {
            scan = scan_domain_into(domain, metrics.get(), &pool);
        } catch (const std::exception& e) {
            scan = DomainScan{};
            scan.domain_id = domain.id;
            scan.error = e.what();
        }
        out.scans.push_back(std::move(scan));
    }
    if (metrics != nullptr) {
        pool.publish_metrics(*metrics);
        out.telemetry_snapshot = telemetry::snapshot(*metrics);
    }
    return out;
}

DomainScan Campaign::scan_domain_into(const web::Domain& domain,
                                      telemetry::MetricsRegistry* metrics,
                                      bytes::BufferPool* pool) const {
    DomainScan scan;
    scan.domain_id = domain.id;
    {
        // DNS is modelled as a population lookup, but it is still a campaign
        // phase: profiling it keeps the phase breakdown exhaustive.
        std::optional<telemetry::ScopedTimer> resolve_timer;
        if (metrics != nullptr) resolve_timer.emplace(*metrics, "scanner.phase.resolve_ms");
        scan.resolved = domain.resolves && (!options_.ipv6 || domain.has_ipv6);
    }
    if (!scan.resolved) return scan;

    // Per-DOMAIN constrained observer (DESIGN.md §14): its counters are a
    // pure function of this domain's packet stream, never of shard/chunk
    // geometry, so the observer.* telemetry below stays byte-identical for
    // every thread count and --procs setting.
    std::optional<core::ConstrainedMonitor> observer;
    if (options_.observer) observer.emplace(*options_.observer);

    std::string host = "www." + model_->domain_name(domain);
    bool serve_redirect = domain.redirects;
    // Backoff jitter runs on its own per-domain stream: with retries off it
    // is never drawn from, and with them on it cannot perturb attempt seeds.
    Rng backoff_rng = faults::RetryPolicy::backoff_stream(options_.seed, domain.id);
    // Watchdog budget: total simulated time this domain may consume across
    // every hop, retry and backoff. Purely per-domain bookkeeping — never a
    // function of shard assignment — so the determinism contract holds.
    Duration budget = options_.domain_deadline;
    bool budget_exhausted = false;
    for (int hop = 0; hop <= options_.max_redirects && !budget_exhausted; ++hop) {
        std::optional<AttemptOutcome> outcome;
        Duration backoff = Duration::zero();
        bool first_try_failed = false;
        for (int retry = 0;; ++retry) {
            const Duration deadline = std::min(options_.attempt_deadline, budget);
            outcome = run_attempt(domain, host, hop, retry, serve_redirect, deadline,
                                  metrics, pool, observer ? &*observer : nullptr);
            scan.sim_time += outcome->sim_elapsed;
            budget -= outcome->sim_elapsed;
            if (budget <= Duration::zero()) budget_exhausted = true;
            const bool ok = outcome->trace.outcome == qlog::ConnectionOutcome::ok;
            if (outcome->trace.outcome == qlog::ConnectionOutcome::watchdog_cancelled) {
                budget_exhausted = true;
                if (metrics != nullptr) {
                    metrics->counter("scanner.watchdog_cancelled").add(1);
                }
            }
            // Bounded attempt log: past the cap, the attempt still ran (and
            // is counted below) but its record and trace are dropped.
            if (scan.attempts.size() < options_.max_attempt_records) {
                scan.attempts.push_back(DomainScan::AttemptRecord{
                    hop, retry, outcome->trace.outcome, backoff, outcome->server_fault});
                scan.connections.push_back(std::move(outcome->trace));
            } else {
                ++scan.attempts_truncated;
            }
            if (retry > 0) ++scan.retries;
            if (ok) {
                if (first_try_failed) scan.recovered_by_retry = true;
                break;
            }
            first_try_failed = true;
            if (budget_exhausted || !options_.retry.should_retry(retry, false)) break;
            // Attempts run on per-attempt simulators, so the backoff is
            // campaign bookkeeping in simulated time, not a sim event — but
            // it still burns watchdog budget.
            backoff = options_.retry.backoff_delay(retry + 1, backoff_rng);
            scan.sim_time += backoff;
            budget -= backoff;
            if (budget <= Duration::zero()) {
                budget_exhausted = true;
                break;
            }
        }
        const bool redirected =
            outcome->response.has_value() && outcome->response->status == 301 &&
            !outcome->response->location.empty();
        scan.final_response = outcome->response;
        if (!redirected) break;
        ++scan.redirects_followed;
        if (metrics != nullptr) metrics->counter("scanner.redirects_followed").add(1);
        host = outcome->response->location;
        serve_redirect = false;  // the canonical target serves the page
    }
    if (observer && metrics != nullptr) {
        const core::ConstrainedTableCounters& t = observer->counters();
        metrics->counter("observer.offered").add(t.offered);
        metrics->counter("observer.non_flow").add(t.non_flow);
        metrics->counter("observer.sampled_out").add(t.sampled_out);
        metrics->counter("observer.tracked").add(t.tracked);
        metrics->counter("observer.untracked").add(t.untracked);
        metrics->counter("observer.collisions").add(t.collisions);
        metrics->counter("observer.evictions").add(t.evictions);
        metrics->counter("observer.flows").add(t.active_slots);
        std::uint64_t samples = 0;
        std::uint64_t rejected = 0;
        std::uint64_t spin_candidates = 0;
        for (const auto& [key, stats] : observer->flows()) {
            samples += stats.samples;
            rejected += stats.rejected_samples;
            if (stats.spin_candidate()) ++spin_candidates;
        }
        metrics->counter("observer.samples").add(samples);
        metrics->counter("observer.rejected_samples").add(rejected);
        metrics->counter("observer.spin_candidate_flows").add(spin_candidates);
    }
    return scan;
}

CampaignStats Campaign::run(
    const std::function<void(const web::Domain&, DomainScan&&)>& sink) const {
    return run_impl(sink, RunMode::fresh);
}

CampaignStats Campaign::resume(
    const std::function<void(const web::Domain&, DomainScan&&)>& sink) const {
    if (options_.journal_dir.empty()) {
        throw std::invalid_argument("scanner: resume() requires ScanOptions.journal_dir");
    }
    return run_impl(sink, RunMode::resume);
}

CampaignStats Campaign::reduce(
    const std::function<void(const web::Domain&, DomainScan&&)>& sink) const {
    if (options_.journal_dir.empty()) {
        throw std::invalid_argument("scanner: reduce() requires ScanOptions.journal_dir");
    }
    return run_impl(sink, RunMode::reduce);
}

CampaignStats Campaign::run_impl(
    const std::function<void(const web::Domain&, DomainScan&&)>& sink,
    RunMode mode) const {
    CampaignStats stats;
    const auto wall_start = std::chrono::steady_clock::now();
    const auto wall_elapsed = [&wall_start] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    };

    // The population is never materialized here: the merge thread works from
    // the model's closed-form geometry and regenerates single domains on
    // demand, so run_impl's footprint is O(merge window), not O(universe).
    const std::size_t universe = model_->domain_count();
    const ShardConfig shard{options_.threads, options_.chunk_domains};
    const ShardPlan plan{universe, options_.chunk_domains};

    // Whole-sweep host-resource observation: wall time, allocation traffic
    // (when the binary links the interposer) and peak RSS, published as
    // obs.resource.campaign.* gauges — host facts, excluded from the
    // deterministic telemetry view.
    std::optional<telemetry::ResourceProbe> resource_probe;
    if (metrics_ != nullptr) resource_probe.emplace("campaign");

    // ---- flight recorder ----------------------------------------------------
    // Simulated-time events are recorded ONLY here on the merge thread, in
    // ascending chunk order, positioned at cumulative simulated-nanosecond
    // offsets — a pure function of the scan results, so the sim trace is
    // byte-identical for every thread count and across kill/resume. Worker
    // scheduling, merge and journal latencies go to the wall clock (the
    // recorder's sidecar file).
    telemetry::TraceRecorder* const trace = trace_;
    using telemetry::TraceArg;
    using telemetry::TraceClock;
    const int sim_lane =
        trace != nullptr ? trace->lane(TraceClock::sim, "merge (chunk timeline)") : 0;
    const int wall_merge_lane =
        trace != nullptr ? trace->lane(TraceClock::wall, "merge") : 0;
    std::int64_t sim_cursor_ns = 0;
    std::uint64_t traced_domains = 0;
    std::uint64_t traced_quic_ok = 0;

    // Declared before merge_scan so the progress snapshot can report journal
    // durability; assigned in the journal setup block below.
    std::unique_ptr<JournalWriter> journal;

    // One chunk's sim-timeline events: a span covering the chunk's total
    // simulated time, instants for retries/watchdog kills/quarantine at the
    // owning domain's offset, and cumulative counter tracks. Shared verbatim
    // between the live merge path, the quarantine path and journal replay —
    // the `replayed` arg is ALWAYS present (0 or 1) so a resume trace equals
    // the uninterrupted one after flipping that single flag.
    const auto trace_chunk = [&](std::size_t chunk_index,
                                 const std::vector<DomainScan>& scans, bool replayed,
                                 bool quarantined) {
        if (trace == nullptr) return;
        const std::int64_t start_ns = sim_cursor_ns;
        std::int64_t dur_ns = 0;
        std::uint64_t quic_ok = 0;
        std::uint64_t errors = 0;
        std::uint64_t retries = 0;
        for (const auto& scan : scans) {
            if (scan.quic_ok()) ++quic_ok;
            if (!scan.error.empty()) ++errors;
            retries += scan.retries;
            dur_ns += scan.sim_time.count_nanos();
        }
        // The span first, instants after: per-lane timestamps then never
        // decrease (the span starts at or before every instant it contains).
        trace->complete(
            TraceClock::sim, sim_lane, "chunk", start_ns, dur_ns,
            {TraceArg::num("chunk", static_cast<std::uint64_t>(chunk_index)),
             TraceArg::num("domains", static_cast<std::uint64_t>(scans.size())),
             TraceArg::num("quic_ok", quic_ok), TraceArg::num("errors", errors),
             TraceArg::num("retries", retries),
             TraceArg::num("replayed", static_cast<std::uint64_t>(replayed ? 1 : 0)),
             TraceArg::num("quarantined",
                           static_cast<std::uint64_t>(quarantined ? 1 : 0))});
        if (quarantined) {
            trace->instant(TraceClock::sim, sim_lane, "quarantine", start_ns,
                           {TraceArg::num("chunk", static_cast<std::uint64_t>(chunk_index))});
        }
        std::int64_t offset_ns = 0;
        for (const auto& scan : scans) {
            if (scan.retries > 0) {
                trace->instant(
                    TraceClock::sim, sim_lane, "retry", start_ns + offset_ns,
                    {TraceArg::num("domain", static_cast<std::uint64_t>(scan.domain_id)),
                     TraceArg::num("retries", scan.retries)});
            }
            const bool watchdog_killed = std::any_of(
                scan.attempts.begin(), scan.attempts.end(),
                [](const DomainScan::AttemptRecord& a) {
                    return a.outcome == qlog::ConnectionOutcome::watchdog_cancelled;
                });
            if (watchdog_killed) {
                trace->instant(
                    TraceClock::sim, sim_lane, "watchdog", start_ns + offset_ns,
                    {TraceArg::num("domain", static_cast<std::uint64_t>(scan.domain_id))});
            }
            offset_ns += scan.sim_time.count_nanos();
        }
        sim_cursor_ns = start_ns + dur_ns;
        traced_domains += scans.size();
        traced_quic_ok += quic_ok;
        trace->counter(TraceClock::sim, "domains", sim_cursor_ns,
                       static_cast<double>(traced_domains));
        trace->counter(TraceClock::sim, "domains quic_ok", sim_cursor_ns,
                       static_cast<double>(traced_quic_ok));
    };

    // Per-scan merge bookkeeping, shared verbatim between the live merge
    // path and journal replay: replayed chunks re-drive exactly the counters
    // an uninterrupted merge would have driven, which is what makes resumed
    // output byte-identical.
    const auto merge_scan = [&](std::size_t domain_index, DomainScan&& scan) {
        // Regenerated, not looked up: the sink's Domain is a pure function of
        // (seed, id), so handing it a fresh copy keeps the merge thread free
        // of any materialized population.
        const web::Domain domain =
            model_->domain(static_cast<std::uint32_t>(domain_index));

        ++stats.domains_scanned;
        if (scan.resolved) ++stats.domains_resolved;
        if (scan.quic_ok()) ++stats.domains_quic_ok;
        stats.connections += scan.connections.size();
        stats.redirects_followed += scan.redirects_followed;
        stats.retries += scan.retries;
        if (scan.recovered_by_retry) ++stats.domains_recovered_by_retry;
        if (!scan.error.empty()) ++stats.domains_errored;
        for (const auto& trace : scan.connections) {
            ++stats.outcomes[static_cast<std::size_t>(trace.outcome)];
            if (metrics_ != nullptr) {
                metrics_->counter(std::string{"scanner.outcome."} +
                                  qlog::to_cstring(trace.outcome))
                    .add(1);
            }
        }
        for (const auto& attempt : scan.attempts) {
            ++stats.server_faults[static_cast<std::size_t>(attempt.server_fault)];
            if (metrics_ != nullptr &&
                attempt.server_fault != faults::ServerFaultMode::none) {
                metrics_->counter(std::string{"scanner.server_fault."} +
                                  faults::to_cstring(attempt.server_fault))
                    .add(1);
            }
        }
        if (metrics_ != nullptr) {
            metrics_->counter("scanner.domains_scanned").add(1);
            if (scan.resolved) metrics_->counter("scanner.domains_resolved").add(1);
            if (scan.quic_ok()) metrics_->counter("scanner.domains_quic_ok").add(1);
            metrics_->counter("scanner.connections").add(scan.connections.size());
            if (scan.retries > 0) {
                metrics_->counter("scanner.retries").add(scan.retries);
            }
            if (scan.recovered_by_retry) {
                metrics_->counter("scanner.domains_recovered_by_retry").add(1);
            }
            if (!scan.error.empty()) {
                metrics_->counter("scanner.domains_errored").add(1);
            }
        }

        sink(domain, std::move(scan));

        if (progress_ && progress_every_ > 0 &&
            stats.domains_scanned % progress_every_ == 0) {
            stats.wall_seconds = wall_elapsed();
            if (journal != nullptr) {
                stats.journal_records_appended = journal->records_appended();
                stats.journal_open_bytes = journal->open_bytes();
            }
            progress_(stats);
        }
    };

    // ---- journal lock, replay (resume/reduce) and writer setup --------------
    const bool journaling = !options_.journal_dir.empty();
    CampaignHeader header;
    header.seed = options_.seed;
    header.week = options_.week;
    header.ipv6 = options_.ipv6;
    header.chunk_domains = options_.chunk_domains;
    header.domain_count = universe;
    header.has_telemetry = metrics_ != nullptr;

    // Exactly one campaign may write a journal directory at a time: two
    // writers interleaving appends (or a reduce racing a scan) would corrupt
    // it. Held until this run returns; a stale lock whose owner died is
    // broken silently, a live owner makes this run refuse loudly.
    util::PidLockFile journal_lock;
    if (journaling) {
        std::filesystem::create_directories(options_.journal_dir);
        try {
            journal_lock.acquire(journal_lock_path(options_.journal_dir));
        } catch (const std::runtime_error& e) {
            throw std::runtime_error(std::string{"scanner: journal dir '"} +
                                     options_.journal_dir +
                                     "' is in use by another campaign (" + e.what() +
                                     "); this campaign spans domains [0, " +
                                     std::to_string(universe) + ") in " +
                                     std::to_string(plan.chunk_count()) + " chunks");
        }
    }

    // Re-drives the merge bookkeeping for one journaled chunk record —
    // telemetry, quarantine accounting, trace and per-scan merge — exactly
    // as the live path would have. Shared by resume (segment journal) and
    // reduce (map journal): replayed chunks producing the same counters the
    // uninterrupted merge would have produced is what makes recovered output
    // byte-identical.
    const auto replay_record = [&](ChunkRecord& record) {
        const std::size_t begin = plan.chunk_begin(record.chunk_index);
        const std::size_t end = plan.chunk_end(record.chunk_index);
        if (record.scans.size() != end - begin) {
            throw std::invalid_argument(
                "scanner: journal chunk geometry does not match the population at " +
                describe_chunk(plan, record.chunk_index) + ": record holds " +
                std::to_string(record.scans.size()) + " scans");
        }
        // Same merge order as the live path: chunk telemetry first, then
        // per-scan bookkeeping.
        if (metrics_ != nullptr && !record.telemetry_snapshot.empty()) {
            auto parsed = telemetry::parse_snapshot(record.telemetry_snapshot);
            if (!parsed) {
                throw std::invalid_argument(
                    "scanner: journal telemetry snapshot is malformed");
            }
            metrics_->merge_from(*parsed);
        }
        if (record.quarantined) {
            ++stats.chunks_quarantined;
            stats.domains_quarantined += record.scans.size();
            if (metrics_ != nullptr) {
                metrics_->counter("campaign.quarantined_chunks").add(1);
                metrics_->counter("campaign.quarantined_domains")
                    .add(record.scans.size());
            }
        }
        trace_chunk(record.chunk_index, record.scans, /*replayed=*/true,
                    record.quarantined);
        for (std::size_t j = 0; j < record.scans.size(); ++j) {
            // Model ids are global indices, so the expected id is arithmetic.
            if (record.scans[j].domain_id != begin + j) {
                throw std::invalid_argument(
                    "scanner: journal domain ids do not match the population at " +
                    describe_chunk(plan, record.chunk_index));
            }
            merge_scan(begin + j, std::move(record.scans[j]));
        }
    };

    if (mode == RunMode::reduce) {
        // ---- multi-process reducer (map-layout journal, DESIGN.md §13) ------
        // Recorded chunks may be ANY subset — worker processes finish out of
        // order and die mid-campaign — so the reducer interleaves replays of
        // recorded chunks with fresh scans of missing ones, keeping merges in
        // strict ascending chunk order. Chunks it scans are published back
        // into the map journal BEFORE merging (atomic, idempotent), so a
        // killed reduce rescans nothing it already published.
        // Only chunk PRESENCE is loaded eagerly (one byte per chunk): each
        // recorded chunk's bytes are read when its turn to merge comes and
        // die with the merge, so the reducer's RSS is bounded by the merge
        // window — never by how many chunks the workers already published.
        util::Io& map_io = util::resolve_io(options_.io);
        init_map_journal(map_io, options_.journal_dir, header, /*wipe=*/false);
        std::vector<char> recorded(plan.chunk_count(), 0);
        for (const std::size_t index : list_map_chunks(options_.journal_dir)) {
            if (index >= plan.chunk_count()) {
                throw std::invalid_argument(
                    "scanner: map journal chunk index " + std::to_string(index) +
                    " is past this campaign's chunk count (" +
                    std::to_string(plan.chunk_count()) + " chunks over " +
                    std::to_string(universe) + " domains)");
            }
            recorded[index] = 1;
        }
        std::vector<std::size_t> missing;
        for (std::size_t c = 0; c < plan.chunk_count(); ++c) {
            if (recorded[c] == 0) missing.push_back(c);
        }

        std::uint64_t records_replayed = 0;
        std::uint64_t corrupt_chunks = 0;
        // Next global chunk whose replay is still pending; recorded chunks
        // below a freshly-scanned chunk replay right before it merges.
        std::size_t replay_cursor = 0;
        // Storage-retry jitter stream (wall-clock backoff); independent of
        // every scan-facing RNG, so disk stutter never perturbs the output.
        util::Rng io_retry_rng{util::derive_stream_seed(options_.seed, 0xd15cULL)};
        const auto io_backoff = [&](int retry_index) {
            const Duration delay =
                options_.journal_retry.backoff_delay(retry_index, io_retry_rng);
            if (delay.count_nanos() > 0) {
                std::this_thread::sleep_for(std::chrono::nanoseconds{delay.count_nanos()});
            }
        };
        // Set when a non-transient publish failure disabled the map journal:
        // merging continues (the sink output stays byte-identical); only
        // durability is lost, and loudly so.
        bool map_degraded = false;
        const auto degrade_map_journal = [&](const std::string& what, int err) {
            map_degraded = true;
            stats.journal_degraded = true;
            stats.journal_degraded_error = what;
            if (metrics_ != nullptr) {
                metrics_->counter("campaign.journal.degraded").add(1);
                metrics_->counter(std::string{"campaign.journal.io_errors."} +
                                  util::to_cstring(util::classify_io_error(err)))
                    .add(1);
            }
            if (trace != nullptr) {
                trace->instant(TraceClock::wall, wall_merge_lane, "journal degraded",
                               trace->wall_now_ns(), {TraceArg::str("error", what)});
            }
        };
        const auto publish_and_merge = [&](ChunkRecord&& record) {
            if (!map_degraded) {
                util::IoResult published;
                for (int attempt = 0;; ++attempt) {
                    published = write_map_chunk(map_io, options_.journal_dir, record);
                    if (published) break;
                    if (util::classify_io_error(published.err) !=
                            util::IoErrorClass::transient ||
                        attempt + 1 >= options_.journal_retry.max_attempts) {
                        break;
                    }
                    io_backoff(attempt + 1);
                }
                if (published) {
                    ++stats.journal_records_appended;
                } else {
                    degrade_map_journal(
                        "scanner: cannot publish map chunk record for " +
                            describe_chunk(plan, record.chunk_index) + " in " +
                            options_.journal_dir + ": " + published.message(),
                        published.err);
                }
            }
            if (metrics_ != nullptr && !record.telemetry_snapshot.empty()) {
                auto parsed = telemetry::parse_snapshot(record.telemetry_snapshot);
                if (parsed) metrics_->merge_from(*parsed);
            }
            trace_chunk(record.chunk_index, record.scans, /*replayed=*/false,
                        record.quarantined);
            const std::size_t begin = plan.chunk_begin(record.chunk_index);
            for (std::size_t j = 0; j < record.scans.size(); ++j) {
                merge_scan(begin + j, std::move(record.scans[j]));
            }
            replay_cursor = record.chunk_index + 1;
        };
        const auto replay_up_to = [&](std::size_t limit) {
            while (replay_cursor < limit) {
                const std::size_t c = replay_cursor;
                if (recorded[c] != 0) {
                    auto record = read_map_chunk(options_.journal_dir, c);
                    if (record) {
                        replay_record(*record);
                        ++records_replayed;
                    } else {
                        // Present at the presence scan but unreadable now
                        // (torn publish of a killed worker): rescan inline on
                        // the merge thread and republish — byte-identical by
                        // the purity contract, so the repair is idempotent.
                        ++corrupt_chunks;
                        ScannedChunk rescan = scan_chunk(c);
                        ChunkRecord fresh;
                        fresh.chunk_index = c;
                        fresh.scans = std::move(rescan.scans);
                        fresh.telemetry_snapshot = std::move(rescan.telemetry_snapshot);
                        publish_and_merge(std::move(fresh));
                        continue;  // publish_and_merge advanced replay_cursor
                    }
                }
                replay_cursor = c + 1;
            }
        };

        // One missing chunk per work item: the campaign chunk is already the
        // unit of journaling, so the reducer's shard layer must not regroup.
        const ShardConfig reduce_shard{options_.threads, 1};
        const ShardPlan missing_plan{missing.size(), 1};
        // Scanned-chunk ring sized to the shard merge window: backpressure in
        // run_supervised guarantees at most `window` scanned-but-unmerged
        // chunks are live, so slot c % window is free by the time chunk
        // c + window is admitted.
        const std::size_t window = std::max<std::size_t>(
            std::min<std::size_t>(reduce_shard.resolved_merge_window(), missing.size()),
            1);
        std::vector<ScannedChunk> scanned(window);
        const auto scan_missing = [&](std::size_t c) {
            const std::int64_t scan_start_ns =
                trace != nullptr ? trace->wall_now_ns() : 0;
            scanned[c % window] = scan_chunk(missing[c]);
            if (trace != nullptr) {
                const std::int64_t end_ns = trace->wall_now_ns();
                trace->complete(
                    TraceClock::wall, trace->wall_lane_for_current_thread("worker"),
                    "scan chunk", scan_start_ns, end_ns - scan_start_ns,
                    {TraceArg::num("chunk", static_cast<std::uint64_t>(missing[c])),
                     TraceArg::num("domains", static_cast<std::uint64_t>(
                                                  scanned[c % window].scans.size()))});
            }
        };
        const auto merge_missing = [&](std::size_t c) {
            const std::size_t g = missing[c];
            replay_up_to(g);
            ChunkRecord record;
            record.chunk_index = g;
            record.scans = std::move(scanned[c % window].scans);
            record.telemetry_snapshot = std::move(scanned[c % window].telemetry_snapshot);
            scanned[c % window] = ScannedChunk{};  // release the slot's storage
            publish_and_merge(std::move(record));
        };
        const auto quarantine_missing = [&](const ChunkFailure& failure) {
            const std::size_t g = missing[failure.chunk];
            replay_up_to(g);
            ChunkRecord record;
            record.chunk_index = g;
            record.quarantined = true;
            record.quarantine_error = failure.error;
            record.scans.reserve(plan.chunk_end(g) - plan.chunk_begin(g));
            for (std::size_t i = plan.chunk_begin(g); i < plan.chunk_end(g); ++i) {
                DomainScan scan;
                scan.domain_id = static_cast<std::uint32_t>(i);
                scan.error = "chunk quarantined: " + failure.error;
                record.scans.push_back(std::move(scan));
            }
            ++stats.chunks_quarantined;
            stats.domains_quarantined += record.scans.size();
            if (metrics_ != nullptr) {
                metrics_->counter("campaign.quarantined_chunks").add(1);
                metrics_->counter("campaign.quarantined_domains")
                    .add(record.scans.size());
            }
            publish_and_merge(std::move(record));
        };

        SupervisorConfig supervisor;
        supervisor.restart = options_.worker_restart;
        supervisor.seed = options_.seed;
        const SupervisionReport report =
            run_supervised(reduce_shard, missing_plan, supervisor, scan_missing,
                           merge_missing, quarantine_missing);
        replay_up_to(plan.chunk_count());
        stats.worker_restarts = report.restarts;
        if (metrics_ != nullptr) {
            if (report.restarts > 0) {
                metrics_->counter("campaign.restarted_workers").add(report.restarts);
            }
            metrics_->counter("campaign.journal.records_replayed")
                .add(records_replayed);
            if (corrupt_chunks > 0) {
                metrics_->counter("campaign.journal.corrupt_map_chunks")
                    .add(corrupt_chunks);
            }
        }
        stats.wall_seconds = wall_elapsed();
        if (metrics_ != nullptr) {
            metrics_->gauge("scanner.domains_per_sec").set(stats.domains_per_sec());
            metrics_->gauge("scanner.quic_ok_rate").set(stats.quic_ok_rate());
            if (resource_probe) resource_probe->publish(*metrics_);
            if (trace != nullptr) trace->publish_metrics(*metrics_);
        }
        return stats;
    }

    std::size_t chunks_replayed = 0;
    if (journaling) {
        JournalOptions journal_options;
        journal_options.segment_bytes = options_.journal_segment_bytes;
        journal_options.io = options_.io;
        journal_options.io_retry = options_.journal_retry;
        journal_options.io_retry_seed = options_.seed;
        if (mode == RunMode::resume) {
            // Streaming replay: each journaled chunk is parsed, merged and
            // dropped in one step — the header is vetted before the first
            // record so a foreign journal is refused without consuming any.
            const ReplayStreamResult replayed = replay_journal(
                options_.journal_dir,
                [&header](const CampaignHeader& stored) {
                    if (!(stored == header)) {
                        throw std::invalid_argument(
                            "scanner: resume() journal belongs to a different "
                            "campaign (options or population changed since it was "
                            "written)");
                    }
                },
                [&replay_record](ChunkRecord&& record) { replay_record(record); });
            if (replayed.has_header) {
                chunks_replayed = static_cast<std::size_t>(replayed.chunks_replayed);
                if (metrics_ != nullptr) {
                    metrics_->counter("campaign.journal.records_replayed")
                        .add(chunks_replayed);
                    if (replayed.torn_bytes_discarded > 0) {
                        metrics_->counter("campaign.journal.torn_bytes_discarded")
                            .add(replayed.torn_bytes_discarded);
                    }
                }
            }
            journal = std::make_unique<JournalWriter>(options_.journal_dir, header,
                                                      JournalWriter::Mode::attach,
                                                      journal_options);
        } else {
            journal = std::make_unique<JournalWriter>(options_.journal_dir, header,
                                                      JournalWriter::Mode::fresh,
                                                      journal_options);
        }
    }

    // ---- scan the remaining chunks ------------------------------------------
    // Chunk indices stay GLOBAL (replayed prefix + local index): the journal,
    // quarantine notes and chunk-keyed restart streams all name campaign
    // chunks, not positions within this (possibly partial) run.
    const std::size_t base_domain =
        std::min(plan.chunk_begin(chunks_replayed), universe);
    const ShardPlan rest_plan{universe - base_domain, options_.chunk_domains};

    // Slot c % window is written by exactly one worker (inside scan(c)) and
    // read by the merge thread only after run_supervised reports the chunk
    // done. A restarted scan rebuilds and overwrites its slot from scratch.
    // Rings, not per-chunk vectors: the shard merge window bounds how many
    // chunks are ever live past the merge frontier, so slot c % window is
    // free again by the time chunk c + window is admitted — in-flight results
    // cost O(window), never O(chunk count).
    struct ChunkResult {
        std::vector<DomainScan> scans;
        /// Chunk-private telemetry; null when the campaign has no registry.
        std::unique_ptr<telemetry::MetricsRegistry> metrics;
    };
    const std::size_t window = std::max<std::size_t>(
        std::min<std::size_t>(shard.resolved_merge_window(), rest_plan.chunk_count()),
        1);
    std::vector<ChunkResult> chunks(window);
    // Wall-clock instant each chunk's scan finished (same single-writer slot
    // discipline as `chunks`): the merge span reports its distance to this as
    // the chunk's time spent queued for merge.
    std::vector<std::int64_t> scan_done_ns(window, 0);

    const auto scan_chunk = [&](std::size_t c) {
        const std::int64_t scan_start_ns = trace != nullptr ? trace->wall_now_ns() : 0;
        if (options_.chunk_fault_hook) options_.chunk_fault_hook(c + chunks_replayed);
        // Regenerate exactly this chunk's domains from the model and drop
        // them with this frame — workers never touch a shared domain span.
        const web::DomainBlock block = model_->materialize(
            static_cast<std::uint32_t>(base_domain + rest_plan.chunk_begin(c)),
            static_cast<std::uint32_t>(base_domain + rest_plan.chunk_end(c)));
        ChunkResult result;
        if (metrics_ != nullptr) {
            result.metrics = std::make_unique<telemetry::MetricsRegistry>();
        }
        // Chunk-private datagram pool, same ownership story as the chunk
        // registry: touched by exactly one worker, so no locking. Datagram
        // storage recycles across every attempt of the chunk's domains; all
        // buffers are dead by the time the chunk completes (each attempt's
        // simulator drains before the next starts), so the pool can die
        // here. Pool counters depend on chunk geometry, which is why
        // deterministic_csv excludes the bytes.pool prefix.
        bytes::BufferPool pool;
        result.scans.reserve(block.size());
        for (const web::Domain& domain : block.domains) {
            // Per-domain fault isolation: one pathological target must cost
            // one scan record, never the sweep. Telemetry/stats may be
            // partially written for the failed domain; counters stay
            // monotonic either way.
            DomainScan scan;
            try {
                scan = scan_domain_into(domain, result.metrics.get(), &pool);
            } catch (const std::exception& e) {
                scan = DomainScan{};
                scan.domain_id = domain.id;
                scan.error = e.what();
            }
            result.scans.push_back(std::move(scan));
        }
        if (result.metrics != nullptr) pool.publish_metrics(*result.metrics);
        chunks[c % window] = std::move(result);
        if (trace != nullptr) {
            const std::int64_t end_ns = trace->wall_now_ns();
            scan_done_ns[c % window] = end_ns;
            trace->complete(
                TraceClock::wall, trace->wall_lane_for_current_thread("worker"),
                "scan chunk", scan_start_ns, end_ns - scan_start_ns,
                {TraceArg::num("chunk",
                               static_cast<std::uint64_t>(c + chunks_replayed)),
                 TraceArg::num("domains",
                               static_cast<std::uint64_t>(rest_plan.chunk_end(c) -
                                                          rest_plan.chunk_begin(c)))});
        }
    };

    // Journal degrade (DESIGN.md §16): a non-transient storage error must not
    // kill a sweep whose OUTPUT is still perfectly computable. The journal is
    // shut down — sealing the durable prefix when the tail is clean,
    // abandoning the .open tail for scrub otherwise — the cause is attributed
    // loudly (stats flag + campaign.journal.* telemetry), and scanning
    // continues journal-free. Construction-time failures still throw: before
    // any work is done, refusing loudly beats running without durability the
    // caller explicitly asked for.
    const auto degrade_journal = [&](const JournalIoError& e) {
        if (journal == nullptr) return;
        stats.journal_records_appended = journal->records_appended();
        stats.journal_open_bytes = 0;
        stats.journal_degraded = true;
        stats.journal_degraded_error = e.what();
        if (journal->tail_clean()) {
            // The failed append rolled back cleanly: everything on disk is
            // intact records, so best-effort seal the durable prefix.
            try {
                journal->close();
            } catch (const std::exception&) {  // NOLINT(bugprone-empty-catch)
                journal->abandon();
            }
        } else {
            // The tail may hold a torn frame; leave it .open for scrub.
            journal->abandon();
        }
        if (metrics_ != nullptr) {
            metrics_->counter("campaign.journal.records_appended")
                .add(journal->records_appended());
            metrics_->counter("campaign.journal.segments_sealed")
                .add(journal->segments_sealed());
            metrics_->counter("campaign.journal.degraded").add(1);
            metrics_->counter(std::string{"campaign.journal.io_errors."} +
                              util::to_cstring(e.error_class()))
                .add(1);
        }
        journal.reset();
        if (trace != nullptr) {
            trace->instant(TraceClock::wall, wall_merge_lane, "journal degraded",
                           trace->wall_now_ns(), {TraceArg::str("error", e.what())});
        }
    };

    const auto merge_chunk = [&](std::size_t c) {
        const std::int64_t merge_start_ns = trace != nullptr ? trace->wall_now_ns() : 0;
        ChunkResult result = std::move(chunks[c % window]);
        chunks[c % window] = ChunkResult{};  // release the slot's storage
        // Journal FIRST, then merge: a crash in between costs nothing (the
        // record is durable; resume re-drives the merge from it), while the
        // opposite order could emit sink output that a resume then repeats.
        if (journal != nullptr) {
            ChunkRecord record;
            record.chunk_index = c + chunks_replayed;
            record.scans = std::move(result.scans);
            if (metrics_ != nullptr && result.metrics != nullptr) {
                record.telemetry_snapshot = telemetry::snapshot(*result.metrics);
            }
            const std::int64_t append_start_ns =
                trace != nullptr ? trace->wall_now_ns() : 0;
            try {
                journal->append_chunk(record);
            } catch (const JournalIoError& e) {
                degrade_journal(e);
            }
            if (trace != nullptr && journal != nullptr) {
                trace->complete(
                    TraceClock::wall, wall_merge_lane, "journal append",
                    append_start_ns, trace->wall_now_ns() - append_start_ns,
                    {TraceArg::num("chunk", static_cast<std::uint64_t>(
                                                record.chunk_index)),
                     TraceArg::num("open_bytes", journal->open_bytes())});
            }
            result.scans = std::move(record.scans);
        }
        if (trace != nullptr && result.metrics != nullptr) {
            // Chunk-local efficiency, sampled from the chunk's private
            // registry before it merges away: datagram-pool hit rate and the
            // simulator event-queue high-water mark. Read-only probes — the
            // merged registry must not grow instruments just because a
            // recorder is attached.
            const auto* hits = result.metrics->find_counter("bytes.pool.hits");
            const auto* acquires = result.metrics->find_counter("bytes.pool.acquires");
            if (hits != nullptr && acquires != nullptr && acquires->value() > 0) {
                trace->counter(TraceClock::wall, "pool hit rate",
                               trace->wall_now_ns(),
                               static_cast<double>(hits->value()) /
                                   static_cast<double>(acquires->value()));
            }
            if (const auto* hwm =
                    result.metrics->find_gauge("netsim.sim.queue_depth_hwm");
                hwm != nullptr && hwm->has_value()) {
                trace->counter(TraceClock::wall, "event queue hwm",
                               trace->wall_now_ns(), hwm->value());
            }
        }
        if (metrics_ != nullptr && result.metrics != nullptr) {
            metrics_->merge_from(*result.metrics);
        }
        trace_chunk(c + chunks_replayed, result.scans, /*replayed=*/false,
                    /*quarantined=*/false);
        for (std::size_t j = 0; j < result.scans.size(); ++j) {
            merge_scan(base_domain + rest_plan.chunk_begin(c) + j,
                       std::move(result.scans[j]));
        }
        if (trace != nullptr) {
            const std::int64_t end_ns = trace->wall_now_ns();
            const double queued_ms =
                static_cast<double>(merge_start_ns - scan_done_ns[c % window]) / 1e6;
            trace->complete(TraceClock::wall, wall_merge_lane, "merge chunk",
                            merge_start_ns, end_ns - merge_start_ns,
                            {TraceArg::num("chunk", static_cast<std::uint64_t>(
                                                        c + chunks_replayed)),
                             TraceArg::num("queued_ms", queued_ms)});
            const double elapsed = wall_elapsed();
            if (elapsed > 0.0) {
                trace->counter(TraceClock::wall, "domains_per_sec", end_ns,
                               static_cast<double>(stats.domains_scanned) / elapsed);
            }
        }
    };

    const auto quarantine_chunk = [&](const ChunkFailure& failure) {
        // The chunk crashed repeatedly even after restarts: give its domains
        // placeholder error scans and complete the campaign degraded rather
        // than losing the sweep.
        const std::size_t begin = base_domain + rest_plan.chunk_begin(failure.chunk);
        const std::size_t end = base_domain + rest_plan.chunk_end(failure.chunk);
        std::vector<DomainScan> placeholders;
        placeholders.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            DomainScan scan;
            scan.domain_id = static_cast<std::uint32_t>(i);
            scan.error = "chunk quarantined: " + failure.error;
            placeholders.push_back(std::move(scan));
        }
        if (journal != nullptr) {
            ChunkRecord record;
            record.chunk_index = failure.chunk + chunks_replayed;
            record.quarantined = true;
            record.quarantine_error = failure.error;
            record.scans = std::move(placeholders);
            try {
                journal->append_chunk(record);
            } catch (const JournalIoError& e) {
                degrade_journal(e);
            }
            placeholders = std::move(record.scans);
        }
        ++stats.chunks_quarantined;
        stats.domains_quarantined += end - begin;
        if (metrics_ != nullptr) {
            metrics_->counter("campaign.quarantined_chunks").add(1);
            metrics_->counter("campaign.quarantined_domains").add(end - begin);
        }
        trace_chunk(failure.chunk + chunks_replayed, placeholders, /*replayed=*/false,
                    /*quarantined=*/true);
        if (trace != nullptr) {
            trace->instant(
                TraceClock::wall, wall_merge_lane, "quarantine", trace->wall_now_ns(),
                {TraceArg::num("chunk",
                               static_cast<std::uint64_t>(failure.chunk +
                                                          chunks_replayed)),
                 TraceArg::num("attempts", static_cast<std::uint64_t>(failure.attempts)),
                 TraceArg::str("error", failure.error)});
        }
        for (std::size_t j = 0; j < placeholders.size(); ++j) {
            merge_scan(begin + j, std::move(placeholders[j]));
        }
    };

    SupervisorConfig supervisor;
    supervisor.restart = options_.worker_restart;
    supervisor.seed = options_.seed;
    const SupervisionReport report =
        run_supervised(shard, rest_plan, supervisor, scan_chunk, merge_chunk,
                       quarantine_chunk);
    stats.worker_restarts = report.restarts;
    // restarted_workers = thread-level scan re-executions (run_supervised);
    // its sibling campaign.restarted_procs counts worker PROCESS re-forks
    // and is published by scanner::run_procs — keeping the two attribution
    // paths distinct for the progress reporter and the flight recorder.
    if (metrics_ != nullptr && report.restarts > 0) {
        metrics_->counter("campaign.restarted_workers").add(report.restarts);
    }

    if (journal != nullptr) {
        try {
            journal->close();
        } catch (const JournalIoError& e) {
            degrade_journal(e);  // resets `journal`
        }
    }
    if (journal != nullptr) {
        stats.journal_records_appended = journal->records_appended();
        stats.journal_open_bytes = 0;  // everything sealed and durable
        if (metrics_ != nullptr) {
            metrics_->counter("campaign.journal.records_appended")
                .add(journal->records_appended());
            metrics_->counter("campaign.journal.segments_sealed")
                .add(journal->segments_sealed());
        }
    }

    // Wall clock is aggregated exactly once, here on the merge thread —
    // never accumulated per domain, which would double-count overlapping
    // worker time under sharding.
    stats.wall_seconds = wall_elapsed();
    if (metrics_ != nullptr) {
        metrics_->gauge("scanner.domains_per_sec").set(stats.domains_per_sec());
        metrics_->gauge("scanner.quic_ok_rate").set(stats.quic_ok_rate());
        if (resource_probe) resource_probe->publish(*metrics_);
        if (trace != nullptr) trace->publish_metrics(*metrics_);
    }
    return stats;
}

}  // namespace spinscope::scanner
