#include "scanner/journal.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "util/atomic_file.hpp"
#include "util/checksum.hpp"

namespace spinscope::scanner {

namespace {

constexpr const char* kSegmentPrefix = "segment-";
constexpr const char* kSegmentSuffix = ".jsonl";
constexpr const char* kOpenSuffix = ".open";
constexpr std::string_view kFrameMarker = "#rec ";

[[nodiscard]] std::filesystem::path sealed_path(const std::filesystem::path& dir,
                                                std::size_t index) {
    char name[48];
    std::snprintf(name, sizeof name, "%s%05zu%s", kSegmentPrefix, index, kSegmentSuffix);
    return dir / name;
}

[[nodiscard]] std::filesystem::path open_path(const std::filesystem::path& dir,
                                              std::size_t index) {
    std::filesystem::path path = sealed_path(dir, index);
    path += kOpenSuffix;
    return path;
}

// ---------------------------------------------------------------------------
// Token encoding: journal scalar strings (error messages, response headers)
// are percent-encoded into single whitespace-free tokens so that every
// payload line splits unambiguously on spaces. The empty string encodes to
// the empty token, which the positional key=value parser accepts.

[[nodiscard]] std::string encode_token(std::string_view s) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const auto b = static_cast<unsigned char>(c);
        if (b > 0x20 && b < 0x7f && b != '%') {
            out.push_back(c);
        } else {
            out.push_back('%');
            out.push_back(kHex[b >> 4]);
            out.push_back(kHex[b & 0xf]);
        }
    }
    return out;
}

[[nodiscard]] int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

[[nodiscard]] std::optional<std::string> decode_token(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out.push_back(s[i]);
            continue;
        }
        if (i + 2 >= s.size()) return std::nullopt;
        const int hi = hex_digit(s[i + 1]);
        const int lo = hex_digit(s[i + 2]);
        if (hi < 0 || lo < 0) return std::nullopt;
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Payload cursor: line- and raw-byte-oriented reads over one record payload.

struct Cursor {
    std::string_view data;
    std::size_t pos = 0;

    [[nodiscard]] bool done() const noexcept { return pos >= data.size(); }

    /// Next line without its '\n'; nullopt when no full line remains.
    [[nodiscard]] std::optional<std::string_view> line() {
        if (done()) return std::nullopt;
        const auto nl = data.find('\n', pos);
        if (nl == std::string_view::npos) return std::nullopt;
        std::string_view out = data.substr(pos, nl - pos);
        pos = nl + 1;
        return out;
    }

    /// Next `n` raw bytes; nullopt when fewer remain.
    [[nodiscard]] std::optional<std::string_view> raw(std::size_t n) {
        if (data.size() - pos < n) return std::nullopt;
        std::string_view out = data.substr(pos, n);
        pos += n;
        return out;
    }
};

[[nodiscard]] std::vector<std::string_view> split_tokens(std::string_view line) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    while (start <= line.size()) {
        const auto space = line.find(' ', start);
        if (space == std::string_view::npos) {
            out.push_back(line.substr(start));
            break;
        }
        out.push_back(line.substr(start, space - start));
        start = space + 1;
    }
    return out;
}

template <typename T>
[[nodiscard]] bool parse_number(std::string_view token, T& out) {
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
    return ec == std::errc{} && ptr == token.data() + token.size();
}

/// Strips "key=" and parses the remainder as a number.
template <typename T>
[[nodiscard]] bool parse_kv(std::string_view token, std::string_view key, T& out) {
    if (token.size() < key.size() + 1 || token.substr(0, key.size()) != key ||
        token[key.size()] != '=') {
        return false;
    }
    return parse_number(token.substr(key.size() + 1), out);
}

[[nodiscard]] bool parse_kv_bool(std::string_view token, std::string_view key, bool& out) {
    int v = 0;
    if (!parse_kv(token, key, v) || (v != 0 && v != 1)) return false;
    out = v == 1;
    return true;
}

[[nodiscard]] std::optional<std::string> parse_kv_token(std::string_view token,
                                                        std::string_view key) {
    if (token.size() < key.size() + 1 || token.substr(0, key.size()) != key ||
        token[key.size()] != '=') {
        return std::nullopt;
    }
    return decode_token(token.substr(key.size() + 1));
}

void append_kv(std::string& out, std::string_view key, std::uint64_t v) {
    out += ' ';
    out += key;
    out += '=';
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    out += buf;
}

void append_kv_signed(std::string& out, std::string_view key, long long v) {
    out += ' ';
    out += key;
    out += '=';
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", v);
    out += buf;
}

void append_length_block(std::string& out, std::string_view keyword, std::string_view bytes) {
    out += keyword;
    out += ' ';
    char buf[24];
    std::snprintf(buf, sizeof buf, "%zu", bytes.size());
    out += buf;
    out += '\n';
    out += bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// Record payloads

std::string serialize_header(const CampaignHeader& header) {
    std::string out = "campaign";
    append_kv(out, "seed", header.seed);
    append_kv_signed(out, "week", header.week);
    append_kv(out, "ipv6", header.ipv6 ? 1 : 0);
    append_kv(out, "chunk_domains", header.chunk_domains);
    append_kv(out, "domain_count", header.domain_count);
    append_kv(out, "telemetry", header.has_telemetry ? 1 : 0);
    out += '\n';
    return out;
}

std::optional<CampaignHeader> parse_header(std::string_view payload) {
    Cursor cur{payload};
    const auto line = cur.line();
    if (!line || !cur.done()) return std::nullopt;
    const auto tok = split_tokens(*line);
    CampaignHeader header;
    long long week = 0;
    std::uint64_t chunk_domains = 0;
    std::uint64_t domain_count = 0;
    if (tok.size() != 7 || tok[0] != "campaign" || !parse_kv(tok[1], "seed", header.seed) ||
        !parse_kv(tok[2], "week", week) || !parse_kv_bool(tok[3], "ipv6", header.ipv6) ||
        !parse_kv(tok[4], "chunk_domains", chunk_domains) ||
        !parse_kv(tok[5], "domain_count", domain_count) ||
        !parse_kv_bool(tok[6], "telemetry", header.has_telemetry)) {
        return std::nullopt;
    }
    header.week = static_cast<int>(week);
    header.chunk_domains = static_cast<std::size_t>(chunk_domains);
    header.domain_count = static_cast<std::size_t>(domain_count);
    return header;
}

std::string serialize_chunk_record(const ChunkRecord& record) {
    std::string out = "chunk";
    append_kv(out, "index", record.chunk_index);
    append_kv(out, "quarantined", record.quarantined ? 1 : 0);
    out += " error=";
    out += encode_token(record.quarantine_error);
    append_kv(out, "domains", record.scans.size());
    out += '\n';

    for (const auto& scan : record.scans) {
        out += "domain";
        append_kv(out, "id", scan.domain_id);
        append_kv(out, "resolved", scan.resolved ? 1 : 0);
        append_kv(out, "redirects", scan.redirects_followed);
        append_kv(out, "retries", scan.retries);
        append_kv(out, "recovered", scan.recovered_by_retry ? 1 : 0);
        append_kv(out, "attempts_truncated", scan.attempts_truncated);
        append_kv_signed(out, "sim_ns", scan.sim_time.count_nanos());
        out += " error=";
        out += encode_token(scan.error);
        append_kv(out, "response", scan.final_response ? 1 : 0);
        const ResponseInfo response = scan.final_response.value_or(ResponseInfo{});
        append_kv_signed(out, "status", response.status);
        append_kv(out, "body", response.body_bytes);
        out += " location=";
        out += encode_token(response.location);
        out += " server=";
        out += encode_token(response.server_name);
        append_kv(out, "attempts", scan.attempts.size());
        append_kv(out, "connections", scan.connections.size());
        out += '\n';

        for (const auto& attempt : scan.attempts) {
            out += "attempt";
            append_kv_signed(out, "hop", attempt.redirect_hop);
            append_kv_signed(out, "retry", attempt.retry);
            append_kv(out, "outcome", static_cast<std::uint64_t>(attempt.outcome));
            append_kv_signed(out, "backoff_ns", attempt.backoff.count_nanos());
            append_kv(out, "fault", static_cast<std::uint64_t>(attempt.server_fault));
            out += '\n';
        }
        for (const auto& trace : scan.connections) {
            append_length_block(out, "trace", qlog::to_jsonl(trace));
        }
    }
    append_length_block(out, "telemetry", record.telemetry_snapshot);
    return out;
}

namespace {

/// Parses one `<keyword> <nbytes>` line followed by that many raw bytes.
[[nodiscard]] std::optional<std::string_view> parse_length_block(Cursor& cur,
                                                                 std::string_view keyword) {
    const auto line = cur.line();
    if (!line) return std::nullopt;
    const auto tok = split_tokens(*line);
    std::uint64_t n = 0;
    if (tok.size() != 2 || tok[0] != keyword || !parse_number(tok[1], n)) {
        return std::nullopt;
    }
    return cur.raw(static_cast<std::size_t>(n));
}

}  // namespace

std::optional<ChunkRecord> parse_chunk_record(std::string_view payload) {
    Cursor cur{payload};
    const auto chunk_line = cur.line();
    if (!chunk_line) return std::nullopt;
    const auto chunk_tok = split_tokens(*chunk_line);
    ChunkRecord record;
    std::uint64_t index = 0;
    std::uint64_t domain_count = 0;
    if (chunk_tok.size() != 5 || chunk_tok[0] != "chunk" ||
        !parse_kv(chunk_tok[1], "index", index) ||
        !parse_kv_bool(chunk_tok[2], "quarantined", record.quarantined)) {
        return std::nullopt;
    }
    const auto quarantine_error = parse_kv_token(chunk_tok[3], "error");
    if (!quarantine_error || !parse_kv(chunk_tok[4], "domains", domain_count)) {
        return std::nullopt;
    }
    record.chunk_index = static_cast<std::size_t>(index);
    record.quarantine_error = *quarantine_error;

    record.scans.reserve(static_cast<std::size_t>(domain_count));
    for (std::uint64_t d = 0; d < domain_count; ++d) {
        const auto domain_line = cur.line();
        if (!domain_line) return std::nullopt;
        const auto tok = split_tokens(*domain_line);
        if (tok.size() != 16 || tok[0] != "domain") return std::nullopt;

        DomainScan scan;
        std::uint64_t attempt_count = 0;
        std::uint64_t connection_count = 0;
        bool has_response = false;
        long long status = 0;
        std::uint64_t body_bytes = 0;
        long long sim_ns = 0;
        if (!parse_kv(tok[1], "id", scan.domain_id) ||
            !parse_kv_bool(tok[2], "resolved", scan.resolved) ||
            !parse_kv(tok[3], "redirects", scan.redirects_followed) ||
            !parse_kv(tok[4], "retries", scan.retries) ||
            !parse_kv_bool(tok[5], "recovered", scan.recovered_by_retry) ||
            !parse_kv(tok[6], "attempts_truncated", scan.attempts_truncated) ||
            !parse_kv(tok[7], "sim_ns", sim_ns)) {
            return std::nullopt;
        }
        const auto error = parse_kv_token(tok[8], "error");
        if (!error || !parse_kv_bool(tok[9], "response", has_response) ||
            !parse_kv(tok[10], "status", status) || !parse_kv(tok[11], "body", body_bytes)) {
            return std::nullopt;
        }
        const auto location = parse_kv_token(tok[12], "location");
        const auto server = parse_kv_token(tok[13], "server");
        if (!location || !server || !parse_kv(tok[14], "attempts", attempt_count) ||
            !parse_kv(tok[15], "connections", connection_count)) {
            return std::nullopt;
        }
        scan.sim_time = util::Duration::nanos(sim_ns);
        scan.error = *error;
        if (has_response) {
            ResponseInfo response;
            response.status = static_cast<int>(status);
            response.body_bytes = static_cast<std::size_t>(body_bytes);
            response.location = *location;
            response.server_name = *server;
            scan.final_response = response;
        }

        scan.attempts.reserve(static_cast<std::size_t>(attempt_count));
        for (std::uint64_t a = 0; a < attempt_count; ++a) {
            const auto attempt_line = cur.line();
            if (!attempt_line) return std::nullopt;
            const auto atok = split_tokens(*attempt_line);
            if (atok.size() != 6 || atok[0] != "attempt") return std::nullopt;
            DomainScan::AttemptRecord attempt;
            long long hop = 0;
            long long retry = 0;
            std::uint64_t outcome = 0;
            long long backoff_ns = 0;
            std::uint64_t fault = 0;
            if (!parse_kv(atok[1], "hop", hop) || !parse_kv(atok[2], "retry", retry) ||
                !parse_kv(atok[3], "outcome", outcome) ||
                !parse_kv(atok[4], "backoff_ns", backoff_ns) ||
                !parse_kv(atok[5], "fault", fault)) {
                return std::nullopt;
            }
            if (outcome >= qlog::kConnectionOutcomeCount ||
                fault >= faults::kServerFaultModeCount) {
                return std::nullopt;
            }
            attempt.redirect_hop = static_cast<int>(hop);
            attempt.retry = static_cast<int>(retry);
            attempt.outcome = static_cast<qlog::ConnectionOutcome>(outcome);
            attempt.backoff = util::Duration::nanos(backoff_ns);
            attempt.server_fault = static_cast<faults::ServerFaultMode>(fault);
            scan.attempts.push_back(attempt);
        }

        scan.connections.reserve(static_cast<std::size_t>(connection_count));
        for (std::uint64_t c = 0; c < connection_count; ++c) {
            const auto raw = parse_length_block(cur, "trace");
            if (!raw) return std::nullopt;
            auto trace = qlog::parse_jsonl(std::string{*raw});
            if (!trace) return std::nullopt;
            scan.connections.push_back(std::move(*trace));
        }

        record.scans.push_back(std::move(scan));
    }

    const auto telemetry = parse_length_block(cur, "telemetry");
    if (!telemetry || !cur.done()) return std::nullopt;
    record.telemetry_snapshot = std::string{*telemetry};
    return record;
}

// ---------------------------------------------------------------------------
// Record framing

std::string frame_record(const std::string& payload) {
    char head[48];
    std::snprintf(head, sizeof head, "#rec %zu %08x\n", payload.size(),
                  util::crc32(payload));
    return head + payload;
}

namespace {

/// One parsed frame: payload view plus the offset just past the frame.
struct Frame {
    std::string_view payload;
    std::size_t end = 0;
};

[[nodiscard]] std::optional<Frame> next_frame(std::string_view content, std::size_t pos) {
    if (content.substr(pos, kFrameMarker.size()) != kFrameMarker) return std::nullopt;
    const auto nl = content.find('\n', pos);
    if (nl == std::string_view::npos) return std::nullopt;
    const auto head = split_tokens(content.substr(pos, nl - pos));
    std::uint64_t len = 0;
    if (head.size() != 3 || !parse_number(head[1], len)) return std::nullopt;
    std::uint32_t crc = 0;
    {
        const auto tok = head[2];
        const auto [ptr, ec] =
            std::from_chars(tok.data(), tok.data() + tok.size(), crc, 16);
        if (ec != std::errc{} || ptr != tok.data() + tok.size()) return std::nullopt;
    }
    const std::size_t body_start = nl + 1;
    if (content.size() - body_start < len) return std::nullopt;
    Frame frame;
    frame.payload = content.substr(body_start, static_cast<std::size_t>(len));
    frame.end = body_start + static_cast<std::size_t>(len);
    if (util::crc32(frame.payload) != crc) return std::nullopt;
    return frame;
}

struct SegmentFile {
    std::size_t index = 0;
    std::filesystem::path path;
    bool open = false;
};

[[nodiscard]] std::vector<SegmentFile> list_segments(const std::filesystem::path& dir) {
    std::vector<SegmentFile> out;
    if (!std::filesystem::is_directory(dir)) return out;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const auto name = entry.path().filename().string();
        if (name.rfind(kSegmentPrefix, 0) != 0) continue;
        SegmentFile seg;
        seg.path = entry.path();
        std::string_view rest = std::string_view{name}.substr(std::strlen(kSegmentPrefix));
        if (rest.ends_with(kOpenSuffix)) {
            seg.open = true;
            rest.remove_suffix(std::strlen(kOpenSuffix));
        }
        if (!rest.ends_with(kSegmentSuffix)) continue;
        rest.remove_suffix(std::strlen(kSegmentSuffix));
        std::uint64_t index = 0;
        if (!parse_number(rest, index)) continue;
        seg.index = static_cast<std::size_t>(index);
        out.push_back(std::move(seg));
    }
    std::sort(out.begin(), out.end(), [](const SegmentFile& a, const SegmentFile& b) {
        // Sealed before open at the same index (sealed is the later, durable
        // state; a leftover open twin is a crash artifact to ignore).
        return a.index != b.index ? a.index < b.index : !a.open && b.open;
    });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const SegmentFile& a, const SegmentFile& b) {
                              return a.index == b.index;
                          }),
              out.end());
    return out;
}

[[nodiscard]] std::string read_whole_file(const std::filesystem::path& path) {
    std::ifstream in{path, std::ios::binary};
    std::string content;
    if (!in) return content;
    content.assign(std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{});
    return content;
}

/// Shared record walk for replay_journal and JournalWriter attach: parses
/// intact records, streams each chunk to `on_chunk` (when set), and reports
/// where (if anywhere) the journal tears. Only one segment's bytes plus one
/// parsed record are resident at a time — the walk itself is fixed-RSS no
/// matter how long the journal is.
struct Walk {
    ReplayStreamResult replay;
    bool torn = false;
    std::size_t tear_segment = 0;  ///< index into `segments` when torn
    std::uint64_t tear_offset = 0;
    std::vector<SegmentFile> segments;
};

[[nodiscard]] Walk walk_journal(const std::filesystem::path& dir,
                                const std::function<void(const CampaignHeader&)>& on_header,
                                const std::function<void(ChunkRecord&&)>& on_chunk) {
    Walk walk;
    walk.segments = list_segments(dir);
    bool expect_header = true;
    for (std::size_t s = 0; s < walk.segments.size(); ++s) {
        const std::string content = read_whole_file(walk.segments[s].path);
        std::size_t pos = 0;
        while (pos < content.size()) {
            const auto frame = next_frame(content, pos);
            bool ok = frame.has_value();
            if (ok) {
                if (expect_header) {
                    const auto header = parse_header(frame->payload);
                    if (header) {
                        walk.replay.header = *header;
                        walk.replay.has_header = true;
                        expect_header = false;
                        if (on_header) on_header(walk.replay.header);
                    } else {
                        ok = false;
                    }
                } else {
                    auto record = parse_chunk_record(frame->payload);
                    // Appends happen in ascending chunk order on the merge
                    // thread; anything else is corruption.
                    if (record && record->chunk_index == walk.replay.chunks_replayed) {
                        ++walk.replay.chunks_replayed;
                        if (on_chunk) on_chunk(std::move(*record));
                    } else {
                        ok = false;
                    }
                }
            }
            if (!ok) {
                walk.torn = true;
                walk.tear_segment = s;
                walk.tear_offset = pos;
                walk.replay.torn_bytes_discarded += content.size() - pos;
                for (std::size_t later = s + 1; later < walk.segments.size(); ++later) {
                    walk.replay.torn_bytes_discarded +=
                        std::filesystem::file_size(walk.segments[later].path);
                }
                return walk;
            }
            pos = frame->end;
        }
    }
    return walk;
}

}  // namespace

ReplayResult replay_journal(const std::filesystem::path& dir) {
    ReplayResult out;
    const Walk walk = walk_journal(
        dir, nullptr,
        [&out](ChunkRecord&& record) { out.chunks.push_back(std::move(record)); });
    out.has_header = walk.replay.has_header;
    out.header = walk.replay.header;
    out.torn_bytes_discarded = walk.replay.torn_bytes_discarded;
    return out;
}

ReplayStreamResult replay_journal(const std::filesystem::path& dir,
                                  const std::function<void(const CampaignHeader&)>& on_header,
                                  const std::function<void(ChunkRecord&&)>& on_chunk) {
    return walk_journal(dir, on_header, on_chunk).replay;
}

// ---------------------------------------------------------------------------
// JournalWriter

JournalWriter::JournalWriter(std::filesystem::path dir, const CampaignHeader& header,
                             Mode mode, JournalOptions options)
    : dir_{std::move(dir)}, options_{options} {
    if (options_.segment_bytes == 0) {
        throw std::invalid_argument("journal: segment_bytes must be >= 1");
    }
    std::filesystem::create_directories(dir_);

    const auto start_fresh = [&] {
        for (const auto& seg : list_segments(dir_)) std::filesystem::remove(seg.path);
        // A leftover open twin of a sealed segment is dropped by
        // list_segments' dedup; sweep it explicitly too.
        for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
            const auto name = entry.path().filename().string();
            if (name.rfind(kSegmentPrefix, 0) == 0) std::filesystem::remove(entry.path());
        }
        open_segment(0, /*truncate=*/true);
        append_record(serialize_header(header));
    };

    if (mode == Mode::fresh) {
        start_fresh();
        return;
    }

    // Attach only needs the header and the tear point; chunk records are
    // validated during the walk but not retained (nullptr sinks).
    const Walk walk = walk_journal(dir_, nullptr, nullptr);
    if (!walk.replay.has_header) {
        // Nothing intact (missing, empty, or torn before the first record):
        // attach degenerates to a fresh journal.
        start_fresh();
        return;
    }
    if (!(walk.replay.header == header)) {
        throw std::invalid_argument(
            "journal: attach header mismatch — this journal belongs to a different "
            "campaign (seed/week/family/chunking/population differ)");
    }

    if (walk.torn) {
        // Atomic tail repair: the intact prefix of the tear segment is
        // published under the segment's OPEN name via write-temp + rename,
        // then every later segment (pure torn bytes) is dropped.
        const SegmentFile& tear = walk.segments[walk.tear_segment];
        const std::string content = read_whole_file(tear.path);
        const std::string prefix =
            content.substr(0, static_cast<std::size_t>(walk.tear_offset));
        const auto target = open_path(dir_, tear.index);
        if (!util::write_file_atomic(target, prefix)) {
            throw std::runtime_error{"journal: cannot repair torn tail in " +
                                     dir_.string()};
        }
        if (!tear.open) std::filesystem::remove(tear.path);
        for (std::size_t later = walk.tear_segment + 1; later < walk.segments.size();
             ++later) {
            std::filesystem::remove(walk.segments[later].path);
        }
        open_segment(tear.index, /*truncate=*/false);
        current_bytes_ = prefix.size();
        return;
    }

    const SegmentFile& last = walk.segments.back();
    if (last.open) {
        open_segment(last.index, /*truncate=*/false);
        current_bytes_ = static_cast<std::size_t>(std::filesystem::file_size(last.path));
    } else {
        open_segment(last.index + 1, /*truncate=*/true);
    }
}

JournalWriter::~JournalWriter() {
    try {
        close();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
}

void JournalWriter::open_segment(std::size_t index, bool truncate) {
    out_.open(open_path(dir_, index),
              std::ios::binary | (truncate ? std::ios::trunc : std::ios::app));
    if (!out_) {
        throw std::runtime_error{"journal: cannot open segment in " + dir_.string()};
    }
    segment_index_ = index;
    current_bytes_ = 0;
}

void JournalWriter::seal_current_segment() {
    if (!out_.is_open()) return;
    out_.flush();
    const bool write_failed = !out_;
    out_.close();
    if (write_failed) {
        throw std::runtime_error{"journal: write failure while sealing segment in " +
                                 dir_.string()};
    }
    const auto from = open_path(dir_, segment_index_);
    (void)util::fsync_file(from);
    if (!util::rename_durable(from, sealed_path(dir_, segment_index_))) {
        throw std::runtime_error{"journal: cannot seal segment in " + dir_.string()};
    }
    ++segments_sealed_;
}

void JournalWriter::append_record(const std::string& payload) {
    if (!out_.is_open()) open_segment(segment_index_, /*truncate=*/false);
    const std::string framed = frame_record(payload);
    out_ << framed;
    // One flush per record: a crash tears at most the record being written.
    out_.flush();
    if (!out_) {
        throw std::runtime_error{"journal: append failed in " + dir_.string()};
    }
    current_bytes_ += framed.size();
    ++records_appended_;
    if (current_bytes_ >= options_.segment_bytes) {
        seal_current_segment();
        open_segment(segment_index_ + 1, /*truncate=*/true);
    }
}

void JournalWriter::append_chunk(const ChunkRecord& record) {
    append_record(serialize_chunk_record(record));
}

void JournalWriter::close() { seal_current_segment(); }

// ---------------------------------------------------------------------------
// Journal-directory lock

std::filesystem::path journal_lock_path(const std::filesystem::path& dir) {
    return dir / "journal.lock";
}

// ---------------------------------------------------------------------------
// Map-layout journal

namespace {

constexpr const char* kMapHeaderName = "header.rec";
constexpr const char* kMapChunkPrefix = "chunk-";
constexpr const char* kMapChunkSuffix = ".rec";
constexpr const char* kLeaseSuffix = ".lease";

[[nodiscard]] std::filesystem::path map_name(const std::filesystem::path& dir,
                                             std::size_t index, const char* suffix) {
    char name[48];
    std::snprintf(name, sizeof name, "%s%05zu%s", kMapChunkPrefix, index, suffix);
    return dir / name;
}

/// Payload of a single-record framed file; nullopt when the file is absent,
/// torn, fails CRC, or has trailing bytes past the frame.
[[nodiscard]] std::optional<std::string> read_framed_file(
    const std::filesystem::path& path) {
    if (!std::filesystem::is_regular_file(path)) return std::nullopt;
    const std::string content = read_whole_file(path);
    const auto frame = next_frame(content, 0);
    if (!frame || frame->end != content.size()) return std::nullopt;
    return std::string{frame->payload};
}

/// True for header.rec, chunk-*.rec and chunk-*.lease filenames.
[[nodiscard]] bool is_map_file(const std::string& name) {
    if (name == kMapHeaderName) return true;
    if (name.rfind(kMapChunkPrefix, 0) != 0) return false;
    const std::string_view rest = std::string_view{name}.substr(std::strlen(kMapChunkPrefix));
    return rest.ends_with(kMapChunkSuffix) || rest.ends_with(kLeaseSuffix);
}

}  // namespace

std::filesystem::path map_header_path(const std::filesystem::path& dir) {
    return dir / kMapHeaderName;
}

std::filesystem::path map_chunk_path(const std::filesystem::path& dir,
                                     std::size_t chunk_index) {
    return map_name(dir, chunk_index, kMapChunkSuffix);
}

std::filesystem::path lease_path(const std::filesystem::path& dir,
                                 std::size_t chunk_index) {
    return map_name(dir, chunk_index, kLeaseSuffix);
}

void init_map_journal(const std::filesystem::path& dir, const CampaignHeader& header,
                      bool wipe) {
    std::filesystem::create_directories(dir);
    // Persist the directory's own existence: a power cut right after mkdir
    // must not orphan every file published into it.
    (void)util::fsync_dir(dir.has_parent_path() ? dir.parent_path()
                                                : std::filesystem::path{"."});
    if (wipe) {
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
            if (is_map_file(entry.path().filename().string())) {
                std::filesystem::remove(entry.path());
            }
        }
    } else {
        const auto existing = read_framed_file(map_header_path(dir));
        if (existing) {
            const auto parsed = parse_header(*existing);
            if (parsed && !(*parsed == header)) {
                throw std::invalid_argument(
                    "journal: map header mismatch — this journal belongs to a "
                    "different campaign (seed/week/family/chunking/population "
                    "differ)");
            }
        }
    }
    if (!util::write_file_atomic(map_header_path(dir),
                                 frame_record(serialize_header(header)))) {
        throw std::runtime_error{"journal: cannot write map header in " + dir.string()};
    }
}

bool write_map_chunk(const std::filesystem::path& dir, const ChunkRecord& record) {
    return util::write_file_atomic(map_chunk_path(dir, record.chunk_index),
                                   frame_record(serialize_chunk_record(record)));
}

std::optional<ChunkRecord> read_map_chunk(const std::filesystem::path& dir,
                                          std::size_t chunk_index) {
    const auto payload = read_framed_file(map_chunk_path(dir, chunk_index));
    if (!payload) return std::nullopt;
    auto record = parse_chunk_record(*payload);
    if (!record || record->chunk_index != chunk_index) return std::nullopt;
    return record;
}

std::vector<std::size_t> list_map_chunks(const std::filesystem::path& dir) {
    std::vector<std::size_t> indices;
    if (!std::filesystem::is_directory(dir)) return indices;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const auto name = entry.path().filename().string();
        if (name.rfind(kMapChunkPrefix, 0) != 0) continue;
        std::string_view rest = std::string_view{name}.substr(std::strlen(kMapChunkPrefix));
        if (!rest.ends_with(kMapChunkSuffix)) continue;
        rest.remove_suffix(std::strlen(kMapChunkSuffix));
        std::uint64_t index = 0;
        if (!parse_number(rest, index)) continue;
        indices.push_back(static_cast<std::size_t>(index));
    }
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
    return indices;
}

MapReplayResult read_map_journal(const std::filesystem::path& dir) {
    MapReplayResult out;
    if (!std::filesystem::is_directory(dir)) return out;
    if (const auto payload = read_framed_file(map_header_path(dir))) {
        if (const auto header = parse_header(*payload)) {
            out.header = *header;
            out.has_header = true;
        }
    }
    for (const std::size_t index : list_map_chunks(dir)) {
        auto record = read_map_chunk(dir, index);
        if (record) {
            out.chunks.push_back(std::move(*record));
        } else {
            ++out.corrupt_chunks;
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Chunk leases

std::string serialize_lease(const ChunkLease& lease) {
    std::string out = "lease";
    append_kv(out, "chunk", lease.chunk_index);
    append_kv_signed(out, "pid", lease.pid);
    append_kv(out, "token", lease.token);
    append_kv(out, "attempts", lease.attempts);
    out += '\n';
    return out;
}

std::optional<ChunkLease> parse_lease(std::string_view payload) {
    Cursor cur{payload};
    const auto line = cur.line();
    if (!line || !cur.done()) return std::nullopt;
    const auto tok = split_tokens(*line);
    ChunkLease lease;
    std::uint64_t chunk = 0;
    long long pid = 0;
    if (tok.size() != 5 || tok[0] != "lease" || !parse_kv(tok[1], "chunk", chunk) ||
        !parse_kv(tok[2], "pid", pid) || !parse_kv(tok[3], "token", lease.token) ||
        !parse_kv(tok[4], "attempts", lease.attempts)) {
        return std::nullopt;
    }
    lease.chunk_index = static_cast<std::size_t>(chunk);
    lease.pid = static_cast<long>(pid);
    return lease;
}

bool claim_lease(const std::filesystem::path& dir, const ChunkLease& lease) {
    return util::create_file_exclusive(lease_path(dir, lease.chunk_index),
                                       serialize_lease(lease));
}

std::optional<ChunkLease> read_lease(const std::filesystem::path& dir,
                                     std::size_t chunk_index) {
    const auto path = lease_path(dir, chunk_index);
    if (!std::filesystem::is_regular_file(path)) return std::nullopt;
    auto lease = parse_lease(read_whole_file(path));
    if (!lease || lease->chunk_index != chunk_index) return std::nullopt;
    return lease;
}

bool release_lease(const std::filesystem::path& dir, std::size_t chunk_index,
                   std::uint64_t token) {
    const auto path = lease_path(dir, chunk_index);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return true;
    const auto lease = read_lease(dir, chunk_index);
    if (lease) {
        if (lease->token != token) return false;  // fencing: not our lease
    } else if (token != 0) {
        return false;  // garbled lease needs the explicit token-0 override
    }
    std::filesystem::remove(path, ec);
    return !std::filesystem::exists(path, ec);
}

}  // namespace spinscope::scanner
