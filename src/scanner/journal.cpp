#include "scanner/journal.hpp"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/atomic_file.hpp"
#include "util/checksum.hpp"

namespace spinscope::scanner {

namespace {

constexpr const char* kSegmentPrefix = "segment-";
constexpr const char* kSegmentSuffix = ".jsonl";
constexpr const char* kOpenSuffix = ".open";
constexpr std::string_view kFrameMarker = "#rec ";

[[nodiscard]] std::filesystem::path sealed_path(const std::filesystem::path& dir,
                                                std::size_t index) {
    char name[48];
    std::snprintf(name, sizeof name, "%s%05zu%s", kSegmentPrefix, index, kSegmentSuffix);
    return dir / name;
}

[[nodiscard]] std::filesystem::path open_path(const std::filesystem::path& dir,
                                              std::size_t index) {
    std::filesystem::path path = sealed_path(dir, index);
    path += kOpenSuffix;
    return path;
}

// ---------------------------------------------------------------------------
// Token encoding: journal scalar strings (error messages, response headers)
// are percent-encoded into single whitespace-free tokens so that every
// payload line splits unambiguously on spaces. The empty string encodes to
// the empty token, which the positional key=value parser accepts.

[[nodiscard]] std::string encode_token(std::string_view s) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const auto b = static_cast<unsigned char>(c);
        if (b > 0x20 && b < 0x7f && b != '%') {
            out.push_back(c);
        } else {
            out.push_back('%');
            out.push_back(kHex[b >> 4]);
            out.push_back(kHex[b & 0xf]);
        }
    }
    return out;
}

[[nodiscard]] int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

[[nodiscard]] std::optional<std::string> decode_token(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out.push_back(s[i]);
            continue;
        }
        if (i + 2 >= s.size()) return std::nullopt;
        const int hi = hex_digit(s[i + 1]);
        const int lo = hex_digit(s[i + 2]);
        if (hi < 0 || lo < 0) return std::nullopt;
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Payload cursor: line- and raw-byte-oriented reads over one record payload.

struct Cursor {
    std::string_view data;
    std::size_t pos = 0;

    [[nodiscard]] bool done() const noexcept { return pos >= data.size(); }

    /// Next line without its '\n'; nullopt when no full line remains.
    [[nodiscard]] std::optional<std::string_view> line() {
        if (done()) return std::nullopt;
        const auto nl = data.find('\n', pos);
        if (nl == std::string_view::npos) return std::nullopt;
        std::string_view out = data.substr(pos, nl - pos);
        pos = nl + 1;
        return out;
    }

    /// Next `n` raw bytes; nullopt when fewer remain.
    [[nodiscard]] std::optional<std::string_view> raw(std::size_t n) {
        if (data.size() - pos < n) return std::nullopt;
        std::string_view out = data.substr(pos, n);
        pos += n;
        return out;
    }
};

[[nodiscard]] std::vector<std::string_view> split_tokens(std::string_view line) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    while (start <= line.size()) {
        const auto space = line.find(' ', start);
        if (space == std::string_view::npos) {
            out.push_back(line.substr(start));
            break;
        }
        out.push_back(line.substr(start, space - start));
        start = space + 1;
    }
    return out;
}

template <typename T>
[[nodiscard]] bool parse_number(std::string_view token, T& out) {
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
    return ec == std::errc{} && ptr == token.data() + token.size();
}

/// Strips "key=" and parses the remainder as a number.
template <typename T>
[[nodiscard]] bool parse_kv(std::string_view token, std::string_view key, T& out) {
    if (token.size() < key.size() + 1 || token.substr(0, key.size()) != key ||
        token[key.size()] != '=') {
        return false;
    }
    return parse_number(token.substr(key.size() + 1), out);
}

[[nodiscard]] bool parse_kv_bool(std::string_view token, std::string_view key, bool& out) {
    int v = 0;
    if (!parse_kv(token, key, v) || (v != 0 && v != 1)) return false;
    out = v == 1;
    return true;
}

[[nodiscard]] std::optional<std::string> parse_kv_token(std::string_view token,
                                                        std::string_view key) {
    if (token.size() < key.size() + 1 || token.substr(0, key.size()) != key ||
        token[key.size()] != '=') {
        return std::nullopt;
    }
    return decode_token(token.substr(key.size() + 1));
}

void append_kv(std::string& out, std::string_view key, std::uint64_t v) {
    out += ' ';
    out += key;
    out += '=';
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    out += buf;
}

void append_kv_signed(std::string& out, std::string_view key, long long v) {
    out += ' ';
    out += key;
    out += '=';
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", v);
    out += buf;
}

void append_length_block(std::string& out, std::string_view keyword, std::string_view bytes) {
    out += keyword;
    out += ' ';
    char buf[24];
    std::snprintf(buf, sizeof buf, "%zu", bytes.size());
    out += buf;
    out += '\n';
    out += bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// Record payloads

std::string serialize_header(const CampaignHeader& header) {
    std::string out = "campaign";
    append_kv(out, "seed", header.seed);
    append_kv_signed(out, "week", header.week);
    append_kv(out, "ipv6", header.ipv6 ? 1 : 0);
    append_kv(out, "chunk_domains", header.chunk_domains);
    append_kv(out, "domain_count", header.domain_count);
    append_kv(out, "telemetry", header.has_telemetry ? 1 : 0);
    out += '\n';
    return out;
}

std::optional<CampaignHeader> parse_header(std::string_view payload) {
    Cursor cur{payload};
    const auto line = cur.line();
    if (!line || !cur.done()) return std::nullopt;
    const auto tok = split_tokens(*line);
    CampaignHeader header;
    long long week = 0;
    std::uint64_t chunk_domains = 0;
    std::uint64_t domain_count = 0;
    if (tok.size() != 7 || tok[0] != "campaign" || !parse_kv(tok[1], "seed", header.seed) ||
        !parse_kv(tok[2], "week", week) || !parse_kv_bool(tok[3], "ipv6", header.ipv6) ||
        !parse_kv(tok[4], "chunk_domains", chunk_domains) ||
        !parse_kv(tok[5], "domain_count", domain_count) ||
        !parse_kv_bool(tok[6], "telemetry", header.has_telemetry)) {
        return std::nullopt;
    }
    header.week = static_cast<int>(week);
    header.chunk_domains = static_cast<std::size_t>(chunk_domains);
    header.domain_count = static_cast<std::size_t>(domain_count);
    return header;
}

std::string serialize_chunk_record(const ChunkRecord& record) {
    std::string out = "chunk";
    append_kv(out, "index", record.chunk_index);
    append_kv(out, "quarantined", record.quarantined ? 1 : 0);
    out += " error=";
    out += encode_token(record.quarantine_error);
    append_kv(out, "domains", record.scans.size());
    out += '\n';

    for (const auto& scan : record.scans) {
        out += "domain";
        append_kv(out, "id", scan.domain_id);
        append_kv(out, "resolved", scan.resolved ? 1 : 0);
        append_kv(out, "redirects", scan.redirects_followed);
        append_kv(out, "retries", scan.retries);
        append_kv(out, "recovered", scan.recovered_by_retry ? 1 : 0);
        append_kv(out, "attempts_truncated", scan.attempts_truncated);
        append_kv_signed(out, "sim_ns", scan.sim_time.count_nanos());
        out += " error=";
        out += encode_token(scan.error);
        append_kv(out, "response", scan.final_response ? 1 : 0);
        const ResponseInfo response = scan.final_response.value_or(ResponseInfo{});
        append_kv_signed(out, "status", response.status);
        append_kv(out, "body", response.body_bytes);
        out += " location=";
        out += encode_token(response.location);
        out += " server=";
        out += encode_token(response.server_name);
        append_kv(out, "attempts", scan.attempts.size());
        append_kv(out, "connections", scan.connections.size());
        out += '\n';

        for (const auto& attempt : scan.attempts) {
            out += "attempt";
            append_kv_signed(out, "hop", attempt.redirect_hop);
            append_kv_signed(out, "retry", attempt.retry);
            append_kv(out, "outcome", static_cast<std::uint64_t>(attempt.outcome));
            append_kv_signed(out, "backoff_ns", attempt.backoff.count_nanos());
            append_kv(out, "fault", static_cast<std::uint64_t>(attempt.server_fault));
            out += '\n';
        }
        for (const auto& trace : scan.connections) {
            append_length_block(out, "trace", qlog::to_jsonl(trace));
        }
    }
    append_length_block(out, "telemetry", record.telemetry_snapshot);
    return out;
}

namespace {

/// Parses one `<keyword> <nbytes>` line followed by that many raw bytes.
[[nodiscard]] std::optional<std::string_view> parse_length_block(Cursor& cur,
                                                                 std::string_view keyword) {
    const auto line = cur.line();
    if (!line) return std::nullopt;
    const auto tok = split_tokens(*line);
    std::uint64_t n = 0;
    if (tok.size() != 2 || tok[0] != keyword || !parse_number(tok[1], n)) {
        return std::nullopt;
    }
    return cur.raw(static_cast<std::size_t>(n));
}

}  // namespace

std::optional<ChunkRecord> parse_chunk_record(std::string_view payload) {
    Cursor cur{payload};
    const auto chunk_line = cur.line();
    if (!chunk_line) return std::nullopt;
    const auto chunk_tok = split_tokens(*chunk_line);
    ChunkRecord record;
    std::uint64_t index = 0;
    std::uint64_t domain_count = 0;
    if (chunk_tok.size() != 5 || chunk_tok[0] != "chunk" ||
        !parse_kv(chunk_tok[1], "index", index) ||
        !parse_kv_bool(chunk_tok[2], "quarantined", record.quarantined)) {
        return std::nullopt;
    }
    const auto quarantine_error = parse_kv_token(chunk_tok[3], "error");
    if (!quarantine_error || !parse_kv(chunk_tok[4], "domains", domain_count)) {
        return std::nullopt;
    }
    record.chunk_index = static_cast<std::size_t>(index);
    record.quarantine_error = *quarantine_error;

    record.scans.reserve(static_cast<std::size_t>(domain_count));
    for (std::uint64_t d = 0; d < domain_count; ++d) {
        const auto domain_line = cur.line();
        if (!domain_line) return std::nullopt;
        const auto tok = split_tokens(*domain_line);
        if (tok.size() != 16 || tok[0] != "domain") return std::nullopt;

        DomainScan scan;
        std::uint64_t attempt_count = 0;
        std::uint64_t connection_count = 0;
        bool has_response = false;
        long long status = 0;
        std::uint64_t body_bytes = 0;
        long long sim_ns = 0;
        if (!parse_kv(tok[1], "id", scan.domain_id) ||
            !parse_kv_bool(tok[2], "resolved", scan.resolved) ||
            !parse_kv(tok[3], "redirects", scan.redirects_followed) ||
            !parse_kv(tok[4], "retries", scan.retries) ||
            !parse_kv_bool(tok[5], "recovered", scan.recovered_by_retry) ||
            !parse_kv(tok[6], "attempts_truncated", scan.attempts_truncated) ||
            !parse_kv(tok[7], "sim_ns", sim_ns)) {
            return std::nullopt;
        }
        const auto error = parse_kv_token(tok[8], "error");
        if (!error || !parse_kv_bool(tok[9], "response", has_response) ||
            !parse_kv(tok[10], "status", status) || !parse_kv(tok[11], "body", body_bytes)) {
            return std::nullopt;
        }
        const auto location = parse_kv_token(tok[12], "location");
        const auto server = parse_kv_token(tok[13], "server");
        if (!location || !server || !parse_kv(tok[14], "attempts", attempt_count) ||
            !parse_kv(tok[15], "connections", connection_count)) {
            return std::nullopt;
        }
        scan.sim_time = util::Duration::nanos(sim_ns);
        scan.error = *error;
        if (has_response) {
            ResponseInfo response;
            response.status = static_cast<int>(status);
            response.body_bytes = static_cast<std::size_t>(body_bytes);
            response.location = *location;
            response.server_name = *server;
            scan.final_response = response;
        }

        scan.attempts.reserve(static_cast<std::size_t>(attempt_count));
        for (std::uint64_t a = 0; a < attempt_count; ++a) {
            const auto attempt_line = cur.line();
            if (!attempt_line) return std::nullopt;
            const auto atok = split_tokens(*attempt_line);
            if (atok.size() != 6 || atok[0] != "attempt") return std::nullopt;
            DomainScan::AttemptRecord attempt;
            long long hop = 0;
            long long retry = 0;
            std::uint64_t outcome = 0;
            long long backoff_ns = 0;
            std::uint64_t fault = 0;
            if (!parse_kv(atok[1], "hop", hop) || !parse_kv(atok[2], "retry", retry) ||
                !parse_kv(atok[3], "outcome", outcome) ||
                !parse_kv(atok[4], "backoff_ns", backoff_ns) ||
                !parse_kv(atok[5], "fault", fault)) {
                return std::nullopt;
            }
            if (outcome >= qlog::kConnectionOutcomeCount ||
                fault >= faults::kServerFaultModeCount) {
                return std::nullopt;
            }
            attempt.redirect_hop = static_cast<int>(hop);
            attempt.retry = static_cast<int>(retry);
            attempt.outcome = static_cast<qlog::ConnectionOutcome>(outcome);
            attempt.backoff = util::Duration::nanos(backoff_ns);
            attempt.server_fault = static_cast<faults::ServerFaultMode>(fault);
            scan.attempts.push_back(attempt);
        }

        scan.connections.reserve(static_cast<std::size_t>(connection_count));
        for (std::uint64_t c = 0; c < connection_count; ++c) {
            const auto raw = parse_length_block(cur, "trace");
            if (!raw) return std::nullopt;
            auto trace = qlog::parse_jsonl(std::string{*raw});
            if (!trace) return std::nullopt;
            scan.connections.push_back(std::move(*trace));
        }

        record.scans.push_back(std::move(scan));
    }

    const auto telemetry = parse_length_block(cur, "telemetry");
    if (!telemetry || !cur.done()) return std::nullopt;
    record.telemetry_snapshot = std::string{*telemetry};
    return record;
}

// ---------------------------------------------------------------------------
// Record framing

std::string frame_record(const std::string& payload) {
    char head[48];
    std::snprintf(head, sizeof head, "#rec %zu %08x\n", payload.size(),
                  util::crc32(payload));
    return head + payload;
}

namespace {

/// One parsed frame: payload view plus the offset just past the frame.
struct Frame {
    std::string_view payload;
    std::size_t end = 0;
};

[[nodiscard]] std::optional<Frame> next_frame(std::string_view content, std::size_t pos) {
    if (content.substr(pos, kFrameMarker.size()) != kFrameMarker) return std::nullopt;
    const auto nl = content.find('\n', pos);
    if (nl == std::string_view::npos) return std::nullopt;
    const auto head = split_tokens(content.substr(pos, nl - pos));
    std::uint64_t len = 0;
    if (head.size() != 3 || !parse_number(head[1], len)) return std::nullopt;
    std::uint32_t crc = 0;
    {
        const auto tok = head[2];
        const auto [ptr, ec] =
            std::from_chars(tok.data(), tok.data() + tok.size(), crc, 16);
        if (ec != std::errc{} || ptr != tok.data() + tok.size()) return std::nullopt;
    }
    const std::size_t body_start = nl + 1;
    if (content.size() - body_start < len) return std::nullopt;
    Frame frame;
    frame.payload = content.substr(body_start, static_cast<std::size_t>(len));
    frame.end = body_start + static_cast<std::size_t>(len);
    if (util::crc32(frame.payload) != crc) return std::nullopt;
    return frame;
}

struct SegmentFile {
    std::size_t index = 0;
    std::filesystem::path path;
    bool open = false;
};

[[nodiscard]] std::vector<SegmentFile> list_segments(const std::filesystem::path& dir) {
    std::vector<SegmentFile> out;
    if (!std::filesystem::is_directory(dir)) return out;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const auto name = entry.path().filename().string();
        if (name.rfind(kSegmentPrefix, 0) != 0) continue;
        SegmentFile seg;
        seg.path = entry.path();
        std::string_view rest = std::string_view{name}.substr(std::strlen(kSegmentPrefix));
        if (rest.ends_with(kOpenSuffix)) {
            seg.open = true;
            rest.remove_suffix(std::strlen(kOpenSuffix));
        }
        if (!rest.ends_with(kSegmentSuffix)) continue;
        rest.remove_suffix(std::strlen(kSegmentSuffix));
        std::uint64_t index = 0;
        if (!parse_number(rest, index)) continue;
        seg.index = static_cast<std::size_t>(index);
        out.push_back(std::move(seg));
    }
    std::sort(out.begin(), out.end(), [](const SegmentFile& a, const SegmentFile& b) {
        // Sealed before open at the same index (sealed is the later, durable
        // state; a leftover open twin is a crash artifact to ignore).
        return a.index != b.index ? a.index < b.index : !a.open && b.open;
    });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const SegmentFile& a, const SegmentFile& b) {
                              return a.index == b.index;
                          }),
              out.end());
    return out;
}

[[nodiscard]] std::string read_whole_file(const std::filesystem::path& path) {
    std::ifstream in{path, std::ios::binary};
    std::string content;
    if (!in) return content;
    content.assign(std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{});
    return content;
}

/// Shared record walk for replay_journal and JournalWriter attach: parses
/// intact records, streams each chunk to `on_chunk` (when set), and reports
/// where (if anywhere) the journal tears. Only one segment's bytes plus one
/// parsed record are resident at a time — the walk itself is fixed-RSS no
/// matter how long the journal is.
struct Walk {
    ReplayStreamResult replay;
    bool torn = false;
    std::size_t tear_segment = 0;  ///< index into `segments` when torn
    std::uint64_t tear_offset = 0;
    std::vector<SegmentFile> segments;
};

[[nodiscard]] Walk walk_journal(const std::filesystem::path& dir,
                                const std::function<void(const CampaignHeader&)>& on_header,
                                const std::function<void(ChunkRecord&&)>& on_chunk) {
    Walk walk;
    walk.segments = list_segments(dir);
    bool expect_header = true;
    for (std::size_t s = 0; s < walk.segments.size(); ++s) {
        const std::string content = read_whole_file(walk.segments[s].path);
        std::size_t pos = 0;
        while (pos < content.size()) {
            const auto frame = next_frame(content, pos);
            bool ok = frame.has_value();
            if (ok) {
                if (expect_header) {
                    const auto header = parse_header(frame->payload);
                    if (header) {
                        walk.replay.header = *header;
                        walk.replay.has_header = true;
                        expect_header = false;
                        if (on_header) on_header(walk.replay.header);
                    } else {
                        ok = false;
                    }
                } else {
                    auto record = parse_chunk_record(frame->payload);
                    // Appends happen in ascending chunk order on the merge
                    // thread; anything else is corruption.
                    if (record && record->chunk_index == walk.replay.chunks_replayed) {
                        ++walk.replay.chunks_replayed;
                        if (on_chunk) on_chunk(std::move(*record));
                    } else {
                        ok = false;
                    }
                }
            }
            if (!ok) {
                walk.torn = true;
                walk.tear_segment = s;
                walk.tear_offset = pos;
                walk.replay.torn_bytes_discarded += content.size() - pos;
                for (std::size_t later = s + 1; later < walk.segments.size(); ++later) {
                    walk.replay.torn_bytes_discarded +=
                        std::filesystem::file_size(walk.segments[later].path);
                }
                return walk;
            }
            pos = frame->end;
        }
    }
    return walk;
}

}  // namespace

ReplayResult replay_journal(const std::filesystem::path& dir) {
    ReplayResult out;
    const Walk walk = walk_journal(
        dir, nullptr,
        [&out](ChunkRecord&& record) { out.chunks.push_back(std::move(record)); });
    out.has_header = walk.replay.has_header;
    out.header = walk.replay.header;
    out.torn_bytes_discarded = walk.replay.torn_bytes_discarded;
    return out;
}

ReplayStreamResult replay_journal(const std::filesystem::path& dir,
                                  const std::function<void(const CampaignHeader&)>& on_header,
                                  const std::function<void(ChunkRecord&&)>& on_chunk) {
    return walk_journal(dir, on_header, on_chunk).replay;
}

// ---------------------------------------------------------------------------
// JournalWriter

namespace {

/// Wall-clock backoff between storage retries. Unlike scan retries (which run
/// in simulated time), the disk is a real resource: giving it a millisecond
/// is the whole point.
void sleep_backoff(const faults::RetryPolicy& policy, int retry_index, util::Rng& rng) {
    const util::Duration delay = policy.backoff_delay(retry_index, rng);
    if (delay.count_nanos() > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds{delay.count_nanos()});
    }
}

[[noreturn]] void throw_io(const std::string& what, util::IoResult result) {
    throw JournalIoError{what + ": " + result.message(), result};
}

}  // namespace

JournalWriter::JournalWriter(std::filesystem::path dir, const CampaignHeader& header,
                             Mode mode, JournalOptions options)
    : dir_{std::move(dir)},
      options_{options},
      io_{&util::resolve_io(options.io)},
      retry_rng_{util::derive_stream_seed(options.io_retry_seed, 0xd15cULL)} {
    if (options_.segment_bytes == 0) {
        throw std::invalid_argument("journal: segment_bytes must be >= 1");
    }
    options_.io_retry.validate();
    std::filesystem::create_directories(dir_);

    const auto remove_or_throw = [&](const std::filesystem::path& path) {
        const util::IoResult removed = io_->remove(path);
        if (!removed) {
            throw_io("journal: cannot remove stale segment " + path.string(), removed);
        }
    };

    const auto start_fresh = [&] {
        for (const auto& seg : list_segments(dir_)) remove_or_throw(seg.path);
        // A leftover open twin of a sealed segment is dropped by
        // list_segments' dedup; sweep it explicitly too.
        for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
            const auto name = entry.path().filename().string();
            if (name.rfind(kSegmentPrefix, 0) == 0) remove_or_throw(entry.path());
        }
        open_segment(0, /*truncate=*/true);
        append_record(serialize_header(header));
    };

    if (mode == Mode::fresh) {
        start_fresh();
        return;
    }

    // Attach only needs the header and the tear point; chunk records are
    // validated during the walk but not retained (nullptr sinks).
    const Walk walk = walk_journal(dir_, nullptr, nullptr);
    if (!walk.replay.has_header) {
        // Nothing intact (missing, empty, or torn before the first record):
        // attach degenerates to a fresh journal.
        start_fresh();
        return;
    }
    if (!(walk.replay.header == header)) {
        throw std::invalid_argument(
            "journal: attach header mismatch — this journal belongs to a different "
            "campaign (seed/week/family/chunking/population differ)");
    }

    if (walk.torn) {
        // Atomic tail repair: the intact prefix of the tear segment is
        // published under the segment's OPEN name via write-temp + rename,
        // then every later segment (pure torn bytes) is dropped.
        const SegmentFile& tear = walk.segments[walk.tear_segment];
        const std::string content = read_whole_file(tear.path);
        const std::string prefix =
            content.substr(0, static_cast<std::size_t>(walk.tear_offset));
        const auto target = open_path(dir_, tear.index);
        const util::IoResult repaired = util::write_file_atomic(*io_, target, prefix);
        if (!repaired) {
            throw_io("journal: cannot repair torn tail in " + dir_.string(), repaired);
        }
        if (!tear.open) remove_or_throw(tear.path);
        for (std::size_t later = walk.tear_segment + 1; later < walk.segments.size();
             ++later) {
            remove_or_throw(walk.segments[later].path);
        }
        open_segment(tear.index, /*truncate=*/false);
        current_bytes_ = prefix.size();
        return;
    }

    const SegmentFile& last = walk.segments.back();
    if (last.open) {
        open_segment(last.index, /*truncate=*/false);
        current_bytes_ = static_cast<std::size_t>(std::filesystem::file_size(last.path));
    } else {
        open_segment(last.index + 1, /*truncate=*/true);
    }
}

JournalWriter::~JournalWriter() {
    try {
        close();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
        close_fd();
    }
}

void JournalWriter::close_fd() noexcept {
    if (fd_ != util::Io::kBadFile) {
        (void)io_->close(fd_);
        fd_ = util::Io::kBadFile;
    }
}

void JournalWriter::open_segment(std::size_t index, bool truncate) {
    // Segments are always opened in append mode: O_APPEND writes land at
    // end-of-file even after a rollback ftruncate, so a retried record can
    // never leave a hole. "Truncate" is remove + reopen, which needs no
    // extra seam primitive.
    if (truncate) {
        const util::IoResult removed = io_->remove(open_path(dir_, index));
        if (!removed) {
            failed_ = true;
            throw_io("journal: cannot reset segment in " + dir_.string(), removed);
        }
    }
    util::IoResult opened;
    fd_ = io_->open_write(open_path(dir_, index), util::Io::OpenMode::append, opened);
    if (fd_ == util::Io::kBadFile) {
        failed_ = true;
        throw_io("journal: cannot open segment in " + dir_.string(), opened);
    }
    segment_index_ = index;
    current_bytes_ = 0;
    tail_clean_ = true;
}

void JournalWriter::seal_current_segment() {
    if (fd_ == util::Io::kBadFile) return;
    // An unflushable segment must NEVER be published under its sealed name:
    // readers treat sealed segments as durable, and after a failed fsync the
    // bytes on media are anyone's guess. The segment stays .open for scrub.
    util::IoResult synced;
    for (int attempt = 0;; ++attempt) {
        synced = io_->fsync(fd_);
        if (synced) break;
        if (util::classify_io_error(synced.err) != util::IoErrorClass::transient ||
            attempt + 1 >= options_.io_retry.max_attempts) {
            close_fd();
            failed_ = true;
            throw_io("journal: fsync failed sealing segment " +
                         std::to_string(segment_index_) + " in " + dir_.string(),
                     synced);
        }
        sleep_backoff(options_.io_retry, attempt + 1, retry_rng_);
    }
    const util::IoResult closed = io_->close(fd_);
    fd_ = util::Io::kBadFile;
    if (!closed) {
        failed_ = true;
        throw_io("journal: close failed sealing segment in " + dir_.string(), closed);
    }
    const auto from = open_path(dir_, segment_index_);
    const util::IoResult renamed =
        util::rename_durable(*io_, from, sealed_path(dir_, segment_index_));
    if (!renamed) {
        failed_ = true;
        throw_io("journal: cannot seal segment in " + dir_.string(), renamed);
    }
    ++segments_sealed_;
}

void JournalWriter::append_record(const std::string& payload) {
    if (failed_) {
        throw JournalIoError{"journal: writer in " + dir_.string() +
                                 " already failed; no further appends",
                             util::IoResult::failure(EIO)};
    }
    if (fd_ == util::Io::kBadFile) open_segment(segment_index_, /*truncate=*/false);
    const std::string framed = frame_record(payload);
    // The frame goes out in ONE write, so a fault either loses the whole
    // record or tears exactly one frame at the tail — never interleaves.
    for (int attempt = 0;; ++attempt) {
        const util::IoResult written = io_->write(fd_, framed);
        if (written) break;
        // Roll the segment back to the previous record boundary so the tail
        // never keeps the torn frame this failed append produced.
        const util::IoResult rolled_back = io_->truncate(fd_, current_bytes_);
        tail_clean_ = rolled_back.ok();
        const bool transient =
            util::classify_io_error(written.err) == util::IoErrorClass::transient;
        if (!transient || !tail_clean_ ||
            attempt + 1 >= options_.io_retry.max_attempts) {
            failed_ = true;
            throw_io("journal: append failed in " + dir_.string() +
                         (tail_clean_ ? "" : " (rollback failed too; tail torn)"),
                     written);
        }
        sleep_backoff(options_.io_retry, attempt + 1, retry_rng_);
    }
    current_bytes_ += framed.size();
    ++records_appended_;
    if (current_bytes_ >= options_.segment_bytes) {
        seal_current_segment();
        open_segment(segment_index_ + 1, /*truncate=*/true);
    }
}

void JournalWriter::append_chunk(const ChunkRecord& record) {
    append_record(serialize_chunk_record(record));
}

void JournalWriter::close() { seal_current_segment(); }

void JournalWriter::abandon() noexcept {
    close_fd();
    failed_ = true;
}

// ---------------------------------------------------------------------------
// Journal-directory lock

std::filesystem::path journal_lock_path(const std::filesystem::path& dir) {
    return dir / "journal.lock";
}

// ---------------------------------------------------------------------------
// Map-layout journal

namespace {

constexpr const char* kMapHeaderName = "header.rec";
constexpr const char* kMapChunkPrefix = "chunk-";
constexpr const char* kMapChunkSuffix = ".rec";
constexpr const char* kLeaseSuffix = ".lease";

[[nodiscard]] std::filesystem::path map_name(const std::filesystem::path& dir,
                                             std::size_t index, const char* suffix) {
    char name[48];
    std::snprintf(name, sizeof name, "%s%05zu%s", kMapChunkPrefix, index, suffix);
    return dir / name;
}

/// Payload of a single-record framed file; nullopt when the file is absent,
/// torn, fails CRC, or has trailing bytes past the frame.
[[nodiscard]] std::optional<std::string> read_framed_file(
    const std::filesystem::path& path) {
    if (!std::filesystem::is_regular_file(path)) return std::nullopt;
    const std::string content = read_whole_file(path);
    const auto frame = next_frame(content, 0);
    if (!frame || frame->end != content.size()) return std::nullopt;
    return std::string{frame->payload};
}

/// True for header.rec, chunk-*.rec and chunk-*.lease filenames.
[[nodiscard]] bool is_map_file(const std::string& name) {
    if (name == kMapHeaderName) return true;
    if (name.rfind(kMapChunkPrefix, 0) != 0) return false;
    const std::string_view rest = std::string_view{name}.substr(std::strlen(kMapChunkPrefix));
    return rest.ends_with(kMapChunkSuffix) || rest.ends_with(kLeaseSuffix);
}

}  // namespace

std::filesystem::path map_header_path(const std::filesystem::path& dir) {
    return dir / kMapHeaderName;
}

std::filesystem::path map_chunk_path(const std::filesystem::path& dir,
                                     std::size_t chunk_index) {
    return map_name(dir, chunk_index, kMapChunkSuffix);
}

std::filesystem::path lease_path(const std::filesystem::path& dir,
                                 std::size_t chunk_index) {
    return map_name(dir, chunk_index, kLeaseSuffix);
}

void init_map_journal(util::Io& io, const std::filesystem::path& dir,
                      const CampaignHeader& header, bool wipe) {
    std::filesystem::create_directories(dir);
    // Persist the directory's own existence: a power cut right after mkdir
    // must not orphan every file published into it.
    (void)util::fsync_dir(io, dir.has_parent_path() ? dir.parent_path()
                                                    : std::filesystem::path{"."});
    if (wipe) {
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
            if (is_map_file(entry.path().filename().string())) {
                const util::IoResult removed = io.remove(entry.path());
                if (!removed) {
                    throw_io("journal: cannot wipe " + entry.path().string(), removed);
                }
            }
        }
    } else {
        const auto existing = read_framed_file(map_header_path(dir));
        if (existing) {
            const auto parsed = parse_header(*existing);
            if (parsed && !(*parsed == header)) {
                throw std::invalid_argument(
                    "journal: map header mismatch — this journal belongs to a "
                    "different campaign (seed/week/family/chunking/population "
                    "differ)");
            }
        }
    }
    const util::IoResult written = util::write_file_atomic(
        io, map_header_path(dir), frame_record(serialize_header(header)));
    if (!written) {
        throw_io("journal: cannot write map header in " + dir.string(), written);
    }
}

void init_map_journal(const std::filesystem::path& dir, const CampaignHeader& header,
                      bool wipe) {
    init_map_journal(util::Io::real(), dir, header, wipe);
}

util::IoResult write_map_chunk(util::Io& io, const std::filesystem::path& dir,
                               const ChunkRecord& record) {
    return util::write_file_atomic(io, map_chunk_path(dir, record.chunk_index),
                                   frame_record(serialize_chunk_record(record)));
}

bool write_map_chunk(const std::filesystem::path& dir, const ChunkRecord& record) {
    return write_map_chunk(util::Io::real(), dir, record).ok();
}

std::optional<ChunkRecord> read_map_chunk(const std::filesystem::path& dir,
                                          std::size_t chunk_index) {
    const auto payload = read_framed_file(map_chunk_path(dir, chunk_index));
    if (!payload) return std::nullopt;
    auto record = parse_chunk_record(*payload);
    if (!record || record->chunk_index != chunk_index) return std::nullopt;
    return record;
}

std::vector<std::size_t> list_map_chunks(const std::filesystem::path& dir) {
    std::vector<std::size_t> indices;
    if (!std::filesystem::is_directory(dir)) return indices;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const auto name = entry.path().filename().string();
        if (name.rfind(kMapChunkPrefix, 0) != 0) continue;
        std::string_view rest = std::string_view{name}.substr(std::strlen(kMapChunkPrefix));
        if (!rest.ends_with(kMapChunkSuffix)) continue;
        rest.remove_suffix(std::strlen(kMapChunkSuffix));
        std::uint64_t index = 0;
        if (!parse_number(rest, index)) continue;
        indices.push_back(static_cast<std::size_t>(index));
    }
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
    return indices;
}

MapReplayResult read_map_journal(const std::filesystem::path& dir) {
    MapReplayResult out;
    if (!std::filesystem::is_directory(dir)) return out;
    if (const auto payload = read_framed_file(map_header_path(dir))) {
        if (const auto header = parse_header(*payload)) {
            out.header = *header;
            out.has_header = true;
        }
    }
    for (const std::size_t index : list_map_chunks(dir)) {
        auto record = read_map_chunk(dir, index);
        if (record) {
            out.chunks.push_back(std::move(*record));
        } else {
            ++out.corrupt_chunks;
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Chunk leases

std::string serialize_lease(const ChunkLease& lease) {
    std::string out = "lease";
    append_kv(out, "chunk", lease.chunk_index);
    append_kv_signed(out, "pid", lease.pid);
    append_kv(out, "token", lease.token);
    append_kv(out, "attempts", lease.attempts);
    out += '\n';
    return out;
}

std::optional<ChunkLease> parse_lease(std::string_view payload) {
    Cursor cur{payload};
    const auto line = cur.line();
    if (!line || !cur.done()) return std::nullopt;
    const auto tok = split_tokens(*line);
    ChunkLease lease;
    std::uint64_t chunk = 0;
    long long pid = 0;
    if (tok.size() != 5 || tok[0] != "lease" || !parse_kv(tok[1], "chunk", chunk) ||
        !parse_kv(tok[2], "pid", pid) || !parse_kv(tok[3], "token", lease.token) ||
        !parse_kv(tok[4], "attempts", lease.attempts)) {
        return std::nullopt;
    }
    lease.chunk_index = static_cast<std::size_t>(chunk);
    lease.pid = static_cast<long>(pid);
    return lease;
}

util::IoResult claim_lease(util::Io& io, const std::filesystem::path& dir,
                           const ChunkLease& lease) {
    return util::create_file_exclusive(io, lease_path(dir, lease.chunk_index),
                                       serialize_lease(lease));
}

bool claim_lease(const std::filesystem::path& dir, const ChunkLease& lease) {
    return claim_lease(util::Io::real(), dir, lease).ok();
}

std::optional<ChunkLease> read_lease(const std::filesystem::path& dir,
                                     std::size_t chunk_index) {
    const auto path = lease_path(dir, chunk_index);
    if (!std::filesystem::is_regular_file(path)) return std::nullopt;
    auto lease = parse_lease(read_whole_file(path));
    if (!lease || lease->chunk_index != chunk_index) return std::nullopt;
    return lease;
}

bool release_lease(const std::filesystem::path& dir, std::size_t chunk_index,
                   std::uint64_t token) {
    const auto path = lease_path(dir, chunk_index);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return true;
    const auto lease = read_lease(dir, chunk_index);
    if (lease) {
        if (lease->token != token) return false;  // fencing: not our lease
    } else if (token != 0) {
        return false;  // garbled lease needs the explicit token-0 override
    }
    std::filesystem::remove(path, ec);
    return !std::filesystem::exists(path, ec);
}

// ---------------------------------------------------------------------------
// Scrub

const char* to_cstring(ScrubDamage damage) noexcept {
    switch (damage) {
        case ScrubDamage::torn_tail: return "torn_tail";
        case ScrubDamage::mid_segment_corruption: return "mid_segment_corruption";
        case ScrubDamage::header_corrupt: return "header_corrupt";
        case ScrubDamage::missing_segment: return "missing_segment";
        case ScrubDamage::corrupt_map_chunk: return "corrupt_map_chunk";
    }
    return "unknown";
}

std::string ScrubReport::render() const {
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "scrub: %llu segment(s), %llu map record(s) checked; %llu record(s) "
                  "intact (%llu chunk(s)); %llu byte(s) discarded\n",
                  static_cast<unsigned long long>(segments_checked),
                  static_cast<unsigned long long>(map_chunks_checked),
                  static_cast<unsigned long long>(records_intact),
                  static_cast<unsigned long long>(chunks_intact),
                  static_cast<unsigned long long>(bytes_discarded));
    out += line;
    if (clean()) {
        out += "scrub: journal is clean\n";
        return out;
    }
    for (const auto& finding : findings) {
        std::snprintf(line, sizeof line, "scrub: %s in %s @%llu [%s%s]: %s\n",
                      to_cstring(finding.damage), finding.file.c_str(),
                      static_cast<unsigned long long>(finding.offset),
                      finding.repaired ? "repaired" : "not repaired",
                      finding.quarantined ? ", quarantined" : "", finding.detail.c_str());
        out += line;
    }
    std::snprintf(line, sizeof line, "scrub: resume rescans from chunk %llu\n",
                  static_cast<unsigned long long>(resume_from_chunk));
    out += line;
    if (!chunks_to_rescan.empty()) {
        out += "scrub: reduce must rescan map chunk(s)";
        for (const std::size_t index : chunks_to_rescan) {
            out += ' ';
            out += std::to_string(index);
        }
        out += '\n';
    }
    return out;
}

std::string ScrubReport::machine_report() const {
    std::string out = "scrub";
    append_kv(out, "header", has_header ? 1 : 0);
    append_kv(out, "segments", segments_checked);
    append_kv(out, "map_chunks", map_chunks_checked);
    append_kv(out, "records_intact", records_intact);
    append_kv(out, "chunks_intact", chunks_intact);
    append_kv(out, "bytes_discarded", bytes_discarded);
    append_kv(out, "resume_from_chunk", resume_from_chunk);
    append_kv(out, "findings", findings.size());
    out += '\n';
    for (const auto& finding : findings) {
        out += "finding damage=";
        out += to_cstring(finding.damage);
        out += " file=";
        out += encode_token(finding.file);
        append_kv(out, "offset", finding.offset);
        append_kv(out, "repaired", finding.repaired ? 1 : 0);
        append_kv(out, "quarantined", finding.quarantined ? 1 : 0);
        out += " detail=";
        out += encode_token(finding.detail);
        out += '\n';
    }
    for (const std::size_t index : chunks_to_rescan) {
        out += "rescan";
        append_kv(out, "chunk", index);
        out += '\n';
    }
    return out;
}

namespace {

[[nodiscard]] std::uint64_t file_size_or_zero(const std::filesystem::path& path) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

/// True when a parseable, CRC-valid frame exists anywhere past `pos` — the
/// tell that distinguishes a mid-segment bit flip (good records stranded
/// behind the damage) from an ordinary torn tail.
[[nodiscard]] bool intact_frame_after(std::string_view content, std::size_t pos) {
    auto search = content.find(kFrameMarker, pos + 1);
    while (search != std::string_view::npos) {
        if (next_frame(content, search)) return true;
        search = content.find(kFrameMarker, search + 1);
    }
    return false;
}

/// Scrub-side mutation helpers: every move/write goes through the seam and
/// throws JournalIoError on failure — a scrub that cannot repair must say
/// so, not pretend it did.
struct ScrubRepairer {
    util::Io& io;
    const std::filesystem::path& dir;
    std::filesystem::path corrupt_dir;

    explicit ScrubRepairer(util::Io& io_seam, const std::filesystem::path& journal_dir)
        : io{io_seam}, dir{journal_dir}, corrupt_dir{journal_dir / "corrupt"} {}

    void quarantine(const std::filesystem::path& path) {
        std::filesystem::create_directories(corrupt_dir);
        const util::IoResult moved =
            util::rename_durable(io, path, corrupt_dir / path.filename());
        if (!moved) {
            throw_io("journal: scrub cannot quarantine " + path.string(), moved);
        }
    }

    void save_bytes(const std::string& name, std::string_view bytes) {
        std::filesystem::create_directories(corrupt_dir);
        const util::IoResult written =
            util::write_file_atomic(io, corrupt_dir / name, bytes);
        if (!written) {
            throw_io("journal: scrub cannot save " + name, written);
        }
    }

    /// The attach-path tail repair: intact prefix republished under the
    /// segment's OPEN name, sealed original removed.
    void truncate_to_prefix(const SegmentFile& segment, std::string_view prefix) {
        const auto target = open_path(dir, segment.index);
        const util::IoResult repaired = util::write_file_atomic(io, target, prefix);
        if (!repaired) {
            throw_io("journal: scrub cannot repair " + segment.path.string(), repaired);
        }
        if (!segment.open) {
            const util::IoResult removed = io.remove(segment.path);
            if (!removed) {
                throw_io("journal: scrub cannot drop " + segment.path.string(), removed);
            }
        }
    }
};

}  // namespace

ScrubReport scrub_journal(const std::filesystem::path& dir, const ScrubOptions& options) {
    ScrubReport report;
    if (!std::filesystem::is_directory(dir)) return report;
    util::Io& io = util::resolve_io(options.io);
    ScrubRepairer repairer{io, dir};

    // --- Segment layout ----------------------------------------------------
    const Walk walk = walk_journal(dir, nullptr, nullptr);
    report.segments_checked = walk.segments.size();
    report.has_header = walk.replay.has_header;
    report.header = walk.replay.header;
    report.chunks_intact = walk.replay.chunks_replayed;
    report.records_intact = walk.replay.chunks_replayed + (walk.replay.has_header ? 1 : 0);
    report.bytes_discarded = walk.replay.torn_bytes_discarded;
    report.resume_from_chunk = walk.replay.chunks_replayed;

    // A gap in the segment numbering means a whole sealed segment vanished.
    std::size_t gap = walk.segments.size();
    for (std::size_t s = 0; s < walk.segments.size(); ++s) {
        if (walk.segments[s].index != s) {
            gap = s;
            break;
        }
    }

    std::uint64_t total_segment_bytes = 0;
    for (const auto& seg : walk.segments) {
        std::error_code ec;
        const auto size = std::filesystem::file_size(seg.path, ec);
        if (!ec) total_segment_bytes += size;
    }

    if (!walk.segments.empty() && !walk.replay.has_header && total_segment_bytes > 0) {
        // Record 0 is unreadable: nothing here can be attributed to any
        // campaign, so no record is safe to replay.
        ScrubFinding finding;
        finding.damage = ScrubDamage::header_corrupt;
        finding.file = walk.segments.front().path.filename().string();
        finding.detail = "campaign header record unreadable; quarantining all segments";
        report.bytes_discarded = total_segment_bytes;
        if (options.repair) {
            for (const auto& seg : walk.segments) repairer.quarantine(seg.path);
            finding.quarantined = true;
        }
        report.findings.push_back(std::move(finding));
    } else if (gap < walk.segments.size()) {
        ScrubFinding finding;
        finding.damage = ScrubDamage::missing_segment;
        finding.file = sealed_path(dir, gap).filename().string();
        finding.detail = "segment " + std::to_string(gap) +
                         " missing; records after the hole violate the contiguous "
                         "prefix and are quarantined";
        if (options.repair) {
            for (std::size_t s = gap; s < walk.segments.size(); ++s) {
                repairer.quarantine(walk.segments[s].path);
            }
            finding.quarantined = true;
        }
        report.findings.push_back(std::move(finding));
    } else if (walk.torn) {
        const SegmentFile& tear = walk.segments[walk.tear_segment];
        const std::string content = read_whole_file(tear.path);
        const std::string_view prefix{content.data(),
                                      static_cast<std::size_t>(walk.tear_offset)};
        const bool mid = intact_frame_after(content, walk.tear_offset) ||
                         walk.tear_segment + 1 < walk.segments.size();
        ScrubFinding finding;
        finding.file = tear.path.filename().string();
        finding.offset = walk.tear_offset;
        if (mid) {
            finding.damage = ScrubDamage::mid_segment_corruption;
            finding.detail =
                "bad frame with intact records behind it (bit flip or hole); "
                "damaged tail quarantined, intact prefix kept";
            if (options.repair) {
                repairer.save_bytes(tear.path.filename().string() + ".tail",
                                    std::string_view{content}.substr(
                                        static_cast<std::size_t>(walk.tear_offset)));
                for (std::size_t s = walk.tear_segment + 1; s < walk.segments.size();
                     ++s) {
                    repairer.quarantine(walk.segments[s].path);
                }
                repairer.truncate_to_prefix(tear, prefix);
                finding.repaired = true;
                finding.quarantined = true;
            }
        } else {
            finding.damage = ScrubDamage::torn_tail;
            finding.detail = "frame torn at end of journal (crash artifact); "
                             "truncated to intact prefix";
            if (options.repair) {
                repairer.truncate_to_prefix(tear, prefix);
                finding.repaired = true;
            }
        }
        report.findings.push_back(std::move(finding));
    }

    // --- Map layout --------------------------------------------------------
    const auto header_path = map_header_path(dir);
    if (std::filesystem::is_regular_file(header_path)) {
        ++report.map_chunks_checked;
        const auto payload = read_framed_file(header_path);
        const auto parsed = payload ? parse_header(*payload) : std::nullopt;
        if (parsed) {
            ++report.records_intact;
            if (!report.has_header) {
                report.has_header = true;
                report.header = *parsed;
            }
        } else {
            ScrubFinding finding;
            finding.damage = ScrubDamage::header_corrupt;
            finding.file = header_path.filename().string();
            finding.detail = "map header fails frame/CRC/body validation";
            report.bytes_discarded += file_size_or_zero(header_path);
            if (options.repair) {
                repairer.quarantine(header_path);
                finding.quarantined = true;
            }
            report.findings.push_back(std::move(finding));
        }
    }
    for (const std::size_t index : list_map_chunks(dir)) {
        ++report.map_chunks_checked;
        if (read_map_chunk(dir, index)) {
            ++report.records_intact;
            ++report.chunks_intact;
            continue;
        }
        const auto chunk_path = map_chunk_path(dir, index);
        ScrubFinding finding;
        finding.damage = ScrubDamage::corrupt_map_chunk;
        finding.file = chunk_path.filename().string();
        finding.detail = "chunk record fails frame/CRC/body validation or names the "
                         "wrong chunk; rescan chunk " +
                         std::to_string(index);
        report.bytes_discarded += file_size_or_zero(chunk_path);
        report.chunks_to_rescan.push_back(index);
        if (options.repair) {
            repairer.quarantine(chunk_path);
            finding.quarantined = true;
        }
        report.findings.push_back(std::move(finding));
    }

    if (options.repair && !report.clean()) {
        repairer.save_bytes("scrub.report", report.machine_report());
    }
    return report;
}

}  // namespace spinscope::scanner
