// spinscope/scanner/procpool.cpp

#include "scanner/procpool.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "scanner/journal.hpp"
#include "scanner/shard.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/resource.hpp"
#include "telemetry/trace.hpp"
#include "util/atomic_file.hpp"
#include "util/io.hpp"
#include "util/proc.hpp"

#ifndef _WIN32
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace spinscope::scanner {

void ProcPoolOptions::validate() const {
    if (procs < 1) throw std::invalid_argument("procpool: procs must be >= 1");
    if (lease_batch < 1) throw std::invalid_argument("procpool: lease_batch must be >= 1");
    if (chunk_attempts < 1) {
        throw std::invalid_argument("procpool: chunk_attempts must be >= 1");
    }
    if (heartbeat_interval.count_nanos() <= 0) {
        throw std::invalid_argument("procpool: heartbeat_interval must be positive");
    }
    if (hang_deadline.count_nanos() <= 0) {
        throw std::invalid_argument("procpool: hang_deadline must be positive");
    }
    if (lease_ttl.count_nanos() <= 0) {
        throw std::invalid_argument("procpool: lease_ttl must be positive");
    }
    proc_restart.validate();
}

#ifndef _WIN32

namespace {

/// Quarantine note used when a chunk burns its process-incarnation budget.
/// The worker-side stale-lease sweep and the supervisor's inline sweep both
/// use this exact text, so whoever loses the (idempotent) publish race wrote
/// the same bytes as the winner.
constexpr const char* kProcQuarantineError = "worker process died repeatedly";

/// Operator-facing location of `chunk` in the campaign's domain namespace,
/// e.g. "chunk 42 (domains [672, 688))" — a chunk id alone is useless for
/// finding a poisoned block in a multi-million-domain universe.
std::string locate_chunk(const Campaign& campaign, std::size_t chunk) {
    const ShardPlan plan{campaign.domain_count(), campaign.options().chunk_domains};
    return describe_chunk(plan, chunk);
}

void sleep_for(util::Duration d) {
    if (d.count_nanos() > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(d.count_nanos()));
    }
}

/// Age of a lease file in wall nanoseconds; nullopt when unreadable (e.g.
/// removed concurrently).
std::optional<std::int64_t> lease_age_ns(const std::filesystem::path& path) {
    std::error_code ec;
    const auto written = std::filesystem::last_write_time(path, ec);
    if (ec) return std::nullopt;
    const auto now = std::filesystem::file_time_type::clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now - written).count();
}

/// Placeholder record for a chunk whose scans keep killing worker processes:
/// the process-level analogue of run_supervised's quarantine, with the same
/// "chunk quarantined: <error>" placeholder text per domain.
ChunkRecord proc_quarantine_record(const Campaign& campaign, std::size_t chunk) {
    ChunkRecord record;
    record.chunk_index = chunk;
    record.quarantined = true;
    // The located variant is a pure function of (campaign geometry, chunk),
    // so racing publishers still write byte-identical records. The per-scan
    // placeholder below keeps the bare text: scans carry their own domain_id.
    record.quarantine_error =
        std::string(kProcQuarantineError) + " at " + locate_chunk(campaign, chunk);
    for (const std::uint32_t id : campaign.chunk_domain_ids(chunk)) {
        DomainScan scan;
        scan.domain_id = id;
        scan.error = std::string("chunk quarantined: ") + kProcQuarantineError;
        record.scans.push_back(std::move(scan));
    }
    return record;
}

/// Scans one chunk with the in-process supervisor's restart semantics — a
/// throwing scan is retried up to ScanOptions::worker_restart.max_attempts
/// times on the chunk's restart stream, then quarantined with the identical
/// placeholder text — so worker-produced records are byte-compatible with
/// what Campaign::run journals. `on_restart` fires before each retry sleep.
ChunkRecord scan_chunk_record(const Campaign& campaign, std::size_t chunk,
                              const std::function<void()>& on_restart) {
    const faults::RetryPolicy& restart = campaign.options().worker_restart;
    util::Rng rng =
        faults::RetryPolicy::restart_stream(campaign.options().seed, chunk);
    ChunkRecord record;
    record.chunk_index = chunk;
    std::string error;
    for (int attempt = 1;; ++attempt) {
        try {
            ScannedChunk scanned = campaign.scan_chunk(chunk);
            record.scans = std::move(scanned.scans);
            record.telemetry_snapshot = std::move(scanned.telemetry_snapshot);
            return record;
        } catch (const std::exception& e) {
            error = e.what();
        } catch (...) {
            error = "unknown error";
        }
        if (attempt >= restart.max_attempts) break;
        if (on_restart) on_restart();
        sleep_for(restart.backoff_delay(attempt, rng));
    }
    record.quarantined = true;
    record.quarantine_error = error;
    for (const std::uint32_t id : campaign.chunk_domain_ids(chunk)) {
        DomainScan scan;
        scan.domain_id = id;
        scan.error = "chunk quarantined: " + error;
        record.scans.push_back(std::move(scan));
    }
    return record;
}

/// Examines the lease on `chunk` and clears it when stale (dead owner, or
/// older than lease_ttl regardless of owner — the pid-reuse guard). Returns
/// the stale lease's attempt count when the chunk became claimable, nullopt
/// when a live peer holds it or someone else won the release race. A stale
/// lease that had already exhausted chunk_attempts is quarantined on the
/// spot (`*quarantined` incremented) and reported unclaimable — the chunk is
/// finished, not available.
std::optional<std::uint64_t> clear_stale_lease(util::Io& io, const Campaign& campaign,
                                               const ProcPoolOptions& options,
                                               const std::filesystem::path& dir,
                                               std::size_t chunk,
                                               std::uint64_t* quarantined) {
    const auto lease = read_lease(dir, chunk);
    if (!lease) {
        std::error_code ec;
        if (std::filesystem::exists(lease_path(dir, chunk), ec)) {
            // Garbled lease file (torn write of a crashed claimer): break it
            // with the token-0 override.
            if (!release_lease(dir, chunk, 0)) return std::nullopt;
        }
        return 0;
    }
    const bool dead = !util::process_alive(lease->pid);
    bool expired = false;
    if (!dead) {
        if (const auto age = lease_age_ns(lease_path(dir, chunk))) {
            expired = *age > options.lease_ttl.count_nanos();
        }
    }
    if (!dead && !expired) return std::nullopt;
    // Fencing: release exactly the incarnation we inspected. If the owner
    // re-claimed with a new token in between, this fails and we back off.
    if (!release_lease(dir, chunk, lease->token)) return std::nullopt;
    if (lease->attempts >= options.chunk_attempts) {
        // Every process that touched this chunk died on it: publish the
        // quarantine placeholder instead of feeding it another incarnation.
        // Best-effort: a failed publish leaves the chunk unclaimed and the
        // next sweep (or the supervisor's inline pass) retries it.
        (void)write_map_chunk(io, dir, proc_quarantine_record(campaign, chunk));
        if (quarantined != nullptr) ++*quarantined;
        return std::nullopt;
    }
    return lease->attempts;
}

/// Everything a forked worker needs. Lives in the child's (copy-on-write)
/// address space; nothing here is shared back to the supervisor.
struct WorkerContext {
    const Campaign* campaign = nullptr;
    const ProcPoolOptions* options = nullptr;
    util::Io* io = nullptr;  // the campaign's storage seam (DESIGN.md §16)
    std::filesystem::path dir;
    unsigned slot = 0;
    std::uint64_t token = 0;
    int pipe_fd = -1;
};

/// The worker process body: claim a batch of leases, scan and publish each
/// chunk, repeat until every chunk of the campaign has a record. Exit codes:
/// 0 = no work left, 2 = unexpected exception, 3 = publish failed.
int worker_main(const WorkerContext& ctx) noexcept {
    try {
        ::signal(SIGPIPE, SIG_IGN);
        const ProcPoolOptions& opt = *ctx.options;
        const Campaign& campaign = *ctx.campaign;
        if (opt.rss_hard_limit > 0) {
            // RLIMIT_AS is address space, not resident set, but it is the
            // portable way to make a runaway worker's allocations FAIL (and
            // the worker die and restart) instead of wedging the host.
            struct rlimit lim;
            lim.rlim_cur = opt.rss_hard_limit;
            lim.rlim_max = opt.rss_hard_limit;
            (void)::setrlimit(RLIMIT_AS, &lim);
        }
        const auto send = [&](const std::string& line) {
            (void)util::write_line(ctx.pipe_fd, line);
        };
        const auto heartbeat = [&] {
            send("hb " + std::to_string(telemetry::current_rss_bytes()));
        };
        heartbeat();
        const std::size_t total = campaign.chunk_count();
        if (total == 0) return 0;
        std::size_t batch = opt.lease_batch;
        // Striped start point: slots begin their claim walk at different
        // offsets so they do not all fight over chunk 0's lease at startup.
        std::size_t cursor =
            static_cast<std::size_t>(ctx.slot) * total / std::max(1u, opt.procs);
        for (;;) {
            std::vector<ChunkLease> claimed;
            bool any_pending = false;
            for (std::size_t step = 0; step < total && claimed.size() < batch; ++step) {
                const std::size_t c = (cursor + step) % total;
                std::error_code ec;
                if (std::filesystem::exists(map_chunk_path(ctx.dir, c), ec)) continue;
                any_pending = true;
                std::uint64_t quarantined = 0;
                const auto prior =
                    clear_stale_lease(*ctx.io, campaign, opt, ctx.dir, c, &quarantined);
                if (quarantined > 0) {
                    send("pquar " + std::to_string(c));
                    continue;
                }
                if (!prior) continue;
                ChunkLease lease;
                lease.chunk_index = c;
                lease.pid = util::current_pid();
                lease.token = ctx.token;
                // Inherit the scan-start count unchanged: merely HOLDING a
                // lease when the process dies must not taint the chunk — only
                // dying mid-scan does (the bump below, right before scanning).
                lease.attempts = *prior;
                const util::IoResult claimed_res = claim_lease(*ctx.io, ctx.dir, lease);
                if (!claimed_res) {
                    // EEXIST is the normal lost-claim race; anything else is
                    // the disk failing under us — report the real cause.
                    if (claimed_res.err != EEXIST) {
                        send("ioerr claim chunk " + std::to_string(c) + ": " +
                             claimed_res.message());
                    }
                    continue;
                }
                if (opt.worker_event_hook) opt.worker_event_hook(ctx.slot, "claim", c);
                send("claim " + std::to_string(c));
                claimed.push_back(lease);
            }
            if (claimed.empty()) {
                if (!any_pending) return 0;  // every chunk has a record
                // Live peers hold all remaining work: wait for them (or for
                // their leases to go stale) with the heartbeat flowing.
                heartbeat();
                sleep_for(opt.heartbeat_interval);
                cursor = (cursor + 1) % total;
                continue;
            }
            for (ChunkLease lease : claimed) {
                const std::size_t c = lease.chunk_index;
                heartbeat();
                // Mark the scan as STARTED: a death from here until publish
                // charges one attempt against the chunk. We own the lease, so
                // an atomic rewrite (same token, attempts+1) is race-free.
                ++lease.attempts;
                const util::IoResult bumped = util::write_file_atomic(
                    *ctx.io, lease_path(ctx.dir, c), serialize_lease(lease));
                if (!bumped) {
                    // Non-fatal (the lease is advisory bookkeeping), but the
                    // supervisor should know the disk dropped a write.
                    send("ioerr lease bump chunk " + std::to_string(c) + ": " +
                         bumped.message());
                }
                ChunkRecord record = scan_chunk_record(campaign, c, [&] {
                    send("restart 1");
                    heartbeat();
                });
                if (opt.worker_event_hook) opt.worker_event_hook(ctx.slot, "scanned", c);
                const util::IoResult published = write_map_chunk(*ctx.io, ctx.dir, record);
                if (!published) {
                    // Publish is the one write that matters: without the
                    // record the scan never happened. Attribute the cause,
                    // then die with the publish-failed exit code so the
                    // supervisor can restart (or finish inline).
                    send("ioerr publish chunk " + std::to_string(c) + ": " +
                         published.message());
                    return 3;
                }
                if (opt.worker_event_hook) {
                    opt.worker_event_hook(ctx.slot, "published", c);
                }
                (void)release_lease(ctx.dir, c, ctx.token);
                send("done " + std::to_string(c));
                if (opt.rss_soft_budget > 0 && batch > 1 &&
                    telemetry::current_rss_bytes() > opt.rss_soft_budget) {
                    // Soft budget tripped: degrade to single-chunk batches
                    // instead of growing until the hard limit kills us.
                    batch = 1;
                    send("batch 1");
                }
            }
            cursor = (claimed.back().chunk_index + 1) % total;
        }
    } catch (...) {
        return 2;
    }
}

/// Supervisor-side state of one worker slot across its incarnations.
struct WorkerSlot {
    long pid = -1;
    std::optional<util::Pipe> pipe;        // read end only (write end closed)
    std::optional<util::LineReader> reader;
    std::chrono::steady_clock::time_point last_hb{};
    int incarnations = 0;
    std::uint64_t token = 0;
    util::Rng backoff_rng;
    bool alive = false;
    bool exhausted = false;   // restart budget spent
    bool hang_killed = false; // current incarnation was SIGKILLed for silence
    std::uint64_t peak_rss = 0;
    std::int64_t spawn_ns = 0;
    int lane = -1;
};

}  // namespace

ProcPoolReport run_procs(const Campaign& campaign, const ProcPoolOptions& options) {
    options.validate();
    const ScanOptions& sopt = campaign.options();
    if (sopt.journal_dir.empty()) {
        throw std::invalid_argument(
            "procpool: the campaign has no journal_dir — multi-process execution "
            "needs a shared map journal");
    }
    const std::filesystem::path dir = sopt.journal_dir;
    util::Io& io = util::resolve_io(sopt.io);

    CampaignHeader header;
    header.seed = sopt.seed;
    header.week = sopt.week;
    header.ipv6 = sopt.ipv6;
    header.chunk_domains = sopt.chunk_domains;
    header.domain_count = campaign.domain_count();
    header.has_telemetry = campaign.metrics() != nullptr;
    init_map_journal(io, dir, header, options.fresh);

    // Exclusive campaign ownership of the directory for the whole map pass.
    // Forked children inherit the held flag but _exit without running
    // destructors, so only the supervisor ever releases it.
    util::PidLockFile journal_lock;
    try {
        journal_lock.acquire(journal_lock_path(dir));
    } catch (const std::runtime_error& e) {
        throw std::runtime_error(
            "procpool: journal dir '" + dir.string() +
            "' is in use by another campaign (" + e.what() +
            "); this campaign spans domains [0, " +
            std::to_string(campaign.domain_count()) + ") in " +
            std::to_string(campaign.chunk_count()) + " chunks");
    }

    ProcPoolReport report;
    report.procs = options.procs;
    report.chunks_total = campaign.chunk_count();

    telemetry::MetricsRegistry* metrics = campaign.metrics();
    telemetry::TraceRecorder* trace = campaign.trace();

    std::vector<WorkerSlot> slots(options.procs);
    std::uint64_t next_token = 1;

    const auto spawn = [&](unsigned index) {
        WorkerSlot& slot = slots[index];
        util::Pipe pipe;  // throws std::runtime_error on failure
        const std::uint64_t token = next_token++;
        const ::pid_t child = ::fork();
        if (child < 0) {
            throw std::runtime_error(std::string("procpool: fork failed: ") +
                                     std::strerror(errno));
        }
        if (child == 0) {
            // Worker process. Leave only via _exit: no destructors, no exit
            // handlers, no stdio flushing — the parent owns all of those.
            pipe.close_read();
            WorkerContext ctx;
            ctx.campaign = &campaign;
            ctx.options = &options;
            ctx.io = &io;
            ctx.dir = dir;
            ctx.slot = index;
            ctx.token = token;
            ctx.pipe_fd = pipe.write_fd();
            ::_exit(worker_main(ctx));
        }
        pipe.close_write();
        (void)util::set_nonblocking(pipe.read_fd());
        slot.pid = child;
        slot.pipe.emplace(std::move(pipe));
        slot.reader.emplace(slot.pipe->read_fd());
        slot.last_hb = std::chrono::steady_clock::now();
        slot.token = token;
        ++slot.incarnations;
        slot.alive = true;
        slot.hang_killed = false;
        if (trace != nullptr) slot.spawn_ns = trace->wall_now_ns();
    };

    const auto handle_line = [&](WorkerSlot& slot, const std::string& line) {
        // Any traffic proves liveness, not just heartbeats.
        slot.last_hb = std::chrono::steady_clock::now();
        const auto space = line.find(' ');
        const std::string verb = line.substr(0, space);
        const std::string arg =
            space == std::string::npos ? std::string{} : line.substr(space + 1);
        std::uint64_t value = 0;
        if (!arg.empty()) value = std::strtoull(arg.c_str(), nullptr, 10);
        if (verb == "hb") {
            slot.peak_rss = std::max(slot.peak_rss, value);
        } else if (verb == "restart") {
            report.worker_thread_restarts += value;
        } else if (verb == "pquar") {
            ++report.chunks_quarantined;
        } else if (verb == "ioerr") {
            // A worker hit a real storage failure (not a lost race). Count
            // and keep the attributed cause for the report; the worker's own
            // exit code decides whether this was fatal to the incarnation.
            ++report.io_errors;
            report.last_io_error = arg;
            if (trace != nullptr && slot.lane >= 0) {
                trace->instant(telemetry::TraceClock::wall, slot.lane,
                               "ioerr " + arg, trace->wall_now_ns());
            }
        } else if (verb == "done" || verb == "claim" || verb == "batch") {
            if (trace != nullptr && slot.lane >= 0) {
                trace->instant(telemetry::TraceClock::wall, slot.lane, verb + " " + arg,
                               trace->wall_now_ns());
            }
        }
    };

    const auto drain_slot = [&](WorkerSlot& slot) {
        if (!slot.reader) return;
        for (;;) {
            std::vector<std::string> lines;
            const bool open = slot.reader->drain(lines);
            for (const std::string& line : lines) handle_line(slot, line);
            if (!open || lines.empty()) break;
        }
    };

    const auto handle_death = [&](unsigned index, WorkerSlot& slot, int status) {
        drain_slot(slot);  // the pipe buffer outlives the process
        if (trace != nullptr && slot.lane >= 0) {
            const std::int64_t now_ns = trace->wall_now_ns();
            trace->complete(telemetry::TraceClock::wall, slot.lane, "incarnation",
                            slot.spawn_ns, now_ns - slot.spawn_ns,
                            {telemetry::TraceArg::num("pid",
                                                      static_cast<std::uint64_t>(slot.pid)),
                             telemetry::TraceArg::num("status",
                                                      static_cast<std::uint64_t>(status))});
        }
        slot.reader.reset();
        slot.pipe.reset();
        slot.alive = false;
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (clean) return;  // worker found no work left — not a death
        if (slot.incarnations >= options.proc_restart.max_attempts) {
            slot.exhausted = true;
            return;
        }
        // Restart with backoff on the slot's own jitter stream. Leases the
        // dead incarnation still held are NOT swept here: every live worker's
        // claim walk (and the inline sweep at the end) detects the dead pid
        // and reclaims them, and the fencing token guarantees nobody can
        // sweep the replacement's fresh leases by mistake.
        sleep_for(options.proc_restart.backoff_delay(slot.incarnations,
                                                     slot.backoff_rng));
        spawn(index);
        ++report.proc_restarts;
        if (metrics != nullptr) metrics->counter("campaign.restarted_procs").add(1);
    };

    for (unsigned i = 0; i < options.procs; ++i) {
        slots[i].backoff_rng = faults::RetryPolicy::restart_stream(sopt.seed, i);
        if (trace != nullptr) {
            slots[i].lane = trace->lane(telemetry::TraceClock::wall,
                                        "proc worker " + std::to_string(i));
        }
        spawn(i);
    }

    const int poll_ms =
        std::max(1, static_cast<int>(options.heartbeat_interval.count_millis()));
    for (;;) {
        std::vector<struct pollfd> fds;
        std::vector<unsigned> fd_slot;
        for (unsigned i = 0; i < options.procs; ++i) {
            if (!slots[i].alive) continue;
            fds.push_back({slots[i].pipe->read_fd(), POLLIN, 0});
            fd_slot.push_back(i);
        }
        if (fds.empty()) break;
        const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), poll_ms);
        if (rc < 0 && errno != EINTR) {
            throw std::runtime_error(std::string("procpool: poll failed: ") +
                                     std::strerror(errno));
        }
        for (std::size_t f = 0; f < fds.size(); ++f) {
            if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
            drain_slot(slots[fd_slot[f]]);
        }
        const auto now = std::chrono::steady_clock::now();
        for (unsigned i = 0; i < options.procs; ++i) {
            WorkerSlot& slot = slots[i];
            if (!slot.alive) continue;
            int status = 0;
            const ::pid_t reaped = ::waitpid(static_cast<::pid_t>(slot.pid), &status,
                                             WNOHANG);
            if (reaped == slot.pid) {
                handle_death(i, slot, status);
                continue;
            }
            const auto silence =
                std::chrono::duration_cast<std::chrono::nanoseconds>(now - slot.last_hb)
                    .count();
            if (!slot.hang_killed && silence > options.hang_deadline.count_nanos()) {
                // Hung (wedged syscall, livelock, stopped): SIGKILL now; the
                // death is reaped on the next loop and restarts as usual.
                (void)::kill(static_cast<::pid_t>(slot.pid), SIGKILL);
                slot.hang_killed = true;
                ++report.hang_kills;
                if (trace != nullptr && slot.lane >= 0) {
                    trace->instant(telemetry::TraceClock::wall, slot.lane, "hang kill",
                                   trace->wall_now_ns());
                }
            }
        }
    }

    // Last-resort completion on the supervisor thread: every slot has exited
    // — cleanly (no claimable work left) or with its restart budget spent.
    // Chunks still missing a record are finished inline, with the same
    // attempts bookkeeping the workers apply.
    for (std::size_t c = 0; c < report.chunks_total; ++c) {
        std::error_code ec;
        if (std::filesystem::exists(map_chunk_path(dir, c), ec)) continue;
        std::uint64_t quarantined = 0;
        (void)clear_stale_lease(io, campaign, options, dir, c, &quarantined);
        if (quarantined > 0) {
            report.chunks_quarantined += quarantined;
            continue;
        }
        // A lease surviving to here belongs to a dead campaign of ours (all
        // children are reaped) or a foreign pid-reuse victim; either way the
        // supervisor owns the directory now, so force it off.
        if (const auto lease = read_lease(dir, c)) {
            (void)release_lease(dir, c, lease->token);
            if (lease->attempts >= options.chunk_attempts) {
                (void)write_map_chunk(io, dir, proc_quarantine_record(campaign, c));
                ++report.chunks_quarantined;
                continue;
            }
        }
        const ChunkRecord record = scan_chunk_record(
            campaign, c, [&] { ++report.worker_thread_restarts; });
        const util::IoResult published = write_map_chunk(io, dir, record);
        if (!published) {
            // Last-resort completion has no further fallback: refuse loudly
            // with the storage cause attributed.
            throw std::runtime_error("procpool: cannot publish record for " +
                                     locate_chunk(campaign, c) + " in '" +
                                     dir.string() + "': " + published.message());
        }
        ++report.chunks_scanned_inline;
    }

    for (std::size_t c = 0; c < report.chunks_total; ++c) {
        std::error_code ec;
        if (std::filesystem::exists(map_chunk_path(dir, c), ec)) {
            ++report.chunks_recorded;
        }
    }
    if (report.chunks_recorded != report.chunks_total) {
        throw std::runtime_error("procpool: map pass finished with missing chunks");
    }

    if (metrics != nullptr) {
        // campaign.restarted_procs is counted incrementally at each re-fork;
        // the rest lands here. All of it is excluded from deterministic_csv.
        if (report.worker_thread_restarts > 0) {
            metrics->counter("campaign.restarted_workers")
                .add(report.worker_thread_restarts);
        }
        if (report.hang_kills > 0) {
            metrics->counter("obs.proc.hang_kills").add(report.hang_kills);
        }
        if (report.chunks_quarantined > 0) {
            metrics->counter("obs.proc.chunks_quarantined")
                .add(report.chunks_quarantined);
        }
        if (report.chunks_scanned_inline > 0) {
            metrics->counter("obs.proc.chunks_scanned_inline")
                .add(report.chunks_scanned_inline);
        }
        if (report.io_errors > 0) {
            metrics->counter("obs.proc.io_errors").add(report.io_errors);
        }
        metrics->gauge("obs.proc.procs").set(static_cast<double>(options.procs));
        std::uint64_t peak = 0;
        for (const WorkerSlot& slot : slots) peak = std::max(peak, slot.peak_rss);
        if (peak > 0) {
            metrics->gauge("obs.proc.peak_worker_rss_bytes")
                .set(static_cast<double>(peak));
        }
    }
    return report;
}

#else  // _WIN32

ProcPoolReport run_procs(const Campaign&, const ProcPoolOptions& options) {
    options.validate();
    throw std::runtime_error(
        "procpool: multi-process execution requires fork(); this platform has none");
}

#endif

}  // namespace spinscope::scanner
