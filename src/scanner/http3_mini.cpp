#include "scanner/http3_mini.hpp"

#include <charconv>

#include "util/format.hpp"

namespace spinscope::scanner {

namespace {

constexpr std::string_view kRequestPrefix = "GET https://";
constexpr std::string_view kRequestSuffix = "/ H3-MINI\nvia: spinscope-research-scan\n";
constexpr std::string_view kStatusPrefix = "H3-MINI ";
constexpr std::string_view kLocationPrefix = "location: ";
constexpr std::string_view kServerPrefix = "server: ";
constexpr std::string_view kHeaderEnd = "\n\n";

using util::as_bytes;
using util::as_text;

}  // namespace

std::vector<std::uint8_t> build_request(const std::string& host) {
    std::string out;
    out += kRequestPrefix;
    out += host;
    out += kRequestSuffix;
    return as_bytes(out);
}

std::optional<std::string> parse_request(std::span<const std::uint8_t> request) {
    const std::string_view text = as_text(request);
    if (text.rfind(kRequestPrefix, 0) != 0) return std::nullopt;
    const auto host_begin = kRequestPrefix.size();
    const auto host_end = text.find('/', host_begin);
    if (host_end == std::string_view::npos) return std::nullopt;
    return std::string{text.substr(host_begin, host_end - host_begin)};
}

std::vector<std::uint8_t> build_response_headers(int status, const std::string& location,
                                                 const std::string& server_name) {
    std::string out;
    out += kStatusPrefix;
    out += std::to_string(status);
    out += "\n";
    out += kServerPrefix;
    out += server_name;
    out += "\n";
    if (!location.empty()) {
        out += kLocationPrefix;
        out += location;
        out += "\n";
    }
    out += "\n";  // blank line ends headers
    return as_bytes(out);
}

std::vector<std::uint8_t> build_body(std::size_t size) {
    std::vector<std::uint8_t> body(size);
    static constexpr std::string_view kFiller = "<p>spinscope synthetic page content</p>";
    for (std::size_t i = 0; i < size; ++i) {
        body[i] = static_cast<std::uint8_t>(kFiller[i % kFiller.size()]);
    }
    return body;
}

std::optional<ResponseInfo> parse_response(std::span<const std::uint8_t> response) {
    const std::string_view text = as_text(response);
    if (text.rfind(kStatusPrefix, 0) != 0) return std::nullopt;
    ResponseInfo info;
    const std::string_view status_text = text.substr(kStatusPrefix.size());
    std::from_chars(status_text.data(), status_text.data() + status_text.size(), info.status);

    const auto headers_end = text.find(kHeaderEnd);
    if (headers_end == std::string_view::npos) return std::nullopt;
    const std::string_view headers = text.substr(0, headers_end + 1);
    info.body_bytes = text.size() - headers_end - kHeaderEnd.size();

    const auto find_header = [&headers](std::string_view prefix) -> std::string {
        const auto pos = headers.find(prefix);
        if (pos == std::string_view::npos) return {};
        const auto value_begin = pos + prefix.size();
        const auto value_end = headers.find('\n', value_begin);
        return std::string{headers.substr(value_begin, value_end - value_begin)};
    };
    info.location = find_header(kLocationPrefix);
    info.server_name = find_header(kServerPrefix);
    return info;
}

std::vector<std::uint8_t> build_settings(bool server) {
    std::string out = server ? "SETTINGS qpack=0 max_field_section=16384 srv=1\n"
                             : "SETTINGS qpack=0 max_field_section=16384 cli=1\n";
    return as_bytes(out);
}

}  // namespace spinscope::scanner
