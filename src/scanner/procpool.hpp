// spinscope/scanner/procpool.hpp
//
// Multi-process campaign execution: a supervisor that forks N worker
// processes, each scanning leased chunks into one shared map-layout journal
// directory (DESIGN.md §13).
//
// PR 5's in-process supervision survives a chunk whose scan THROWS; it
// cannot survive the failures that dominate week-long full-machine sweeps —
// OOM kills, segfaults, wedged processes. The process pool adds that layer:
// workers are disposable OS processes, their only durable output is
// atomically-published per-chunk record files, and the supervisor's job is
// liveness (heartbeats, kill-on-hang, restart-with-backoff) and lease
// hygiene. Because chunk scans are pure functions of the campaign options
// (DESIGN.md §9) and record publication is an atomic rename, `kill -9` of
// any worker at any instant changes nothing about the eventual output —
// Campaign::reduce folds whatever set of records survived, rescans the
// rest, and produces a byte-identical result to a single-process run.
//
// Division of labour:
//   run_procs()        parent: lease/scan/publish every chunk (the "map")
//   Campaign::reduce   parent, afterwards: ordered merge (the "reduce")
//
// Leases (`chunk-NNNNN.lease`) are an efficiency and liveness mechanism,
// not a correctness one: they stop live workers from duplicating work, and
// their pid + fencing token lets the supervisor re-lease a dead worker's
// chunks without ever sweeping away a live worker's claim. A worker that
// cannot find claimable work waits for its peers; a worker whose process
// keeps dying on the same chunk gets that chunk quarantined by the
// supervisor after a bounded number of incarnations.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "faults/retry_policy.hpp"
#include "scanner/campaign.hpp"
#include "util/time.hpp"

namespace spinscope::scanner {

/// Knobs of one multi-process map pass. All durations are WALL clock — this
/// is host supervision, not simulation.
struct ProcPoolOptions {
    /// Worker processes to fork (>= 1).
    unsigned procs = 2;
    /// Start from a wiped map journal (a fresh campaign). With false, an
    /// existing map journal for the SAME campaign is continued — chunks with
    /// published records are skipped — which is how a killed supervisor's
    /// campaign is picked back up.
    bool fresh = true;
    /// Chunks a worker leases per claim round (>= 1). Larger batches
    /// amortize directory traffic; a worker that trips its soft RSS budget
    /// degrades its batch to 1 instead of dying.
    std::size_t lease_batch = 4;
    /// Worker heartbeat cadence; also the supervisor's poll granularity.
    util::Duration heartbeat_interval = util::Duration::millis(20);
    /// Silence longer than this marks a worker hung: SIGKILL + restart.
    util::Duration hang_deadline = util::Duration::seconds(30);
    /// A lease older than this is stale regardless of its owner pid —
    /// belt-and-braces against pid reuse after a crashed earlier campaign.
    util::Duration lease_ttl = util::Duration::seconds(300);
    /// Process incarnations a single chunk may burn before the supervisor
    /// quarantines it (>= 1): its record is then published as quarantined
    /// placeholders, attributing the repeated worker deaths to the chunk.
    std::uint64_t chunk_attempts = 3;
    /// Restart-with-backoff schedule per worker SLOT: max_attempts is the
    /// total number of process incarnations of one slot (1 = never re-fork).
    /// Backoff jitter draws from RetryPolicy::restart_stream(campaign seed,
    /// slot), so supervision never touches any domain's scan stream.
    faults::RetryPolicy proc_restart{3, util::Duration::millis(10), 2.0,
                                     util::Duration::millis(200), true};
    /// Soft per-worker RSS budget in bytes (0 = off): a worker observing
    /// itself above it shrinks its lease batch to 1 (graceful degradation)
    /// instead of growing until the kernel kills it.
    std::uint64_t rss_soft_budget = 0;
    /// Hard per-worker address-space rlimit in bytes (0 = off). Crossing it
    /// makes allocation fail in the worker — which then dies and is
    /// restarted — rather than taking the whole machine down.
    std::uint64_t rss_hard_limit = 0;
    /// TEST hook: invoked IN THE WORKER PROCESS at lifecycle points —
    /// phase is "claim" (right after a lease is claimed), "scanned" (chunk
    /// scanned, record not yet published) or "published" (record on disk,
    /// lease not yet released). The chaos kill-sweep raises SIGKILL from
    /// here. Keep null in production.
    std::function<void(unsigned slot, const char* phase, std::size_t chunk)>
        worker_event_hook;

    /// Throws std::invalid_argument on nonsensical knobs.
    void validate() const;
};

/// What the supervisor observed across one map pass.
struct ProcPoolReport {
    unsigned procs = 0;
    /// Worker process re-forks (beyond each slot's first incarnation).
    std::uint64_t proc_restarts = 0;
    /// Workers SIGKILLed for missing their hang deadline (subset of the
    /// deaths that produced proc_restarts).
    std::uint64_t hang_kills = 0;
    /// Thread-level scan restarts inside workers (reported over the
    /// heartbeat channel; the in-worker run_supervised analogue).
    std::uint64_t worker_thread_restarts = 0;
    /// Chunks the SUPERVISOR quarantined after chunk_attempts process
    /// incarnations died on them.
    std::uint64_t chunks_quarantined = 0;
    /// Chunks the supervisor scanned inline because every worker slot had
    /// exhausted its restart budget (last-resort completion).
    std::uint64_t chunks_scanned_inline = 0;
    /// Chunk records present in the map journal when the pass finished.
    std::uint64_t chunks_recorded = 0;
    std::uint64_t chunks_total = 0;
    /// Storage-level I/O failures workers reported over the heartbeat
    /// channel (lease claims and record publishes that failed for a real
    /// reason, not a lost race). Nonzero with a complete map pass means the
    /// retry/restart machinery absorbed the faults.
    std::uint64_t io_errors = 0;
    /// The most recent worker-reported I/O failure, with its errno cause —
    /// attribution for postmortems when io_errors > 0.
    std::string last_io_error;
};

/// Runs the map pass: forks `options.procs` workers that lease and scan
/// every chunk of `campaign` into the map-layout journal at
/// ScanOptions::journal_dir, supervising them until every chunk has a
/// published record. The campaign's metrics registry (if attached) receives
/// process-level observability — campaign.restarted_procs,
/// campaign.restarted_workers, obs.proc.* gauges — and its trace recorder
/// (if attached) gets wall-clock worker-incarnation lanes; neither perturbs
/// deterministic output (both prefixes are excluded from
/// telemetry::deterministic_csv). Returns once the map journal is complete.
///
/// Holds the journal.lock while running. Call Campaign::reduce afterwards
/// for the merged result. Throws std::invalid_argument on bad options or an
/// empty journal_dir, std::runtime_error on supervision failures or on
/// platforms without fork().
ProcPoolReport run_procs(const Campaign& campaign, const ProcPoolOptions& options);

}  // namespace spinscope::scanner
