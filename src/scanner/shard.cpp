#include "scanner/shard.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace spinscope::scanner {

unsigned ShardConfig::resolved_threads() const noexcept {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void run_sharded(const ShardConfig& config, const ShardPlan& plan,
                 const std::function<void(std::size_t chunk)>& scan,
                 const std::function<void(std::size_t chunk)>& merge) {
    config.validate();
    const std::size_t chunks = plan.chunk_count();
    if (chunks == 0) return;

    // More workers than chunks would only park threads on an empty cursor.
    const std::size_t workers =
        std::min<std::size_t>(config.resolved_threads(), chunks);

    std::mutex mu;
    std::condition_variable chunk_done;
    std::vector<char> done(chunks, 0);   // guarded by mu
    std::exception_ptr failure;          // guarded by mu; first failure wins
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> cancelled{false};

    const auto fail_with_current_exception = [&] {
        cancelled.store(true, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock{mu};
            if (!failure) failure = std::current_exception();
        }
        chunk_done.notify_all();
    };

    const auto worker_main = [&] {
        while (!cancelled.load(std::memory_order_relaxed)) {
            const std::size_t chunk = cursor.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= chunks) return;
            try {
                scan(chunk);
            } catch (...) {
                fail_with_current_exception();
                return;
            }
            {
                std::lock_guard<std::mutex> lock{mu};
                done[chunk] = 1;
            }
            chunk_done.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker_main);
    const auto join_all = [&pool] {
        for (auto& worker : pool) {
            if (worker.joinable()) worker.join();
        }
    };

    // Ordered streaming merge on the calling thread: wait for the next chunk
    // in sequence, merge it, repeat. Scans of later chunks overlap with the
    // merge of earlier ones.
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        {
            std::unique_lock<std::mutex> lock{mu};
            chunk_done.wait(lock, [&] { return done[chunk] != 0 || failure != nullptr; });
            if (failure != nullptr) break;
        }
        try {
            merge(chunk);
        } catch (...) {
            fail_with_current_exception();
            break;
        }
    }

    join_all();
    if (failure != nullptr) std::rethrow_exception(failure);
}

}  // namespace spinscope::scanner
