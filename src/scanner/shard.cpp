#include "scanner/shard.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace spinscope::scanner {

unsigned ShardConfig::resolved_threads() const noexcept {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void run_sharded(const ShardConfig& config, const ShardPlan& plan,
                 const std::function<void(std::size_t chunk)>& scan,
                 const std::function<void(std::size_t chunk)>& merge) {
    config.validate();
    const std::size_t chunks = plan.chunk_count();
    if (chunks == 0) return;

    // More workers than chunks would only park threads on an empty cursor.
    const std::size_t workers =
        std::min<std::size_t>(config.resolved_threads(), chunks);

    std::mutex mu;
    std::condition_variable chunk_done;
    std::vector<char> done(chunks, 0);   // guarded by mu
    std::exception_ptr failure;          // guarded by mu; first failure wins
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> cancelled{false};

    const auto fail_with_current_exception = [&] {
        cancelled.store(true, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock{mu};
            if (!failure) failure = std::current_exception();
        }
        chunk_done.notify_all();
    };

    const auto worker_main = [&] {
        while (!cancelled.load(std::memory_order_relaxed)) {
            const std::size_t chunk = cursor.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= chunks) return;
            try {
                scan(chunk);
            } catch (...) {
                fail_with_current_exception();
                return;
            }
            {
                std::lock_guard<std::mutex> lock{mu};
                done[chunk] = 1;
            }
            chunk_done.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker_main);
    const auto join_all = [&pool] {
        for (auto& worker : pool) {
            if (worker.joinable()) worker.join();
        }
    };

    // Ordered streaming merge on the calling thread: wait for the next chunk
    // in sequence, merge it, repeat. Scans of later chunks overlap with the
    // merge of earlier ones.
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        {
            std::unique_lock<std::mutex> lock{mu};
            chunk_done.wait(lock, [&] { return done[chunk] != 0 || failure != nullptr; });
            if (failure != nullptr) break;
        }
        try {
            merge(chunk);
        } catch (...) {
            fail_with_current_exception();
            break;
        }
    }

    join_all();
    if (failure != nullptr) std::rethrow_exception(failure);
}

SupervisionReport run_supervised(const ShardConfig& config, const ShardPlan& plan,
                                 const SupervisorConfig& supervisor,
                                 const std::function<void(std::size_t chunk)>& scan,
                                 const std::function<void(std::size_t chunk)>& merge,
                                 const std::function<void(const ChunkFailure&)>& quarantine) {
    config.validate();
    supervisor.restart.validate();
    SupervisionReport report;
    const std::size_t chunks = plan.chunk_count();
    if (chunks == 0) return report;

    const std::size_t workers =
        std::min<std::size_t>(config.resolved_threads(), chunks);

    enum : char { kPending = 0, kScanned = 1, kQuarantined = 2 };

    std::mutex mu;
    std::condition_variable chunk_done;
    std::vector<char> done(chunks, kPending);     // guarded by mu
    std::vector<ChunkFailure> failures(chunks);   // slot c published with done[c]
    std::exception_ptr failure;                   // guarded by mu; merge/quarantine only
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> cancelled{false};
    std::atomic<std::uint64_t> restarts{0};

    const auto fail_with_current_exception = [&] {
        cancelled.store(true, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock{mu};
            if (!failure) failure = std::current_exception();
        }
        chunk_done.notify_all();
    };

    const auto worker_main = [&] {
        while (!cancelled.load(std::memory_order_relaxed)) {
            const std::size_t chunk = cursor.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= chunks) return;
            auto restart_rng =
                faults::RetryPolicy::restart_stream(supervisor.seed, chunk);
            ChunkFailure fail;
            fail.chunk = chunk;
            bool scanned = false;
            while (!cancelled.load(std::memory_order_relaxed)) {
                ++fail.attempts;
                try {
                    scan(chunk);
                    scanned = true;
                    break;
                } catch (const std::exception& e) {
                    fail.error = e.what();
                } catch (...) {
                    fail.error = "unknown exception";
                }
                if (fail.attempts >= supervisor.restart.max_attempts) break;
                // Restart with backoff: a crash is often environmental
                // (resource exhaustion, injected fault), so back off before
                // re-executing instead of hammering the same chunk.
                restarts.fetch_add(1, std::memory_order_relaxed);
                const auto delay =
                    supervisor.restart.backoff_delay(fail.attempts, restart_rng);
                if (supervisor.sleep_on_restart && delay > util::Duration::zero()) {
                    std::this_thread::sleep_for(
                        std::chrono::nanoseconds{delay.count_nanos()});
                }
            }
            {
                std::lock_guard<std::mutex> lock{mu};
                if (scanned) {
                    done[chunk] = kScanned;
                } else {
                    failures[chunk] = std::move(fail);
                    done[chunk] = kQuarantined;
                }
            }
            chunk_done.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker_main);
    const auto join_all = [&pool] {
        for (auto& worker : pool) {
            if (worker.joinable()) worker.join();
        }
    };

    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        char state = kPending;
        {
            std::unique_lock<std::mutex> lock{mu};
            chunk_done.wait(lock,
                            [&] { return done[chunk] != kPending || failure != nullptr; });
            if (failure != nullptr) break;
            state = done[chunk];
        }
        try {
            if (state == kScanned) {
                merge(chunk);
            } else {
                ++report.quarantined;
                quarantine(failures[chunk]);
            }
        } catch (...) {
            fail_with_current_exception();
            break;
        }
    }

    join_all();
    report.restarts = restarts.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock{mu};
        if (failure != nullptr) std::rethrow_exception(failure);
    }
    return report;
}

}  // namespace spinscope::scanner
