#include "scanner/shard.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace spinscope::scanner {

unsigned ShardConfig::resolved_threads() const noexcept {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::size_t ShardConfig::resolved_merge_window() const noexcept {
    if (merge_window != 0) return merge_window;
    return std::max<std::size_t>(std::size_t{4} * resolved_threads(), 32);
}

std::string describe_chunk(const ShardPlan& plan, std::size_t chunk) {
    return "chunk " + std::to_string(chunk) + " (domains [" +
           std::to_string(plan.chunk_begin(chunk)) + ", " +
           std::to_string(plan.chunk_end(chunk)) + "))";
}

// Both executors bound the scanned-but-unmerged backlog with a merge window
// of W chunks: per-chunk completion state lives in rings of size W indexed
// `chunk % W`, and a worker that claims chunk c waits until c < merged + W
// before scanning. The cursor hands out chunks in ascending order, so the
// chunk the merge thread is waiting on (c == merged) was claimed before any
// blocked chunk and its own admission test is trivially true — the window
// never deadlocks. Slot `c % W` is reused by chunk c + W only after merge(c)
// advanced the frontier, so ring slots never alias live state.

void run_sharded(const ShardConfig& config, const ShardPlan& plan,
                 const std::function<void(std::size_t chunk)>& scan,
                 const std::function<void(std::size_t chunk)>& merge) {
    config.validate();
    const std::size_t chunks = plan.chunk_count();
    if (chunks == 0) return;

    // More workers than chunks would only park threads on an empty cursor.
    const std::size_t workers =
        std::min<std::size_t>(config.resolved_threads(), chunks);
    const std::size_t window =
        std::min<std::size_t>(config.resolved_merge_window(), chunks);

    std::mutex mu;
    std::condition_variable progress;    // chunk done OR merge frontier moved
    std::vector<char> done(window, 0);   // ring, slot c % window; guarded by mu
    std::size_t merged = 0;              // merge frontier; guarded by mu
    std::exception_ptr failure;          // guarded by mu; first failure wins
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> cancelled{false};

    const auto fail_with_current_exception = [&] {
        cancelled.store(true, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock{mu};
            if (!failure) failure = std::current_exception();
        }
        progress.notify_all();
    };

    const auto worker_main = [&] {
        while (!cancelled.load(std::memory_order_relaxed)) {
            const std::size_t chunk = cursor.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= chunks) return;
            {
                // Backpressure: stay within `window` chunks of the merge
                // frontier so unmerged results cannot pile up.
                std::unique_lock<std::mutex> lock{mu};
                progress.wait(lock, [&] {
                    return chunk < merged + window || failure != nullptr ||
                           cancelled.load(std::memory_order_relaxed);
                });
                if (failure != nullptr || cancelled.load(std::memory_order_relaxed)) {
                    return;
                }
            }
            try {
                scan(chunk);
            } catch (...) {
                fail_with_current_exception();
                return;
            }
            {
                std::lock_guard<std::mutex> lock{mu};
                done[chunk % window] = 1;
            }
            progress.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker_main);
    const auto join_all = [&pool] {
        for (auto& worker : pool) {
            if (worker.joinable()) worker.join();
        }
    };

    // Ordered streaming merge on the calling thread: wait for the next chunk
    // in sequence, merge it, repeat. Scans of later chunks overlap with the
    // merge of earlier ones.
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        {
            std::unique_lock<std::mutex> lock{mu};
            progress.wait(lock,
                          [&] { return done[chunk % window] != 0 || failure != nullptr; });
            if (failure != nullptr) break;
            done[chunk % window] = 0;  // slot freed for chunk + window
        }
        try {
            merge(chunk);
        } catch (...) {
            fail_with_current_exception();
            break;
        }
        {
            std::lock_guard<std::mutex> lock{mu};
            merged = chunk + 1;
        }
        progress.notify_all();
    }

    join_all();
    if (failure != nullptr) std::rethrow_exception(failure);
}

SupervisionReport run_supervised(const ShardConfig& config, const ShardPlan& plan,
                                 const SupervisorConfig& supervisor,
                                 const std::function<void(std::size_t chunk)>& scan,
                                 const std::function<void(std::size_t chunk)>& merge,
                                 const std::function<void(const ChunkFailure&)>& quarantine) {
    config.validate();
    supervisor.restart.validate();
    SupervisionReport report;
    const std::size_t chunks = plan.chunk_count();
    if (chunks == 0) return report;

    const std::size_t workers =
        std::min<std::size_t>(config.resolved_threads(), chunks);
    const std::size_t window =
        std::min<std::size_t>(config.resolved_merge_window(), chunks);

    enum : char { kPending = 0, kScanned = 1, kQuarantined = 2 };

    std::mutex mu;
    std::condition_variable progress;             // chunk done OR frontier moved
    std::vector<char> done(window, kPending);     // ring, slot c % window
    std::vector<ChunkFailure> failures(window);   // ring, published with done slot
    std::size_t merged = 0;                       // merge frontier; guarded by mu
    std::exception_ptr failure;                   // guarded by mu; merge/quarantine only
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> cancelled{false};
    std::atomic<std::uint64_t> restarts{0};

    const auto fail_with_current_exception = [&] {
        cancelled.store(true, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock{mu};
            if (!failure) failure = std::current_exception();
        }
        progress.notify_all();
    };

    const auto worker_main = [&] {
        while (!cancelled.load(std::memory_order_relaxed)) {
            const std::size_t chunk = cursor.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= chunks) return;
            {
                std::unique_lock<std::mutex> lock{mu};
                progress.wait(lock, [&] {
                    return chunk < merged + window || failure != nullptr ||
                           cancelled.load(std::memory_order_relaxed);
                });
                if (failure != nullptr || cancelled.load(std::memory_order_relaxed)) {
                    return;
                }
            }
            auto restart_rng =
                faults::RetryPolicy::restart_stream(supervisor.seed, chunk);
            ChunkFailure fail;
            fail.chunk = chunk;
            bool scanned = false;
            while (!cancelled.load(std::memory_order_relaxed)) {
                ++fail.attempts;
                try {
                    scan(chunk);
                    scanned = true;
                    break;
                } catch (const std::exception& e) {
                    fail.error = e.what();
                } catch (...) {
                    fail.error = "unknown exception";
                }
                if (fail.attempts >= supervisor.restart.max_attempts) break;
                // Restart with backoff: a crash is often environmental
                // (resource exhaustion, injected fault), so back off before
                // re-executing instead of hammering the same chunk.
                restarts.fetch_add(1, std::memory_order_relaxed);
                const auto delay =
                    supervisor.restart.backoff_delay(fail.attempts, restart_rng);
                if (supervisor.sleep_on_restart && delay > util::Duration::zero()) {
                    std::this_thread::sleep_for(
                        std::chrono::nanoseconds{delay.count_nanos()});
                }
            }
            {
                std::lock_guard<std::mutex> lock{mu};
                if (scanned) {
                    done[chunk % window] = kScanned;
                } else {
                    failures[chunk % window] = std::move(fail);
                    done[chunk % window] = kQuarantined;
                }
            }
            progress.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker_main);
    const auto join_all = [&pool] {
        for (auto& worker : pool) {
            if (worker.joinable()) worker.join();
        }
    };

    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        char state = kPending;
        ChunkFailure fail;
        {
            std::unique_lock<std::mutex> lock{mu};
            progress.wait(
                lock, [&] { return done[chunk % window] != kPending || failure != nullptr; });
            if (failure != nullptr) break;
            state = done[chunk % window];
            if (state == kQuarantined) fail = std::move(failures[chunk % window]);
            done[chunk % window] = kPending;  // slot freed for chunk + window
        }
        try {
            if (state == kScanned) {
                merge(chunk);
            } else {
                ++report.quarantined;
                quarantine(fail);
            }
        } catch (...) {
            fail_with_current_exception();
            break;
        }
        {
            std::lock_guard<std::mutex> lock{mu};
            merged = chunk + 1;
        }
        progress.notify_all();
    }

    join_all();
    report.restarts = restarts.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock{mu};
        if (failure != nullptr) std::rethrow_exception(failure);
    }
    return report;
}

}  // namespace spinscope::scanner
