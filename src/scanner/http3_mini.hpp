// spinscope/scanner/http3_mini.hpp
//
// A deliberately small HTTP/3-flavoured application layer for the scanner:
// a text request/response format carried over QUIC streams, with control-
// stream chatter (SETTINGS) like a real HTTP/3 endpoint produces.
//
// The chatter matters: the early server control packets give the client
// something to acknowledge right after the handshake, which starts the spin
// wave before the response is ready — the interleaving the paper's accuracy
// findings hinge on.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace spinscope::scanner {

/// Stream IDs used by the mini protocol (client-bidi 0/4/8..., like HTTP/3
/// request streams; 2/3 are the client/server control streams).
inline constexpr std::uint64_t kRequestStream = 0;
inline constexpr std::uint64_t kClientControlStream = 2;
inline constexpr std::uint64_t kServerControlStream = 3;

/// Builds a request for the landing page of `host` ("GET https://host/").
[[nodiscard]] std::vector<std::uint8_t> build_request(const std::string& host);

/// Parses the host out of a request; nullopt if malformed. Takes a view —
/// nothing is copied beyond the returned host string.
[[nodiscard]] std::optional<std::string> parse_request(std::span<const std::uint8_t> request);

/// Response header block. `status` 200 or 301; 301 carries a Location.
[[nodiscard]] std::vector<std::uint8_t> build_response_headers(int status,
                                                               const std::string& location,
                                                               const std::string& server_name);

/// Pseudo page body of `size` bytes (deterministic filler).
[[nodiscard]] std::vector<std::uint8_t> build_body(std::size_t size);

/// Parsed response metadata.
struct ResponseInfo {
    int status = 0;
    std::string location;     ///< redirect target host ("" if none)
    std::string server_name;  ///< Server: header (webserver identification §4.2)
    std::size_t body_bytes = 0;
};

/// Parses the header block at the front of a received response stream.
/// Takes a view — only the extracted header values are copied out.
[[nodiscard]] std::optional<ResponseInfo> parse_response(std::span<const std::uint8_t> response);

/// SETTINGS-like control-stream blob (~tens of bytes).
[[nodiscard]] std::vector<std::uint8_t> build_settings(bool server);

}  // namespace spinscope::scanner
