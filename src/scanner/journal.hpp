// spinscope/scanner/journal.hpp
//
// Crash-safe campaign journal: an append-only record log that lets a killed
// sweep resume without rescanning finished work (DESIGN.md §11).
//
// The paper's sweeps run for days over >200 M domains; the repro's campaigns
// are long-running too, and a crash that forfeits hours of finished scans is
// an operational non-starter. The journal records every merged chunk of
// DomainScans (plus the chunk's telemetry snapshot) as one framed,
// checksummed record. Records are appended on the MERGE thread in ascending
// chunk order, so an intact journal always holds a contiguous chunk prefix
// of the campaign — exactly the resume invariant Campaign::resume needs.
//
// Format. A journal is a directory of segments:
//
//   segment-00000.jsonl        sealed (complete, fsynced, atomically renamed)
//   segment-00002.jsonl.open   the active tail segment
//
// Each record is framed as
//
//   #rec <payload_bytes> <crc32-hex>\n<payload>
//
// where the CRC-32 (IEEE, reflected) covers exactly the payload bytes.
// Records never span segments. Record 0 of segment 0 is the campaign header
// (seed, week, family, chunk geometry, domain count); every later record is
// one chunk. A crash can tear at most the record being appended: replay
// stops at the first frame whose length, checksum or body fails to parse
// and reports everything from there on as the torn tail, which the writer
// discards via write-to-temp + atomic rename before appending again.

#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "scanner/campaign.hpp"

namespace spinscope::scanner {

/// Identity of the campaign a journal belongs to. Resume refuses to mix
/// journals across campaigns: every field here changes the scan stream, so
/// replaying records produced under different options would silently corrupt
/// the output.
struct CampaignHeader {
    std::uint64_t seed = 0;
    int week = 0;
    bool ipv6 = false;
    std::size_t chunk_domains = 0;
    std::size_t domain_count = 0;
    /// Whether the journaling campaign had a metrics registry attached (chunk
    /// records then carry telemetry snapshots).
    bool has_telemetry = false;

    friend bool operator==(const CampaignHeader&, const CampaignHeader&) = default;
};

/// One journaled work chunk: the scans of its domains in domain-id order,
/// the chunk-private telemetry snapshot (telemetry::snapshot form; empty
/// when the campaign ran without a registry), and — for chunks the
/// supervisor quarantined — the failure note (scans are then placeholders
/// with DomainScan::error set).
struct ChunkRecord {
    std::size_t chunk_index = 0;
    bool quarantined = false;
    std::string quarantine_error;
    std::vector<DomainScan> scans;
    std::string telemetry_snapshot;
};

/// Journal knobs.
struct JournalOptions {
    /// Segment rotation threshold: the active segment is sealed and a new one
    /// opened once its payload size reaches this many bytes.
    std::size_t segment_bytes = 4u << 20;
};

/// Everything replay_journal recovered from a journal directory.
struct ReplayResult {
    /// False when the directory holds no intact header record (missing,
    /// empty, or torn before the first frame) — resume then starts fresh.
    bool has_header = false;
    CampaignHeader header;
    /// Intact chunk records in append order. Because appends happen in
    /// ascending chunk order, this is a contiguous prefix 0..N-1 of the
    /// campaign's chunks.
    std::vector<ChunkRecord> chunks;
    /// Bytes after the last intact record (torn tail + anything behind it).
    std::uint64_t torn_bytes_discarded = 0;
};

/// Reads every intact record of the journal at `dir`. Never modifies the
/// directory. Replay stops at the first frame that fails length, checksum
/// or body validation; everything from that byte on (including any later
/// segments) counts as torn. A missing or empty directory yields an empty
/// result with has_header == false.
[[nodiscard]] ReplayResult replay_journal(const std::filesystem::path& dir);

/// Appends campaign records crash-safely. All methods throw
/// std::runtime_error on I/O failure.
class JournalWriter {
public:
    enum class Mode {
        /// Start a new journal: create `dir`, remove any previous segments,
        /// write `header` as record 0. Used by Campaign::run — a fresh run
        /// rescans everything, so stale records must not survive.
        fresh,
        /// Continue an interrupted journal: validate that the stored header
        /// equals `header` (std::invalid_argument otherwise), repair the
        /// torn tail atomically (intact prefix → temp file → rename), drop
        /// any segments past the tear, and append after the last intact
        /// record. An empty directory degenerates to `fresh`.
        attach,
    };

    JournalWriter(std::filesystem::path dir, const CampaignHeader& header, Mode mode,
                  JournalOptions options = {});
    ~JournalWriter();

    JournalWriter(const JournalWriter&) = delete;
    JournalWriter& operator=(const JournalWriter&) = delete;

    /// Appends one chunk record and flushes it (a crash after append can
    /// tear at most a LATER record). Rolls the segment when full.
    void append_chunk(const ChunkRecord& record);

    /// Seals the active segment (fsync + atomic rename to its final name).
    /// Idempotent; also run by the destructor (which swallows errors).
    void close();

    [[nodiscard]] std::uint64_t records_appended() const noexcept { return records_appended_; }
    [[nodiscard]] std::uint64_t segments_sealed() const noexcept { return segments_sealed_; }
    /// Bytes written to the active (unsealed) segment so far — the durability
    /// lag surfaced by progress reporting. Resets at every seal.
    [[nodiscard]] std::uint64_t open_bytes() const noexcept { return current_bytes_; }

private:
    void open_segment(std::size_t index, bool truncate);
    void seal_current_segment();
    void append_record(const std::string& payload);

    std::filesystem::path dir_;
    JournalOptions options_;
    std::ofstream out_;
    std::size_t segment_index_ = 0;  ///< index of the ACTIVE segment
    std::size_t current_bytes_ = 0;  ///< bytes written to the active segment
    std::uint64_t records_appended_ = 0;
    std::uint64_t segments_sealed_ = 0;
};

/// Serialization of one record payload (exposed for tests and tooling; the
/// writer/replayer use these internally). parse_* return nullopt on any
/// malformed input and never throw on bad bytes.
[[nodiscard]] std::string serialize_header(const CampaignHeader& header);
[[nodiscard]] std::optional<CampaignHeader> parse_header(std::string_view payload);
[[nodiscard]] std::string serialize_chunk_record(const ChunkRecord& record);
[[nodiscard]] std::optional<ChunkRecord> parse_chunk_record(std::string_view payload);

/// Frames `payload` as one journal record (`#rec <len> <crc>\n` + payload).
[[nodiscard]] std::string frame_record(const std::string& payload);

}  // namespace spinscope::scanner
