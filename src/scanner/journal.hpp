// spinscope/scanner/journal.hpp
//
// Crash-safe campaign journal: an append-only record log that lets a killed
// sweep resume without rescanning finished work (DESIGN.md §11).
//
// The paper's sweeps run for days over >200 M domains; the repro's campaigns
// are long-running too, and a crash that forfeits hours of finished scans is
// an operational non-starter. The journal records every merged chunk of
// DomainScans (plus the chunk's telemetry snapshot) as one framed,
// checksummed record. Records are appended on the MERGE thread in ascending
// chunk order, so an intact journal always holds a contiguous chunk prefix
// of the campaign — exactly the resume invariant Campaign::resume needs.
//
// Format. A journal is a directory of segments:
//
//   segment-00000.jsonl        sealed (complete, fsynced, atomically renamed)
//   segment-00002.jsonl.open   the active tail segment
//
// Each record is framed as
//
//   #rec <payload_bytes> <crc32-hex>\n<payload>
//
// where the CRC-32 (IEEE, reflected) covers exactly the payload bytes.
// Records never span segments. Record 0 of segment 0 is the campaign header
// (seed, week, family, chunk geometry, domain count); every later record is
// one chunk. A crash can tear at most the record being appended: replay
// stops at the first frame whose length, checksum or body fails to parse
// and reports everything from there on as the torn tail, which the writer
// discards via write-to-temp + atomic rename before appending again.

#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/retry_policy.hpp"
#include "scanner/campaign.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace spinscope::scanner {

/// Identity of the campaign a journal belongs to. Resume refuses to mix
/// journals across campaigns: every field here changes the scan stream, so
/// replaying records produced under different options would silently corrupt
/// the output.
struct CampaignHeader {
    std::uint64_t seed = 0;
    int week = 0;
    bool ipv6 = false;
    std::size_t chunk_domains = 0;
    std::size_t domain_count = 0;
    /// Whether the journaling campaign had a metrics registry attached (chunk
    /// records then carry telemetry snapshots).
    bool has_telemetry = false;

    friend bool operator==(const CampaignHeader&, const CampaignHeader&) = default;
};

/// One journaled work chunk: the scans of its domains in domain-id order,
/// the chunk-private telemetry snapshot (telemetry::snapshot form; empty
/// when the campaign ran without a registry), and — for chunks the
/// supervisor quarantined — the failure note (scans are then placeholders
/// with DomainScan::error set).
struct ChunkRecord {
    std::size_t chunk_index = 0;
    bool quarantined = false;
    std::string quarantine_error;
    std::vector<DomainScan> scans;
    std::string telemetry_snapshot;
};

/// Journal knobs.
struct JournalOptions {
    /// Segment rotation threshold: the active segment is sealed and a new one
    /// opened once its payload size reaches this many bytes.
    std::size_t segment_bytes = 4u << 20;
    /// Storage seam (DESIGN.md §16). nullptr means the real disk; tests
    /// inject faults::FaultIo. Not owned; must outlive the writer.
    util::Io* io = nullptr;
    /// Retry schedule for TRANSIENT storage errors (EINTR, ENOMEM, fd
    /// exhaustion — util::classify_io_error). Backoff runs in wall time, not
    /// simulated time: the disk is a real resource even in simulation.
    faults::RetryPolicy io_retry{3, util::Duration::millis(1), 4.0,
                                 util::Duration::millis(20), true};
    /// Seed for the io-retry jitter stream. Storage retries never touch any
    /// scan-facing RNG, so the determinism contract (DESIGN.md §9) holds
    /// whether or not the disk stutters.
    std::uint64_t io_retry_seed = 0;
};

/// A storage operation failed past the point of retrying. Carries the errno
/// result and its reaction class so catch sites can decide between degrading
/// (fatal: seal what is durable, scan on without a journal) and distrusting
/// the tail (corrupting: what is on media is unknown — scrub before reuse).
class JournalIoError : public std::runtime_error {
public:
    JournalIoError(std::string what, util::IoResult result)
        : std::runtime_error{std::move(what)},
          result_{result},
          error_class_{util::classify_io_error(result.err)} {}

    [[nodiscard]] util::IoResult result() const noexcept { return result_; }
    [[nodiscard]] util::IoErrorClass error_class() const noexcept { return error_class_; }

private:
    util::IoResult result_;
    util::IoErrorClass error_class_;
};

/// Everything replay_journal recovered from a journal directory.
struct ReplayResult {
    /// False when the directory holds no intact header record (missing,
    /// empty, or torn before the first frame) — resume then starts fresh.
    bool has_header = false;
    CampaignHeader header;
    /// Intact chunk records in append order. Because appends happen in
    /// ascending chunk order, this is a contiguous prefix 0..N-1 of the
    /// campaign's chunks.
    std::vector<ChunkRecord> chunks;
    /// Bytes after the last intact record (torn tail + anything behind it).
    std::uint64_t torn_bytes_discarded = 0;
};

/// Reads every intact record of the journal at `dir`. Never modifies the
/// directory. Replay stops at the first frame that fails length, checksum
/// or body validation; everything from that byte on (including any later
/// segments) counts as torn. A missing or empty directory yields an empty
/// result with has_header == false.
[[nodiscard]] ReplayResult replay_journal(const std::filesystem::path& dir);

/// What the streaming replay recovered — everything ReplayResult reports
/// except the chunk records themselves, which went to the sink.
struct ReplayStreamResult {
    bool has_header = false;
    CampaignHeader header;
    /// Intact chunk records delivered to the sink (a contiguous prefix
    /// 0..N-1 of the campaign's chunks, in ascending order).
    std::uint64_t chunks_replayed = 0;
    std::uint64_t torn_bytes_discarded = 0;
};

/// Streaming form of replay_journal: identical validation and tear handling,
/// but each intact chunk record is handed to `on_chunk` (in ascending chunk
/// order) instead of being accumulated, so replaying an arbitrarily long
/// journal holds at most one segment plus one record in memory. `on_header`
/// (may be null) fires once, after the header record parses and before any
/// chunk is delivered — a caller that must refuse a foreign journal throws
/// from it, and the exception propagates before any record is consumed.
[[nodiscard]] ReplayStreamResult replay_journal(
    const std::filesystem::path& dir,
    const std::function<void(const CampaignHeader&)>& on_header,
    const std::function<void(ChunkRecord&&)>& on_chunk);

/// Appends campaign records crash-safely. Storage failures surface as
/// JournalIoError after transient errors have been retried per
/// JournalOptions::io_retry; a failed append first rolls the segment back to
/// the previous record boundary (ftruncate) so the on-disk tail never holds
/// a torn frame that the writer itself produced.
class JournalWriter {
public:
    enum class Mode {
        /// Start a new journal: create `dir`, remove any previous segments,
        /// write `header` as record 0. Used by Campaign::run — a fresh run
        /// rescans everything, so stale records must not survive.
        fresh,
        /// Continue an interrupted journal: validate that the stored header
        /// equals `header` (std::invalid_argument otherwise), repair the
        /// torn tail atomically (intact prefix → temp file → rename), drop
        /// any segments past the tear, and append after the last intact
        /// record. An empty directory degenerates to `fresh`.
        attach,
    };

    JournalWriter(std::filesystem::path dir, const CampaignHeader& header, Mode mode,
                  JournalOptions options = {});
    ~JournalWriter();

    JournalWriter(const JournalWriter&) = delete;
    JournalWriter& operator=(const JournalWriter&) = delete;

    /// Appends one chunk record and flushes it (a crash after append can
    /// tear at most a LATER record). Rolls the segment when full.
    void append_chunk(const ChunkRecord& record);

    /// Seals the active segment (fsync + atomic rename to its final name).
    /// A failed fsync FAILS the seal — the segment keeps its .open name so
    /// no maybe-torn bytes are ever published as sealed. Idempotent; also
    /// run by the destructor (which swallows errors).
    void close();

    /// Gives up on the journal without sealing: closes the descriptor
    /// best-effort and leaves the active segment under its .open name for a
    /// later scrub. Used by the degrade path when close() itself cannot be
    /// trusted (e.g. the device refuses fsync). Never throws; the writer is
    /// dead afterwards.
    void abandon() noexcept;

    [[nodiscard]] std::uint64_t records_appended() const noexcept { return records_appended_; }
    [[nodiscard]] std::uint64_t segments_sealed() const noexcept { return segments_sealed_; }
    /// Bytes written to the active (unsealed) segment so far — the durability
    /// lag surfaced by progress reporting. Resets at every seal.
    [[nodiscard]] std::uint64_t open_bytes() const noexcept { return current_bytes_; }
    /// False when a failed append could not be rolled back to the previous
    /// record boundary — the active segment may end in a torn frame, so the
    /// degrade path must abandon() rather than seal.
    [[nodiscard]] bool tail_clean() const noexcept { return tail_clean_; }

private:
    void open_segment(std::size_t index, bool truncate);
    void seal_current_segment();
    void append_record(const std::string& payload);
    void close_fd() noexcept;

    std::filesystem::path dir_;
    JournalOptions options_;
    util::Io* io_ = nullptr;         ///< resolved: never null after construction
    util::Rng retry_rng_;
    int fd_ = util::Io::kBadFile;    ///< the active segment, append mode
    std::size_t segment_index_ = 0;  ///< index of the ACTIVE segment
    std::size_t current_bytes_ = 0;  ///< bytes written to the active segment
    std::uint64_t records_appended_ = 0;
    std::uint64_t segments_sealed_ = 0;
    bool failed_ = false;            ///< a storage error killed this writer
    bool tail_clean_ = true;
};

/// Serialization of one record payload (exposed for tests and tooling; the
/// writer/replayer use these internally). parse_* return nullopt on any
/// malformed input and never throw on bad bytes.
[[nodiscard]] std::string serialize_header(const CampaignHeader& header);
[[nodiscard]] std::optional<CampaignHeader> parse_header(std::string_view payload);
[[nodiscard]] std::string serialize_chunk_record(const ChunkRecord& record);
[[nodiscard]] std::optional<ChunkRecord> parse_chunk_record(std::string_view payload);

/// Frames `payload` as one journal record (`#rec <len> <crc>\n` + payload).
[[nodiscard]] std::string frame_record(const std::string& payload);

// ---------------------------------------------------------------------------
// Journal-directory lock
//
// Exactly one campaign may write a journal directory at a time: two writers
// interleaving appends (or one resuming while another scans) would corrupt
// the contiguous-prefix invariant. The lock is a pid file created with
// O_EXCL; a lock whose owner is dead is stale and silently broken, a lock
// whose owner is alive makes Campaign::run/resume and the benches refuse
// with a clear error instead of corrupting.

/// `journal.lock` inside `dir`.
[[nodiscard]] std::filesystem::path journal_lock_path(const std::filesystem::path& dir);

// ---------------------------------------------------------------------------
// Map-layout journal (multi-process campaigns, DESIGN.md §13)
//
// The segment journal above is an append-only log owned by ONE merge thread.
// N worker processes cannot share an append stream without ordering writes,
// so the multi-process path uses a second, order-free layout in the same
// directory: one atomically-published file per chunk,
//
//   header.rec          frame_record(serialize_header(...))
//   chunk-00042.rec     frame_record(serialize_chunk_record(...))
//   chunk-00042.lease   claim marker of the worker scanning chunk 42
//
// "Chunk 42 is done" ⇔ chunk-00042.rec exists and parses. Because chunk
// scans are pure functions of (options, chunk geometry) — DESIGN.md §9 —
// two workers racing to publish the same chunk write byte-identical files,
// so the atomic-rename publish is idempotent and double-scans are merely
// wasted work, never corruption. Leases exist for efficiency and liveness
// (workers avoid double-scanning; a dead worker's chunks are re-leased),
// NOT for correctness. Campaign::reduce folds the per-chunk files into the
// ordinary merge path in strict chunk order.

/// `header.rec` inside `dir`.
[[nodiscard]] std::filesystem::path map_header_path(const std::filesystem::path& dir);
/// `chunk-NNNNN.rec` inside `dir`.
[[nodiscard]] std::filesystem::path map_chunk_path(const std::filesystem::path& dir,
                                                   std::size_t chunk_index);
/// `chunk-NNNNN.lease` inside `dir`.
[[nodiscard]] std::filesystem::path lease_path(const std::filesystem::path& dir,
                                               std::size_t chunk_index);

/// Prepares `dir` as a map-layout journal. With `wipe`, removes every
/// existing chunk/lease/header file first (a fresh run rescans everything);
/// without it, an existing header must equal `header`
/// (std::invalid_argument otherwise — the journal belongs to a different
/// campaign) and finished chunks are kept for reuse. The header file is
/// published atomically and the directory entry fsynced. Throws
/// std::runtime_error on I/O failure.
void init_map_journal(const std::filesystem::path& dir, const CampaignHeader& header,
                      bool wipe);
/// Io-threaded form; throws JournalIoError (with the real errno) instead of
/// a generic runtime_error on storage failure.
void init_map_journal(util::Io& io, const std::filesystem::path& dir,
                      const CampaignHeader& header, bool wipe);

/// Atomically publishes one finished chunk (write-temp + fsync + rename).
/// Idempotent: republishing the same chunk is harmless. Returns false on
/// I/O failure.
[[nodiscard]] bool write_map_chunk(const std::filesystem::path& dir,
                                   const ChunkRecord& record);
/// Io-threaded form with the real cause (ENOSPC vs EIO vs ...).
[[nodiscard]] util::IoResult write_map_chunk(util::Io& io, const std::filesystem::path& dir,
                                             const ChunkRecord& record);

/// Reads one published chunk; nullopt when absent, torn, or failing
/// frame/CRC/body validation (all treated as "not scanned yet").
[[nodiscard]] std::optional<ChunkRecord> read_map_chunk(const std::filesystem::path& dir,
                                                        std::size_t chunk_index);

/// Indices of the chunk-*.rec files present in `dir`, ascending and deduped.
/// Presence only — a listed chunk may still fail validation when read with
/// read_map_chunk. This is the fixed-RSS way to find what a reducer can
/// reuse: O(chunks) indices instead of O(chunks) full records.
[[nodiscard]] std::vector<std::size_t> list_map_chunks(const std::filesystem::path& dir);

/// Everything intact in a map-layout journal directory.
struct MapReplayResult {
    /// False when header.rec is absent or fails validation.
    bool has_header = false;
    CampaignHeader header;
    /// Intact chunks in ascending chunk order. Unlike the segment journal
    /// this need NOT be a contiguous prefix — workers finish out of order.
    std::vector<ChunkRecord> chunks;
    /// chunk-*.rec files that failed frame/CRC/body validation (counted,
    /// then treated as missing — the reducer rescans them).
    std::uint64_t corrupt_chunks = 0;
};

/// Reads every intact record of the map-layout journal at `dir`. Never
/// modifies the directory.
[[nodiscard]] MapReplayResult read_map_journal(const std::filesystem::path& dir);

// ---------------------------------------------------------------------------
// Chunk leases

/// A worker's claim on one chunk. The fencing token is unique per lease
/// grant (worker slot × incarnation counter), so a supervisor reclaiming a
/// dead worker's chunks removes exactly the leases that worker held — a
/// worker that was wrongly declared dead cannot have its NEW lease (new
/// token) swept away by a reclaim aimed at its old incarnation.
struct ChunkLease {
    std::size_t chunk_index = 0;
    long pid = 0;
    std::uint64_t token = 0;
    /// How many times a process STARTED scanning this chunk (a claim writes
    /// the inherited count; the owner bumps it right before scanning). Drives
    /// poisoned-chunk quarantine: a chunk whose scans keep killing processes
    /// gets a bounded number of incarnations before the pool gives up on it —
    /// while a chunk that was merely LEASED by a dying process is not tainted.
    std::uint64_t attempts = 0;

    friend bool operator==(const ChunkLease&, const ChunkLease&) = default;
};

[[nodiscard]] std::string serialize_lease(const ChunkLease& lease);
[[nodiscard]] std::optional<ChunkLease> parse_lease(std::string_view payload);

/// Atomically claims `lease.chunk_index` (O_EXCL create of the lease file).
/// Exactly one of N racing claimants succeeds. Returns false when the chunk
/// is already leased or on I/O failure.
[[nodiscard]] bool claim_lease(const std::filesystem::path& dir, const ChunkLease& lease);
/// Io-threaded form: EEXIST means the chunk is already leased (the routine
/// lost race, not an error); any other errno is a real storage failure the
/// caller should surface.
[[nodiscard]] util::IoResult claim_lease(util::Io& io, const std::filesystem::path& dir,
                                         const ChunkLease& lease);

/// The current lease on a chunk; nullopt when unleased or garbled (a
/// garbled lease file blocks nobody: release_lease with token 0 removes it).
[[nodiscard]] std::optional<ChunkLease> read_lease(const std::filesystem::path& dir,
                                                   std::size_t chunk_index);

/// Removes the lease on `chunk_index` iff its fencing token matches
/// `token` (or the lease file is garbled and `token` is 0). Returns true
/// when the lease file is gone afterwards.
bool release_lease(const std::filesystem::path& dir, std::size_t chunk_index,
                   std::uint64_t token);

// ---------------------------------------------------------------------------
// Scrub: offline verify / repair (DESIGN.md §16)
//
// Replay is deliberately forgiving — it stops at the first bad frame and
// treats everything behind it as a torn tail, which is the right call for a
// crash but silently forfeits good records when the damage is a bit flip in
// the middle of a sealed segment. scrub_journal is the forensic pass: it
// CRC-checks every frame of every segment and every map-layout record,
// classifies the damage, repairs what is provably safe (truncating a torn
// tail to the intact prefix — the same repair the attach path performs),
// quarantines what is not (moved under corrupt/, never deleted), and writes
// a machine-readable report naming exactly which chunks a subsequent
// resume/reduce must rescan.

/// What kind of damage one finding describes.
enum class ScrubDamage {
    /// Frame torn at the very end of the journal — the classic crash shape.
    /// Repair: truncate to the intact prefix (provably safe: appends are
    /// ordered, nothing can live past a tear at the tail).
    torn_tail,
    /// A bad frame with intact records after it (in the same segment or a
    /// later one): a bit flip or hole in the middle. The records behind the
    /// damage violate the contiguous-prefix invariant, so they are
    /// quarantined, not replayed.
    mid_segment_corruption,
    /// Record 0 (the campaign header) is unreadable — nothing in the journal
    /// can be attributed to a campaign, so every segment is quarantined.
    header_corrupt,
    /// A gap in the segment numbering: a whole sealed segment vanished.
    /// Segments after the gap are quarantined (their records are past the
    /// hole in the prefix).
    missing_segment,
    /// A map-layout chunk-NNNNN.rec failing frame/CRC/body validation or
    /// naming the wrong chunk index. Quarantined; the chunk is rescanned.
    corrupt_map_chunk,
};

[[nodiscard]] const char* to_cstring(ScrubDamage damage) noexcept;

/// One piece of damage the scrub found.
struct ScrubFinding {
    ScrubDamage damage = ScrubDamage::torn_tail;
    /// File the damage was found in (segment or map record), relative name.
    std::string file;
    /// Byte offset of the first bad byte within `file` (0 when the whole
    /// file is the finding, e.g. missing segments and map records).
    std::uint64_t offset = 0;
    std::string detail;
    bool repaired = false;     ///< damage removed in place (tail truncation)
    bool quarantined = false;  ///< bytes moved under corrupt/
};

struct ScrubOptions {
    /// With repair, torn tails are truncated to the intact prefix and
    /// unsafe bytes are moved under corrupt/ with a scrub.report; without
    /// it the scrub only inspects and classifies (the bench's --scrub uses
    /// repair; a dry-run caller can pass false).
    bool repair = true;
    /// Storage seam for the repair writes; nullptr = real disk.
    util::Io* io = nullptr;
};

/// Scrub outcome. `clean()` means the journal needed nothing; otherwise
/// `findings` says what was wrong and what was done, and `chunks_to_rescan`
/// / `resume_from_chunk` tell resume/reduce exactly what work remains.
struct ScrubReport {
    bool has_header = false;
    CampaignHeader header;
    std::uint64_t segments_checked = 0;
    std::uint64_t map_chunks_checked = 0;
    /// Intact records across all segments (including the header record).
    std::uint64_t records_intact = 0;
    /// Intact chunk records: contiguous prefix for the segment layout,
    /// total intact count for the map layout.
    std::uint64_t chunks_intact = 0;
    std::uint64_t bytes_discarded = 0;
    std::vector<ScrubFinding> findings;
    /// Map-layout chunk indices whose records were quarantined (reduce will
    /// rescan exactly these).
    std::vector<std::size_t> chunks_to_rescan;
    /// First chunk a segment-layout resume must rescan (== chunks_intact).
    std::uint64_t resume_from_chunk = 0;

    [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
    /// Human-readable multi-line summary (the bench prints this).
    [[nodiscard]] std::string render() const;
    /// Machine-readable k=v lines (percent-encoded), written to
    /// corrupt/scrub.report when a repair pass changed anything.
    [[nodiscard]] std::string machine_report() const;
};

/// Walks the journal at `dir` (segment and map layouts alike), CRC-checks
/// every frame, classifies damage, repairs/quarantines per `options`, and
/// reports. A missing or empty directory yields a clean report with
/// has_header == false. Throws JournalIoError when the scrub's own repair
/// writes fail.
[[nodiscard]] ScrubReport scrub_journal(const std::filesystem::path& dir,
                                        const ScrubOptions& options = {});

}  // namespace spinscope::scanner
