// spinscope/scanner/shard.hpp
//
// Deterministic parallel sharding for the campaign driver.
//
// The paper sweeps >200 M domains weekly; a sequential scanner is the repro's
// bottleneck. The engine here partitions an index range [0, item_count) into
// fixed-size chunks, lets a pool of std::thread workers claim chunks from an
// atomic cursor, and hands every finished chunk to the CALLING thread in
// ascending chunk order (streaming: chunk c is merged as soon as it and all
// chunks before it are done, while later chunks are still being scanned).
//
// Determinism contract (DESIGN.md §9): chunk boundaries depend only on
// (item_count, chunk_items) — never on the number of workers or on
// scheduling — and the merge order is always ascending. Provided the
// per-chunk work is a pure function of the chunk (spinscope campaigns
// guarantee this via domain-keyed RNG sub-streams), the merged output is
// byte-identical for every thread count.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "faults/retry_policy.hpp"

namespace spinscope::scanner {

/// Worker-pool knobs of one sharded run.
struct ShardConfig {
    /// Worker threads; 0 = one per hardware thread (at least one).
    unsigned threads = 1;
    /// Items (domains) per work chunk. Smaller chunks balance load better;
    /// larger chunks amortize queue and merge overhead. Part of the output
    /// schema for histogram `sum` fields (see telemetry::deterministic_csv),
    /// so the default is fixed rather than derived from the machine.
    std::size_t chunk_items = 16;
    /// Maximum number of chunks admitted past the merge frontier at once
    /// (0 = auto: max(4 * threads, 32)). Workers that claim a chunk beyond
    /// `merged + merge_window` block until the merge thread catches up, so
    /// the peak number of scanned-but-unmerged chunk results — and thus the
    /// driver's RSS — is bounded by the window instead of the chunk count.
    /// Purely a scheduling constraint: output bytes are unaffected.
    std::size_t merge_window = 0;

    /// Throws std::invalid_argument when chunk_items is 0.
    void validate() const {
        if (chunk_items == 0) {
            throw std::invalid_argument("scanner: ShardConfig.chunk_items must be >= 1");
        }
    }

    /// `threads` with 0 resolved to the hardware concurrency (>= 1).
    [[nodiscard]] unsigned resolved_threads() const noexcept;

    /// `merge_window` with 0 resolved to max(4 * resolved_threads(), 32).
    [[nodiscard]] std::size_t resolved_merge_window() const noexcept;
};

/// Pure chunk geometry: how [0, item_count) splits into fixed-size chunks.
struct ShardPlan {
    std::size_t item_count = 0;
    std::size_t chunk_items = 1;

    [[nodiscard]] std::size_t chunk_count() const noexcept {
        return chunk_items == 0 ? 0 : (item_count + chunk_items - 1) / chunk_items;
    }
    [[nodiscard]] std::size_t chunk_begin(std::size_t chunk) const noexcept {
        return chunk * chunk_items;
    }
    [[nodiscard]] std::size_t chunk_end(std::size_t chunk) const noexcept {
        const std::size_t end = chunk_begin(chunk) + chunk_items;
        return end < item_count ? end : item_count;
    }
};

/// Human-readable chunk locator for diagnostics: "chunk 42 (domains
/// [672, 688))". Error messages that name a chunk should include the domain
/// range so an operator can find the poisoned block without re-deriving the
/// chunk geometry by hand.
[[nodiscard]] std::string describe_chunk(const ShardPlan& plan, std::size_t chunk);

/// Chunked fan-out / ordered-merge executor.
///
/// `scan(c)` is invoked exactly once per chunk, concurrently from worker
/// threads, and must leave the chunk's result somewhere the caller owns
/// (e.g. a pre-sized vector slot — slot c is touched only by `scan(c)` and,
/// after it completes, by `merge(c)`, so no locking is needed). `merge(c)`
/// is invoked on the calling thread, in ascending chunk order. A throwing
/// scan or merge cancels the run: remaining chunks are abandoned, workers
/// are joined, and the first exception is rethrown on the calling thread.
void run_sharded(const ShardConfig& config, const ShardPlan& plan,
                 const std::function<void(std::size_t chunk)>& scan,
                 const std::function<void(std::size_t chunk)>& merge);

/// Why one chunk ended up quarantined: the last exception message and how
/// many scan executions were attempted before the supervisor gave up.
struct ChunkFailure {
    std::size_t chunk = 0;
    int attempts = 0;
    std::string error;
};

/// Supervision knobs for run_supervised.
struct SupervisorConfig {
    /// Restart schedule for a chunk whose scan threw: `restart.max_attempts`
    /// is the TOTAL number of scan executions per chunk (1 = never restart);
    /// backoff between executions follows the policy, drawn from
    /// faults::RetryPolicy::restart_stream(seed, chunk) so restart jitter
    /// never touches any domain's scan stream.
    faults::RetryPolicy restart;
    /// Keys the restart-jitter sub-streams (normally the campaign seed).
    std::uint64_t seed = 0;
    /// When false, restart backoffs are computed (burning the same RNG
    /// draws) but not slept — tests use this to stay fast.
    bool sleep_on_restart = true;
};

/// What the supervisor observed across the whole run.
struct SupervisionReport {
    /// Scan re-executions performed after a throw (restarts, not failures).
    std::uint64_t restarts = 0;
    /// Chunks that exhausted their restart budget and were quarantined.
    std::uint64_t quarantined = 0;
};

/// run_sharded with worker supervision: a chunk whose `scan` throws is
/// retried in place up to `supervisor.restart.max_attempts` total executions
/// (with jittered backoff slept on the worker thread); a chunk that exhausts
/// the budget is QUARANTINED instead of cancelling the run — `quarantine(f)`
/// is invoked for it on the calling thread, in the same ascending chunk
/// order as `merge`, and the run completes degraded. `scan` must therefore
/// be restartable: re-executing it for the same chunk must fully overwrite
/// the chunk's result slot. A throwing `merge` or `quarantine` is still
/// fatal exactly as in run_sharded (cancels, joins, rethrows).
SupervisionReport run_supervised(const ShardConfig& config, const ShardPlan& plan,
                                 const SupervisorConfig& supervisor,
                                 const std::function<void(std::size_t chunk)>& scan,
                                 const std::function<void(std::size_t chunk)>& merge,
                                 const std::function<void(const ChunkFailure&)>& quarantine);

}  // namespace spinscope::scanner
