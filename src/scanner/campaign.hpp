// spinscope/scanner/campaign.hpp
//
// The measurement campaign driver — spinscope's zgrab2 equivalent (paper
// §3.2): issue an HTTP/3-mini request to every target domain, follow up to
// three redirects, and capture a qlog trace per connection.
//
// Each connection attempt runs on its own discrete-event simulator with a
// path sampled from the target's organization profile, a client endpoint
// configured like the paper's adapted quic-go (spin always on), and a server
// endpoint whose spin policy, webserver stack, think times and response
// behaviour come from the population model.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "qlog/trace.hpp"
#include "quic/connection.hpp"
#include "scanner/http3_mini.hpp"
#include "web/population.hpp"

namespace spinscope::scanner {

/// Knobs of one scan sweep.
struct ScanOptions {
    bool ipv6 = false;
    /// Campaign week (0-based, CW 15/2022 == 0); drives longitudinal churn.
    int week = 0;
    int max_redirects = 3;
    std::uint64_t seed = 0x5ca7;
    /// Per-packet, per-direction network impairments (calibrated so that
    /// R-vs-S spin results differ for ~0.3 % of connections, §5.2).
    double loss_rate = 0.0004;
    double reorder_rate = 0.0015;
    /// The scanner client spins unconditionally (lottery off), mirroring the
    /// paper's measurement client; what is measured is the server's policy.
    quic::SpinConfig client_spin{quic::SpinPolicy::spin, 0, quic::SpinPolicy::always_zero};
    /// Safety bound per connection attempt (simulated time).
    util::Duration attempt_deadline = util::Duration::seconds(60);
};

/// Everything recorded about one domain in one sweep.
struct DomainScan {
    std::uint32_t domain_id = 0;
    bool resolved = false;  ///< DNS yielded an address of the scanned family
    /// One trace per connection (first attempt plus followed redirects).
    std::vector<qlog::Trace> connections;
    /// Parsed response of the final connection, if any.
    std::optional<ResponseInfo> final_response;

    /// True if any connection completed the QUIC handshake.
    [[nodiscard]] bool quic_ok() const noexcept;
};

/// Scans domains of a Population.
class Campaign {
public:
    Campaign(const web::Population& population, ScanOptions options)
        : population_{&population}, options_{options} {}

    /// Scans a single domain (resolution, connection, redirects).
    [[nodiscard]] DomainScan scan_domain(const web::Domain& domain) const;

    /// Scans every domain, streaming results to `sink` (traces are large;
    /// aggregate, then drop them).
    void run(const std::function<void(const web::Domain&, DomainScan&&)>& sink) const;

    [[nodiscard]] const ScanOptions& options() const noexcept { return options_; }

private:
    struct AttemptOutcome {
        qlog::Trace trace;
        std::optional<ResponseInfo> response;
    };

    [[nodiscard]] AttemptOutcome run_attempt(const web::Domain& domain,
                                             const std::string& host, int attempt,
                                             bool serve_redirect) const;

    const web::Population* population_;
    ScanOptions options_;
};

}  // namespace spinscope::scanner
