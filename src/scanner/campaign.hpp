// spinscope/scanner/campaign.hpp
//
// The measurement campaign driver — spinscope's zgrab2 equivalent (paper
// §3.2): issue an HTTP/3-mini request to every target domain, follow up to
// three redirects, and capture a qlog trace per connection.
//
// Each connection attempt runs on its own discrete-event simulator with a
// path sampled from the target's organization profile, a client endpoint
// configured like the paper's adapted quic-go (spin always on), and a server
// endpoint whose spin policy, webserver stack, think times and response
// behaviour come from the population model.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bytes/bytes.hpp"
#include "core/constrained_monitor.hpp"
#include "faults/faults.hpp"
#include "faults/retry_policy.hpp"
#include "qlog/trace.hpp"
#include "quic/connection.hpp"
#include "scanner/http3_mini.hpp"
#include "telemetry/metrics.hpp"
#include "util/io.hpp"
#include "web/population.hpp"

namespace spinscope::telemetry {
class TraceRecorder;
}

namespace spinscope::scanner {

/// Knobs of one scan sweep.
struct ScanOptions {
    bool ipv6 = false;
    /// Campaign week (0-based, CW 15/2022 == 0); drives longitudinal churn.
    int week = 0;
    int max_redirects = 3;
    std::uint64_t seed = 0x5ca7;
    /// Per-packet, per-direction network impairments (calibrated so that
    /// R-vs-S spin results differ for ~0.3 % of connections, §5.2).
    double loss_rate = 0.0004;
    double reorder_rate = 0.0015;
    /// The scanner client spins unconditionally (lottery off), mirroring the
    /// paper's measurement client; what is measured is the server's policy.
    quic::SpinConfig client_spin{quic::SpinPolicy::spin, 0, quic::SpinPolicy::always_zero};
    /// Safety bound per connection attempt (simulated time).
    util::Duration attempt_deadline = util::Duration::seconds(60);
    /// Watchdog budget per DOMAIN (simulated time across all of its hops,
    /// retries and backoffs). A domain whose simulations exceed it is cut
    /// off: the running attempt ends with outcome watchdog_cancelled and no
    /// further attempts are made. The default is far above any legitimate
    /// scan (worst hostile-retry schedules stay under ~15 minutes), so it
    /// only ever fires on genuinely hung simulations.
    util::Duration domain_deadline = util::Duration::seconds(3600);
    /// Cap on per-domain attempt records (and their traces). Overflow is
    /// counted in DomainScan::attempts_truncated instead of growing the scan
    /// without bound; unreachable under sane retry/redirect settings.
    std::size_t max_attempt_records = 256;
    /// Adversarial network fault plan, attached to both directions of every
    /// attempt's path. nullopt attaches nothing; an engaged-but-empty plan
    /// attaches an idle injector, which draws no randomness and therefore
    /// yields byte-identical campaign results.
    std::optional<faults::FaultPlan> fault_plan;
    /// Per-hop retry schedule. The default (single attempt, no retries) is
    /// byte-identical to the pre-retry scanner.
    faults::RetryPolicy retry{};
    /// Worker threads for run(); 0 = one per hardware thread. Every
    /// per-domain observable is derived from domain-keyed RNG sub-streams
    /// (util::derive_stream_seed), so stats, scan streams and deterministic
    /// telemetry are byte-identical for every thread count (DESIGN.md §9).
    unsigned threads = 1;
    /// Domains per shard work chunk (>= 1). Changing it never changes scan
    /// results; only histogram `sum` telemetry may drift in the last ulp
    /// because partial sums regroup (see telemetry::deterministic_csv).
    std::size_t chunk_domains = 16;
    /// Crash-safe journal directory (DESIGN.md §11); empty disables
    /// journaling. run() starts a FRESH journal here (removing a previous
    /// one); resume() replays it and continues.
    std::string journal_dir;
    /// Journal segment rotation threshold, in bytes.
    std::size_t journal_segment_bytes = 4u << 20;
    /// Storage seam for every journal write (DESIGN.md §16): segment
    /// appends/seals, map-layout publishes, leases, locks. nullptr means the
    /// real disk; tests inject faults::FaultIo. Not owned; must be
    /// thread-safe and outlive the campaign run.
    util::Io* io = nullptr;
    /// Retry schedule for TRANSIENT journal storage errors (wall-clock
    /// backoff; see util::classify_io_error). Non-transient failures degrade
    /// the journal instead of killing the sweep.
    faults::RetryPolicy journal_retry{3, util::Duration::millis(1), 4.0,
                                      util::Duration::millis(20), true};
    /// Supervisor restart schedule for a chunk whose scan crashed outside
    /// the per-domain isolation: max_attempts is the TOTAL number of scan
    /// executions per chunk before it is quarantined (1 = quarantine on the
    /// first crash). Backoffs are real wall-clock sleeps on the worker, kept
    /// small by default.
    faults::RetryPolicy worker_restart{2, util::Duration::millis(10), 2.0,
                                       util::Duration::millis(100), true};
    /// Optional constrained on-path observer (DESIGN.md §14): when engaged,
    /// every attempt's server→client direction is tapped by a per-DOMAIN
    /// core::ConstrainedMonitor and its table counters are published as
    /// observer.* telemetry after the domain completes. Per-domain scope
    /// keeps the counters a pure function of the domain's own packet stream,
    /// so they merge deterministically at every thread/chunk/process count
    /// and may appear in telemetry::deterministic_csv (the golden fixture
    /// pins them).
    std::optional<core::ConstrainedConfig> observer;
    /// TEST/FAULT hook: invoked on the worker thread at the start of every
    /// chunk scan execution (with the global chunk index), OUTSIDE the
    /// per-domain isolation — a throw crashes the whole chunk and exercises
    /// the supervisor (restart, then quarantine). Must be thread-safe; keep
    /// null in production.
    std::function<void(std::size_t chunk)> chunk_fault_hook;

    /// Sanitizes the knobs in place: NaN probabilities, a negative redirect
    /// budget, a non-positive deadline and invalid retry/fault-plan settings
    /// throw std::invalid_argument; finite out-of-range probabilities are
    /// clamped into [0, 1]. Campaign's constructor applies this to its copy.
    void validate();
};

/// Everything recorded about one domain in one sweep.
struct DomainScan {
    /// Error taxonomy of one connection attempt (one entry per trace in
    /// `connections`, same order).
    struct AttemptRecord {
        int redirect_hop = 0;  ///< 0 = landing page, n = nth redirect target
        int retry = 0;         ///< 0 = first try at this hop
        qlog::ConnectionOutcome outcome = qlog::ConnectionOutcome::aborted;
        /// Simulated-time backoff the retry policy waited before this attempt.
        util::Duration backoff = util::Duration::zero();
        /// Server fault active during this attempt (none when healthy).
        faults::ServerFaultMode server_fault = faults::ServerFaultMode::none;
    };

    std::uint32_t domain_id = 0;
    bool resolved = false;  ///< DNS yielded an address of the scanned family
    /// One trace per connection attempt (retries and followed redirects).
    std::vector<qlog::Trace> connections;
    /// Per-attempt taxonomy, parallel to `connections`.
    std::vector<AttemptRecord> attempts;
    /// Parsed response of the final connection, if any.
    std::optional<ResponseInfo> final_response;
    std::uint32_t redirects_followed = 0;
    std::uint64_t retries = 0;  ///< attempts beyond the first, any hop
    /// A hop whose first try failed later succeeded on a retry.
    bool recovered_by_retry = false;
    /// Attempts made but not recorded because ScanOptions::max_attempt_records
    /// was reached (0 for every sane scan).
    std::uint64_t attempts_truncated = 0;
    /// Total simulated time this domain consumed (every attempt plus every
    /// retry backoff — the watchdog's accounting). Journaled, so a resumed
    /// campaign rebuilds the exact flight-recorder timeline of the original.
    util::Duration sim_time = util::Duration::zero();
    /// Set when scanning this domain threw; the domain was skipped, the
    /// sweep continued (graceful degradation). Quarantined chunks produce
    /// placeholder scans with a "chunk quarantined:" prefix here.
    std::string error;

    /// True if any connection completed the QUIC handshake.
    [[nodiscard]] bool quic_ok() const noexcept;
};

/// Aggregate snapshot of one sweep — what the scanner actually did (the
/// paper's §3.2-3.3 operational view). Returned by Campaign::run and handed
/// to the periodic progress callback mid-sweep.
struct CampaignStats {
    std::uint64_t domains_scanned = 0;
    std::uint64_t domains_resolved = 0;
    std::uint64_t domains_quic_ok = 0;
    std::uint64_t connections = 0;  ///< attempts incl. retries and redirects
    std::uint64_t redirects_followed = 0;
    std::uint64_t retries = 0;  ///< attempts beyond the first at some hop
    std::uint64_t domains_recovered_by_retry = 0;
    std::uint64_t domains_errored = 0;  ///< scan threw; skipped, not fatal
    /// Chunks the supervisor quarantined after exhausting restarts (their
    /// domains are counted in domains_quarantined AND domains_errored).
    std::uint64_t chunks_quarantined = 0;
    std::uint64_t domains_quarantined = 0;
    /// Crashed-chunk scan re-executions performed by the in-process
    /// supervisor (thread-level restarts, run_supervised).
    std::uint64_t worker_restarts = 0;
    /// Worker PROCESS re-forks performed by the multi-process supervisor
    /// (scanner::run_procs). Always 0 for in-process runs; stitched in by
    /// the caller after a run_procs + reduce pair (reduce itself cannot
    /// observe process deaths — they happened in an earlier pass).
    std::uint64_t proc_restarts = 0;
    /// Journal records appended by this run so far (0 without journaling).
    std::uint64_t journal_records_appended = 0;
    /// Bytes sitting in the journal's active (unsealed) segment — the
    /// durability lag a progress reporter surfaces. Resets at every segment
    /// seal (NOT monotonic); 0 in the final stats (everything sealed).
    std::uint64_t journal_open_bytes = 0;
    /// The journal hit a non-transient storage error mid-sweep and was shut
    /// down (durable prefix sealed where possible) while scanning continued —
    /// the sweep's OUTPUT is complete and correct, but the journal on disk
    /// is only a prefix and the campaign is not resumable past it. Also
    /// surfaced as `campaign.journal.degraded` telemetry.
    bool journal_degraded = false;
    /// The attributed cause of the degrade (empty when not degraded).
    std::string journal_degraded_error;
    /// Connection attempts by qlog::ConnectionOutcome (index via the enum).
    std::array<std::uint64_t, qlog::kConnectionOutcomeCount> outcomes{};
    /// Connection attempts by active faults::ServerFaultMode (index 0 =
    /// healthy server).
    std::array<std::uint64_t, faults::kServerFaultModeCount> server_faults{};
    /// Host wall-clock seconds spent in run() so far.
    double wall_seconds = 0.0;

    [[nodiscard]] std::uint64_t outcome(qlog::ConnectionOutcome o) const noexcept {
        return outcomes[static_cast<std::size_t>(o)];
    }
    /// Scan throughput; 0 before any wall time elapsed.
    [[nodiscard]] double domains_per_sec() const noexcept {
        return wall_seconds > 0.0 ? static_cast<double>(domains_scanned) / wall_seconds : 0.0;
    }
    /// Share of resolved domains where some connection completed QUIC.
    [[nodiscard]] double quic_ok_rate() const noexcept {
        return domains_resolved > 0
                   ? static_cast<double>(domains_quic_ok) / static_cast<double>(domains_resolved)
                   : 0.0;
    }

    /// Aligned-table rendering (throughput, rates, outcome breakdown).
    [[nodiscard]] std::string render() const;
};

/// One chunk's worth of scan output in journal-ready form: the scans of the
/// chunk's domains in domain-id order plus the chunk-private telemetry
/// snapshot (empty when the campaign has no registry attached). This is what
/// a multi-process worker publishes as one map-journal record
/// (scanner::run_procs) and what Campaign::reduce folds back together.
struct ScannedChunk {
    std::vector<DomainScan> scans;
    std::string telemetry_snapshot;
};

/// Scans the domains of a population.
///
/// The campaign is driven by a web::PopulationModel, not a materialized
/// domain vector: workers regenerate their own chunk's domains on demand
/// (web::PopulationModel::materialize) and discard them once the chunk is
/// merged, so a sweep's RSS is bounded by the chunk size and thread count —
/// never by the universe size. An eager web::Population is accepted for
/// convenience and used only through its model.
class Campaign {
public:
    /// Throws std::invalid_argument when `options` fails validation (see
    /// ScanOptions::validate); clampable knobs are sanitized silently.
    Campaign(const web::PopulationModel& model, ScanOptions options)
        : model_{&model}, options_{std::move(options)} {
        options_.validate();
    }

    /// Convenience overload for callers that hold an eager Population; the
    /// campaign never touches the materialized domains, only the model.
    Campaign(const web::Population& population, ScanOptions options)
        : Campaign{population.model(), std::move(options)} {}

    /// Attaches a metrics registry: every attempt then publishes simulator,
    /// link and connection telemetry plus scanner phase timings into it
    /// (pass nullptr to detach). The registry must outlive the campaign
    /// runs; it is written to even from const scan methods.
    void set_metrics(telemetry::MetricsRegistry* registry) noexcept { metrics_ = registry; }

    /// Attaches a flight recorder: run()/resume() then record the campaign
    /// timeline into it (pass nullptr to detach; must outlive the runs).
    /// Simulated-time events — chunk spans at cumulative sim offsets plus
    /// retry/watchdog/quarantine instants — are recorded only on the merge
    /// thread and are byte-identical for every thread count and across
    /// kill/resume (replayed chunks re-drive identical spans, flagged
    /// `"replayed":1`). Wall-clock worker/merge/journal spans land in the
    /// recorder's wall sidecar. The campaign only records; the owner calls
    /// TraceRecorder::write after the run.
    void set_trace(telemetry::TraceRecorder* trace) noexcept { trace_ = trace; }

    /// Number of domains a run() will scan (progress/ETA sizing).
    [[nodiscard]] std::size_t domain_count() const { return model_->domain_count(); }

    /// Installs a progress callback fired every `every_n` scanned domains
    /// during run() (0 disables). The callback always runs on the thread
    /// that called run() (the merge thread) — never on a shard worker — and
    /// sees a monotonic point-in-time CampaignStats snapshot: every field,
    /// including wall_seconds, is non-decreasing across consecutive firings,
    /// and domains_scanned counts in merge (domain-id) order.
    void set_progress(std::uint64_t every_n,
                      std::function<void(const CampaignStats&)> callback) {
        progress_every_ = every_n;
        progress_ = std::move(callback);
    }

    /// Number of work chunks a run() will process (chunk geometry is a pure
    /// function of domain_count and ScanOptions::chunk_domains).
    [[nodiscard]] std::size_t chunk_count() const;

    /// Domain ids of one global chunk in scan order — what quarantine
    /// placeholder records need. Throws std::out_of_range past chunk_count().
    [[nodiscard]] std::vector<std::uint32_t> chunk_domain_ids(std::size_t chunk_index) const;

    /// Scans a single domain (resolution, connection, redirects).
    [[nodiscard]] DomainScan scan_domain(const web::Domain& domain) const;

    /// Scans one GLOBAL chunk into journal-ready form: per-domain fault
    /// isolation, a chunk-private telemetry registry (snapshotted; only when
    /// a registry is attached to the campaign) and a chunk-private buffer
    /// pool — byte-identical to what run() produces and journals for the
    /// same chunk. This is the unit of work a multi-process worker executes
    /// under a lease (DESIGN.md §13). ScanOptions::chunk_fault_hook fires at
    /// entry with the global chunk index, OUTSIDE the per-domain isolation.
    /// Throws std::out_of_range for an index past chunk_count().
    [[nodiscard]] ScannedChunk scan_chunk(std::size_t chunk_index) const;

    /// Scans every domain, streaming results to `sink` in domain-id order
    /// (traces are large; aggregate, then drop them). Returns the sweep's
    /// aggregate stats.
    ///
    /// Sharded execution: domains are chunked (ScanOptions::chunk_domains)
    /// and scanned by ScanOptions::threads workers, each attempt on its own
    /// single-owner netsim::Simulator with telemetry captured into a
    /// per-chunk registry; the calling thread merges chunks strictly in
    /// domain-id order — stats accumulation, telemetry merge_from, sink and
    /// progress all happen there. wall_seconds is aggregated once at merge
    /// time, not per domain.
    CampaignStats run(const std::function<void(const web::Domain&, DomainScan&&)>& sink) const;

    /// Crash recovery: replays the journal at ScanOptions::journal_dir (the
    /// one a killed run() left behind), re-driving stats, telemetry, sink
    /// and progress from the journaled records, then scans only the
    /// remaining chunks — continuing the journal. The merged output (sink
    /// stream, stats, deterministic telemetry) is byte-identical to an
    /// uninterrupted run(). Torn journal tails are detected, discarded and
    /// repaired; an empty or missing journal degenerates to run(). Throws
    /// std::invalid_argument when journal_dir is empty or the journal
    /// belongs to a different campaign (options/population mismatch).
    CampaignStats resume(
        const std::function<void(const web::Domain&, DomainScan&&)>& sink) const;

    /// Multi-process reducer: folds the MAP-layout journal at
    /// ScanOptions::journal_dir (the per-chunk record files N worker
    /// processes published, see scanner::run_procs) into one merged result —
    /// replaying recorded chunks and scanning any missing ones in strict
    /// ascending chunk order through the exact merge bookkeeping run() uses,
    /// so the sink stream, stats and deterministic telemetry are
    /// byte-identical to an uninterrupted single-process run(). Chunks it
    /// scans itself are published back into the map journal first
    /// (journal-before-merge, idempotent), so a killed reduce is rerunnable.
    /// An empty or headerless directory degenerates to a full scan that
    /// builds the map journal. Holds the journal.lock for the duration;
    /// throws std::invalid_argument when journal_dir is empty or the journal
    /// belongs to a different campaign, std::runtime_error when the
    /// directory is locked by a live campaign.
    CampaignStats reduce(
        const std::function<void(const web::Domain&, DomainScan&&)>& sink) const;

    [[nodiscard]] const ScanOptions& options() const noexcept { return options_; }
    /// The attached instrumentation sinks (nullptr when detached) — read by
    /// the multi-process supervisor, which publishes its own process-level
    /// observations (obs.proc.*, campaign.restarted_procs) into the same
    /// registry and recorder the campaign uses.
    [[nodiscard]] telemetry::MetricsRegistry* metrics() const noexcept { return metrics_; }
    [[nodiscard]] telemetry::TraceRecorder* trace() const noexcept { return trace_; }

private:
    struct AttemptOutcome {
        qlog::Trace trace;
        std::optional<ResponseInfo> response;
        faults::ServerFaultMode server_fault = faults::ServerFaultMode::none;
        /// Simulated time the attempt consumed (watchdog accounting).
        util::Duration sim_elapsed = util::Duration::zero();
    };

    /// scan_domain with telemetry routed into an explicit registry (the
    /// worker's chunk-private one; nullptr disables), so shard workers never
    /// share a registry. `pool` is the chunk-private datagram buffer pool:
    /// like the registry it is owned by exactly one worker at a time, so no
    /// locking — and unlike the registry it may be null only for callers
    /// that accept per-datagram heap traffic. scan_domain() delegates here
    /// with metrics_ and a transient local pool.
    [[nodiscard]] DomainScan scan_domain_into(const web::Domain& domain,
                                              telemetry::MetricsRegistry* metrics,
                                              bytes::BufferPool* pool) const;

    /// `deadline` is the effective simulated-time bound for this attempt:
    /// min(attempt_deadline, remaining domain watchdog budget). When the
    /// budget (not the per-attempt deadline) is what cut the simulation
    /// short, the outcome is watchdog_cancelled instead of attempt_timeout.
    /// `observer` is the domain's constrained monitor (nullptr when
    /// ScanOptions::observer is disengaged); it taps the return link.
    [[nodiscard]] AttemptOutcome run_attempt(const web::Domain& domain,
                                             const std::string& host, int redirect_hop,
                                             int retry, bool serve_redirect,
                                             util::Duration deadline,
                                             telemetry::MetricsRegistry* metrics,
                                             bytes::BufferPool* pool,
                                             core::ConstrainedMonitor* observer) const;

    /// How run_impl interacts with ScanOptions::journal_dir.
    enum class RunMode {
        fresh,   ///< run(): fresh segment journal (when journaling at all)
        resume,  ///< resume(): replay + continue the segment journal
        reduce,  ///< reduce(): replay + complete the map-layout journal
    };

    CampaignStats run_impl(const std::function<void(const web::Domain&, DomainScan&&)>& sink,
                           RunMode mode) const;

    const web::PopulationModel* model_;
    ScanOptions options_;
    /// Not owned; written to from const scan methods (instrumentation sink,
    /// not campaign state).
    telemetry::MetricsRegistry* metrics_ = nullptr;
    /// Not owned; recorded into from const run methods (same sink contract
    /// as metrics_).
    telemetry::TraceRecorder* trace_ = nullptr;
    std::uint64_t progress_every_ = 0;
    std::function<void(const CampaignStats&)> progress_;
};

}  // namespace spinscope::scanner
