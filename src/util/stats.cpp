#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spinscope::util {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::optional<double> RunningStats::min() const noexcept {
    if (n_ == 0) return std::nullopt;
    return min_;
}

std::optional<double> RunningStats::max() const noexcept {
    if (n_ == 0) return std::nullopt;
    return max_;
}

std::optional<double> quantile(std::span<const double> values, double q) {
    if (values.empty()) return std::nullopt;
    q = std::clamp(q, 0.0, 1.0);
    std::vector<double> sorted{values.begin(), values.end()};
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(std::vector<double> edges) : edges_{std::move(edges)} {
    if (edges_.size() < 2) throw std::invalid_argument{"Histogram: need >= 2 edges"};
    if (!std::is_sorted(edges_.begin(), edges_.end()) ||
        std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
        throw std::invalid_argument{"Histogram: edges must be strictly increasing"};
    }
    counts_.assign(edges_.size() - 1, 0);
}

void Histogram::add(double value) noexcept { add_n(value, 1); }

void Histogram::add_n(double value, std::uint64_t n) noexcept {
    total_ += n;
    if (value < edges_.front()) {
        underflow_ += n;
        return;
    }
    if (value >= edges_.back()) {
        overflow_ += n;
        return;
    }
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
    counts_[static_cast<std::size_t>(it - edges_.begin()) - 1] += n;
}

double Histogram::share(std::size_t i) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double Histogram::underflow_share() const noexcept {
    return total_ == 0 ? 0.0 : static_cast<double>(underflow_) / static_cast<double>(total_);
}

double Histogram::overflow_share() const noexcept {
    return total_ == 0 ? 0.0 : static_cast<double>(overflow_) / static_cast<double>(total_);
}

double Histogram::share_between(std::size_t first_bin, std::size_t last_bin) const {
    if (total_ == 0) return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = first_bin; i < last_bin && i < counts_.size(); ++i) acc += counts_[i];
    return static_cast<double>(acc) / static_cast<double>(total_);
}

double Histogram::fraction_below_edge(double threshold) const {
    if (total_ == 0) return 0.0;
    std::uint64_t acc = underflow_;
    for (std::size_t i = 0; i + 1 < edges_.size(); ++i) {
        if (edges_[i + 1] <= threshold) acc += counts_[i];
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
}

void CategoricalCounts::add(std::size_t category, std::uint64_t n) {
    counts_.at(category) += n;
    total_ += n;
}

double CategoricalCounts::share(std::size_t category) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(counts_.at(category)) / static_cast<double>(total_);
}

double binomial_pmf(unsigned n, unsigned k, double p) {
    if (k > n) return 0.0;
    if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
    if (p >= 1.0) return k == n ? 1.0 : 0.0;
    const double log_choose = std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
                              std::lgamma(static_cast<double>(n - k) + 1.0);
    const double log_pmf = log_choose + k * std::log(p) +
                           static_cast<double>(n - k) * std::log1p(-p);
    return std::exp(log_pmf);
}

}  // namespace spinscope::util
