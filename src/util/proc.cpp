#include "util/proc.hpp"

#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

namespace spinscope::util {

long current_pid() noexcept {
#ifndef _WIN32
    return static_cast<long>(::getpid());
#else
    return 0;
#endif
}

bool process_alive(long pid) noexcept {
#ifndef _WIN32
    if (pid <= 0) return false;
    if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
    return errno != ESRCH;
#else
    (void)pid;
    return true;  // no probe: never declare a possibly-live owner dead
#endif
}

// ---------------------------------------------------------------------------
// Pipe

Pipe::Pipe() {
#ifndef _WIN32
    int fds[2];
    if (::pipe(fds) != 0) {
        throw std::runtime_error{std::string{"util: pipe() failed: "} +
                                 std::strerror(errno)};
    }
    read_fd_ = fds[0];
    write_fd_ = fds[1];
    ::fcntl(read_fd_, F_SETFD, FD_CLOEXEC);
    ::fcntl(write_fd_, F_SETFD, FD_CLOEXEC);
#else
    throw std::runtime_error{"util: pipes are not supported on this platform"};
#endif
}

Pipe::~Pipe() {
    close_read();
    close_write();
}

Pipe::Pipe(Pipe&& other) noexcept
    : read_fd_{other.read_fd_}, write_fd_{other.write_fd_} {
    other.read_fd_ = -1;
    other.write_fd_ = -1;
}

Pipe& Pipe::operator=(Pipe&& other) noexcept {
    if (this != &other) {
        close_read();
        close_write();
        read_fd_ = other.read_fd_;
        write_fd_ = other.write_fd_;
        other.read_fd_ = -1;
        other.write_fd_ = -1;
    }
    return *this;
}

void Pipe::close_read() noexcept {
#ifndef _WIN32
    if (read_fd_ >= 0) ::close(read_fd_);
#endif
    read_fd_ = -1;
}

void Pipe::close_write() noexcept {
#ifndef _WIN32
    if (write_fd_ >= 0) ::close(write_fd_);
#endif
    write_fd_ = -1;
}

bool write_line(int fd, std::string_view line) noexcept {
#ifndef _WIN32
    std::string framed{line};
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;  // EPIPE and friends: the peer is gone
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
#else
    (void)fd;
    (void)line;
    return false;
#endif
}

bool set_nonblocking(int fd) noexcept {
#ifndef _WIN32
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
#else
    (void)fd;
    return false;
#endif
}

bool LineReader::drain(std::vector<std::string>& out) {
#ifndef _WIN32
    char buf[4096];
    while (!eof_) {
        const ssize_t n = ::read(fd_, buf, sizeof buf);
        if (n > 0) {
            buffer_.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            eof_ = true;
            break;
        }
        if (errno == EINTR) continue;
        break;  // EAGAIN/EWOULDBLOCK: drained everything available for now
    }
    std::size_t start = 0;
    for (;;) {
        const auto nl = buffer_.find('\n', start);
        if (nl == std::string::npos) break;
        out.push_back(buffer_.substr(start, nl - start));
        start = nl + 1;
    }
    buffer_.erase(0, start);
    if (eof_ && !buffer_.empty()) {
        out.push_back(std::move(buffer_));  // partial final line, best effort
        buffer_.clear();
    }
    return !eof_;
#else
    (void)out;
    return false;
#endif
}

// ---------------------------------------------------------------------------
// PidLockFile

std::optional<long> PidLockFile::owner(const std::filesystem::path& path) {
    std::FILE* f = std::fopen(path.string().c_str(), "rb");
    if (f == nullptr) return std::nullopt;
    char buf[64] = {};
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    if (n == 0) return std::nullopt;
    char* end = nullptr;
    const long pid = std::strtol(buf, &end, 10);
    if (end == buf || pid <= 0) return std::nullopt;
    return pid;
}

void PidLockFile::acquire(const std::filesystem::path& path) {
    release();
    const std::string content = std::to_string(current_pid()) + "\n";
    IoResult last = IoResult::success();
    for (int attempt = 0; attempt < 2; ++attempt) {
        last = create_file_exclusive(Io::real(), path, content);
        if (last) {
            path_ = path;
            held_ = true;
            return;
        }
        const auto pid = owner(path);
        if (pid && process_alive(*pid) && *pid != current_pid()) {
            throw std::runtime_error{
                "util: " + path.string() + " is locked by a running process (pid " +
                std::to_string(*pid) + ") — refusing to share it"};
        }
        // Stale (owner dead, garbled, or a leftover of our own crashed run):
        // break the lock and retry the exclusive create exactly once.
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
    throw std::runtime_error{"util: cannot create lock file " + path.string() +
                             ": " + last.message()};
}

void PidLockFile::release() noexcept {
    if (!held_) return;
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    held_ = false;
}

}  // namespace spinscope::util
