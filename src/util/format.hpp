// spinscope/util/format.hpp
//
// Plain-text rendering helpers for the bench harnesses that regenerate the
// paper's tables and figures: thousands-grouped integers, percentages,
// scaled counts ("802.59 k"), aligned text tables, and ASCII bar charts.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace spinscope::util {

/// Zero-copy text view of raw bytes (the mini application protocols are
/// plain ASCII on the wire). The view borrows `bytes`' lifetime.
[[nodiscard]] inline std::string_view as_text(std::span<const std::uint8_t> bytes) noexcept {
    return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

/// Byte copy of `text` (building wire payloads).
[[nodiscard]] inline std::vector<std::uint8_t> as_bytes(std::string_view text) {
    return {text.begin(), text.end()};
}

/// 2732702 -> "2 732 702" (the paper uses thin-space grouping).
[[nodiscard]] std::string group_digits(std::uint64_t value);

/// 0.10168 -> "10.2 %" (one decimal, like the paper's tables).
[[nodiscard]] std::string percent(double fraction, int decimals = 1);

/// 802585 -> "802.6 k", 2257938 -> "2.26 M".
[[nodiscard]] std::string human_count(double value);

/// Fixed-decimal double.
[[nodiscard]] std::string fixed(double value, int decimals);

/// Column-aligned monospaced table. The first row may be used as a header;
/// render() separates it with a rule when with_header is true.
class TextTable {
public:
    /// Appends one row. Rows may have differing lengths; shorter rows are
    /// padded with empty cells.
    void add_row(std::vector<std::string> cells);

    /// Renders with single-space-padded columns; column 0 left-aligned,
    /// all further columns right-aligned (matching the paper's numeric
    /// tables).
    [[nodiscard]] std::string render(bool with_header = true) const;

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

private:
    std::vector<std::vector<std::string>> rows_;
};

/// One line of a text bar chart: label, value in [0,1] rendered as a bar of
/// '#' characters plus the numeric share.
[[nodiscard]] std::string bar_line(const std::string& label, double share, int width = 50);

}  // namespace spinscope::util
