#include "util/io.hpp"

#include <cerrno>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#else
#include <cstdio>
#endif

namespace spinscope::util {

IoResult IoResult::failure(int captured_errno) noexcept {
    return IoResult{captured_errno != 0 ? captured_errno : EIO};
}

std::string IoResult::message() const {
    if (err == 0) return "ok";
    return std::error_code(err, std::generic_category()).message() + " (errno " +
           std::to_string(err) + ")";
}

IoErrorClass classify_io_error(int err) noexcept {
    switch (err) {
        case EINTR:
        case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
        case EWOULDBLOCK:
#endif
        case EBUSY:
        case ENOMEM:
        case EMFILE:
        case ENFILE:
            return IoErrorClass::transient;
        case EIO:
            return IoErrorClass::corrupting;
        default:
            return IoErrorClass::fatal;
    }
}

const char* to_cstring(IoErrorClass cls) noexcept {
    switch (cls) {
        case IoErrorClass::transient: return "transient";
        case IoErrorClass::fatal: return "fatal";
        case IoErrorClass::corrupting: return "corrupting";
    }
    return "fatal";
}

namespace {

#ifndef _WIN32

class RealIo final : public Io {
public:
    int open_write(const std::filesystem::path& path, OpenMode mode,
                   IoResult& result) override {
        int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
        switch (mode) {
            case OpenMode::truncate: flags |= O_TRUNC; break;
            case OpenMode::append: flags |= O_APPEND; break;
            case OpenMode::exclusive: flags |= O_EXCL; break;
        }
        int fd = -1;
        do {
            fd = ::open(path.c_str(), flags, 0644);
        } while (fd < 0 && errno == EINTR);
        if (fd < 0) {
            result = IoResult::failure(errno);
            return kBadFile;
        }
        result = IoResult::success();
        return fd;
    }

    IoResult write(int file, std::string_view bytes) override {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ::ssize_t n = ::write(file, bytes.data() + off, bytes.size() - off);
            if (n < 0) {
                if (errno == EINTR) continue;
                return IoResult::failure(errno);
            }
            off += static_cast<std::size_t>(n);
        }
        return IoResult::success();
    }

    IoResult fsync(int file) override {
        return ::fsync(file) == 0 ? IoResult::success() : IoResult::failure(errno);
    }

    IoResult truncate(int file, std::uint64_t size) override {
        int rc = 0;
        do {
            rc = ::ftruncate(file, static_cast<::off_t>(size));
        } while (rc != 0 && errno == EINTR);
        return rc == 0 ? IoResult::success() : IoResult::failure(errno);
    }

    IoResult close(int file) override {
        // No EINTR retry: POSIX leaves the fd state unspecified after an
        // interrupted close, and retrying can close a reused descriptor.
        return ::close(file) == 0 ? IoResult::success() : IoResult::failure(errno);
    }

    IoResult rename(const std::filesystem::path& from,
                    const std::filesystem::path& to) override {
        std::error_code ec;
        std::filesystem::rename(from, to, ec);
        return ec ? IoResult::failure(ec.value()) : IoResult::success();
    }

    IoResult remove(const std::filesystem::path& path) override {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        return ec ? IoResult::failure(ec.value()) : IoResult::success();
    }

    IoResult fsync_path(const std::filesystem::path& path, bool directory) override {
        const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
        const int fd = ::open(path.c_str(), flags);
        if (fd < 0) return IoResult::failure(errno);
        const IoResult synced = fsync(fd);
        ::close(fd);
        return synced;
    }
};

#else  // _WIN32

/// Degraded stdio-backed fallback: handles are indices into a FILE* table,
/// fsync is a flush (power-cut durability is weakened, same caveat the
/// pre-seam atomic_file carried on this platform).
class RealIo final : public Io {
public:
    int open_write(const std::filesystem::path& path, OpenMode mode,
                   IoResult& result) override {
        const char* flags = mode == OpenMode::truncate   ? "wb"
                            : mode == OpenMode::append   ? "ab"
                                                         : "wbx";
        std::FILE* f = std::fopen(path.string().c_str(), flags);
        if (f == nullptr) {
            result = IoResult::failure(errno);
            return kBadFile;
        }
        for (int i = 0; i < kMaxFiles; ++i) {
            if (files_[i] == nullptr) {
                files_[i] = f;
                result = IoResult::success();
                return i;
            }
        }
        std::fclose(f);
        result = IoResult::failure(EMFILE);
        return kBadFile;
    }

    IoResult write(int file, std::string_view bytes) override {
        std::FILE* f = lookup(file);
        if (f == nullptr) return IoResult::failure(EBADF);
        if (!bytes.empty() &&
            std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
            return IoResult::failure(errno);
        }
        return IoResult::success();
    }

    IoResult fsync(int file) override {
        std::FILE* f = lookup(file);
        if (f == nullptr) return IoResult::failure(EBADF);
        return std::fflush(f) == 0 ? IoResult::success() : IoResult::failure(errno);
    }

    IoResult truncate(int file, std::uint64_t) override {
        return lookup(file) != nullptr ? IoResult::failure(ENOSYS)
                                       : IoResult::failure(EBADF);
    }

    IoResult close(int file) override {
        std::FILE* f = lookup(file);
        if (f == nullptr) return IoResult::failure(EBADF);
        files_[file] = nullptr;
        return std::fclose(f) == 0 ? IoResult::success() : IoResult::failure(errno);
    }

    IoResult rename(const std::filesystem::path& from,
                    const std::filesystem::path& to) override {
        std::error_code ec;
        std::filesystem::rename(from, to, ec);
        return ec ? IoResult::failure(ec.value()) : IoResult::success();
    }

    IoResult remove(const std::filesystem::path& path) override {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        return ec ? IoResult::failure(ec.value()) : IoResult::success();
    }

    IoResult fsync_path(const std::filesystem::path&, bool) override {
        return IoResult::success();
    }

private:
    static constexpr int kMaxFiles = 256;

    std::FILE* lookup(int file) const {
        return file >= 0 && file < kMaxFiles ? files_[file] : nullptr;
    }

    std::FILE* files_[kMaxFiles] = {};
};

#endif

}  // namespace

Io& Io::real() noexcept {
    static RealIo io;
    return io;
}

}  // namespace spinscope::util
