// spinscope/util/function.hpp
//
// MoveFunction: a move-only std::function replacement with small-buffer
// optimization. The simulator's event queue holds callbacks that capture
// pooled byte buffers (move-only), which std::function cannot store — it
// requires copyability. std::move_only_function is C++23; this is the
// minimal C++20 equivalent the event path needs.

#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace spinscope::util {

template <typename Signature>
class MoveFunction;

/// Move-only callable wrapper. Callables up to kInlineSize bytes with a
/// noexcept move constructor live inline (no heap allocation — important
/// because every simulator event holds one); larger or throwing-move
/// callables fall back to a single heap allocation.
///
/// Invoking an empty MoveFunction is undefined (the event queue never
/// stores empty callbacks); check with operator bool where emptiness is
/// possible.
template <typename R, typename... Args>
class MoveFunction<R(Args...)> {
public:
    MoveFunction() noexcept = default;
    MoveFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, MoveFunction> &&
                                          std::is_invocable_r_v<R, D&, Args...>>>
    MoveFunction(F&& f) {  // NOLINT(google-explicit-constructor)
        if constexpr (fits_inline<D>()) {
            ::new (storage()) D(std::forward<F>(f));
            ops_ = &inline_ops<D>;
        } else {
            ::new (storage()) D*(new D(std::forward<F>(f)));
            ops_ = &heap_ops<D>;
        }
    }

    MoveFunction(MoveFunction&& other) noexcept : ops_{other.ops_} {
        if (ops_ != nullptr) {
            ops_->relocate(other.storage(), storage());
            other.ops_ = nullptr;
        }
    }

    MoveFunction& operator=(MoveFunction&& other) noexcept {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(other.storage(), storage());
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    MoveFunction(const MoveFunction&) = delete;
    MoveFunction& operator=(const MoveFunction&) = delete;

    ~MoveFunction() { reset(); }

    [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

    R operator()(Args... args) { return ops_->invoke(storage(), std::forward<Args>(args)...); }

private:
    // Sized so the netsim::Timer rearm lambda — a wrapped MoveFunction
    // (64 bytes) plus a shared_ptr and a generation counter — and delivery
    // lambdas owning a pooled buffer (3 words) stay inline.
    static constexpr std::size_t kInlineSize = 96;

    struct Ops {
        R (*invoke)(void*, Args&&...);
        void (*relocate)(void*, void*) noexcept;  // move-construct dst from src, destroy src
        void (*destroy)(void*) noexcept;
    };

    template <typename D>
    static constexpr bool fits_inline() noexcept {
        return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static constexpr Ops inline_ops{
        [](void* s, Args&&... args) -> R {
            return (*static_cast<D*>(s))(std::forward<Args>(args)...);
        },
        [](void* src, void* dst) noexcept {
            ::new (dst) D(std::move(*static_cast<D*>(src)));
            static_cast<D*>(src)->~D();
        },
        [](void* s) noexcept { static_cast<D*>(s)->~D(); },
    };

    template <typename D>
    static constexpr Ops heap_ops{
        [](void* s, Args&&... args) -> R {
            return (**static_cast<D**>(s))(std::forward<Args>(args)...);
        },
        [](void* src, void* dst) noexcept {
            ::new (dst) D*(*static_cast<D**>(src));
            *static_cast<D**>(src) = nullptr;
        },
        [](void* s) noexcept { delete *static_cast<D**>(s); },
    };

    void reset() noexcept {
        if (ops_ != nullptr) {
            ops_->destroy(storage());
            ops_ = nullptr;
        }
    }

    void* storage() noexcept { return static_cast<void*>(buffer_); }

    alignas(std::max_align_t) std::byte buffer_[kInlineSize];
    const Ops* ops_ = nullptr;
};

}  // namespace spinscope::util
