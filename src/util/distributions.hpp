// spinscope/util/distributions.hpp
//
// Deterministic sampling distributions used to synthesize workloads:
// lognormal end-host think times, Zipf domain popularity, discrete weighted
// choices for provider/stack assignment, and mixtures for heavy-tailed server
// behaviour. All sampling goes through util::Rng so results are reproducible
// across platforms (std::lognormal_distribution et al. are not).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace spinscope::util {

/// Standard normal via Box–Muller (deterministic, no libm-version drift in
/// the inputs since both uniforms come from Rng).
[[nodiscard]] double sample_standard_normal(Rng& rng);

/// Normal with mean `mu` and standard deviation `sigma`.
[[nodiscard]] double sample_normal(Rng& rng, double mu, double sigma);

/// Lognormal: exp(N(mu, sigma)). Used for network jitter and server
/// think-time tails.
[[nodiscard]] double sample_lognormal(Rng& rng, double mu, double sigma);

/// Exponential with rate `lambda` (> 0).
[[nodiscard]] double sample_exponential(Rng& rng, double lambda);

/// Pareto (Lomax-style, xm scale, alpha shape > 0): heavy tails for the
/// worst-case server delays that produce the paper's >3x RTT overestimates.
[[nodiscard]] double sample_pareto(Rng& rng, double xm, double alpha);

/// Zipf sampler over ranks [0, n) with exponent s, via precomputed CDF and
/// binary search. Models domain popularity (toplists are Zipf-ish).
class ZipfSampler {
public:
    /// Builds the CDF for `n` ranks with exponent `s` (s >= 0; s == 0 is
    /// uniform). n must be >= 1.
    ZipfSampler(std::size_t n, double s);

    /// Draws a rank in [0, n); rank 0 is the most popular.
    [[nodiscard]] std::size_t sample(Rng& rng) const;

    [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

private:
    std::vector<double> cdf_;
};

/// Weighted discrete choice over indices [0, weights.size()).
/// Used to assign domains to providers and providers to webserver stacks.
class DiscreteSampler {
public:
    /// Weights must be non-negative with a positive sum.
    explicit DiscreteSampler(std::span<const double> weights);

    [[nodiscard]] std::size_t sample(Rng& rng) const;

    [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

private:
    std::vector<double> cdf_;
};

/// One component of a think-time mixture: with probability `weight`, the
/// server's extra processing delay is lognormal(mu, sigma) milliseconds,
/// shifted by `offset_ms`.
struct DelayComponent {
    double weight = 1.0;      ///< relative mixture weight (>= 0)
    double mu = 0.0;          ///< lognormal mu (of the millisecond value)
    double sigma = 0.5;       ///< lognormal sigma
    double offset_ms = 0.0;   ///< constant additive offset in milliseconds
};

/// Mixture of shifted-lognormal delays, in milliseconds. This is the
/// workhorse for modelling end-host processing delay: the paper's Fig. 3/4
/// shapes (30% accurate / 50% >3x overestimate) come from a mixture of fast,
/// moderate and slow servers.
class DelayMixture {
public:
    DelayMixture() = default;
    explicit DelayMixture(std::vector<DelayComponent> components);

    /// Samples one delay; never negative.
    [[nodiscard]] Duration sample(Rng& rng) const;

    [[nodiscard]] bool empty() const noexcept { return components_.empty(); }
    [[nodiscard]] const std::vector<DelayComponent>& components() const noexcept {
        return components_;
    }

private:
    std::vector<DelayComponent> components_;
    DiscreteSampler picker_{std::span<const double>{}};
};

}  // namespace spinscope::util
