// spinscope/util/stats.hpp
//
// Streaming statistics and binned histograms used by the analysis pipeline
// (per-connection RTT aggregation, Figures 2-4 of the paper).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace spinscope::util {

/// Numerically stable streaming moments (Welford) plus min/max.
class RunningStats {
public:
    /// Adds one observation.
    void add(double x) noexcept;

    /// Merges another accumulator into this one (parallel reduction).
    void merge(const RunningStats& other) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
    /// Mean of the observations; 0 when empty.
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Unbiased sample variance; 0 with fewer than two observations.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Smallest / largest observation; nullopt when empty.
    [[nodiscard]] std::optional<double> min() const noexcept;
    [[nodiscard]] std::optional<double> max() const noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Linear-interpolation quantile of an unsorted sample (copies + sorts).
/// q in [0, 1]; returns nullopt for an empty sample.
[[nodiscard]] std::optional<double> quantile(std::span<const double> values, double q);

/// Histogram over explicit bin edges, with underflow/overflow buckets.
///
/// Edges e0 < e1 < ... < ek define bins [e0,e1), [e1,e2), ..., [e(k-1),ek).
/// Values < e0 land in the underflow bucket, values >= ek in overflow.
/// Used directly to regenerate the paper's Figures 3 and 4.
class Histogram {
public:
    /// Requires at least two strictly increasing edges.
    explicit Histogram(std::vector<double> edges);

    void add(double value) noexcept;
    void add_n(double value, std::uint64_t n) noexcept;

    [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
    [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
    [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
    [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] const std::vector<double>& edges() const noexcept { return edges_; }

    /// Share of all added values (including under/overflow) in bin i.
    [[nodiscard]] double share(std::size_t i) const;
    [[nodiscard]] double underflow_share() const noexcept;
    [[nodiscard]] double overflow_share() const noexcept;

    /// Share of values in [lo_edge_index, hi_edge_index) bins combined.
    [[nodiscard]] double share_between(std::size_t first_bin, std::size_t last_bin) const;

    /// Fraction of all values strictly below `threshold` (threshold must be
    /// one of the edges; computed exactly from bins + underflow).
    [[nodiscard]] double fraction_below_edge(double threshold) const;

private:
    std::vector<double> edges_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/// Integer-category histogram for small domains (e.g. "spun in k of 12
/// weeks", k in [0, 12]) — Figure 2.
class CategoricalCounts {
public:
    explicit CategoricalCounts(std::size_t categories) : counts_(categories, 0) {}

    void add(std::size_t category, std::uint64_t n = 1);

    [[nodiscard]] std::size_t categories() const noexcept { return counts_.size(); }
    [[nodiscard]] std::uint64_t count(std::size_t category) const { return counts_.at(category); }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] double share(std::size_t category) const;

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/// Binomial pmf P[X = k] for X ~ Bin(n, p); computed in log-space for
/// stability. Used for the Figure 2 "RFC 9000 / RFC 9312" theoretical
/// curves (spin enabled with p = 15/16 resp. 7/8 per connection).
[[nodiscard]] double binomial_pmf(unsigned n, unsigned k, double p);

}  // namespace spinscope::util
