// spinscope/util/atomic_file.hpp
//
// Crash-safe file publication: write-to-temp + fsync + rename.
//
// The campaign pipeline persists state a crash must never tear — telemetry
// sidecars, qlog dataset shards, journal segments. POSIX rename() within one
// filesystem is atomic, so a reader (or a resumed campaign) only ever
// observes the old file or the complete new file, never a partial write.
// fsync-before-rename closes the remaining window where the rename survives
// a power cut but the data it points at does not.

#pragma once

#include <filesystem>
#include <string_view>

namespace spinscope::util {

/// Writes `content` to `path` atomically: the bytes land in a temp file next
/// to `path` (same directory, so the rename never crosses filesystems), are
/// flushed and fsynced, and the temp file is renamed over `path`. Returns
/// false on any failure; the temp file is removed best-effort and `path` is
/// left untouched (either its previous content or absent).
[[nodiscard]] bool write_file_atomic(const std::filesystem::path& path,
                                     std::string_view content);

/// Durably renames `from` onto `to`: fsyncs `from`'s data is the caller's
/// job (write_file_atomic does it; an append-mode writer must fsync before
/// sealing); this performs the atomic rename and then fsyncs the containing
/// directory so the new directory entry itself survives a crash. Returns
/// false on failure, leaving `from` in place.
[[nodiscard]] bool rename_durable(const std::filesystem::path& from,
                                  const std::filesystem::path& to);

/// Best-effort fsync of an already-written file by path (opens, fsyncs,
/// closes). Used by append-mode writers before sealing a segment. Returns
/// false when the file cannot be opened or synced.
bool fsync_file(const std::filesystem::path& path);

}  // namespace spinscope::util
