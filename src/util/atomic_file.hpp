// spinscope/util/atomic_file.hpp
//
// Crash-safe file publication: write-to-temp + fsync + rename.
//
// The campaign pipeline persists state a crash must never tear — telemetry
// sidecars, qlog dataset shards, journal segments. POSIX rename() within one
// filesystem is atomic, so a reader (or a resumed campaign) only ever
// observes the old file or the complete new file, never a partial write.
// fsync-before-rename closes the remaining window where the rename survives
// a power cut but the data it points at does not.
//
// Each primitive comes in two forms: an Io-threaded overload returning an
// errno-carrying IoResult (so callers can tell ENOSPC from EEXIST from EIO,
// and tests can inject storage faults), and the historical bool form, which
// runs against the real disk and keeps existing call sites unchanged.

#pragma once

#include <filesystem>
#include <string_view>

#include "util/io.hpp"

namespace spinscope::util {

/// Writes `content` to `path` atomically: the bytes land in a temp file next
/// to `path` (same directory, so the rename never crosses filesystems), are
/// flushed and fsynced, and the temp file is renamed over `path`. On failure
/// the temp file is removed best-effort and `path` is left untouched (either
/// its previous content or absent); the result carries the first errno hit.
[[nodiscard]] IoResult write_file_atomic(Io& io, const std::filesystem::path& path,
                                         std::string_view content);
[[nodiscard]] bool write_file_atomic(const std::filesystem::path& path,
                                     std::string_view content);

/// Durably renames `from` onto `to`: fsyncs `from`'s data is the caller's
/// job (write_file_atomic does it; an append-mode writer must fsync before
/// sealing); this performs the atomic rename and then fsyncs the containing
/// directory (both directories, when the rename crosses them) so the moved
/// directory entry itself survives a crash — without the source-side sync a
/// power cut can resurrect the old name next to the new one. Fails only when
/// the rename itself fails, leaving `from` in place; a failed directory sync
/// after a successful rename still reports success (the file IS published —
/// reporting failure would make callers delete or rewrite it).
[[nodiscard]] IoResult rename_durable(Io& io, const std::filesystem::path& from,
                                      const std::filesystem::path& to);
[[nodiscard]] bool rename_durable(const std::filesystem::path& from,
                                  const std::filesystem::path& to);

/// Best-effort fsync of a directory by path, persisting its entries (used
/// after creating a journal directory so the directory itself survives a
/// power cut). Fails when the directory cannot be opened or synced.
[[nodiscard]] IoResult fsync_dir(Io& io, const std::filesystem::path& dir);
bool fsync_dir(const std::filesystem::path& dir);

/// Best-effort fsync of an already-written file by path (opens, fsyncs,
/// closes). Used by append-mode writers before sealing a segment. Fails when
/// the file cannot be opened or synced.
[[nodiscard]] IoResult fsync_file(Io& io, const std::filesystem::path& path);
bool fsync_file(const std::filesystem::path& path);

/// Atomically creates `path` with `content` iff it does not already exist
/// (O_EXCL). This is the claim primitive behind lock and lease files: of N
/// concurrent creators exactly one succeeds. A lost race reports EEXIST —
/// the one storage "failure" that is business as usual — while real I/O
/// errors carry their own errno; a partially-written file is removed
/// best-effort so a loser never observes a torn winner.
[[nodiscard]] IoResult create_file_exclusive(Io& io, const std::filesystem::path& path,
                                             std::string_view content);
[[nodiscard]] bool create_file_exclusive(const std::filesystem::path& path,
                                         std::string_view content);

}  // namespace spinscope::util
