#include "util/atomic_file.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <string>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace spinscope::util {

namespace {

/// fsync a file descriptor; on platforms without fsync this degrades to a
/// no-op success (the rename is still atomic, only power-cut durability is
/// weakened).
bool sync_fd(int fd) noexcept {
#ifndef _WIN32
    return ::fsync(fd) == 0;
#else
    (void)fd;
    return true;
#endif
}

bool sync_path(const std::filesystem::path& path, bool directory) noexcept {
#ifndef _WIN32
    const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
    const int fd = ::open(path.c_str(), flags);
    if (fd < 0) return false;
    const bool ok = sync_fd(fd);
    ::close(fd);
    return ok;
#else
    (void)path;
    (void)directory;
    return true;
#endif
}

/// Temp-file name next to `path`; the PID suffix keeps concurrent writers of
/// different processes from clobbering each other's temp files, and the
/// process-wide serial keeps concurrent threads of ONE process (sharded
/// chunk workers publishing into one journal dir) from clobbering each
/// other's temp files too.
std::filesystem::path temp_sibling(const std::filesystem::path& path) {
#ifndef _WIN32
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    static std::atomic<unsigned long> serial{0};
    const unsigned long n = serial.fetch_add(1, std::memory_order_relaxed);
    std::filesystem::path temp = path;
    temp += ".tmp." + std::to_string(pid) + "." + std::to_string(n);
    return temp;
}

}  // namespace

bool write_file_atomic(const std::filesystem::path& path, std::string_view content) {
    const std::filesystem::path temp = temp_sibling(path);
    std::error_code ec;

    // stdio instead of ofstream: we need the file descriptor for fsync.
    std::FILE* f = std::fopen(temp.c_str(), "wb");
    if (f == nullptr) return false;
    bool ok = content.empty() ||
              std::fwrite(content.data(), 1, content.size(), f) == content.size();
    ok = (std::fflush(f) == 0) && ok;
#ifndef _WIN32
    ok = ok && sync_fd(::fileno(f));
#endif
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        std::filesystem::remove(temp, ec);
        return false;
    }
    if (!rename_durable(temp, path)) {
        std::filesystem::remove(temp, ec);
        return false;
    }
    return true;
}

bool rename_durable(const std::filesystem::path& from, const std::filesystem::path& to) {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) return false;
    // Persist the directory entries. The rename already happened, so sync
    // failure here must NOT be reported as rename failure — callers would
    // react by deleting or rewriting a file that is correctly published.
    const std::filesystem::path to_dir =
        to.has_parent_path() ? to.parent_path() : std::filesystem::path{"."};
    (void)sync_path(to_dir, /*directory=*/true);
    const std::filesystem::path from_dir =
        from.has_parent_path() ? from.parent_path() : std::filesystem::path{"."};
    if (!std::filesystem::equivalent(to_dir, from_dir, ec) && !ec) {
        // Cross-directory rename: also persist the removal of the old entry,
        // or a power cut can resurrect the source name next to the new one.
        (void)sync_path(from_dir, /*directory=*/true);
    }
    return true;
}

bool fsync_dir(const std::filesystem::path& dir) {
    return sync_path(dir.empty() ? std::filesystem::path{"."} : dir,
                     /*directory=*/true);
}

bool fsync_file(const std::filesystem::path& path) {
    return sync_path(path, /*directory=*/false);
}

bool create_file_exclusive(const std::filesystem::path& path, std::string_view content) {
#ifndef _WIN32
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) return false;
    std::size_t off = 0;
    bool ok = true;
    while (off < content.size()) {
        const ::ssize_t n = ::write(fd, content.data() + off, content.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            ok = false;
            break;
        }
        off += static_cast<std::size_t>(n);
    }
    ok = sync_fd(fd) && ok;
    ::close(fd);
    if (!ok) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
    return ok;
#else
    // C11 "x" mode: fail when the file exists (the closest O_EXCL analogue).
    std::FILE* f = std::fopen(path.string().c_str(), "wbx");
    if (f == nullptr) return false;
    bool ok = content.empty() ||
              std::fwrite(content.data(), 1, content.size(), f) == content.size();
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
    return ok;
#endif
}

}  // namespace spinscope::util
