#include "util/atomic_file.hpp"

#include <cstdio>
#include <string>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace spinscope::util {

namespace {

/// fsync a file descriptor; on platforms without fsync this degrades to a
/// no-op success (the rename is still atomic, only power-cut durability is
/// weakened).
bool sync_fd(int fd) noexcept {
#ifndef _WIN32
    return ::fsync(fd) == 0;
#else
    (void)fd;
    return true;
#endif
}

bool sync_path(const std::filesystem::path& path, bool directory) noexcept {
#ifndef _WIN32
    const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
    const int fd = ::open(path.c_str(), flags);
    if (fd < 0) return false;
    const bool ok = sync_fd(fd);
    ::close(fd);
    return ok;
#else
    (void)path;
    (void)directory;
    return true;
#endif
}

/// Temp-file name next to `path`; the PID suffix keeps concurrent writers of
/// different processes from clobbering each other's temp files.
std::filesystem::path temp_sibling(const std::filesystem::path& path) {
#ifndef _WIN32
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    std::filesystem::path temp = path;
    temp += ".tmp." + std::to_string(pid);
    return temp;
}

}  // namespace

bool write_file_atomic(const std::filesystem::path& path, std::string_view content) {
    const std::filesystem::path temp = temp_sibling(path);
    std::error_code ec;

    // stdio instead of ofstream: we need the file descriptor for fsync.
    std::FILE* f = std::fopen(temp.c_str(), "wb");
    if (f == nullptr) return false;
    bool ok = content.empty() ||
              std::fwrite(content.data(), 1, content.size(), f) == content.size();
    ok = (std::fflush(f) == 0) && ok;
#ifndef _WIN32
    ok = ok && sync_fd(::fileno(f));
#endif
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        std::filesystem::remove(temp, ec);
        return false;
    }
    if (!rename_durable(temp, path)) {
        std::filesystem::remove(temp, ec);
        return false;
    }
    return true;
}

bool rename_durable(const std::filesystem::path& from, const std::filesystem::path& to) {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) return false;
    // Persist the directory entry. Failure here is not fatal to correctness
    // (the rename happened); report it anyway so callers can surface it.
    const std::filesystem::path dir =
        to.has_parent_path() ? to.parent_path() : std::filesystem::path{"."};
    return sync_path(dir, /*directory=*/true);
}

bool fsync_file(const std::filesystem::path& path) {
    return sync_path(path, /*directory=*/false);
}

}  // namespace spinscope::util
