#include "util/atomic_file.hpp"

#include <atomic>
#include <cerrno>
#include <string>
#include <system_error>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace spinscope::util {

namespace {

/// Temp-file name next to `path`; the PID suffix keeps concurrent writers of
/// different processes from clobbering each other's temp files, and the
/// process-wide serial keeps concurrent threads of ONE process (sharded
/// chunk workers publishing into one journal dir) from clobbering each
/// other's temp files too.
std::filesystem::path temp_sibling(const std::filesystem::path& path) {
#ifndef _WIN32
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    static std::atomic<unsigned long> serial{0};
    const unsigned long n = serial.fetch_add(1, std::memory_order_relaxed);
    std::filesystem::path temp = path;
    temp += ".tmp." + std::to_string(pid) + "." + std::to_string(n);
    return temp;
}

/// Write + fsync + close an already-opened handle; on any failure the file at
/// `path` is removed best-effort and the first error is returned.
IoResult finish_new_file(Io& io, int fd, const std::filesystem::path& path,
                         std::string_view content) {
    IoResult result = io.write(fd, content);
    if (result) result = io.fsync(fd);
    if (result) {
        result = io.close(fd);
    } else {
        (void)io.close(fd);
    }
    if (!result) (void)io.remove(path);
    return result;
}

}  // namespace

IoResult write_file_atomic(Io& io, const std::filesystem::path& path,
                           std::string_view content) {
    const std::filesystem::path temp = temp_sibling(path);
    IoResult result;
    const int fd = io.open_write(temp, Io::OpenMode::truncate, result);
    if (fd == Io::kBadFile) return result;
    result = finish_new_file(io, fd, temp, content);
    if (!result) return result;
    result = rename_durable(io, temp, path);
    if (!result) (void)io.remove(temp);
    return result;
}

bool write_file_atomic(const std::filesystem::path& path, std::string_view content) {
    return write_file_atomic(Io::real(), path, content).ok();
}

IoResult rename_durable(Io& io, const std::filesystem::path& from,
                        const std::filesystem::path& to) {
    const IoResult renamed = io.rename(from, to);
    if (!renamed) return renamed;
    // Persist the directory entries. The rename already happened, so sync
    // failure here must NOT be reported as rename failure — callers would
    // react by deleting or rewriting a file that is correctly published.
    const std::filesystem::path to_dir =
        to.has_parent_path() ? to.parent_path() : std::filesystem::path{"."};
    (void)io.fsync_path(to_dir, /*directory=*/true);
    const std::filesystem::path from_dir =
        from.has_parent_path() ? from.parent_path() : std::filesystem::path{"."};
    std::error_code ec;
    if (!std::filesystem::equivalent(to_dir, from_dir, ec) && !ec) {
        // Cross-directory rename: also persist the removal of the old entry,
        // or a power cut can resurrect the source name next to the new one.
        (void)io.fsync_path(from_dir, /*directory=*/true);
    }
    return IoResult::success();
}

bool rename_durable(const std::filesystem::path& from, const std::filesystem::path& to) {
    return rename_durable(Io::real(), from, to).ok();
}

IoResult fsync_dir(Io& io, const std::filesystem::path& dir) {
    return io.fsync_path(dir.empty() ? std::filesystem::path{"."} : dir,
                         /*directory=*/true);
}

bool fsync_dir(const std::filesystem::path& dir) {
    return fsync_dir(Io::real(), dir).ok();
}

IoResult fsync_file(Io& io, const std::filesystem::path& path) {
    return io.fsync_path(path, /*directory=*/false);
}

bool fsync_file(const std::filesystem::path& path) {
    return fsync_file(Io::real(), path).ok();
}

IoResult create_file_exclusive(Io& io, const std::filesystem::path& path,
                               std::string_view content) {
    IoResult result;
    const int fd = io.open_write(path, Io::OpenMode::exclusive, result);
    if (fd == Io::kBadFile) return result;
    return finish_new_file(io, fd, path, content);
}

bool create_file_exclusive(const std::filesystem::path& path, std::string_view content) {
    return create_file_exclusive(Io::real(), path, content).ok();
}

}  // namespace spinscope::util
