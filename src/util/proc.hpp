// spinscope/util/proc.hpp
//
// Process and pipe helpers for multi-process campaign execution: liveness
// probes, CLOEXEC pipe pairs, line-oriented nonblocking channel reads, and a
// pid lock file with stale-owner detection.
//
// Everything here is POSIX-first (the procpool supervisor is a fork-based
// design, DESIGN.md §13); on platforms without fork/pipes the helpers
// degrade explicitly — Pipe construction throws and process_alive reports
// true (never falsely declare a process dead, which would break a lease).

#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spinscope::util {

/// This process's pid (0 when the platform has no notion of one).
[[nodiscard]] long current_pid() noexcept;

/// True when a process with `pid` currently exists (kill(pid, 0) probe).
/// Conservative: on probe failure other than ESRCH — or on platforms without
/// the probe — reports true, so callers never treat a live owner as dead.
[[nodiscard]] bool process_alive(long pid) noexcept;

/// Unidirectional byte pipe (close-on-exec on both ends). The supervisor
/// keeps the read end, a forked worker keeps the write end; either side
/// closes its unused end after the fork.
class Pipe {
public:
    /// Throws std::runtime_error when the pipe cannot be created.
    Pipe();
    ~Pipe();

    Pipe(Pipe&& other) noexcept;
    Pipe& operator=(Pipe&& other) noexcept;
    Pipe(const Pipe&) = delete;
    Pipe& operator=(const Pipe&) = delete;

    [[nodiscard]] int read_fd() const noexcept { return read_fd_; }
    [[nodiscard]] int write_fd() const noexcept { return write_fd_; }
    void close_read() noexcept;
    void close_write() noexcept;

private:
    int read_fd_ = -1;
    int write_fd_ = -1;
};

/// Writes `line` plus a trailing '\n' to `fd`, retrying on EINTR. Returns
/// false on any write error (including EPIPE — callers in a dying worker
/// must not crash on a vanished supervisor).
bool write_line(int fd, std::string_view line) noexcept;

/// Buffered line splitter over a nonblocking fd, for poll loops: drain()
/// reads whatever is available and appends every complete '\n'-terminated
/// line (without the '\n') to `out`.
class LineReader {
public:
    explicit LineReader(int fd) noexcept : fd_{fd} {}

    /// Returns false once the peer closed the pipe (EOF); a partial final
    /// line is delivered at EOF too. true = the channel is still open.
    bool drain(std::vector<std::string>& out);

private:
    int fd_;
    std::string buffer_;
    bool eof_ = false;
};

/// Makes `fd` nonblocking; returns false on failure.
bool set_nonblocking(int fd) noexcept;

/// A pid lock file (`journal.lock` and friends): atomically created with
/// O_EXCL, containing the owner's pid. A lock whose owner pid no longer
/// exists is stale and is silently broken and re-acquired — crash-safe
/// without manual cleanup. A lock held by a LIVE process refuses loudly.
class PidLockFile {
public:
    PidLockFile() = default;
    ~PidLockFile() { release(); }

    PidLockFile(const PidLockFile&) = delete;
    PidLockFile& operator=(const PidLockFile&) = delete;

    /// Acquires `path` for this process. Throws std::runtime_error naming
    /// the owning pid when the lock is held by a live process, or when the
    /// lock file cannot be created.
    void acquire(const std::filesystem::path& path);

    /// Removes the lock file (only if still ours); idempotent.
    void release() noexcept;

    [[nodiscard]] bool held() const noexcept { return held_; }

    /// The pid recorded in a lock file; nullopt when absent or garbled.
    [[nodiscard]] static std::optional<long> owner(const std::filesystem::path& path);

private:
    std::filesystem::path path_;
    bool held_ = false;
};

}  // namespace spinscope::util
