#include "util/format.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/time.hpp"

namespace spinscope::util {

std::string group_digits(std::uint64_t value) {
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out.push_back(' ');
        out.push_back(digits[i]);
    }
    return out;
}

std::string fixed(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string percent(double fraction, int decimals) {
    return fixed(fraction * 100.0, decimals) + " %";
}

std::string human_count(double value) {
    const double a = std::fabs(value);
    if (a >= 1e9) return fixed(value / 1e9, 2) + " G";
    if (a >= 1e6) return fixed(value / 1e6, 2) + " M";
    if (a >= 1e3) return fixed(value / 1e3, 1) + " k";
    return fixed(value, 0);
}

void TextTable::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::render(bool with_header) const {
    std::size_t columns = 0;
    for (const auto& row : rows_) columns = std::max(columns, row.size());
    std::vector<std::size_t> widths(columns, 0);
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream out;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const auto& row = rows_[r];
        for (std::size_t c = 0; c < columns; ++c) {
            const std::string cell = c < row.size() ? row[c] : std::string{};
            if (c == 0) {
                out << cell << std::string(widths[c] - cell.size(), ' ');
            } else {
                out << "  " << std::string(widths[c] - cell.size(), ' ') << cell;
            }
        }
        out << '\n';
        if (with_header && r == 0) {
            std::size_t rule = 0;
            for (std::size_t c = 0; c < columns; ++c) rule += widths[c] + (c == 0 ? 0 : 2);
            out << std::string(rule, '-') << '\n';
        }
    }
    return out.str();
}

std::string bar_line(const std::string& label, double share, int width) {
    const double clamped = std::clamp(share, 0.0, 1.0);
    const int filled = static_cast<int>(std::lround(clamped * width));
    std::string bar(static_cast<std::size_t>(filled), '#');
    bar.resize(static_cast<std::size_t>(width), ' ');
    return label + " |" + bar + "| " + percent(share);
}

std::string to_string(Duration d) {
    const std::int64_t ns = d.count_nanos();
    const std::int64_t mag = ns < 0 ? -ns : ns;
    if (mag >= 1'000'000'000) return fixed(d.as_seconds(), 3) + " s";
    if (mag >= 1'000'000) return fixed(d.as_ms(), 3) + " ms";
    if (mag >= 1'000) return fixed(static_cast<double>(ns) / 1e3, 2) + " us";
    return std::to_string(ns) + " ns";
}

}  // namespace spinscope::util
