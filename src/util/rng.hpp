// spinscope/util/rng.hpp
//
// Deterministic pseudo-random number generation for reproducible simulations.
//
// Every stochastic component of spinscope (network jitter, loss, the spin-bit
// disable lottery, population synthesis, ...) draws from an explicitly seeded
// Rng instance so that a given seed always reproduces the same campaign,
// independent of platform or standard-library implementation.

#pragma once

#include <cstdint>
#include <limits>

namespace spinscope::util {

/// SplitMix64 — used to expand a single 64-bit seed into a full generator
/// state. Passes BigCrush when used directly; here it only seeds xoshiro.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Derives the seed of an independent sub-stream keyed by `key` (a domain
/// id, host index, shard id, ...) from a base seed, using SplitMix64's
/// golden-ratio increment to spread consecutive keys across the seed space.
///
/// This is THE seed-derivation scheme of the sharded campaign determinism
/// contract (DESIGN.md §9): a sub-stream seed is a pure function of
/// (base, key), never of scan order, shard assignment or thread count, so
/// identically seeded campaigns draw identical randomness per domain no
/// matter how the domain population is partitioned across workers. The
/// formula is also byte-compatible with the seeds historical spinscope
/// versions used inline, which keeps the checked-in golden traces valid.
[[nodiscard]] constexpr std::uint64_t derive_stream_seed(std::uint64_t base,
                                                         std::uint64_t key) noexcept {
    return base ^ (0x9e3779b97f4a7c15ULL * (key + 1));
}

/// xoshiro256** 1.0 (Blackman & Vigna) — small, fast, high-quality generator.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, but spinscope code
/// should prefer the typed helpers (uniform_u64, uniform_double, chance, ...)
/// which are deterministic across standard libraries, unlike <random>
/// distributions.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the generator state from a single 64-bit seed via SplitMix64.
    explicit constexpr Rng(std::uint64_t seed = 0x5eed5c07e5eedULL) noexcept { reseed(seed); }

    /// Re-initializes the state as if freshly constructed with `seed`.
    constexpr void reseed(std::uint64_t seed) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64_next(sm);
    }

    /// Derives an independent child generator. Used to give each simulated
    /// host / link / week its own stream so that adding a component does not
    /// perturb the draws of unrelated components.
    [[nodiscard]] constexpr Rng fork(std::uint64_t stream_id) noexcept {
        return Rng{next() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1))};
    }

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept { return next(); }

    /// Raw 64 random bits.
    constexpr std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound == 0 yields 0. Uses Lemire's
    /// multiply-shift rejection method (unbiased).
    [[nodiscard]] constexpr std::uint64_t uniform_u64(std::uint64_t bound) noexcept {
        if (bound == 0) return 0;
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    [[nodiscard]] constexpr std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(uniform_u64(span));
    }

    /// Uniform double in [0, 1) with 53 bits of entropy.
    [[nodiscard]] constexpr double uniform_double() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    [[nodiscard]] constexpr double uniform_double(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform_double();
    }

    /// Bernoulli draw: true with probability `p` (clamped to [0, 1]).
    [[nodiscard]] constexpr bool chance(double p) noexcept {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return uniform_double() < p;
    }

    /// "1 in n" draw, e.g. the RFC 9000 spin-bit disable lottery uses n = 16.
    /// n == 0 never fires; n == 1 always fires.
    [[nodiscard]] constexpr bool one_in(std::uint64_t n) noexcept {
        if (n == 0) return false;
        return uniform_u64(n) == 0;
    }

    /// Single random bit, e.g. for per-packet spin-bit greasing.
    [[nodiscard]] constexpr bool coin() noexcept { return (next() & 1u) != 0; }

private:
    [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

}  // namespace spinscope::util
