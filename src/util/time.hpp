// spinscope/util/time.hpp
//
// Simulation time types.
//
// All of spinscope runs on a simulated clock. Durations and time points are
// integral nanosecond counts wrapped in strong types so that host wall-clock
// time can never leak into a simulation and so arithmetic stays exact (the
// RFC 9002 RTT estimator and the spin-bit observer both need sub-millisecond
// precision without floating-point drift).

#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace spinscope::util {

/// A span of simulated time, in nanoseconds. Signed so that differences of
/// time points (e.g. spin-RTT minus stack-RTT) are representable.
class Duration {
public:
    constexpr Duration() = default;

    [[nodiscard]] static constexpr Duration nanos(std::int64_t n) noexcept { return Duration{n}; }
    [[nodiscard]] static constexpr Duration micros(std::int64_t n) noexcept {
        return Duration{n * 1'000};
    }
    [[nodiscard]] static constexpr Duration millis(std::int64_t n) noexcept {
        return Duration{n * 1'000'000};
    }
    [[nodiscard]] static constexpr Duration seconds(std::int64_t n) noexcept {
        return Duration{n * 1'000'000'000};
    }
    /// Converts a floating-point millisecond value (rounded to nanoseconds).
    [[nodiscard]] static constexpr Duration from_ms(double ms) noexcept {
        return Duration{static_cast<std::int64_t>(ms * 1e6 + (ms >= 0 ? 0.5 : -0.5))};
    }
    [[nodiscard]] static constexpr Duration zero() noexcept { return Duration{0}; }
    [[nodiscard]] static constexpr Duration max() noexcept {
        return Duration{INT64_MAX};
    }

    [[nodiscard]] constexpr std::int64_t count_nanos() const noexcept { return ns_; }
    [[nodiscard]] constexpr std::int64_t count_micros() const noexcept { return ns_ / 1'000; }
    [[nodiscard]] constexpr std::int64_t count_millis() const noexcept { return ns_ / 1'000'000; }
    [[nodiscard]] constexpr double as_ms() const noexcept { return static_cast<double>(ns_) / 1e6; }
    [[nodiscard]] constexpr double as_seconds() const noexcept {
        return static_cast<double>(ns_) / 1e9;
    }

    [[nodiscard]] constexpr bool is_zero() const noexcept { return ns_ == 0; }
    [[nodiscard]] constexpr bool is_negative() const noexcept { return ns_ < 0; }

    constexpr Duration& operator+=(Duration rhs) noexcept { ns_ += rhs.ns_; return *this; }
    constexpr Duration& operator-=(Duration rhs) noexcept { ns_ -= rhs.ns_; return *this; }

    friend constexpr Duration operator+(Duration a, Duration b) noexcept {
        return Duration{a.ns_ + b.ns_};
    }
    friend constexpr Duration operator-(Duration a, Duration b) noexcept {
        return Duration{a.ns_ - b.ns_};
    }
    friend constexpr Duration operator*(Duration a, std::int64_t k) noexcept {
        return Duration{a.ns_ * k};
    }
    friend constexpr Duration operator*(std::int64_t k, Duration a) noexcept { return a * k; }
    friend constexpr Duration operator/(Duration a, std::int64_t k) noexcept {
        return Duration{a.ns_ / k};
    }
    friend constexpr auto operator<=>(Duration, Duration) = default;

    [[nodiscard]] constexpr Duration abs() const noexcept { return Duration{ns_ < 0 ? -ns_ : ns_}; }

    /// Scales by a floating-point factor (rounded to nanoseconds).
    [[nodiscard]] constexpr Duration scaled(double k) const noexcept {
        return Duration::from_ms(as_ms() * k);
    }

private:
    explicit constexpr Duration(std::int64_t ns) noexcept : ns_{ns} {}
    std::int64_t ns_ = 0;
};

/// An instant on the simulated clock (nanoseconds since simulation start).
class TimePoint {
public:
    constexpr TimePoint() = default;

    [[nodiscard]] static constexpr TimePoint from_nanos(std::int64_t n) noexcept {
        return TimePoint{n};
    }
    [[nodiscard]] static constexpr TimePoint origin() noexcept { return TimePoint{0}; }
    /// Sentinel used for "not yet observed" timestamps.
    [[nodiscard]] static constexpr TimePoint never() noexcept { return TimePoint{INT64_MAX}; }

    [[nodiscard]] constexpr std::int64_t count_nanos() const noexcept { return ns_; }
    [[nodiscard]] constexpr double as_ms() const noexcept { return static_cast<double>(ns_) / 1e6; }
    [[nodiscard]] constexpr bool is_never() const noexcept { return ns_ == INT64_MAX; }

    friend constexpr TimePoint operator+(TimePoint t, Duration d) noexcept {
        return TimePoint{t.ns_ + d.count_nanos()};
    }
    friend constexpr TimePoint operator-(TimePoint t, Duration d) noexcept {
        return TimePoint{t.ns_ - d.count_nanos()};
    }
    friend constexpr Duration operator-(TimePoint a, TimePoint b) noexcept {
        return Duration::nanos(a.ns_ - b.ns_);
    }
    friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

private:
    explicit constexpr TimePoint(std::int64_t ns) noexcept : ns_{ns} {}
    std::int64_t ns_ = 0;
};

/// Renders a duration as a short human-readable string ("12.3 ms", "870 ns").
[[nodiscard]] std::string to_string(Duration d);

}  // namespace spinscope::util
