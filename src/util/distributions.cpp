#include "util/distributions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace spinscope::util {

double sample_standard_normal(Rng& rng) {
    // Box–Muller; u1 is kept away from 0 so log() stays finite.
    double u1 = rng.uniform_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = rng.uniform_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double sample_normal(Rng& rng, double mu, double sigma) {
    return mu + sigma * sample_standard_normal(rng);
}

double sample_lognormal(Rng& rng, double mu, double sigma) {
    return std::exp(sample_normal(rng, mu, sigma));
}

double sample_exponential(Rng& rng, double lambda) {
    assert(lambda > 0.0);
    double u = rng.uniform_double();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / lambda;
}

double sample_pareto(Rng& rng, double xm, double alpha) {
    assert(xm > 0.0 && alpha > 0.0);
    double u = rng.uniform_double();
    if (u < 1e-300) u = 1e-300;
    return xm / std::pow(u, 1.0 / alpha);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
    if (n == 0) throw std::invalid_argument{"ZipfSampler: n must be >= 1"};
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
        acc += 1.0 / std::pow(static_cast<double>(rank + 1), s);
        cdf_[rank] = acc;
    }
    for (auto& v : cdf_) v /= acc;
    cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
    const double u = rng.uniform_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
    cdf_.resize(weights.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] < 0.0) throw std::invalid_argument{"DiscreteSampler: negative weight"};
        acc += weights[i];
        cdf_[i] = acc;
    }
    if (!weights.empty()) {
        if (acc <= 0.0) throw std::invalid_argument{"DiscreteSampler: zero total weight"};
        for (auto& v : cdf_) v /= acc;
        cdf_.back() = 1.0;
    }
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
    assert(!cdf_.empty());
    const double u = rng.uniform_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

DelayMixture::DelayMixture(std::vector<DelayComponent> components)
    : components_{std::move(components)} {
    std::vector<double> weights;
    weights.reserve(components_.size());
    for (const auto& c : components_) weights.push_back(c.weight);
    picker_ = DiscreteSampler{weights};
}

Duration DelayMixture::sample(Rng& rng) const {
    if (components_.empty()) return Duration::zero();
    const auto& c = components_[picker_.sample(rng)];
    const double ms = c.offset_ms + sample_lognormal(rng, c.mu, c.sigma);
    return Duration::from_ms(std::max(0.0, ms));
}

}  // namespace spinscope::util
