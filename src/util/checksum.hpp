// spinscope/util/checksum.hpp
//
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for record-level
// integrity checks: the campaign journal frames every record with a length
// and a checksum so that a crash mid-append is detectable as a torn tail and
// bit rot in older segments never replays as valid data.
//
// Header-only and constexpr: the lookup table is generated at compile time
// and checksums of compile-time constants can be folded into constants.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace spinscope::util {

namespace detail {

[[nodiscard]] constexpr std::array<std::uint32_t, 256> make_crc32_table() noexcept {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
        }
        table[i] = crc;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// Incremental form: feed `data` into a running CRC state. Start from
/// crc32_init(), finish with crc32_final().
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

[[nodiscard]] constexpr std::uint32_t crc32_update(std::uint32_t state,
                                                   const char* data,
                                                   std::size_t size) noexcept {
    for (std::size_t i = 0; i < size; ++i) {
        const auto byte = static_cast<std::uint8_t>(data[i]);
        state = (state >> 8) ^ detail::kCrc32Table[(state ^ byte) & 0xFFu];
    }
    return state;
}

[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
    return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte string. crc32("123456789") == 0xCBF43926.
[[nodiscard]] constexpr std::uint32_t crc32(std::string_view data) noexcept {
    return crc32_final(crc32_update(crc32_init(), data.data(), data.size()));
}

[[nodiscard]] inline std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
    return crc32_final(crc32_update(
        crc32_init(), reinterpret_cast<const char*>(data.data()), data.size()));
}

}  // namespace spinscope::util
