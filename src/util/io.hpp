// spinscope/util/io.hpp
//
// Injectable storage seam (DESIGN.md §16): every write-side filesystem
// operation the campaign pipeline performs — journal segment appends, seals,
// atomic publishes, lease claims — goes through an Io instance instead of
// calling the OS directly. Production code uses Io::real(); tests inject
// faults::FaultIo to make the disk lie deterministically (ENOSPC, EIO on
// fsync, short writes, power loss) and assert that every write path reacts
// correctly instead of trusting the hardware.
//
// Operations return errno-carrying IoResults, so callers can distinguish
// ENOSPC (degrade gracefully) from EEXIST (lost a claim race) from EIO (the
// data on media is now suspect) instead of collapsing every failure into one
// bool.

#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

namespace spinscope::util {

/// Outcome of one storage operation: errno on failure, 0 on success.
struct IoResult {
    int err = 0;

    [[nodiscard]] static IoResult success() noexcept { return {}; }
    /// A failure result; a zero errno (some libc calls fail without setting
    /// one) is reported as EIO so a failure never masquerades as success.
    [[nodiscard]] static IoResult failure(int captured_errno) noexcept;

    [[nodiscard]] bool ok() const noexcept { return err == 0; }
    explicit operator bool() const noexcept { return ok(); }

    /// Human-readable cause, e.g. "No space left on device (errno 28)".
    [[nodiscard]] std::string message() const;
};

/// Reaction taxonomy for storage errors (DESIGN.md §16). The class decides
/// the write path's response, not the severity of the message:
///
///   transient   momentary resource pressure (EINTR, EAGAIN, ENOMEM, EBUSY,
///               fd exhaustion) — retry through faults::RetryPolicy.
///   fatal       the operation cannot succeed by retrying (ENOSPC, EROFS,
///               EACCES, ENOENT, ...) but what was already written is sound —
///               seal what is durable and degrade gracefully.
///   corrupting  the device itself misbehaved (EIO, notably on fsync): the
///               state of previously written bytes on media is unknown, so
///               nothing may be published as durable past this point.
enum class IoErrorClass { transient, fatal, corrupting };

[[nodiscard]] IoErrorClass classify_io_error(int err) noexcept;
[[nodiscard]] const char* to_cstring(IoErrorClass cls) noexcept;

/// Abstract write-side filesystem. Handles are plain ints (the real
/// implementation hands out OS file descriptors); kBadFile marks failure.
/// Implementations must be safe to share across threads performing
/// independent operations (the fault decorator serializes internally).
class Io {
public:
    static constexpr int kBadFile = -1;

    enum class OpenMode {
        truncate,   ///< create or truncate, write from the start
        append,     ///< create if absent, write at the end
        exclusive,  ///< O_EXCL claim: fail with EEXIST when the file exists
    };

    virtual ~Io() = default;

    /// Opens `path` for writing; returns a handle or kBadFile with `result`
    /// carrying the errno.
    [[nodiscard]] virtual int open_write(const std::filesystem::path& path, OpenMode mode,
                                         IoResult& result) = 0;
    /// Writes all of `bytes` (restarting on EINTR); a short write reports the
    /// underlying errno and may have persisted a prefix.
    [[nodiscard]] virtual IoResult write(int file, std::string_view bytes) = 0;
    [[nodiscard]] virtual IoResult fsync(int file) = 0;
    /// Truncates the open file to `size` bytes (append-mode writers use this
    /// to roll back a partially persisted record before retrying).
    [[nodiscard]] virtual IoResult truncate(int file, std::uint64_t size) = 0;
    virtual IoResult close(int file) = 0;
    [[nodiscard]] virtual IoResult rename(const std::filesystem::path& from,
                                          const std::filesystem::path& to) = 0;
    /// Removes `path`; removing an absent file succeeds.
    virtual IoResult remove(const std::filesystem::path& path) = 0;
    /// Opens `path` (a file or, with `directory`, a directory) and fsyncs it.
    [[nodiscard]] virtual IoResult fsync_path(const std::filesystem::path& path,
                                              bool directory) = 0;

    /// The real filesystem. One shared stateless instance; never deleted.
    [[nodiscard]] static Io& real() noexcept;
};

/// The campaign convention for optional seams: nullptr means the real disk.
[[nodiscard]] inline Io& resolve_io(Io* io) noexcept {
    return io != nullptr ? *io : Io::real();
}

}  // namespace spinscope::util
