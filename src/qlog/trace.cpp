#include "qlog/trace.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace spinscope::qlog {

namespace {

// Minimal JSON helpers for the fixed spinscope schema. The writer emits a
// deterministic field order; the reader is a tolerant key scanner (it only
// needs to parse what to_jsonl produces, but checks bounds everywhere since
// on-disk traces are external input).

void append_escaped(std::string& out, const std::string& s) {
    out.push_back('"');
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) >= 0x20) {
            out.push_back(c);
        }
    }
    out.push_back('"');
}

/// Finds `"key":` in `line` and returns the character offset just past the
/// colon, or npos.
std::size_t find_value(const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos) return std::string::npos;
    return pos + needle.size();
}

std::optional<std::string> get_string(const std::string& line, const std::string& key) {
    auto pos = find_value(line, key);
    if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') return std::nullopt;
    ++pos;
    std::string out;
    while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
        out.push_back(line[pos]);
        ++pos;
    }
    if (pos >= line.size()) return std::nullopt;
    return out;
}

std::optional<double> get_number(const std::string& line, const std::string& key) {
    const auto pos = find_value(line, key);
    if (pos == std::string::npos) return std::nullopt;
    double value = 0.0;
    const auto* begin = line.data() + pos;
    const auto* end = line.data() + line.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin) return std::nullopt;
    return value;
}

std::optional<std::vector<double>> get_array(const std::string& line, const std::string& key) {
    auto pos = find_value(line, key);
    if (pos == std::string::npos || pos >= line.size() || line[pos] != '[') return std::nullopt;
    ++pos;
    std::vector<double> values;
    while (pos < line.size() && line[pos] != ']') {
        double value = 0.0;
        const auto* begin = line.data() + pos;
        const auto* end = line.data() + line.size();
        const auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc{} || ptr == begin) return std::nullopt;
        values.push_back(value);
        pos = static_cast<std::size_t>(ptr - line.data());
        if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size()) return std::nullopt;
    return values;
}

const char* packet_type_token(quic::PacketType t) { return quic::to_cstring(t); }

std::optional<quic::PacketType> packet_type_from(const std::string& token) {
    using quic::PacketType;
    for (auto t : {PacketType::initial, PacketType::zero_rtt, PacketType::handshake,
                   PacketType::retry, PacketType::one_rtt, PacketType::version_negotiation}) {
        if (token == packet_type_token(t)) return t;
    }
    return std::nullopt;
}

std::optional<ConnectionOutcome> outcome_from(const std::string& token) {
    for (auto o : {ConnectionOutcome::ok, ConnectionOutcome::handshake_timeout,
                   ConnectionOutcome::aborted, ConnectionOutcome::attempt_timeout,
                   ConnectionOutcome::protocol_error, ConnectionOutcome::watchdog_cancelled}) {
        if (token == to_cstring(o)) return o;
    }
    return std::nullopt;
}

void append_event(std::string& out, const char* kind, const PacketEvent& ev) {
    out += "{\"ev\":\"";
    out += kind;
    out += "\",\"t\":" + std::to_string(ev.time.count_nanos());
    out += ",\"type\":\"";
    out += packet_type_token(ev.type);
    out += "\",\"pn\":" + std::to_string(ev.packet_number);
    out += ",\"spin\":" + std::to_string(ev.spin ? 1 : 0);
    out += ",\"size\":" + std::to_string(ev.size);
    out += ",\"elicit\":" + std::to_string(ev.ack_eliciting ? 1 : 0);
    out += ",\"vec\":" + std::to_string(ev.vec);
    out += "}\n";
}

std::optional<PacketEvent> parse_event(const std::string& line) {
    PacketEvent ev;
    const auto t = get_number(line, "t");
    const auto type = get_string(line, "type");
    const auto pn = get_number(line, "pn");
    const auto spin = get_number(line, "spin");
    const auto size = get_number(line, "size");
    const auto elicit = get_number(line, "elicit");
    if (!t || !type || !pn || !spin || !size || !elicit) return std::nullopt;
    const auto packet_type = packet_type_from(*type);
    if (!packet_type) return std::nullopt;
    ev.time = TimePoint::from_nanos(static_cast<std::int64_t>(*t));
    ev.type = *packet_type;
    ev.packet_number = static_cast<quic::PacketNumber>(*pn);
    ev.spin = *spin != 0.0;
    ev.size = static_cast<std::uint32_t>(*size);
    ev.ack_eliciting = *elicit != 0.0;
    const auto vec = get_number(line, "vec");
    ev.vec = vec ? static_cast<std::uint8_t>(*vec) : 0;
    return ev;
}

}  // namespace

std::vector<PacketEvent> Trace::received_one_rtt() const {
    std::vector<PacketEvent> out;
    std::copy_if(received.begin(), received.end(), std::back_inserter(out),
                 [](const PacketEvent& ev) { return ev.type == quic::PacketType::one_rtt; });
    return out;
}

std::string to_jsonl(const Trace& trace) {
    std::string out;
    out += "{\"qlog\":\"spinscope\",\"host\":";
    append_escaped(out, trace.host);
    out += ",\"ip\":";
    append_escaped(out, trace.ip);
    out += ",\"version\":" + std::to_string(static_cast<std::uint32_t>(trace.version));
    out += ",\"outcome\":\"";
    out += to_cstring(trace.outcome);
    out += "\"";
    // Only pathological traces carry a truncation count; omitting the field
    // when 0 keeps historical traces (and golden fixtures) byte-identical.
    if (trace.events_truncated != 0) {
        out += ",\"truncated\":" + std::to_string(trace.events_truncated);
    }
    out += "}\n";
    for (const auto& ev : trace.sent) append_event(out, "sent", ev);
    for (const auto& ev : trace.received) append_event(out, "recv", ev);
    out += "{\"metrics\":1,\"min_rtt_ms\":" + std::to_string(trace.metrics.min_rtt_ms);
    out += ",\"srtt_ms\":" + std::to_string(trace.metrics.smoothed_rtt_ms);
    out += ",\"lost\":" + std::to_string(trace.metrics.packets_lost);
    out += ",\"sent\":" + std::to_string(trace.metrics.packets_sent);
    out += ",\"recv\":" + std::to_string(trace.metrics.packets_received);
    out += ",\"rtt_samples_ms\":[";
    for (std::size_t i = 0; i < trace.metrics.rtt_samples_ms.size(); ++i) {
        if (i != 0) out += ",";
        out += std::to_string(trace.metrics.rtt_samples_ms[i]);
    }
    out += "]}\n";
    return out;
}

std::optional<Trace> parse_jsonl(const std::string& text) {
    Trace trace;
    std::istringstream in{text};
    std::string line;
    bool saw_header = false;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (line.find("\"qlog\"") != std::string::npos) {
            const auto host = get_string(line, "host");
            const auto ip = get_string(line, "ip");
            const auto version = get_number(line, "version");
            const auto outcome_token = get_string(line, "outcome");
            if (!host || !ip || !version || !outcome_token) return std::nullopt;
            const auto outcome = outcome_from(*outcome_token);
            if (!outcome) return std::nullopt;
            trace.host = *host;
            trace.ip = *ip;
            trace.version = static_cast<quic::Version>(static_cast<std::uint32_t>(*version));
            trace.outcome = *outcome;
            const auto truncated = get_number(line, "truncated");
            trace.events_truncated =
                truncated ? static_cast<std::uint64_t>(*truncated) : 0;
            saw_header = true;
        } else if (line.find("\"ev\"") != std::string::npos) {
            const auto kind = get_string(line, "ev");
            const auto ev = parse_event(line);
            if (!kind || !ev) return std::nullopt;
            if (*kind == "sent") {
                trace.sent.push_back(*ev);
            } else if (*kind == "recv") {
                trace.received.push_back(*ev);
            } else {
                return std::nullopt;
            }
        } else if (line.find("\"metrics\"") != std::string::npos) {
            const auto min_rtt = get_number(line, "min_rtt_ms");
            const auto srtt = get_number(line, "srtt_ms");
            const auto lost = get_number(line, "lost");
            const auto sent = get_number(line, "sent");
            const auto recv = get_number(line, "recv");
            const auto samples = get_array(line, "rtt_samples_ms");
            if (!min_rtt || !srtt || !lost || !sent || !recv || !samples) return std::nullopt;
            trace.metrics.min_rtt_ms = *min_rtt;
            trace.metrics.smoothed_rtt_ms = *srtt;
            trace.metrics.packets_lost = static_cast<std::uint64_t>(*lost);
            trace.metrics.packets_sent = static_cast<std::uint64_t>(*sent);
            trace.metrics.packets_received = static_cast<std::uint64_t>(*recv);
            trace.metrics.rtt_samples_ms = *samples;
        }
    }
    if (!saw_header) return std::nullopt;
    return trace;
}

}  // namespace spinscope::qlog
