// spinscope/qlog/store.hpp
//
// On-disk qlog dataset store — the reproduction of the paper's released
// artifacts (Appendix B: "we also add the extracted raw spin bit information
// for all domains ... together with qlog baseline information").
//
// A store is a directory of JSON-lines shard files. The writer appends each
// connection trace (prefixed with a scan-context line carrying domain id,
// week and address family) and rolls shards by size; the reader streams
// traces back without materializing the dataset. This decouples scanning
// from analysis exactly like the real campaign: scan once, analyze many
// times.

#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "qlog/trace.hpp"

namespace spinscope::qlog {

/// Context of one recorded connection within a campaign.
struct ScanContext {
    std::uint32_t domain_id = 0;
    int week = 0;
    bool ipv6 = false;
    std::uint16_t org = 0;  ///< organization index at scan time
};

/// Appends traces to a dataset directory.
///
/// Crash safety: the active shard is written as `traces-NNNNN.jsonl.open`
/// and flushed after every append; on roll or close() it is fsynced and
/// atomically renamed (util::atomic_file) to its sealed `traces-NNNNN.jsonl`
/// name. A sealed shard is therefore always complete; a crash leaves at
/// most one `.open` shard whose tail may be torn, which the reader already
/// tolerates record by record.
class TraceStoreWriter {
public:
    /// Opens (creating if needed) the dataset at `directory`. `shard_bytes`
    /// bounds the size of one shard file before rolling to the next.
    explicit TraceStoreWriter(std::filesystem::path directory,
                              std::size_t shard_bytes = 8 * 1024 * 1024);
    ~TraceStoreWriter();

    TraceStoreWriter(const TraceStoreWriter&) = delete;
    TraceStoreWriter& operator=(const TraceStoreWriter&) = delete;

    /// Appends one connection trace with its scan context.
    void append(const ScanContext& context, const Trace& trace);

    /// Flushes, fsyncs and seals the current shard.
    void close();

    [[nodiscard]] std::uint64_t traces_written() const noexcept { return traces_; }
    [[nodiscard]] std::size_t shards_written() const noexcept { return shard_index_; }

private:
    void roll_shard();
    void seal_current_shard();

    std::filesystem::path directory_;
    std::size_t shard_bytes_;
    std::size_t shard_index_ = 0;
    std::size_t current_bytes_ = 0;
    std::uint64_t traces_ = 0;
    std::ofstream out_;
};

/// Streams traces back out of a dataset directory. Sealed shards are read
/// in order; a leftover `.open` shard from a crashed writer is read last,
/// with any torn tail record counted as malformed and skipped.
class TraceStoreReader {
public:
    explicit TraceStoreReader(std::filesystem::path directory);

    /// Visits every (context, trace) pair in shard order. Returns the number
    /// of traces visited; malformed records are counted and skipped.
    std::uint64_t for_each(
        const std::function<void(const ScanContext&, const Trace&)>& visit);

    [[nodiscard]] std::uint64_t malformed_records() const noexcept { return malformed_; }
    [[nodiscard]] const std::vector<std::filesystem::path>& shards() const noexcept {
        return shards_;
    }

private:
    std::filesystem::path directory_;
    std::vector<std::filesystem::path> shards_;
    std::uint64_t malformed_ = 0;
};

/// Serializes / parses the scan-context line.
[[nodiscard]] std::string context_line(const ScanContext& context);
[[nodiscard]] std::optional<ScanContext> parse_context_line(const std::string& line);

}  // namespace spinscope::qlog
