#include "qlog/store.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"

namespace spinscope::qlog {

namespace {

constexpr const char* kShardPrefix = "traces-";
constexpr const char* kShardSuffix = ".jsonl";
/// Suffix of the shard currently being appended to; sealed (renamed away)
/// on roll/close so a plain `.jsonl` name always means "complete".
constexpr const char* kOpenSuffix = ".open";
constexpr std::string_view kContextMarker = "{\"scan\":1";
constexpr std::string_view kTraceEndMarker = "\"metrics\":1";

[[nodiscard]] std::filesystem::path shard_path(const std::filesystem::path& dir,
                                               std::size_t index) {
    char name[48];
    std::snprintf(name, sizeof name, "%s%05zu%s", kShardPrefix, index, kShardSuffix);
    return dir / name;
}

[[nodiscard]] std::filesystem::path open_shard_path(const std::filesystem::path& dir,
                                                    std::size_t index) {
    std::filesystem::path path = shard_path(dir, index);
    path += kOpenSuffix;
    return path;
}

}  // namespace

std::string context_line(const ScanContext& context) {
    std::ostringstream out;
    out << "{\"scan\":1,\"domain\":" << context.domain_id << ",\"week\":" << context.week
        << ",\"ipv6\":" << (context.ipv6 ? 1 : 0) << ",\"org\":" << context.org << "}\n";
    return out.str();
}

std::optional<ScanContext> parse_context_line(const std::string& line) {
    if (line.rfind(kContextMarker, 0) != 0) return std::nullopt;
    ScanContext context;
    unsigned domain = 0;
    int week = 0;
    int ipv6 = 0;
    unsigned org = 0;
    if (std::sscanf(line.c_str(), "{\"scan\":1,\"domain\":%u,\"week\":%d,\"ipv6\":%d,\"org\":%u",
                    &domain, &week, &ipv6, &org) != 4) {
        return std::nullopt;
    }
    context.domain_id = domain;
    context.week = week;
    context.ipv6 = ipv6 != 0;
    context.org = static_cast<std::uint16_t>(org);
    return context;
}

TraceStoreWriter::TraceStoreWriter(std::filesystem::path directory, std::size_t shard_bytes)
    : directory_{std::move(directory)}, shard_bytes_{shard_bytes} {
    std::filesystem::create_directories(directory_);
    roll_shard();
}

TraceStoreWriter::~TraceStoreWriter() {
    // Destructor-path close: sealing can throw on I/O failure, which a
    // destructor must swallow (an unwinding campaign would otherwise
    // terminate). Explicit close() still reports the failure.
    try {
        close();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
}

void TraceStoreWriter::seal_current_shard() {
    if (!out_.is_open()) return;
    out_.flush();
    out_.close();
    // shard_index_ already points one past the shard being sealed.
    const auto open_path = open_shard_path(directory_, shard_index_ - 1);
    (void)util::fsync_file(open_path);
    if (!util::rename_durable(open_path, shard_path(directory_, shard_index_ - 1))) {
        throw std::runtime_error{"TraceStoreWriter: cannot seal shard in " +
                                 directory_.string()};
    }
}

void TraceStoreWriter::roll_shard() {
    seal_current_shard();
    out_.open(open_shard_path(directory_, shard_index_), std::ios::trunc);
    if (!out_) {
        throw std::runtime_error{"TraceStoreWriter: cannot open shard in " +
                                 directory_.string()};
    }
    ++shard_index_;
    current_bytes_ = 0;
}

void TraceStoreWriter::append(const ScanContext& context, const Trace& trace) {
    if (!out_.is_open()) roll_shard();
    const std::string header = context_line(context);
    const std::string body = to_jsonl(trace);
    out_ << header << body;
    // One flush per record: a crash tears at most the record being written,
    // which the reader skips as malformed instead of losing the shard.
    out_.flush();
    current_bytes_ += header.size() + body.size();
    ++traces_;
    if (current_bytes_ >= shard_bytes_) roll_shard();
}

void TraceStoreWriter::close() { seal_current_shard(); }

TraceStoreReader::TraceStoreReader(std::filesystem::path directory)
    : directory_{std::move(directory)} {
    if (!std::filesystem::is_directory(directory_)) return;
    for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
        if (!entry.is_regular_file()) continue;
        const auto name = entry.path().filename().string();
        if (name.rfind(kShardPrefix, 0) == 0 &&
            (name.ends_with(kShardSuffix) ||
             name.ends_with(std::string{kShardSuffix} + kOpenSuffix))) {
            shards_.push_back(entry.path());
        }
    }
    std::sort(shards_.begin(), shards_.end());
}

std::uint64_t TraceStoreReader::for_each(
    const std::function<void(const ScanContext&, const Trace&)>& visit) {
    std::uint64_t visited = 0;
    for (const auto& shard : shards_) {
        std::ifstream in{shard};
        std::string line;
        std::optional<ScanContext> context;
        std::string buffer;
        const auto finish_record = [&] {
            if (!context || buffer.empty()) return;
            const auto trace = parse_jsonl(buffer);
            if (trace) {
                visit(*context, *trace);
                ++visited;
            } else {
                ++malformed_;
            }
            buffer.clear();
            context.reset();
        };
        while (std::getline(in, line)) {
            if (line.rfind(kContextMarker, 0) == 0) {
                finish_record();  // tolerate a truncated previous record
                context = parse_context_line(line);
                if (!context) ++malformed_;
                continue;
            }
            if (context) {
                buffer += line;
                buffer += '\n';
                if (line.find(kTraceEndMarker) != std::string::npos) finish_record();
            }
        }
        finish_record();
    }
    return visited;
}

}  // namespace spinscope::qlog
