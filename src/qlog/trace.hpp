// spinscope/qlog/trace.hpp
//
// qlog-flavoured connection traces.
//
// The paper's scanner extends quic-go's qlog output with the spin-bit state
// of every received packet and analyzes those logs offline (§3.2-3.3). This
// module is the equivalent: endpoints record per-packet events and final
// recovery metrics into a Trace; the analysis pipeline consumes Traces (or
// their JSON-lines serialization, for the on-disk path).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "quic/packet.hpp"
#include "quic/types.hpp"
#include "util/time.hpp"

namespace spinscope::qlog {

using util::Duration;
using util::TimePoint;

/// One packet-level event (sent or received).
struct PacketEvent {
    TimePoint time;
    quic::PacketType type = quic::PacketType::one_rtt;
    quic::PacketNumber packet_number = 0;
    /// Spin-bit value; meaningful only for 1-RTT packets.
    bool spin = false;
    /// Total datagram size in bytes.
    std::uint32_t size = 0;
    bool ack_eliciting = false;
    /// Valid Edge Counter from the reserved bits (VEC extension; 0 for
    /// standard RFC 9000 traffic).
    std::uint8_t vec = 0;
};

/// Final recovery metrics of a connection, mirroring qlog's
/// "recovery:metrics_updated" stream in condensed form.
struct RecoveryMetrics {
    /// Ack-delay-adjusted RTT samples (ms) in arrival order — the paper's
    /// "QUIC stack estimates" baseline.
    std::vector<double> rtt_samples_ms;
    double min_rtt_ms = 0.0;
    double smoothed_rtt_ms = 0.0;
    std::uint64_t packets_lost = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
};

/// How a connection attempt ended.
enum class ConnectionOutcome : std::uint8_t {
    ok,                 ///< handshake + request/response completed
    handshake_timeout,  ///< peer silent / not QUIC-capable
    aborted,            ///< closed with error before completing
    attempt_timeout,    ///< scanner's per-attempt deadline hit with the event
                        ///< queue still busy (neither completed nor failed)
    protocol_error,     ///< peer sent undecodable or protocol-violating data
                        ///< (e.g. garbage frame payloads) and the connection
                        ///< was torn down with a transport error
    watchdog_cancelled, ///< the campaign's per-domain simulated-time budget
                        ///< (ScanOptions::domain_deadline) expired and the
                        ///< hung simulation was killed by the watchdog
};

/// Number of ConnectionOutcome values (for outcome-indexed tables).
inline constexpr std::size_t kConnectionOutcomeCount = 6;

[[nodiscard]] constexpr const char* to_cstring(ConnectionOutcome o) noexcept {
    switch (o) {
        case ConnectionOutcome::ok: return "ok";
        case ConnectionOutcome::handshake_timeout: return "handshake_timeout";
        case ConnectionOutcome::aborted: return "aborted";
        case ConnectionOutcome::attempt_timeout: return "attempt_timeout";
        case ConnectionOutcome::protocol_error: return "protocol_error";
        case ConnectionOutcome::watchdog_cancelled: return "watchdog_cancelled";
    }
    return "?";
}

/// Hard cap on recorded packet events per direction of one trace. A healthy
/// scan attempt records a few dozen events; a pathological retry storm or a
/// hung simulation must not be able to grow a trace without bound. Overflow
/// is counted in Trace::events_truncated instead of being recorded.
inline constexpr std::size_t kMaxTraceEventsPerDirection = 1u << 16;

/// Trace of a single connection from one vantage (spinscope records the
/// client side, like the paper's scanner).
struct Trace {
    std::string host;        ///< target domain (with "www." prefix as queried)
    std::string ip;          ///< server address string
    quic::Version version = quic::Version::v1;
    ConnectionOutcome outcome = ConnectionOutcome::aborted;
    std::vector<PacketEvent> sent;
    std::vector<PacketEvent> received;
    RecoveryMetrics metrics;
    /// Packet events dropped because a direction hit
    /// kMaxTraceEventsPerDirection (0 for every sane connection).
    std::uint64_t events_truncated = 0;

    void record_sent(const PacketEvent& ev) {
        if (sent.size() < kMaxTraceEventsPerDirection) {
            sent.push_back(ev);
        } else {
            ++events_truncated;
        }
    }
    void record_received(const PacketEvent& ev) {
        if (received.size() < kMaxTraceEventsPerDirection) {
            received.push_back(ev);
        } else {
            ++events_truncated;
        }
    }

    /// Received 1-RTT events only — the packet set the paper's spin analysis
    /// keys on (§3.3: spin state, packet number, timestamp).
    [[nodiscard]] std::vector<PacketEvent> received_one_rtt() const;
};

/// Serializes a trace to JSON-lines (one event object per line, preceded by
/// a header line). Deterministic field order; round-trips via parse_trace().
[[nodiscard]] std::string to_jsonl(const Trace& trace);

/// Parses the to_jsonl() representation. Returns nullopt on malformed input.
[[nodiscard]] std::optional<Trace> parse_jsonl(const std::string& text);

}  // namespace spinscope::qlog
