// spinscope/quic/varint.hpp
//
// RFC 9000 §16 variable-length integers and the byte cursors all wire
// codecs use. The implementation lives in bytes/cursor.hpp so cursors can
// target pooled bytes::Buffer storage; this header re-exports the
// historical quic:: names (Reader, Writer, encode/decode_varint) that the
// codecs, tests and benches were written against.

#pragma once

#include "bytes/cursor.hpp"

namespace spinscope::quic {

using bytes::decode_varint;
using bytes::encode_varint;
using bytes::kVarintMax;
using bytes::varint_size;
using bytes::VarintDecode;

using Reader = bytes::ByteReader;
using Writer = bytes::ByteWriter;

}  // namespace spinscope::quic
