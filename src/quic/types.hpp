// spinscope/quic/types.hpp
//
// Fundamental QUIC protocol types shared across the quic library:
// versions, connection IDs, packet numbers and packet-number spaces.

#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace spinscope::quic {

/// QUIC wire versions this stack knows about. The paper's scanner supported
/// QUICv1 plus draft versions 27, 29, 32 and 34 (quic-go's set at the time).
enum class Version : std::uint32_t {
    v1 = 0x00000001,
    draft27 = 0xff00001b,
    draft29 = 0xff00001d,
    draft32 = 0xff000020,
    draft34 = 0xff000022,
};

[[nodiscard]] constexpr bool is_known_version(std::uint32_t wire) noexcept {
    switch (static_cast<Version>(wire)) {
        case Version::v1:
        case Version::draft27:
        case Version::draft29:
        case Version::draft32:
        case Version::draft34:
            return true;
    }
    return false;
}

[[nodiscard]] std::string to_string(Version v);

/// Monotone 62-bit packet number (RFC 9000 §12.3).
using PacketNumber = std::uint64_t;

/// Sentinel for "no packet number yet".
inline constexpr PacketNumber kInvalidPacketNumber = ~0ULL;

/// Packet-number spaces (RFC 9002 Appendix A.2).
enum class PnSpace : std::uint8_t { initial = 0, handshake = 1, application = 2 };
inline constexpr std::size_t kPnSpaceCount = 3;

[[nodiscard]] constexpr const char* to_cstring(PnSpace space) noexcept {
    switch (space) {
        case PnSpace::initial: return "initial";
        case PnSpace::handshake: return "handshake";
        case PnSpace::application: return "application";
    }
    return "?";
}

/// Connection ID: up to 20 bytes (RFC 9000 §17.2). Value type with inline
/// storage; spinscope endpoints use 8-byte IDs by default.
class ConnectionId {
public:
    static constexpr std::size_t kMaxLength = 20;

    constexpr ConnectionId() = default;

    /// Builds an 8-byte ID from a 64-bit value (big-endian).
    [[nodiscard]] static constexpr ConnectionId from_u64(std::uint64_t v) noexcept {
        ConnectionId id;
        id.length_ = 8;
        for (int i = 7; i >= 0; --i) {
            id.bytes_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
            v >>= 8;
        }
        return id;
    }

    [[nodiscard]] constexpr std::size_t size() const noexcept { return length_; }
    [[nodiscard]] constexpr bool empty() const noexcept { return length_ == 0; }
    [[nodiscard]] constexpr const std::uint8_t* data() const noexcept { return bytes_.data(); }

    constexpr void assign(const std::uint8_t* data, std::size_t len) noexcept {
        length_ = len > kMaxLength ? kMaxLength : len;
        for (std::size_t i = 0; i < length_; ++i) bytes_[i] = data[i];
    }

    friend constexpr bool operator==(const ConnectionId& a, const ConnectionId& b) noexcept {
        if (a.length_ != b.length_) return false;
        for (std::size_t i = 0; i < a.length_; ++i) {
            if (a.bytes_[i] != b.bytes_[i]) return false;
        }
        return true;
    }

private:
    std::array<std::uint8_t, kMaxLength> bytes_{};
    std::size_t length_ = 0;
};

/// Endpoint role. The spin bit is role-asymmetric: the client inverts, the
/// server reflects (RFC 9000 §17.4).
enum class Role : std::uint8_t { client, server };

[[nodiscard]] constexpr const char* to_cstring(Role r) noexcept {
    return r == Role::client ? "client" : "server";
}

}  // namespace spinscope::quic
