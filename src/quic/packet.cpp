#include "quic/packet.hpp"

#include <cassert>

namespace spinscope::quic {

namespace {

constexpr std::uint8_t kHeaderFormBit = 0x80;  // 1 = long header
constexpr std::uint8_t kFixedBit = 0x40;
constexpr std::uint8_t kSpinBit = 0x20;        // short header only
constexpr std::uint8_t kKeyPhaseBit = 0x04;    // short header only
constexpr std::uint8_t kVecShift = 3;          // reserved bits carry the VEC extension

[[nodiscard]] constexpr std::uint8_t long_type_bits(PacketType t) noexcept {
    switch (t) {
        case PacketType::initial: return 0;
        case PacketType::zero_rtt: return 1;
        case PacketType::handshake: return 2;
        case PacketType::retry: return 3;
        default: return 0;
    }
}

[[nodiscard]] constexpr PacketType long_type_from_bits(std::uint8_t bits) noexcept {
    switch (bits & 0x3) {
        case 0: return PacketType::initial;
        case 1: return PacketType::zero_rtt;
        case 2: return PacketType::handshake;
        default: return PacketType::retry;
    }
}

void write_cid(Writer& w, const ConnectionId& cid) {
    w.u8(static_cast<std::uint8_t>(cid.size()));
    w.bytes({cid.data(), cid.size()});
}

[[nodiscard]] std::optional<ConnectionId> read_cid(Reader& r) noexcept {
    const auto len = r.u8();
    if (!len || *len > ConnectionId::kMaxLength) return std::nullopt;
    const auto body = r.bytes(*len);
    if (!body) return std::nullopt;
    ConnectionId cid;
    cid.assign(body->data(), body->size());
    return cid;
}

}  // namespace

std::size_t packet_number_length(PacketNumber full, PacketNumber largest_acked) noexcept {
    // RFC 9000 A.2: the encoding must cover a window of twice the number of
    // packets in flight, i.e. 2 * (full - largest_acked) must fit.
    const PacketNumber base = largest_acked == kInvalidPacketNumber ? 0 : largest_acked;
    const std::uint64_t distance = (full - base) * 2 + 1;
    if (distance < (1ULL << 8)) return 1;
    if (distance < (1ULL << 16)) return 2;
    if (distance < (1ULL << 24)) return 3;
    return 4;
}

PacketNumber expand_packet_number(PacketNumber largest_received, std::uint64_t truncated,
                                  std::size_t pn_length) noexcept {
    assert(pn_length >= 1 && pn_length <= 4);
    const std::uint64_t pn_nbits = pn_length * 8;
    const std::uint64_t pn_win = 1ULL << pn_nbits;
    const std::uint64_t pn_hwin = pn_win / 2;
    const std::uint64_t pn_mask = pn_win - 1;

    const PacketNumber expected =
        largest_received == kInvalidPacketNumber ? 0 : largest_received + 1;
    const PacketNumber candidate = (expected & ~pn_mask) | truncated;
    if (candidate + pn_hwin <= expected && candidate + pn_win < (1ULL << 62)) {
        return candidate + pn_win;
    }
    if (candidate > expected + pn_hwin && candidate >= pn_win) {
        return candidate - pn_win;
    }
    return candidate;
}

void encode_short_header(Writer& w, const PacketHeader& header, PacketNumber largest_acked) {
    assert(header.type == PacketType::one_rtt);
    const std::size_t pn_len = packet_number_length(header.packet_number, largest_acked);
    std::uint8_t first = kFixedBit;
    if (header.spin) first |= kSpinBit;
    if (header.key_phase) first |= kKeyPhaseBit;
    first |= static_cast<std::uint8_t>((header.vec & 0x3) << kVecShift);
    first |= static_cast<std::uint8_t>(pn_len - 1);
    w.u8(first);
    w.bytes({header.dcid.data(), header.dcid.size()});
    w.be_truncated(header.packet_number, pn_len);
}

void encode_packet(Writer& w, const PacketHeader& header,
                   std::span<const std::uint8_t> payload, PacketNumber largest_acked) {
    const std::size_t pn_len = packet_number_length(header.packet_number, largest_acked);

    if (header.type == PacketType::one_rtt) {
        encode_short_header(w, header, largest_acked);
        w.bytes(payload);
        return;
    }

    std::uint8_t first = kHeaderFormBit | kFixedBit;
    first |= static_cast<std::uint8_t>(long_type_bits(header.type) << 4);
    first |= static_cast<std::uint8_t>(pn_len - 1);
    w.u8(first);
    w.u32(static_cast<std::uint32_t>(header.version));
    write_cid(w, header.dcid);
    write_cid(w, header.scid);
    if (header.type == PacketType::initial) {
        w.varint(0);  // token length: spinscope never retries
    }
    w.varint(pn_len + payload.size());
    w.be_truncated(header.packet_number, pn_len);
    w.bytes(payload);
}

std::optional<DecodedPacket> decode_packet(std::span<const std::uint8_t> datagram,
                                           std::size_t short_dcid_length,
                                           PacketNumber largest_received) noexcept {
    Reader r{datagram};
    const auto first_opt = r.u8();
    if (!first_opt) return std::nullopt;
    const std::uint8_t first = *first_opt;

    DecodedPacket packet;

    if ((first & kHeaderFormBit) == 0) {
        // Short header (1-RTT).
        if ((first & kFixedBit) == 0) return std::nullopt;
        packet.header.type = PacketType::one_rtt;
        packet.header.spin = (first & kSpinBit) != 0;
        packet.header.key_phase = (first & kKeyPhaseBit) != 0;
        packet.header.vec = static_cast<std::uint8_t>((first >> kVecShift) & 0x3);
        packet.pn_length = static_cast<std::size_t>(first & 0x03) + 1;

        const auto dcid = r.bytes(short_dcid_length);
        if (!dcid) return std::nullopt;
        packet.header.dcid.assign(dcid->data(), dcid->size());

        const auto truncated = r.be_truncated(packet.pn_length);
        if (!truncated) return std::nullopt;
        packet.header.packet_number =
            expand_packet_number(largest_received, *truncated, packet.pn_length);
        packet.payload = r.peek_rest();
        packet.total_size = datagram.size();
        return packet;
    }

    // Long header.
    if ((first & kFixedBit) == 0) return std::nullopt;
    const auto version = r.u32();
    if (!version) return std::nullopt;
    if (*version == 0) {
        packet.header.type = PacketType::version_negotiation;
        packet.total_size = datagram.size();
        return packet;
    }
    packet.header.version = static_cast<Version>(*version);
    packet.header.type = long_type_from_bits(static_cast<std::uint8_t>(first >> 4));
    packet.pn_length = static_cast<std::size_t>(first & 0x03) + 1;

    const auto dcid = read_cid(r);
    const auto scid = dcid ? read_cid(r) : std::nullopt;
    if (!scid) return std::nullopt;
    packet.header.dcid = *dcid;
    packet.header.scid = *scid;

    if (packet.header.type == PacketType::initial) {
        const auto token_length = r.varint();
        if (!token_length || !r.bytes(*token_length)) return std::nullopt;
    }

    const auto length = r.varint();
    if (!length || *length < packet.pn_length || r.remaining() < *length) return std::nullopt;

    const auto truncated = r.be_truncated(packet.pn_length);
    if (!truncated) return std::nullopt;
    packet.header.packet_number =
        expand_packet_number(largest_received, *truncated, packet.pn_length);

    const auto payload = r.bytes(*length - packet.pn_length);
    if (!payload) return std::nullopt;
    packet.payload = *payload;
    packet.total_size = r.consumed();
    return packet;
}

std::optional<ShortHeaderView> peek_short_header(
    std::span<const std::uint8_t> datagram) noexcept {
    if (datagram.empty()) return std::nullopt;
    const std::uint8_t first = datagram[0];
    if ((first & kHeaderFormBit) != 0) return std::nullopt;  // long header
    if ((first & kFixedBit) == 0) return std::nullopt;
    ShortHeaderView view;
    view.spin = (first & kSpinBit) != 0;
    view.vec = static_cast<std::uint8_t>((first >> kVecShift) & 0x3);
    view.dcid_offset = 1;
    return view;
}

}  // namespace spinscope::quic
