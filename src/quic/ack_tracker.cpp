#include "quic/ack_tracker.hpp"

#include <algorithm>

namespace spinscope::quic {

bool AckTracker::on_packet_received(PacketNumber pn, bool ack_eliciting, TimePoint now) {
    // Find insertion point in the descending range list; merge neighbours.
    auto it = ranges_.begin();
    while (it != ranges_.end() && it->smallest > pn + 1) ++it;

    bool inserted = false;
    if (it == ranges_.end()) {
        ranges_.push_back(AckRange{pn, pn});
        inserted = true;
    } else if (pn >= it->smallest && pn <= it->largest) {
        return false;  // duplicate
    } else if (pn + 1 == it->smallest) {
        it->smallest = pn;
        // May now touch the following (smaller) range — e.g. when a
        // reordered packet fills the hole between two ranges.
        auto next = std::next(it);
        if (next != ranges_.end() && next->largest + 1 == it->smallest) {
            it->smallest = next->smallest;
            ranges_.erase(next);
        }
        inserted = true;
    } else if (pn == it->largest + 1) {
        it->largest = pn;
        // May now touch the preceding (larger) range.
        if (it != ranges_.begin()) {
            auto prev = std::prev(it);
            if (prev->smallest == it->largest + 1) {
                prev->smallest = it->smallest;
                ranges_.erase(it);
            }
        }
        inserted = true;
    } else {
        ranges_.insert(it, AckRange{pn, pn});
        inserted = true;
    }
    if (!inserted) return false;

    if (!ranges_.empty() && pn == ranges_.front().largest) largest_received_at_ = now;

    if (ack_eliciting) {
        ++pending_ack_eliciting_;
        if (oldest_unacked_eliciting_.is_never()) oldest_unacked_eliciting_ = now;
    }
    return true;
}

PacketNumber AckTracker::largest_received() const noexcept {
    return ranges_.empty() ? kInvalidPacketNumber : ranges_.front().largest;
}

bool AckTracker::ack_due_immediately() const noexcept {
    return pending_ack_eliciting_ >= config_.ack_eliciting_threshold;
}

TimePoint AckTracker::ack_deadline() const noexcept {
    if (pending_ack_eliciting_ == 0) return TimePoint::never();
    return oldest_unacked_eliciting_ + config_.max_ack_delay;
}

std::optional<AckFrame> AckTracker::build_ack(TimePoint now) {
    if (ranges_.empty()) return std::nullopt;
    AckFrame ack;
    ack.ranges = ranges_;
    ack.ack_delay = largest_received_at_.is_never() ? Duration::zero()
                                                    : now - largest_received_at_;
    if (ack.ack_delay.is_negative()) ack.ack_delay = Duration::zero();
    pending_ack_eliciting_ = 0;
    oldest_unacked_eliciting_ = TimePoint::never();
    return ack;
}

}  // namespace spinscope::quic
