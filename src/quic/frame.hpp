// spinscope/quic/frame.hpp
//
// QUIC v1 frame encoding/decoding (RFC 9000 §19) for the frame subset the
// spinscope endpoints exchange: PADDING, PING, ACK, CRYPTO, NEW_TOKEN-free
// handshake, STREAM, CONNECTION_CLOSE and HANDSHAKE_DONE.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "quic/types.hpp"
#include "quic/varint.hpp"
#include "util/time.hpp"

namespace spinscope::quic {

using util::Duration;

/// Run of PADDING frames (type 0x00), collapsed into one count.
struct PaddingFrame {
    std::size_t length = 1;
};

/// PING (type 0x01): ack-eliciting no-op.
struct PingFrame {};

/// One contiguous acknowledged range, inclusive on both ends.
struct AckRange {
    PacketNumber smallest = 0;
    PacketNumber largest = 0;
};

/// ACK frame (type 0x02). `ranges` are ordered descending by packet number;
/// ranges[0].largest is the largest acknowledged packet.
/// `ack_delay` is the decoded host delay between receiving the largest
/// acknowledged packet and sending this ACK (the field the QUIC stack's RTT
/// estimator subtracts and the spin bit cannot, which is one root of the
/// paper's overestimation findings).
struct AckFrame {
    std::vector<AckRange> ranges;
    Duration ack_delay = Duration::zero();

    [[nodiscard]] PacketNumber largest_acked() const noexcept {
        return ranges.empty() ? kInvalidPacketNumber : ranges.front().largest;
    }
    /// True if `pn` falls inside any acknowledged range.
    [[nodiscard]] bool acknowledges(PacketNumber pn) const noexcept;
};

/// CRYPTO frame (type 0x06): carries the simulated TLS handshake bytes.
struct CryptoFrame {
    std::uint64_t offset = 0;
    std::vector<std::uint8_t> data;
};

/// STREAM frame (types 0x08-0x0f): application data. spinscope uses client
/// bidi stream 0 for the HTTP/3-mini request/response.
struct StreamFrame {
    std::uint64_t stream_id = 0;
    std::uint64_t offset = 0;
    bool fin = false;
    std::vector<std::uint8_t> data;
};

/// MAX_DATA (type 0x10): connection flow-control credit. spinscope does not
/// enforce flow control, but the frame matters for the spin bit: clients
/// send credit updates while receiving a response, and those ack-eliciting
/// packets keep the spin wave advancing even on single-flight transfers.
struct MaxDataFrame {
    std::uint64_t maximum = 0;
};

/// CONNECTION_CLOSE (0x1c transport / 0x1d application).
struct ConnectionCloseFrame {
    std::uint64_t error_code = 0;
    bool application = false;
    std::string reason;
};

/// HANDSHAKE_DONE (type 0x1e), server -> client only.
struct HandshakeDoneFrame {};

using Frame = std::variant<PaddingFrame, PingFrame, AckFrame, CryptoFrame, StreamFrame,
                           MaxDataFrame, ConnectionCloseFrame, HandshakeDoneFrame>;

/// True for frames that elicit an acknowledgement (everything but ACK,
/// PADDING and CONNECTION_CLOSE — RFC 9002 §2).
[[nodiscard]] bool is_ack_eliciting(const Frame& frame) noexcept;

/// True if any frame in `frames` is ack-eliciting.
[[nodiscard]] bool any_ack_eliciting(std::span<const Frame> frames) noexcept;

/// Encodes one frame through a writer (which may target a pooled
/// bytes::Buffer — the hot path appends frames in place, no intermediate
/// vector). ACK delays are encoded in units of 2^ack_delay_exponent
/// microseconds (RFC 9000 §18.2, default exponent 3).
void encode_frame(Writer& w, const Frame& frame, std::uint8_t ack_delay_exponent);

/// Vector-compat overload (tests, benches).
inline void encode_frame(std::vector<std::uint8_t>& out, const Frame& frame,
                         std::uint8_t ack_delay_exponent) {
    Writer w{out};
    encode_frame(w, frame, ack_delay_exponent);
}

/// Appends a frame sequence through `w`.
void encode_frames(Writer& w, std::span<const Frame> frames,
                   std::uint8_t ack_delay_exponent);

/// Encodes a frame sequence into a fresh payload buffer (compat shape; the
/// connection hot path uses the writer overload instead).
[[nodiscard]] std::vector<std::uint8_t> encode_frames(std::span<const Frame> frames,
                                                      std::uint8_t ack_delay_exponent);

/// Decodes all frames in a packet payload. Returns nullopt on malformed
/// input (unknown frame type, truncation).
[[nodiscard]] std::optional<std::vector<Frame>> decode_frames(
    std::span<const std::uint8_t> payload, std::uint8_t ack_delay_exponent);

}  // namespace spinscope::quic
