#include "quic/spin.hpp"

#include <algorithm>

namespace spinscope::quic {

SpinState::SpinState(Role role, const SpinConfig& config, util::Rng& rng)
    : role_{role}, vec_enabled_{config.enable_vec}, naive_reflection_{config.naive_reflection} {
    effective_ = config.policy;
    if (config.policy == SpinPolicy::spin && config.lottery_one_in > 0 &&
        rng.one_in(config.lottery_one_in)) {
        effective_ = config.lottery_fallback;
    }
    if (effective_ == SpinPolicy::grease_per_connection) grease_value_ = rng.coin();
}

void SpinState::on_packet_received(PacketNumber pn, bool spin, std::uint8_t vec) noexcept {
    if (!seen_any_ || pn > highest_pn_ || naive_reflection_) {
        // The VEC to propagate belongs to the packet that *changed* the
        // value (the incoming edge); later same-value packets carry 0 and
        // must not reset it.
        if (!seen_any_ || spin != highest_value_) highest_vec_ = vec;
        if (seen_any_ && spin != highest_value_) ++edges_observed_;
        seen_any_ = true;
        highest_pn_ = pn;
        highest_value_ = spin;
    }
}

SpinHeaderBits SpinState::outgoing(util::Rng& rng) noexcept {
    SpinHeaderBits bits;
    switch (effective_) {
        case SpinPolicy::always_zero:
            bits.spin = false;
            return bits;
        case SpinPolicy::always_one:
            bits.spin = true;
            return bits;
        case SpinPolicy::grease_per_packet:
            bits.spin = rng.coin();
            return bits;
        case SpinPolicy::grease_per_connection:
            bits.spin = grease_value_;
            return bits;
        case SpinPolicy::spin:
            break;
    }
    // RFC 9000 §17.4: before any 1-RTT packet arrives both sides send 0;
    // afterwards the server reflects and the client inverts the value seen
    // on the highest-numbered incoming packet.
    if (!seen_any_) {
        bits.spin = false;
    } else {
        bits.spin = role_ == Role::server ? highest_value_ : !highest_value_;
    }
    if (vec_enabled_) {
        const bool is_edge = !sent_any_ ? bits.spin : bits.spin != last_sent_value_;
        if (is_edge) {
            bits.vec = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(3, highest_vec_ + 1u));
        }
    }
    sent_any_ = true;
    last_sent_value_ = bits.spin;
    return bits;
}

}  // namespace spinscope::quic
