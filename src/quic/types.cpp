#include "quic/types.hpp"

#include <cstdio>

namespace spinscope::quic {

std::string to_string(Version v) {
    switch (v) {
        case Version::v1: return "v1";
        case Version::draft27: return "draft-27";
        case Version::draft29: return "draft-29";
        case Version::draft32: return "draft-32";
        case Version::draft34: return "draft-34";
    }
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%08x", static_cast<std::uint32_t>(v));
    return buf;
}

}  // namespace spinscope::quic
