#include "quic/rtt_estimator.hpp"

#include <algorithm>

namespace spinscope::quic {

RttEstimator::RttEstimator(Duration initial_rtt)
    : smoothed_{initial_rtt}, rttvar_{initial_rtt / 2} {}

void RttEstimator::add_sample(Duration latest, Duration ack_delay,
                              Duration max_ack_delay_bound, bool handshake_confirmed) {
    if (latest.is_negative()) return;
    latest_ = latest;

    // min_rtt uses the unadjusted sample (RFC 9002 §5.2).
    min_ = std::min(min_, latest);

    // RFC 9002 §5.3: cap the reported ack delay once the peer's transport
    // parameter is authenticated, and never adjust below min_rtt.
    Duration delay = ack_delay;
    if (handshake_confirmed) delay = std::min(delay, max_ack_delay_bound);
    Duration adjusted = latest;
    if (latest - min_ >= delay) adjusted = latest - delay;

    adjusted_samples_ms_.push_back(adjusted.as_ms());

    if (samples_ == 0) {
        smoothed_ = adjusted;
        rttvar_ = adjusted / 2;
    } else {
        const Duration deviation = (smoothed_ - adjusted).abs();
        rttvar_ = (rttvar_ * 3 + deviation) / 4;
        smoothed_ = (smoothed_ * 7 + adjusted) / 8;
    }
    ++samples_;
}

Duration RttEstimator::pto(Duration peer_max_ack_delay) const noexcept {
    const Duration granularity = Duration::millis(1);
    return smoothed_ + std::max(rttvar_ * 4, granularity) + peer_max_ack_delay;
}

}  // namespace spinscope::quic
