// spinscope/quic/stream.hpp
//
// Minimal stream machinery: an offset-based reassembly buffer for received
// STREAM/CRYPTO data (reordering- and duplicate-tolerant) and a send queue
// that hands out MTU-sized chunks.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

namespace spinscope::quic {

/// Reassembles a byte stream from (offset, data) chunks that may arrive out
/// of order or duplicated (retransmissions). Tracks the FIN offset and
/// reports completion once bytes [0, fin_offset) are contiguous.
class ReassemblyBuffer {
public:
    /// Inserts a chunk at `offset`. Overlaps are resolved byte-wise (later
    /// identical data overwrites — sender never changes content at an
    /// offset, so this is safe).
    void insert(std::uint64_t offset, std::span<const std::uint8_t> data);

    /// Marks the end of stream at `final_size` (offset just past the last
    /// byte). Called when a FIN-bearing frame arrives.
    void set_final_size(std::uint64_t final_size) noexcept;

    /// Number of contiguous bytes available from offset 0.
    [[nodiscard]] std::uint64_t contiguous_length() const noexcept;

    /// True once the FIN offset is known and all bytes up to it arrived.
    [[nodiscard]] bool complete() const noexcept;

    /// Returns the full stream content; only valid when complete().
    [[nodiscard]] std::vector<std::uint8_t> take();

    [[nodiscard]] bool has_final_size() const noexcept { return final_size_.has_value(); }

private:
    // Byte buffer grown on demand plus a "received" run-length map
    // (start -> end, half-open), merged on insert.
    std::vector<std::uint8_t> bytes_;
    std::map<std::uint64_t, std::uint64_t> runs_;
    std::optional<std::uint64_t> final_size_;
};

/// Send side of one stream: a byte queue consumed in MTU-sized chunks.
class SendQueue {
public:
    /// Appends data (copied into the queue — the span need only live for
    /// the call); `fin` marks the end of the stream (no more appends).
    void append(std::span<const std::uint8_t> data, bool fin);

    [[nodiscard]] bool has_pending() const noexcept {
        return !retransmit_.empty() || next_offset_ < buffer_.size() || (fin_ && !fin_sent_);
    }

    struct Chunk {
        std::uint64_t offset = 0;
        std::vector<std::uint8_t> data;
        bool fin = false;
    };

    /// Pops up to `max_bytes` of the next unsent data (possibly an empty
    /// FIN-only chunk). Returns nullopt when nothing is pending.
    [[nodiscard]] std::optional<Chunk> next_chunk(std::size_t max_bytes);

    /// Re-queues a chunk for retransmission (loss recovery); idempotent with
    /// respect to receiver state thanks to offset-based reassembly.
    void requeue(const Chunk& chunk);

    [[nodiscard]] std::uint64_t bytes_queued() const noexcept { return buffer_.size(); }

private:
    std::vector<std::uint8_t> buffer_;
    std::uint64_t next_offset_ = 0;
    bool fin_ = false;
    bool fin_sent_ = false;
    std::vector<Chunk> retransmit_;
};

}  // namespace spinscope::quic
