#include "quic/connection.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace spinscope::quic {

namespace {

// Simulated-TLS handshake tokens carried in CRYPTO frames. Their content is
// opaque to the transport; only the sequencing matters for this study.
constexpr std::string_view kClientHello = "CHLO";
constexpr std::string_view kServerHello = "SHLO";
constexpr std::string_view kServerFinished = "SFIN";
constexpr std::string_view kClientFinished = "CFIN";

[[nodiscard]] std::vector<std::uint8_t> token_bytes(std::string_view token) {
    return {token.begin(), token.end()};
}

[[nodiscard]] bool crypto_is(const CryptoFrame& frame, std::string_view token) {
    return frame.offset == 0 && frame.data.size() == token.size() &&
           std::memcmp(frame.data.data(), token.data(), token.size()) == 0;
}

[[nodiscard]] PacketType packet_type_for(PnSpace pn_space) noexcept {
    switch (pn_space) {
        case PnSpace::initial: return PacketType::initial;
        case PnSpace::handshake: return PacketType::handshake;
        case PnSpace::application: return PacketType::one_rtt;
    }
    return PacketType::one_rtt;
}

/// Conservative per-packet byte budget for frames (header + pn margin).
constexpr std::size_t kHeaderMargin = 40;
/// Conservative STREAM frame overhead (type + ids + offsets + length).
constexpr std::size_t kStreamFrameMargin = 20;

// RFC 9000 §20.1 transport error codes spinscope raises.
constexpr std::uint64_t kFlowControlError = 0x03;
constexpr std::uint64_t kFrameEncodingError = 0x07;

/// Hard bound on reassembly state per stream. A hostile peer can encode
/// offsets up to 2^62-1; without this cap a single frame could make the
/// ReassemblyBuffer allocate petabytes. Far above any simulated response
/// body, so honest transfers never hit it.
constexpr std::uint64_t kMaxStreamBytes = 1ull << 24;

}  // namespace

Connection::Connection(netsim::Simulator& sim, ConnectionConfig config, util::Rng rng,
                       SendFn send_fn, qlog::Trace* trace, bytes::BufferPool* pool)
    : sim_{&sim},
      config_{config},
      rng_{rng},
      send_fn_{std::move(send_fn)},
      trace_{trace},
      pool_{pool},
      spin_{config.role, config.spin, rng_},
      rtt_{config.initial_rtt},
      pto_timer_{sim},
      ack_timer_{sim},
      handshake_timer_{sim},
      idle_timer_{sim} {
    const AckTracker::Config immediate{1, Duration::zero()};
    const AckTracker::Config app{config_.ack_eliciting_threshold, config_.params.max_ack_delay};
    spaces_[0] = std::make_unique<Space>(immediate);
    spaces_[1] = std::make_unique<Space>(immediate);
    spaces_[2] = std::make_unique<Space>(app);
    local_cid_ = ConnectionId::from_u64(rng_.next());
    remote_cid_ = ConnectionId::from_u64(rng_.next());
    cwnd_ = config_.initial_cwnd_packets * config_.mtu;
}

void Connection::connect() {
    assert(config_.role == Role::client);
    handshake_timer_.set_after(config_.handshake_timeout, [this] {
        if (!handshake_complete_) fail();
    });
    arm_idle_timer();
    send_packet(PnSpace::initial, {Frame{CryptoFrame{0, token_bytes(kClientHello)}}},
                /*pad_to_mtu=*/true);
}

void Connection::send_stream(std::uint64_t id, bytes::ConstByteSpan data, bool fin) {
    if (closed_ || failed_) return;
    send_streams_[id].append(data, fin);
    if (handshake_complete_) pump();
}

netsim::Datagram Connection::acquire_datagram() const {
    if (pool_ != nullptr) return pool_->acquire(config_.mtu);
    netsim::Datagram datagram;
    datagram.reserve(config_.mtu);
    return datagram;
}

void Connection::close(std::uint64_t error_code, const std::string& reason, bool application) {
    if (closed_ || failed_) return;
    ConnectionCloseFrame frame;
    frame.error_code = error_code;
    frame.application = application;
    frame.reason = reason;
    const PnSpace pn_space =
        handshake_complete_ ? PnSpace::application : PnSpace::initial;
    send_packet(pn_space, {Frame{std::move(frame)}});
    closed_ = true;
    teardown();
    if (on_closed) on_closed();
}

std::size_t Connection::cwnd_available() const noexcept {
    return bytes_in_flight_ >= cwnd_ ? 0 : cwnd_ - bytes_in_flight_;
}

void Connection::send_packet(PnSpace pn_space, std::vector<Frame> frames, bool pad_to_mtu) {
    Space& sp = space(pn_space);
    if (!sp.open) return;

    PacketHeader header;
    header.type = packet_type_for(pn_space);
    header.version = config_.version;
    header.dcid = remote_cid_;
    header.scid = local_cid_;
    header.packet_number = sp.next_pn++;
    if (header.type == PacketType::one_rtt) {
        const auto bits = spin_.outgoing(rng_);
        header.spin = bits.spin;
        header.vec = bits.vec;
    }

    const bool eliciting = any_ack_eliciting(frames);
    netsim::Datagram datagram = acquire_datagram();
    Writer w{datagram};
    if (header.type == PacketType::one_rtt) {
        // 1-RTT payloads extend to the end of the datagram, so frames are
        // encoded in place right behind the short header — the pooled
        // datagram is the only buffer the packet ever lives in.
        encode_short_header(w, header, sp.largest_acked);
        const std::size_t header_size = datagram.size();
        encode_frames(w, frames, config_.params.ack_delay_exponent);
        if (pad_to_mtu && (datagram.size() - header_size) + kHeaderMargin < config_.mtu) {
            datagram.resize(header_size + config_.mtu - kHeaderMargin, 0 /* PADDING */);
        }
    } else {
        // Long headers carry an explicit Length field ahead of the payload,
        // so the frame bytes are staged in a pooled scratch buffer first.
        netsim::Datagram scratch = acquire_datagram();
        Writer pw{scratch};
        encode_frames(pw, frames, config_.params.ack_delay_exponent);
        if (pad_to_mtu && scratch.size() + kHeaderMargin < config_.mtu) {
            scratch.resize(config_.mtu - kHeaderMargin, 0 /* PADDING frames */);
        }
        encode_packet(w, header, scratch.span(), sp.largest_acked);
    }

    if (eliciting) {
        SentPacket record;
        record.pn = header.packet_number;
        record.sent_at = sim_->now();
        record.bytes = datagram.size();
        for (auto& frame : frames) {
            if (std::holds_alternative<CryptoFrame>(frame) ||
                std::holds_alternative<StreamFrame>(frame)) {
                record.retransmittable.push_back(std::move(frame));
            }
        }
        bytes_in_flight_ += record.bytes;
        sp.in_flight.push_back(std::move(record));
        arm_pto();
    }

    ++counters_.packets_sent;
    counters_.bytes_sent += datagram.size();
    if (trace_ != nullptr) {
        trace_->record_sent({sim_->now(), header.type, header.packet_number, header.spin,
                             static_cast<std::uint32_t>(datagram.size()), eliciting,
                             header.vec});
    }
    send_fn_(std::move(datagram));
}

void Connection::send_raw_payload(std::vector<std::uint8_t> payload) {
    if (closed_ || failed_) return;
    Space& sp = space(PnSpace::application);
    if (!sp.open) return;

    PacketHeader header;
    header.type = PacketType::one_rtt;
    header.version = config_.version;
    header.dcid = remote_cid_;
    header.scid = local_cid_;
    header.packet_number = sp.next_pn++;
    const auto bits = spin_.outgoing(rng_);
    header.spin = bits.spin;
    header.vec = bits.vec;

    netsim::Datagram datagram = acquire_datagram();
    encode_packet(datagram, header, payload, sp.largest_acked);
    ++counters_.packets_sent;
    counters_.bytes_sent += datagram.size();
    if (trace_ != nullptr) {
        trace_->record_sent({sim_->now(), header.type, header.packet_number, header.spin,
                             static_cast<std::uint32_t>(datagram.size()), false, header.vec});
    }
    send_fn_(std::move(datagram));
}

void Connection::on_protocol_error(std::uint64_t error_code, const std::string& reason) {
    if (closed_ || failed_) return;
    protocol_error_ = true;
    close(error_code, reason, /*application=*/false);
}

void Connection::send_ack_only(PnSpace pn_space) {
    Space& sp = space(pn_space);
    if (!sp.open) return;
    auto ack = sp.tracker.build_ack(sim_->now());
    if (!ack) return;
    send_packet(pn_space, {Frame{std::move(*ack)}});
}

void Connection::pump() {
    if (closed_ || failed_ || !handshake_complete_) return;
    Space& app = space(PnSpace::application);
    if (!app.open) return;

    bool ack_included = false;
    while (true) {
        std::vector<Frame> frames;
        std::size_t budget = config_.mtu - kHeaderMargin;

        if (!ack_included && app.tracker.ack_due_immediately()) {
            auto ack = app.tracker.build_ack(sim_->now());
            if (ack) {
                // Rough ACK wire footprint: a handful of varints per range.
                budget -= std::min<std::size_t>(budget, 8 + ack->ranges.size() * 4);
                frames.emplace_back(std::move(*ack));
                ack_included = true;
            }
        }
        if (flow_update_pending_) {
            // Grant double the received bytes, like a window that slides as
            // data is consumed.
            frames.emplace_back(MaxDataFrame{flow_credit_granted_ * 2 + 65536});
            flow_update_pending_ = false;
            budget -= std::min<std::size_t>(budget, 10);
        }

        const std::size_t cwnd_room = cwnd_available();
        if (cwnd_room > kStreamFrameMargin && budget > kStreamFrameMargin) {
            const std::size_t chunk_cap =
                std::min(budget, cwnd_room) - kStreamFrameMargin;
            for (auto& [stream_id, queue] : send_streams_) {
                if (!queue.has_pending()) continue;
                auto chunk = queue.next_chunk(chunk_cap);
                if (!chunk) continue;
                StreamFrame frame;
                frame.stream_id = stream_id;
                frame.offset = chunk->offset;
                frame.fin = chunk->fin;
                frame.data = std::move(chunk->data);
                frames.emplace_back(std::move(frame));
                break;  // one STREAM frame per packet keeps sizing simple
            }
        }

        if (frames.empty()) break;
        send_packet(PnSpace::application, std::move(frames));
    }
    arm_ack_timer();
}

void Connection::on_datagram(bytes::ConstByteSpan datagram) {
    if (closed_ || failed_) return;
    arm_idle_timer();

    PacketNumber largest = kInvalidPacketNumber;
    if (!datagram.empty() && (datagram[0] & 0x80) == 0) {
        largest = space(PnSpace::application).largest_received;
    }
    const auto decoded = decode_packet(datagram, local_cid_.size(), largest);
    if (!decoded) return;
    handle_packet(*decoded);
}

void Connection::handle_packet(const DecodedPacket& packet) {
    if (packet.header.type == PacketType::version_negotiation ||
        packet.header.type == PacketType::retry) {
        return;  // not produced by spinscope endpoints
    }
    // Hostile-endpoint faults (see faults::ServerFaultMode): a stalled
    // handshake ignores everything before 1-RTT; a deaf endpoint drops every
    // short-header packet before ack tracking, so nothing post-handshake is
    // ever acknowledged.
    if (config_.fault_stall_handshake && packet.header.type != PacketType::one_rtt) return;
    if (config_.fault_never_ack && packet.header.type == PacketType::one_rtt) return;
    const PnSpace pn_space = pn_space_of(packet.header.type);
    Space& sp = space(pn_space);
    if (!sp.open) return;

    const auto frames = decode_frames(packet.payload, config_.params.ack_delay_exponent);
    if (!frames) {
        // A frame-decode failure on a short-header packet that carries our
        // connection ID models post-decryption garbage from the peer: a
        // protocol violation (RFC 9000 §12.4), torn down with
        // FRAME_ENCODING_ERROR. Anything else — off-path junk never matches
        // the DCID — stays silently dropped.
        if (packet.header.type == PacketType::one_rtt && packet.header.dcid == local_cid_) {
            on_protocol_error(kFrameEncodingError, "undecodable frame payload");
        }
        return;
    }

    const bool eliciting = any_ack_eliciting(*frames);
    if (!sp.tracker.on_packet_received(packet.header.packet_number, eliciting, sim_->now())) {
        return;  // duplicate
    }
    if (sp.largest_received == kInvalidPacketNumber ||
        packet.header.packet_number > sp.largest_received) {
        sp.largest_received = packet.header.packet_number;
    }

    // Long-header packets carry the peer's source connection ID; adopt it
    // (the server's chosen CID replaces the client's random initial DCID).
    if (packet.header.type != PacketType::one_rtt && !packet.header.scid.empty()) {
        remote_cid_ = packet.header.scid;
    }
    if (config_.role == Role::server && local_cid_.size() != packet.header.dcid.size() &&
        !packet.header.dcid.empty()) {
        local_cid_ = packet.header.dcid;
    }

    if (packet.header.type == PacketType::one_rtt) {
        ++counters_.one_rtt_received;
        spin_.on_packet_received(packet.header.packet_number, packet.header.spin,
                                 packet.header.vec);
    }

    ++counters_.packets_received;
    counters_.bytes_received += packet.total_size;
    if (trace_ != nullptr) {
        trace_->record_received({sim_->now(), packet.header.type, packet.header.packet_number,
                                 packet.header.spin,
                                 static_cast<std::uint32_t>(packet.total_size), eliciting,
                                 packet.header.vec});
    }

    handle_frames(pn_space, *frames);
    if (closed_ || failed_) return;

    // Reactive sends (ACKs, flow updates, newly unblocked data) leave after
    // the host emission latency, not at the instant of reception.
    schedule_flush();
}

void Connection::schedule_flush() {
    if (flush_scheduled_ || closed_ || failed_) return;
    flush_scheduled_ = true;
    const std::int64_t lo = config_.emission_latency_min.count_nanos();
    const std::int64_t hi = std::max(lo, config_.emission_latency_max.count_nanos());
    const Duration latency = Duration::nanos(rng_.uniform_i64(lo, hi));
    sim_->schedule_after(
        latency,
        [this] {
            flush_scheduled_ = false;
            flush_now();
        },
        "conn.flush");
}

void Connection::flush_now() {
    if (closed_ || failed_) return;
    // Handshake spaces acknowledge instantly; the application space
    // acknowledges via pump() (which can piggyback data).
    for (const PnSpace s : {PnSpace::initial, PnSpace::handshake}) {
        if (space(s).open && space(s).tracker.ack_due_immediately()) send_ack_only(s);
    }
    pump();
    arm_ack_timer();
}

void Connection::handle_frames(PnSpace pn_space, const std::vector<Frame>& frames) {
    for (const auto& frame : frames) {
        if (closed_ || failed_) return;
        if (const auto* ack = std::get_if<AckFrame>(&frame)) {
            handle_ack(pn_space, *ack);
        } else if (const auto* crypto = std::get_if<CryptoFrame>(&frame)) {
            handle_crypto(pn_space, *crypto);
        } else if (const auto* stream = std::get_if<StreamFrame>(&frame)) {
            handle_stream(*stream);
        } else if (std::get_if<ConnectionCloseFrame>(&frame) != nullptr) {
            closed_ = true;
            teardown();
            if (on_closed) on_closed();
        } else if (std::get_if<HandshakeDoneFrame>(&frame) != nullptr) {
            if (config_.role == Role::client && !handshake_confirmed_) {
                handshake_confirmed_ = true;
                discard_space(PnSpace::handshake);
            }
        }
        // PING and PADDING need no handling beyond ack-eliciting accounting.
    }
}

void Connection::handle_ack(PnSpace pn_space, const AckFrame& ack) {
    Space& sp = space(pn_space);
    const PacketNumber largest_acked = ack.largest_acked();
    if (largest_acked == kInvalidPacketNumber || largest_acked >= sp.next_pn) return;

    if (sp.largest_acked == kInvalidPacketNumber || largest_acked > sp.largest_acked) {
        sp.largest_acked = largest_acked;
    }

    bool any_newly_acked = false;
    std::size_t acked_bytes = 0;
    bool largest_newly_acked = false;
    TimePoint largest_sent_at;

    auto it = sp.in_flight.begin();
    while (it != sp.in_flight.end()) {
        if (ack.acknowledges(it->pn)) {
            any_newly_acked = true;
            acked_bytes += it->bytes;
            bytes_in_flight_ -= std::min(bytes_in_flight_, it->bytes);
            if (it->pn == largest_acked) {
                largest_newly_acked = true;
                largest_sent_at = it->sent_at;
            }
            it = sp.in_flight.erase(it);
        } else {
            ++it;
        }
    }

    if (largest_newly_acked) {
        rtt_.add_sample(sim_->now() - largest_sent_at, ack.ack_delay,
                        config_.peer_max_ack_delay, handshake_confirmed_);
    }
    if (any_newly_acked) {
        counters_.pto_count = 0;  // backoff resets on forward progress
        if (cwnd_ < ssthresh_) {
            cwnd_ += acked_bytes;  // slow start
        } else {
            cwnd_ += config_.mtu * acked_bytes / std::max<std::size_t>(cwnd_, 1);
        }
        detect_losses(pn_space, sim_->now());
        arm_pto();
        pump();  // the freed window may allow more data out
    }
}

void Connection::detect_losses(PnSpace pn_space, TimePoint now) {
    Space& sp = space(pn_space);
    if (sp.largest_acked == kInvalidPacketNumber) return;

    // RFC 9002 §6.1: packet threshold 3, time threshold 9/8 * max(srtt, latest).
    const Duration time_threshold =
        std::max(rtt_.smoothed_rtt(), rtt_.latest_rtt()) * std::int64_t{9} / 8;
    std::vector<SentPacket> lost;
    auto it = sp.in_flight.begin();
    while (it != sp.in_flight.end()) {
        const bool by_count = it->pn + 3 <= sp.largest_acked;
        const bool by_time =
            it->pn < sp.largest_acked && rtt_.has_samples() && now - it->sent_at > time_threshold;
        if (by_count || by_time) {
            lost.push_back(std::move(*it));
            it = sp.in_flight.erase(it);
        } else {
            ++it;
        }
    }
    if (lost.empty()) return;

    counters_.packets_lost += lost.size();
    for (const auto& packet : lost) {
        bytes_in_flight_ -= std::min(bytes_in_flight_, packet.bytes);
        for (const auto& frame : packet.retransmittable) {
            if (const auto* stream = std::get_if<StreamFrame>(&frame)) {
                send_streams_[stream->stream_id].requeue(
                    SendQueue::Chunk{stream->offset, stream->data, stream->fin});
            } else if (std::get_if<CryptoFrame>(&frame) != nullptr) {
                send_packet(pn_space, {frame});
            }
        }
    }
    // Multiplicative decrease once per loss event.
    ssthresh_ = std::max(cwnd_ / 2, config_.mtu * 2);
    cwnd_ = ssthresh_;
    pump();
}

void Connection::handle_crypto(PnSpace pn_space, const CryptoFrame& crypto) {
    if (config_.role == Role::server) {
        if (pn_space == PnSpace::initial && crypto_is(crypto, kClientHello)) {
            if (server_saw_chlo_) return;  // PTO retransmission of CHLO
            server_saw_chlo_ = true;
            arm_idle_timer();
            auto ack = space(PnSpace::initial).tracker.build_ack(sim_->now());
            std::vector<Frame> initial_frames;
            if (ack) initial_frames.emplace_back(std::move(*ack));
            initial_frames.emplace_back(CryptoFrame{0, token_bytes(kServerHello)});
            send_packet(PnSpace::initial, std::move(initial_frames));
            send_packet(PnSpace::handshake, {Frame{CryptoFrame{0, token_bytes(kServerFinished)}}});
        } else if (pn_space == PnSpace::handshake && crypto_is(crypto, kClientFinished)) {
            if (handshake_confirmed_) return;
            handshake_complete_ = true;
            handshake_confirmed_ = true;
            send_ack_only(PnSpace::handshake);
            discard_space(PnSpace::initial);
            send_packet(PnSpace::application, {Frame{HandshakeDoneFrame{}}});
            if (on_handshake_complete) on_handshake_complete();
            pump();
        }
        return;
    }

    // Client side.
    if (pn_space == PnSpace::handshake && crypto_is(crypto, kServerFinished)) {
        if (handshake_complete_) return;
        auto ack = space(PnSpace::handshake).tracker.build_ack(sim_->now());
        std::vector<Frame> frames;
        if (ack) frames.emplace_back(std::move(*ack));
        frames.emplace_back(CryptoFrame{0, token_bytes(kClientFinished)});
        send_packet(PnSpace::handshake, std::move(frames));
        handshake_complete_ = true;
        handshake_timer_.cancel();
        discard_space(PnSpace::initial);
        if (on_handshake_complete) on_handshake_complete();
        pump();
    }
    // SHLO carries no client action beyond the immediate Initial ACK.
}

void Connection::handle_stream(const StreamFrame& stream) {
    if (stream.offset > kMaxStreamBytes ||
        stream.data.size() > kMaxStreamBytes - stream.offset) {
        on_protocol_error(kFlowControlError, "stream data beyond receive bound");
        return;
    }
    stream_bytes_received_ += stream.data.size();
    if (config_.flow_update_interval > 0 &&
        stream_bytes_received_ >= flow_credit_granted_ + config_.flow_update_interval) {
        flow_credit_granted_ = stream_bytes_received_;
        flow_update_pending_ = true;
    }
    auto& buffer = recv_streams_[stream.stream_id];
    if (buffer.has_final_size() && buffer.complete()) return;  // already delivered
    buffer.insert(stream.offset, stream.data);
    if (stream.fin) buffer.set_final_size(stream.offset + stream.data.size());
    if (buffer.complete() && on_stream_complete) {
        on_stream_complete(stream.stream_id, buffer.take());
        buffer.set_final_size(0);  // mark delivered; later duplicates ignored
    }
}

void Connection::arm_pto() {
    // RFC 9002 §6.2.1: the PTO timer runs from the time the *most recent*
    // ack-eliciting packet was sent. (Running it from the oldest unacked
    // packet would keep firing from an ancient base after a lost ACK.)
    TimePoint latest = TimePoint::never();
    bool any = false;
    for (const auto& sp : spaces_) {
        if (!sp->open || sp->in_flight.empty()) continue;
        for (const auto& packet : sp->in_flight) {
            if (!any || packet.sent_at > latest) latest = packet.sent_at;
            any = true;
        }
    }
    if (!any) {
        pto_timer_.cancel();
        return;
    }
    const Duration interval = rtt_.pto(config_.peer_max_ack_delay);
    const std::int64_t backoff = 1LL << std::min<std::uint64_t>(counters_.pto_count, 10);
    TimePoint expiry = latest + interval * backoff;
    if (expiry < sim_->now()) expiry = sim_->now() + Duration::millis(1);
    pto_timer_.set_at(expiry, [this] { on_pto(); });
}

void Connection::on_pto() {
    if (closed_ || failed_) return;
    ++counters_.pto_count;
    ++counters_.pto_fired_total;
    if (counters_.pto_count > config_.max_pto_count) {
        fail();
        return;
    }
    // Probe: retransmit the oldest unacked retransmittable data, or PING.
    for (const auto pn_space :
         {PnSpace::initial, PnSpace::handshake, PnSpace::application}) {
        Space& sp = space(pn_space);
        if (!sp.open || sp.in_flight.empty()) continue;
        const auto oldest = std::min_element(
            sp.in_flight.begin(), sp.in_flight.end(),
            [](const SentPacket& a, const SentPacket& b) { return a.sent_at < b.sent_at; });
        std::vector<Frame> frames = oldest->retransmittable;
        if (frames.empty()) frames.emplace_back(PingFrame{});
        const bool pad = pn_space == PnSpace::initial && config_.role == Role::client;
        send_packet(pn_space, std::move(frames), pad);
        arm_pto();
        return;
    }
    pto_timer_.cancel();
}

void Connection::arm_ack_timer() {
    Space& app = space(PnSpace::application);
    if (!app.open || !app.tracker.ack_pending()) {
        ack_timer_.cancel();
        return;
    }
    ack_timer_.set_at(app.tracker.ack_deadline(), [this] {
        if (closed_ || failed_) return;
        send_ack_only(PnSpace::application);
    });
}

void Connection::arm_idle_timer() {
    idle_timer_.set_after(config_.idle_timeout, [this] {
        if (closed_ || failed_) return;
        fail();
    });
}

void Connection::fail() {
    if (failed_ || closed_) return;
    failed_ = true;
    teardown();
    if (on_failed) on_failed();
}

void Connection::teardown() {
    pto_timer_.cancel();
    ack_timer_.cancel();
    handshake_timer_.cancel();
    idle_timer_.cancel();
}

void Connection::discard_space(PnSpace pn_space) {
    Space& sp = space(pn_space);
    for (const auto& packet : sp.in_flight) {
        bytes_in_flight_ -= std::min(bytes_in_flight_, packet.bytes);
    }
    sp.in_flight.clear();
    sp.open = false;
    arm_pto();
}

void Connection::finalize_trace() {
    if (trace_ == nullptr) return;
    trace_->metrics.rtt_samples_ms = rtt_.adjusted_samples_ms();
    trace_->metrics.min_rtt_ms = rtt_.has_samples() ? rtt_.min_rtt().as_ms() : 0.0;
    trace_->metrics.smoothed_rtt_ms = rtt_.has_samples() ? rtt_.smoothed_rtt().as_ms() : 0.0;
    trace_->metrics.packets_lost = counters_.packets_lost;
    trace_->metrics.packets_sent = counters_.packets_sent;
    trace_->metrics.packets_received = counters_.packets_received;
    if (protocol_error_) {
        trace_->outcome = qlog::ConnectionOutcome::protocol_error;
    } else if (failed_) {
        trace_->outcome = handshake_complete_ ? qlog::ConnectionOutcome::aborted
                                              : qlog::ConnectionOutcome::handshake_timeout;
    }
}

void Connection::publish_metrics(telemetry::MetricsRegistry& registry,
                                 const std::string& prefix) const {
    registry.counter(prefix + ".attempts").add(1);
    if (handshake_complete_) registry.counter(prefix + ".handshake_completed").add(1);
    if (failed_) {
        registry
            .counter(prefix + (handshake_complete_ ? ".failed_after_handshake"
                                                   : ".handshake_failed"))
            .add(1);
    }
    registry.counter(prefix + ".packets_sent").add(counters_.packets_sent);
    registry.counter(prefix + ".packets_received").add(counters_.packets_received);
    registry.counter(prefix + ".packets_lost").add(counters_.packets_lost);
    registry.counter(prefix + ".bytes_sent").add(counters_.bytes_sent);
    registry.counter(prefix + ".bytes_received").add(counters_.bytes_received);
    registry.counter(prefix + ".pto_fired").add(counters_.pto_fired_total);
    if (protocol_error_) registry.counter(prefix + ".protocol_error").add(1);

    const std::uint64_t edges = spin_.edges_observed();
    registry.counter(prefix + ".spin_edges_observed").add(edges);
    // A participating peer flips about once per RTT; per-packet greasing
    // flips on ~half of all packets. Edges on more than a third of a
    // non-trivial 1-RTT packet sample cannot be a plausible spin wave.
    if (counters_.one_rtt_received >= 8 && edges * 3 >= counters_.one_rtt_received) {
        registry.counter(prefix + ".grease_suspected").add(1);
    }

    if (rtt_.has_samples()) {
        registry.histogram(prefix + ".min_rtt_ms", telemetry::HistogramSpec{0.1, 2.0, 24})
            .record(rtt_.min_rtt().as_ms());
        registry.histogram(prefix + ".smoothed_rtt_ms", telemetry::HistogramSpec{0.1, 2.0, 24})
            .record(rtt_.smoothed_rtt().as_ms());
    }
}

}  // namespace spinscope::quic
