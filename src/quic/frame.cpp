#include "quic/frame.hpp"

#include <algorithm>
#include <cassert>

namespace spinscope::quic {

namespace {

constexpr std::uint64_t kTypePadding = 0x00;
constexpr std::uint64_t kTypePing = 0x01;
constexpr std::uint64_t kTypeAck = 0x02;
constexpr std::uint64_t kTypeCrypto = 0x06;
constexpr std::uint64_t kTypeStreamBase = 0x08;  // ..0x0f with OFF/LEN/FIN bits
constexpr std::uint64_t kTypeMaxData = 0x10;
constexpr std::uint64_t kTypeCloseTransport = 0x1c;
constexpr std::uint64_t kTypeCloseApplication = 0x1d;
constexpr std::uint64_t kTypeHandshakeDone = 0x1e;

constexpr std::uint8_t kStreamFin = 0x01;
constexpr std::uint8_t kStreamLen = 0x02;
constexpr std::uint8_t kStreamOff = 0x04;

/// Ack-delay ceiling (~52 days in µs). Wire values are clamped here so that
/// `units << exponent` and the µs→ns conversion can never overflow int64 —
/// a hostile peer cannot poison RTT adjustment with a wrap-around delay.
constexpr std::uint64_t kMaxAckDelayMicros = 1ULL << 42;

[[nodiscard]] std::optional<AckFrame> decode_ack(Reader& r, std::uint8_t exponent) {
    AckFrame ack;
    const auto largest = r.varint();
    const auto delay_units = r.varint();
    const auto range_count = r.varint();
    const auto first_range = r.varint();
    if (!largest || !delay_units || !range_count || !first_range) return std::nullopt;
    if (*first_range > *largest) return std::nullopt;

    const std::uint64_t delay_micros =
        std::min(*delay_units, kMaxAckDelayMicros >> exponent) << exponent;
    ack.ack_delay = Duration::micros(static_cast<std::int64_t>(delay_micros));
    PacketNumber smallest = *largest - *first_range;
    ack.ranges.push_back(AckRange{smallest, *largest});

    for (std::uint64_t i = 0; i < *range_count; ++i) {
        const auto gap = r.varint();
        const auto length = r.varint();
        if (!gap || !length) return std::nullopt;
        // RFC 9000 §19.3.1: next largest = previous smallest - gap - 2.
        if (smallest < *gap + 2) return std::nullopt;
        const PacketNumber next_largest = smallest - *gap - 2;
        if (*length > next_largest) return std::nullopt;
        smallest = next_largest - *length;
        ack.ranges.push_back(AckRange{smallest, next_largest});
    }
    return ack;
}

void encode_ack(Writer& w, const AckFrame& ack, std::uint8_t exponent) {
    assert(!ack.ranges.empty());
    // Ranges must be descending with a gap of >= 2 between them (RFC 9000
    // §19.3.1 cannot express adjacency). Drop violators up front rather than
    // emit an unparseable frame; the tracker merges, so this never fires in
    // practice.
    std::vector<const AckRange*> valid;
    valid.reserve(ack.ranges.size());
    valid.push_back(&ack.ranges.front());
    for (std::size_t i = 1; i < ack.ranges.size(); ++i) {
        const auto& range = ack.ranges[i];
        assert(range.largest + 2 <= valid.back()->smallest);
        if (range.largest + 2 <= valid.back()->smallest) valid.push_back(&range);
    }

    w.varint(kTypeAck);
    const auto& first = *valid.front();
    w.varint(first.largest);
    const auto micros = static_cast<std::uint64_t>(std::max<std::int64_t>(
        0, ack.ack_delay.count_micros()));
    w.varint(micros >> exponent);
    w.varint(valid.size() - 1);
    w.varint(first.largest - first.smallest);
    for (std::size_t i = 1; i < valid.size(); ++i) {
        w.varint(valid[i - 1]->smallest - valid[i]->largest - 2);
        w.varint(valid[i]->largest - valid[i]->smallest);
    }
}

}  // namespace

bool AckFrame::acknowledges(PacketNumber pn) const noexcept {
    return std::any_of(ranges.begin(), ranges.end(), [pn](const AckRange& r) {
        return r.smallest <= pn && pn <= r.largest;
    });
}

bool is_ack_eliciting(const Frame& frame) noexcept {
    return !std::holds_alternative<AckFrame>(frame) &&
           !std::holds_alternative<PaddingFrame>(frame) &&
           !std::holds_alternative<ConnectionCloseFrame>(frame);
}

bool any_ack_eliciting(std::span<const Frame> frames) noexcept {
    return std::any_of(frames.begin(), frames.end(),
                       [](const Frame& f) { return is_ack_eliciting(f); });
}

void encode_frame(Writer& w, const Frame& frame, std::uint8_t ack_delay_exponent) {
    std::visit(
        [&](const auto& f) {
            using T = std::decay_t<decltype(f)>;
            if constexpr (std::is_same_v<T, PaddingFrame>) {
                w.fill(f.length, static_cast<std::uint8_t>(kTypePadding));
            } else if constexpr (std::is_same_v<T, PingFrame>) {
                w.varint(kTypePing);
            } else if constexpr (std::is_same_v<T, AckFrame>) {
                encode_ack(w, f, ack_delay_exponent);
            } else if constexpr (std::is_same_v<T, CryptoFrame>) {
                w.varint(kTypeCrypto);
                w.varint(f.offset);
                w.varint(f.data.size());
                w.bytes(f.data);
            } else if constexpr (std::is_same_v<T, StreamFrame>) {
                std::uint64_t type = kTypeStreamBase | kStreamLen;
                if (f.offset != 0) type |= kStreamOff;
                if (f.fin) type |= kStreamFin;
                w.varint(type);
                w.varint(f.stream_id);
                if (f.offset != 0) w.varint(f.offset);
                w.varint(f.data.size());
                w.bytes(f.data);
            } else if constexpr (std::is_same_v<T, MaxDataFrame>) {
                w.varint(kTypeMaxData);
                w.varint(f.maximum);
            } else if constexpr (std::is_same_v<T, ConnectionCloseFrame>) {
                w.varint(f.application ? kTypeCloseApplication : kTypeCloseTransport);
                w.varint(f.error_code);
                if (!f.application) w.varint(0);  // offending frame type
                w.varint(f.reason.size());
                w.bytes({reinterpret_cast<const std::uint8_t*>(f.reason.data()),
                         f.reason.size()});
            } else if constexpr (std::is_same_v<T, HandshakeDoneFrame>) {
                w.varint(kTypeHandshakeDone);
            }
        },
        frame);
}

void encode_frames(Writer& w, std::span<const Frame> frames,
                   std::uint8_t ack_delay_exponent) {
    for (const auto& f : frames) encode_frame(w, f, ack_delay_exponent);
}

std::vector<std::uint8_t> encode_frames(std::span<const Frame> frames,
                                        std::uint8_t ack_delay_exponent) {
    std::vector<std::uint8_t> out;
    Writer w{out};
    encode_frames(w, frames, ack_delay_exponent);
    return out;
}

std::optional<std::vector<Frame>> decode_frames(std::span<const std::uint8_t> payload,
                                                std::uint8_t ack_delay_exponent) {
    std::vector<Frame> frames;
    Reader r{payload};
    while (!r.done()) {
        // Frame types must use the minimal varint encoding (RFC 9000 §12.4);
        // an overlong type is a FRAME_ENCODING_ERROR, not an alias.
        const auto type = r.varint_minimal();
        if (!type) return std::nullopt;
        switch (*type) {
            case kTypePadding: {
                PaddingFrame pad;
                while (!r.done() && r.peek_rest().front() == 0) {
                    (void)r.u8();
                    ++pad.length;
                }
                frames.emplace_back(pad);
                break;
            }
            case kTypePing:
                frames.emplace_back(PingFrame{});
                break;
            case kTypeAck: {
                auto ack = decode_ack(r, ack_delay_exponent);
                if (!ack) return std::nullopt;
                frames.emplace_back(std::move(*ack));
                break;
            }
            case kTypeCrypto: {
                const auto offset = r.varint();
                const auto length = r.varint();
                if (!offset || !length) return std::nullopt;
                // RFC 9000 §19.6: offset + length must stay a valid varint.
                if (*offset > kVarintMax - *length) return std::nullopt;
                const auto data = r.bytes(*length);
                if (!data) return std::nullopt;
                frames.emplace_back(CryptoFrame{*offset, {data->begin(), data->end()}});
                break;
            }
            case kTypeCloseTransport:
            case kTypeCloseApplication: {
                ConnectionCloseFrame close;
                close.application = *type == kTypeCloseApplication;
                const auto code = r.varint();
                if (!code) return std::nullopt;
                close.error_code = *code;
                if (!close.application && !r.varint()) return std::nullopt;
                const auto reason_length = r.varint();
                if (!reason_length) return std::nullopt;
                const auto reason = r.bytes(*reason_length);
                if (!reason) return std::nullopt;
                close.reason.assign(reason->begin(), reason->end());
                frames.emplace_back(std::move(close));
                break;
            }
            case kTypeMaxData: {
                const auto maximum = r.varint();
                if (!maximum) return std::nullopt;
                frames.emplace_back(MaxDataFrame{*maximum});
                break;
            }
            case kTypeHandshakeDone:
                frames.emplace_back(HandshakeDoneFrame{});
                break;
            default: {
                if (*type >= kTypeStreamBase && *type <= (kTypeStreamBase | 0x07)) {
                    StreamFrame stream;
                    const auto bits = static_cast<std::uint8_t>(*type & 0x07);
                    stream.fin = (bits & kStreamFin) != 0;
                    const auto id = r.varint();
                    if (!id) return std::nullopt;
                    stream.stream_id = *id;
                    if ((bits & kStreamOff) != 0) {
                        const auto offset = r.varint();
                        if (!offset) return std::nullopt;
                        stream.offset = *offset;
                    }
                    std::uint64_t length = r.remaining();
                    if ((bits & kStreamLen) != 0) {
                        const auto explicit_length = r.varint();
                        if (!explicit_length) return std::nullopt;
                        length = *explicit_length;
                    }
                    // RFC 9000 §19.8: the final byte offset must stay a
                    // valid varint — rejects hostile offsets near 2^62.
                    if (stream.offset > kVarintMax - length) return std::nullopt;
                    const auto data = r.bytes(static_cast<std::size_t>(length));
                    if (!data) return std::nullopt;
                    stream.data.assign(data->begin(), data->end());
                    frames.emplace_back(std::move(stream));
                    break;
                }
                return std::nullopt;  // unknown frame type
            }
        }
    }
    return frames;
}

}  // namespace spinscope::quic
