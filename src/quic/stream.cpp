#include "quic/stream.hpp"

#include <algorithm>
#include <cassert>

namespace spinscope::quic {

void ReassemblyBuffer::insert(std::uint64_t offset, std::span<const std::uint8_t> data) {
    if (data.empty()) return;
    const std::uint64_t end = offset + data.size();
    if (bytes_.size() < end) bytes_.resize(end);
    std::copy(data.begin(), data.end(), bytes_.begin() + static_cast<std::ptrdiff_t>(offset));

    // Merge [offset, end) into the run map.
    std::uint64_t new_start = offset;
    std::uint64_t new_end = end;
    auto it = runs_.lower_bound(new_start);
    if (it != runs_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= new_start) {
            new_start = prev->first;
            new_end = std::max(new_end, prev->second);
            it = runs_.erase(prev);
        }
    }
    while (it != runs_.end() && it->first <= new_end) {
        new_end = std::max(new_end, it->second);
        it = runs_.erase(it);
    }
    runs_.emplace(new_start, new_end);
}

void ReassemblyBuffer::set_final_size(std::uint64_t final_size) noexcept {
    final_size_ = final_size;
}

std::uint64_t ReassemblyBuffer::contiguous_length() const noexcept {
    // Runs are merged on insert, so a run covering offset 0 starts at 0.
    if (!runs_.empty() && runs_.begin()->first == 0) return runs_.begin()->second;
    return 0;
}

bool ReassemblyBuffer::complete() const noexcept {
    return final_size_.has_value() && contiguous_length() >= *final_size_;
}

std::vector<std::uint8_t> ReassemblyBuffer::take() {
    assert(complete());
    bytes_.resize(*final_size_);
    runs_.clear();
    return std::move(bytes_);
}

void SendQueue::append(std::span<const std::uint8_t> data, bool fin) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    if (fin) fin_ = true;
}

std::optional<SendQueue::Chunk> SendQueue::next_chunk(std::size_t max_bytes) {
    if (!retransmit_.empty()) {
        Chunk chunk = std::move(retransmit_.back());
        retransmit_.pop_back();
        return chunk;
    }
    if (!has_pending() || max_bytes == 0) return std::nullopt;
    Chunk chunk;
    chunk.offset = next_offset_;
    const std::uint64_t available = buffer_.size() - next_offset_;
    const std::uint64_t take = std::min<std::uint64_t>(available, max_bytes);
    chunk.data.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(next_offset_),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(next_offset_ + take));
    next_offset_ += take;
    if (fin_ && next_offset_ == buffer_.size()) {
        chunk.fin = true;
        fin_sent_ = true;
    }
    return chunk;
}

void SendQueue::requeue(const Chunk& chunk) { retransmit_.push_back(chunk); }

}  // namespace spinscope::quic
