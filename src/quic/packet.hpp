// spinscope/quic/packet.hpp
//
// QUIC v1 packet header encoding and decoding (RFC 9000 §17), including the
// latency spin bit in the short-header first byte, plus packet-number
// truncation/expansion (RFC 9000 Appendix A).
//
// Crypto note: spinscope does not apply AEAD or header protection — payloads
// travel in the clear inside the simulator. The spin bit is the one short-
// header field that is *not* protected in real QUIC, so every observable
// this study relies on has the same wire semantics as the real protocol.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "quic/types.hpp"
#include "quic/varint.hpp"

namespace spinscope::quic {

/// Wire packet categories.
enum class PacketType : std::uint8_t {
    initial,
    zero_rtt,
    handshake,
    retry,
    one_rtt,
    version_negotiation,
};

[[nodiscard]] constexpr const char* to_cstring(PacketType t) noexcept {
    switch (t) {
        case PacketType::initial: return "initial";
        case PacketType::zero_rtt: return "0rtt";
        case PacketType::handshake: return "handshake";
        case PacketType::retry: return "retry";
        case PacketType::one_rtt: return "1rtt";
        case PacketType::version_negotiation: return "version_negotiation";
    }
    return "?";
}

/// Maps a packet type to the packet-number space it lives in.
[[nodiscard]] constexpr PnSpace pn_space_of(PacketType t) noexcept {
    switch (t) {
        case PacketType::initial: return PnSpace::initial;
        case PacketType::handshake: return PnSpace::handshake;
        default: return PnSpace::application;
    }
}

/// Parsed header of one packet. For encoding, fill in the fields relevant to
/// `type`; irrelevant ones are ignored.
struct PacketHeader {
    PacketType type = PacketType::one_rtt;
    Version version = Version::v1;   // long header only
    ConnectionId dcid;
    ConnectionId scid;               // long header only
    PacketNumber packet_number = 0;  // full (expanded) number
    bool spin = false;               // 1-RTT only: the latency spin bit
    bool key_phase = false;          // 1-RTT only
    /// Valid Edge Counter (0-3), the De Vaere et al. extension carried in
    /// the two short-header reserved bits (0x18). RFC 9000 requires those
    /// bits to be zero, which is exactly what a VEC-disabled endpoint sends;
    /// spinscope implements the three-bit proposal as an opt-in extension.
    std::uint8_t vec = 0;
};

/// Result of decoding one packet from a datagram.
struct DecodedPacket {
    PacketHeader header;
    std::size_t pn_length = 0;           ///< encoded packet-number bytes (1..4)
    std::span<const std::uint8_t> payload;  ///< frame bytes
    std::size_t total_size = 0;          ///< bytes consumed from the datagram
};

/// Chooses the shortest packet-number encoding (1..4 bytes) that a receiver
/// which has acknowledged `largest_acked` can unambiguously expand
/// (RFC 9000 Appendix A.2). `largest_acked == kInvalidPacketNumber` means
/// nothing acknowledged yet.
[[nodiscard]] std::size_t packet_number_length(PacketNumber full,
                                               PacketNumber largest_acked) noexcept;

/// Expands a truncated packet number given the largest packet number
/// successfully processed so far (RFC 9000 Appendix A.3).
/// `largest_received == kInvalidPacketNumber` means no packet yet.
[[nodiscard]] PacketNumber expand_packet_number(PacketNumber largest_received,
                                                std::uint64_t truncated,
                                                std::size_t pn_length) noexcept;

/// Encodes header + payload through `w` (which may target a pooled
/// bytes::Buffer datagram). `largest_acked` drives packet-number truncation.
/// Long headers carry an explicit Length field; 1-RTT payloads extend to the
/// end of the datagram.
void encode_packet(Writer& w, const PacketHeader& header,
                   std::span<const std::uint8_t> payload, PacketNumber largest_acked);

/// Vector-compat overload (tests, benches).
inline void encode_packet(std::vector<std::uint8_t>& out, const PacketHeader& header,
                          std::span<const std::uint8_t> payload, PacketNumber largest_acked) {
    Writer w{out};
    encode_packet(w, header, payload, largest_acked);
}

/// Buffer overload: encodes straight into pooled datagram storage.
inline void encode_packet(bytes::Buffer& out, const PacketHeader& header,
                          std::span<const std::uint8_t> payload, PacketNumber largest_acked) {
    Writer w{out};
    encode_packet(w, header, payload, largest_acked);
}

/// Writes only the 1-RTT short header (first byte, DCID, truncated packet
/// number). A 1-RTT payload extends to the end of the datagram, so the
/// connection hot path writes this header into the pooled datagram and then
/// appends frames in place — no intermediate payload vector exists.
/// `header.type` must be PacketType::one_rtt.
void encode_short_header(Writer& w, const PacketHeader& header, PacketNumber largest_acked);

/// Decodes the packet at the front of `datagram`.
///
/// `short_dcid_length` is the connection-ID length the receiving endpoint
/// uses (short headers do not self-describe it); `largest_received` is the
/// largest packet number processed in the matching PN space, for expansion.
/// Returns nullopt on malformed input.
[[nodiscard]] std::optional<DecodedPacket> decode_packet(
    std::span<const std::uint8_t> datagram, std::size_t short_dcid_length,
    PacketNumber largest_received) noexcept;

/// Lightweight wire view of a 1-RTT short header as seen by an *on-path*
/// observer: only the fields that are readable without packet-protection
/// keys. This is what a real middlebox (and our core::WireSpinTap) can see.
struct ShortHeaderView {
    bool spin = false;
    std::uint8_t vec = 0;         ///< Valid Edge Counter (reserved bits)
    std::size_t dcid_offset = 1;  ///< byte offset of the DCID
};

/// Peeks at a datagram and, if it starts with a short-header packet, returns
/// the unprotected view. Long-header and malformed datagrams yield nullopt.
[[nodiscard]] std::optional<ShortHeaderView> peek_short_header(
    std::span<const std::uint8_t> datagram) noexcept;

}  // namespace spinscope::quic
