// spinscope/quic/spin.hpp
//
// The latency spin bit (RFC 9000 §17.4) endpoint state machine, including
// every disable behaviour the paper observes in the wild (§4.3):
//
//  * spin            — participate: client inverts, server reflects;
//  * always_zero     — the dominant "disabled" mode in the paper (Table 3);
//  * always_one      — rare fixed-one mode;
//  * grease_per_packet      — random value on every packet (RFC 9312
//                             recommendation; detectable via ultra-short
//                             apparent spin periods);
//  * grease_per_connection  — one random value for the whole connection
//                             (indistinguishable from a fixed value).
//
// Endpoints that participate MUST still disable the mechanism on at least
// one in every 16 connections (RFC 9000) or one in eight (RFC 9312) — the
// "lottery". Which fraction is used, and what a lottery-disabled connection
// does instead, are both configurable; the paper's Fig. 2 tests exactly this
// compliance.

#pragma once

#include <cstdint>

#include "quic/types.hpp"
#include "util/rng.hpp"

namespace spinscope::quic {

/// Per-connection spin-bit behaviour of one endpoint.
enum class SpinPolicy : std::uint8_t {
    spin,
    always_zero,
    always_one,
    grease_per_packet,
    grease_per_connection,
};

[[nodiscard]] constexpr const char* to_cstring(SpinPolicy p) noexcept {
    switch (p) {
        case SpinPolicy::spin: return "spin";
        case SpinPolicy::always_zero: return "always_zero";
        case SpinPolicy::always_one: return "always_one";
        case SpinPolicy::grease_per_packet: return "grease_per_packet";
        case SpinPolicy::grease_per_connection: return "grease_per_connection";
    }
    return "?";
}

/// Endpoint spin configuration.
struct SpinConfig {
    SpinPolicy policy = SpinPolicy::spin;
    /// When `policy == spin`: disable the mechanism on one in this many
    /// connections (16 per RFC 9000, 8 per RFC 9312). 0 disables the
    /// lottery entirely (non-compliant, but some stacks do it; the scanner
    /// client also uses 0 so the measured behaviour is the server's).
    std::uint32_t lottery_one_in = 16;
    /// Behaviour of a connection that lost the lottery.
    SpinPolicy lottery_fallback = SpinPolicy::always_zero;
    /// Enables the Valid Edge Counter extension (De Vaere et al.): outgoing
    /// spin edges carry a 2-bit validity counter in the reserved header
    /// bits, letting observers reject spurious (reordered) edges. Off by
    /// default — the mechanism never made it into RFC 9000.
    bool enable_vec = false;
    /// ABLATION ONLY: update the tracked value from every incoming packet in
    /// arrival order instead of the highest packet number. This is the naive
    /// reflection RFC 9000 §17.4 deliberately avoids; enabling it makes the
    /// wave sensitive to reordering on the *incoming* path
    /// (bench_ablation_spin demonstrates the damage).
    bool naive_reflection = false;
};

/// Spin bit + VEC values for one outgoing 1-RTT packet.
struct SpinHeaderBits {
    bool spin = false;
    std::uint8_t vec = 0;
};

/// Spin-bit state of one endpoint on one connection.
class SpinState {
public:
    /// Draws the lottery (if configured) at connection setup, mirroring
    /// RFC 9000's per-connection decision.
    SpinState(Role role, const SpinConfig& config, util::Rng& rng);

    /// True if this endpoint actively spins on this connection (policy is
    /// `spin` and the lottery did not disable it).
    [[nodiscard]] bool participating() const noexcept {
        return effective_ == SpinPolicy::spin;
    }

    /// The policy actually in force after the lottery.
    [[nodiscard]] SpinPolicy effective_policy() const noexcept { return effective_; }

    /// Records an incoming 1-RTT packet. Only the packet with the highest
    /// packet number updates the reflected value (RFC 9000 §17.4) — this is
    /// what makes the mechanism robust to reordering on the *incoming* path.
    /// `vec` is the packet's Valid Edge Counter (0 when the peer does not
    /// implement the extension).
    void on_packet_received(PacketNumber pn, bool spin, std::uint8_t vec = 0) noexcept;

    /// Spin bit and VEC to place on the next outgoing 1-RTT packet.
    ///
    /// VEC semantics (the three-bit proposal): packets that do not change
    /// the outgoing spin value carry VEC 0; a packet starting a fresh edge
    /// carries min(3, incoming_vec + 1) — so a healthy wave saturates at 3
    /// after one and a half round trips, while an edge fabricated by
    /// reordering is recognizable by its zero VEC.
    [[nodiscard]] SpinHeaderBits outgoing(util::Rng& rng) noexcept;

    /// Convenience accessor for callers that ignore the VEC.
    [[nodiscard]] bool outgoing_value(util::Rng& rng) noexcept { return outgoing(rng).spin; }

    /// Number of times the tracked incoming spin value flipped (spin edges
    /// observed at this endpoint). On a healthy spinning connection this is
    /// about one per RTT; per-packet greasing flips on ~half the packets,
    /// which is how the telemetry layer flags suspected grease.
    [[nodiscard]] std::uint64_t edges_observed() const noexcept { return edges_observed_; }

private:
    Role role_;
    bool vec_enabled_ = false;
    bool naive_reflection_ = false;
    SpinPolicy effective_;
    bool grease_value_ = false;      // fixed draw for grease_per_connection
    bool seen_any_ = false;
    PacketNumber highest_pn_ = 0;
    bool highest_value_ = false;
    std::uint8_t highest_vec_ = 0;
    bool sent_any_ = false;
    bool last_sent_value_ = false;
    std::uint64_t edges_observed_ = 0;
};

}  // namespace spinscope::quic
