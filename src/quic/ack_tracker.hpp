// spinscope/quic/ack_tracker.hpp
//
// Receive-side acknowledgement bookkeeping for one packet-number space:
// which packet numbers arrived, when an ACK must be emitted, and ACK frame
// construction with the host-delay field.
//
// The delayed-ACK policy (ack every `ack_eliciting_threshold`-th packet
// immediately, otherwise after max_ack_delay — RFC 9002 §6.1) is a first-
// order driver of the paper's results: the receiver's ack delay rides on
// every spin period but is subtracted from the stack's own RTT samples.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "quic/frame.hpp"
#include "quic/types.hpp"
#include "util/time.hpp"

namespace spinscope::quic {

using util::Duration;
using util::TimePoint;

/// Tracks received packets and decides when to acknowledge.
class AckTracker {
public:
    struct Config {
        /// Send an immediate ACK once this many ack-eliciting packets are
        /// pending (RFC 9002 recommends every second packet).
        std::uint32_t ack_eliciting_threshold = 2;
        /// Otherwise delay the ACK at most this long (transport parameter
        /// max_ack_delay, default 25 ms — RFC 9000 §18.2).
        Duration max_ack_delay = Duration::millis(25);
    };

    explicit AckTracker(Config config) : config_{config} {}

    /// Records an incoming packet. Duplicates are detected and ignored.
    /// Returns false if `pn` was seen before.
    bool on_packet_received(PacketNumber pn, bool ack_eliciting, TimePoint now);

    /// True once at least one packet has been received.
    [[nodiscard]] bool any_received() const noexcept { return !ranges_.empty(); }

    /// Largest packet number received so far; kInvalidPacketNumber if none.
    [[nodiscard]] PacketNumber largest_received() const noexcept;

    /// True if an ACK should be sent right now (threshold reached).
    [[nodiscard]] bool ack_due_immediately() const noexcept;

    /// Deadline by which an ACK must go out; never() when nothing pending.
    [[nodiscard]] TimePoint ack_deadline() const noexcept;

    /// True when an ack-eliciting packet awaits acknowledgement.
    [[nodiscard]] bool ack_pending() const noexcept { return pending_ack_eliciting_ > 0; }

    /// Builds the ACK frame for everything received and resets the pending
    /// state. `now` stamps the ack_delay field (time since the largest
    /// ack-eliciting packet arrived). Returns nullopt if nothing to ack.
    [[nodiscard]] std::optional<AckFrame> build_ack(TimePoint now);

private:
    Config config_;
    /// Received ranges, descending by packet number (ACK frame order).
    std::vector<AckRange> ranges_;
    std::uint32_t pending_ack_eliciting_ = 0;
    TimePoint oldest_unacked_eliciting_ = TimePoint::never();
    TimePoint largest_received_at_ = TimePoint::never();
};

}  // namespace spinscope::quic
