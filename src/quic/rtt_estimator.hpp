// spinscope/quic/rtt_estimator.hpp
//
// RFC 9002 §5 round-trip-time estimation.
//
// This is the "QUIC" baseline of the paper's accuracy study (§3.3): the
// stack measures the time until a packet is acknowledged and subtracts the
// peer-reported ack delay — information a passive spin-bit observer does not
// have. Per-connection means of these samples are compared against the
// spin-bit estimates in Figures 3 and 4.

#pragma once

#include <cstddef>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace spinscope::quic {

using util::Duration;

/// RFC 9002 RTT state: latest, minimum, smoothed and variance, fed by ACK
/// receipt samples.
class RttEstimator {
public:
    /// `initial_rtt` seeds smoothed_rtt/rttvar before the first sample
    /// (RFC 9002 §5.2, default 333 ms).
    explicit RttEstimator(Duration initial_rtt = Duration::millis(333));

    /// Feeds one sample (RFC 9002 §5.1/§5.3).
    ///
    /// `latest`:    time from sending an ack-eliciting packet to receiving
    ///              the ACK for it.
    /// `ack_delay`: the peer-reported delay from the ACK frame.
    /// `max_ack_delay_bound`: when `handshake_confirmed`, ack_delay is capped
    ///              at the peer's advertised max_ack_delay before adjusting.
    void add_sample(Duration latest, Duration ack_delay, Duration max_ack_delay_bound,
                    bool handshake_confirmed);

    [[nodiscard]] bool has_samples() const noexcept { return samples_ > 0; }
    [[nodiscard]] std::size_t sample_count() const noexcept { return samples_; }

    [[nodiscard]] Duration latest_rtt() const noexcept { return latest_; }
    /// Minimum of the *unadjusted* latest-RTT samples (RFC 9002 §5.2).
    [[nodiscard]] Duration min_rtt() const noexcept { return min_; }
    [[nodiscard]] Duration smoothed_rtt() const noexcept { return smoothed_; }
    [[nodiscard]] Duration rttvar() const noexcept { return rttvar_; }

    /// PTO interval: smoothed + max(4*rttvar, 1ms) + max_ack_delay
    /// (RFC 9002 §6.2.1).
    [[nodiscard]] Duration pto(Duration peer_max_ack_delay) const noexcept;

    /// All ack-delay-adjusted samples, in milliseconds, in arrival order.
    /// The analysis pipeline compares the mean of these against the spin-bit
    /// estimates — this mirrors the paper's use of quic-go's qlog
    /// "metrics_updated" stream.
    [[nodiscard]] const std::vector<double>& adjusted_samples_ms() const noexcept {
        return adjusted_samples_ms_;
    }

private:
    Duration latest_ = Duration::zero();
    Duration min_ = Duration::max();
    Duration smoothed_;
    Duration rttvar_;
    std::size_t samples_ = 0;
    std::vector<double> adjusted_samples_ms_;
};

}  // namespace spinscope::quic
