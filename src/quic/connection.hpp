// spinscope/quic/connection.hpp
//
// A QUIC v1 endpoint connection running on the spinscope simulator.
//
// Implements the protocol machinery the spin-bit study depends on:
//  * a three-flight handshake over Initial/Handshake packet-number spaces
//    (TLS is simulated by opaque CRYPTO payloads — see DESIGN.md §7);
//  * 1-RTT application streams with offset reassembly;
//  * delayed acknowledgements (every-Nth immediate, max_ack_delay timer);
//  * RFC 9002 RTT estimation, packet-threshold loss detection and PTO;
//  * slow-start/AIMD congestion window (ack-clocked flights — responses
//    larger than one window are what make spin edges observable at all);
//  * the RFC 9000 §17.4 spin bit on every short-header packet;
//  * qlog trace recording of every packet sent/received.
//
// One datagram carries one packet (no coalescing); the handshake flights are
// therefore one packet each, which preserves RTT-relevant sequencing.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "qlog/trace.hpp"
#include "quic/ack_tracker.hpp"
#include "quic/frame.hpp"
#include "quic/packet.hpp"
#include "quic/rtt_estimator.hpp"
#include "quic/spin.hpp"
#include "quic/stream.hpp"
#include "quic/types.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"

namespace spinscope::quic {

/// Subset of RFC 9000 §18.2 transport parameters spinscope models.
struct TransportParams {
    Duration max_ack_delay = Duration::millis(25);
    std::uint8_t ack_delay_exponent = 3;
};

/// Per-connection endpoint configuration.
struct ConnectionConfig {
    Role role = Role::client;
    Version version = Version::v1;
    SpinConfig spin{};
    TransportParams params{};
    /// The peer's max_ack_delay, used to cap reported ack delays in RTT
    /// adjustment (normally learned from transport parameters).
    Duration peer_max_ack_delay = Duration::millis(25);
    /// Acknowledge immediately once this many ack-eliciting packets are
    /// pending (RFC 9002 recommends 2).
    std::uint32_t ack_eliciting_threshold = 2;
    std::size_t mtu = 1200;
    std::uint32_t initial_cwnd_packets = 10;
    Duration initial_rtt = Duration::millis(100);
    /// Send a MAX_DATA flow-control update after receiving this many stream
    /// bytes since the last update (0 disables). Mirrors real stacks, which
    /// extend credit continuously during a download; these ack-eliciting
    /// client packets are what keep the spin wave moving on transfers that
    /// fit into a single congestion window.
    std::size_t flow_update_interval = 12 * 1024;
    /// Host emission latency: packets produced in reaction to received data
    /// (ACKs, flow updates, ack-clocked stream data) leave this much later
    /// than the triggering datagram — OS scheduling and stack processing.
    /// Strictly positive and inside every spin period exactly once per
    /// direction, it biases spin samples above the true RTT instead of
    /// letting symmetric jitter produce impossible sub-RTT samples.
    Duration emission_latency_min = Duration::micros(250);
    Duration emission_latency_max = Duration::micros(1200);
    /// Client gives up if the handshake has not completed by then.
    Duration handshake_timeout = Duration::seconds(5);
    /// Connection fails after this long without receiving anything.
    Duration idle_timeout = Duration::seconds(15);
    std::uint32_t max_pto_count = 5;

    // --- hostile-endpoint fault knobs (faults::ServerFaultMode wiring) -----
    /// Server receives Initials but never answers (handshake stall): the
    /// peer observes a silent host and times out.
    bool fault_stall_handshake = false;
    /// Endpoint goes deaf in 1-RTT: received short-header packets are
    /// dropped before tracking, so nothing post-handshake is ever
    /// acknowledged or processed (broken stack / deaf middlebox).
    bool fault_never_ack = false;
};

/// Counters exposed for analysis and tests.
struct ConnectionCounters {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t packets_lost = 0;   // declared lost by loss detection
    std::uint64_t pto_count = 0;      // consecutive, resets on forward progress
    std::uint64_t pto_fired_total = 0;  // cumulative over the connection's life
    std::uint64_t one_rtt_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
};

/// One endpoint of a QUIC connection.
///
/// Lifecycle: construct with a datagram sink, call connect() (client) or
/// just feed on_datagram() (server). Completion/failure is signalled via the
/// callback members. The object must outlive the simulation run.
class Connection {
public:
    using SendFn = std::function<void(netsim::Datagram)>;

    /// `pool` (optional) supplies datagram storage: packets are encoded in
    /// place into pooled buffers and the storage recycles once the link
    /// delivery event drops it. The pool must outlive the connection and be
    /// owned by the same thread (pools are chunk-private, like the sharded
    /// campaign's MetricsRegistry). nullptr falls back to plain allocation.
    Connection(netsim::Simulator& sim, ConnectionConfig config, util::Rng rng, SendFn send_fn,
               qlog::Trace* trace = nullptr, bytes::BufferPool* pool = nullptr);

    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /// Client: initiates the handshake (first Initial flight).
    void connect();

    /// Queues `data` on stream `id` (copied into the stream's send queue);
    /// sent once the handshake completes, subject to the congestion window.
    /// `fin` closes the stream.
    void send_stream(std::uint64_t id, bytes::ConstByteSpan data, bool fin);

    /// Sends CONNECTION_CLOSE and tears the connection down locally.
    void close(std::uint64_t error_code, const std::string& reason, bool application = true);

    /// Hostile-server hook: emits a correctly addressed 1-RTT packet whose
    /// payload is `payload` verbatim — no frame encoding, no reliability
    /// tracking. Used to model servers that produce garbage or truncated
    /// frame payloads; the receiving peer must classify this as a protocol
    /// error, never crash or hang.
    void send_raw_payload(std::vector<std::uint8_t> payload);

    /// Feeds one received datagram as a borrowed view (wired to
    /// netsim::Link's receiver); everything retained past the call is copied
    /// out during decoding.
    void on_datagram(bytes::ConstByteSpan datagram);

    // --- events ------------------------------------------------------------
    /// Fired once when the handshake completes (1-RTT send allowed).
    std::function<void()> on_handshake_complete;
    /// Fired when a peer stream is fully received (FIN + contiguous).
    std::function<void(std::uint64_t stream_id, std::vector<std::uint8_t> data)>
        on_stream_complete;
    /// Fired when the connection closes cleanly (sent or received CLOSE).
    std::function<void()> on_closed;
    /// Fired on handshake timeout, idle timeout or PTO exhaustion.
    std::function<void()> on_failed;

    // --- introspection -----------------------------------------------------
    [[nodiscard]] bool handshake_complete() const noexcept { return handshake_complete_; }
    [[nodiscard]] bool closed() const noexcept { return closed_; }
    [[nodiscard]] bool failed() const noexcept { return failed_; }
    /// True when the connection was torn down because the peer sent
    /// undecodable or protocol-violating data (FRAME_ENCODING_ERROR et al.).
    [[nodiscard]] bool protocol_error() const noexcept { return protocol_error_; }
    [[nodiscard]] const RttEstimator& rtt() const noexcept { return rtt_; }
    [[nodiscard]] const SpinState& spin_state() const noexcept { return spin_; }
    [[nodiscard]] const ConnectionCounters& counters() const noexcept { return counters_; }
    [[nodiscard]] Role role() const noexcept { return config_.role; }

    /// Writes final recovery metrics into the attached trace (call once the
    /// connection is done; the scanner does this for every attempt).
    void finalize_trace();

    /// Adds this connection's transport-level telemetry into `registry`
    /// under `<prefix>.*`: attempt/handshake/failure counters, cumulative
    /// PTO fires, loss, spin edges observed, a per-packet-grease suspicion
    /// counter, and RTT histograms. Call once, when the connection is done.
    void publish_metrics(telemetry::MetricsRegistry& registry,
                         const std::string& prefix = "quic.conn") const;

private:
    struct SentPacket {
        PacketNumber pn = 0;
        TimePoint sent_at;
        std::size_t bytes = 0;
        std::vector<Frame> retransmittable;  // CRYPTO/STREAM frames for loss recovery
    };

    struct Space {
        explicit Space(AckTracker::Config cfg) : tracker{cfg} {}
        PacketNumber next_pn = 0;
        PacketNumber largest_acked = kInvalidPacketNumber;
        PacketNumber largest_received = kInvalidPacketNumber;
        AckTracker tracker;
        std::vector<SentPacket> in_flight;  // ack-eliciting, unacked
        bool open = true;  // discarded once keys would be dropped
    };

    Space& space(PnSpace s) noexcept { return *spaces_[static_cast<std::size_t>(s)]; }

    // --- send path ---------------------------------------------------------
    void send_packet(PnSpace pn_space, std::vector<Frame> frames, bool pad_to_mtu = false);
    void pump();                       ///< flush acks + stream data within cwnd
    void send_ack_only(PnSpace pn_space);
    [[nodiscard]] std::size_t cwnd_available() const noexcept;

    // --- receive path ------------------------------------------------------
    void handle_packet(const DecodedPacket& packet);
    void handle_frames(PnSpace pn_space, const std::vector<Frame>& frames);
    void handle_ack(PnSpace pn_space, const AckFrame& ack);
    void handle_crypto(PnSpace pn_space, const CryptoFrame& crypto);
    void handle_stream(const StreamFrame& stream);

    /// Schedules the deferred post-receive flush (acks + pump) after the
    /// emission latency; coalesces multiple triggers.
    void schedule_flush();
    void flush_now();

    /// Tears the connection down as a transport-level protocol error
    /// (CONNECTION_CLOSE with `error_code`); finalize_trace() records the
    /// protocol_error outcome.
    void on_protocol_error(std::uint64_t error_code, const std::string& reason);

    // --- timers / teardown -------------------------------------------------
    void arm_pto();
    void on_pto();
    void arm_ack_timer();
    void arm_idle_timer();
    void fail();
    void teardown();
    void detect_losses(PnSpace pn_space, TimePoint now);
    void discard_space(PnSpace pn_space);

    /// Pool-backed when attached, plain otherwise; always empty with
    /// `config_.mtu` bytes reserved.
    [[nodiscard]] netsim::Datagram acquire_datagram() const;

    netsim::Simulator* sim_;
    ConnectionConfig config_;
    util::Rng rng_;
    SendFn send_fn_;
    qlog::Trace* trace_;
    bytes::BufferPool* pool_;

    SpinState spin_;
    RttEstimator rtt_;
    ConnectionCounters counters_;

    std::array<std::unique_ptr<Space>, kPnSpaceCount> spaces_;
    ConnectionId local_cid_;
    ConnectionId remote_cid_;

    std::map<std::uint64_t, SendQueue> send_streams_;
    std::map<std::uint64_t, ReassemblyBuffer> recv_streams_;

    // Congestion state (bytes).
    std::size_t cwnd_ = 0;
    std::size_t ssthresh_ = SIZE_MAX;
    std::size_t bytes_in_flight_ = 0;

    netsim::Timer pto_timer_;
    netsim::Timer ack_timer_;
    netsim::Timer handshake_timer_;
    netsim::Timer idle_timer_;

    bool flush_scheduled_ = false;
    std::uint64_t stream_bytes_received_ = 0;
    std::uint64_t flow_credit_granted_ = 0;
    bool flow_update_pending_ = false;

    bool handshake_complete_ = false;
    bool handshake_confirmed_ = false;
    bool closed_ = false;
    bool failed_ = false;
    bool protocol_error_ = false;
    bool server_saw_chlo_ = false;
};

}  // namespace spinscope::quic
