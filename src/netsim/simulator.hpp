// spinscope/netsim/simulator.hpp
//
// Discrete-event simulation core: a virtual clock and an ordered event queue.
//
// The simulator stands in for the real Internet of the paper's measurement
// campaign. All protocol endpoints, links and passive observers run on the
// same simulated clock, which gives the analysis pipeline exact ground truth
// for packet timing — the one thing a real vantage point can never have.

#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/function.hpp"
#include "util/time.hpp"

namespace spinscope::netsim {

using util::Duration;
using util::TimePoint;

/// Single-threaded discrete-event simulator.
///
/// Events scheduled for the same instant fire in scheduling order (stable),
/// which keeps runs bit-for-bit reproducible.
///
/// Thread affinity: a Simulator is owned by the thread that constructs it.
/// The sharded campaign creates one per connection attempt on whichever
/// worker runs that attempt; nothing is synchronized, so scheduling or
/// running from any other thread is a determinism bug, and the simulator
/// enforces single-owner affinity by throwing std::logic_error.
class Simulator {
public:
    /// Move-only: delivery events own their (pooled) datagram buffers, which
    /// a copyable std::function could not hold.
    using Callback = util::MoveFunction<void()>;

    /// Current simulated time. Monotone: only advances while run() pops events.
    [[nodiscard]] TimePoint now() const noexcept { return now_; }

    /// Schedules `cb` at absolute time `t`. Times in the past fire "now"
    /// (the queue never runs backwards). `category` optionally tags the
    /// event for per-category accounting; it must be a string literal (or
    /// otherwise outlive the simulator) — categories are interned by pointer.
    void schedule_at(TimePoint t, Callback cb, const char* category = nullptr);

    /// Schedules `cb` after a relative delay (>= 0; negative is clamped).
    void schedule_after(Duration d, Callback cb, const char* category = nullptr);

    /// Runs events until the queue is empty.
    void run();

    /// Runs events with timestamp <= deadline; the clock ends at
    /// min(deadline, last event time). Returns true if the queue was drained.
    bool run_until(TimePoint deadline);

    /// Runs at most `max_events` further events (safety valve for tests).
    void run_steps(std::size_t max_events);

    [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
    [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

    // --- instrumentation ---------------------------------------------------
    /// Largest queue depth ever reached (after a push).
    [[nodiscard]] std::size_t queue_depth_high_water() const noexcept { return queue_hwm_; }
    /// Total events ever scheduled (processed + dropped-by-never-running).
    [[nodiscard]] std::uint64_t scheduled() const noexcept { return next_seq_; }
    /// Events processed per category tag, in first-seen order. Untagged
    /// events are not listed (processed() minus the sum gives them).
    [[nodiscard]] const std::vector<std::pair<const char*, std::uint64_t>>& category_counts()
        const noexcept {
        return category_counts_;
    }

    /// Adds this simulator's stats into `registry` under `<prefix>.*`:
    /// counters events_scheduled / events_processed / events.<category>, and
    /// a queue_depth_hwm gauge (max-merged, so per-attempt publishes keep
    /// the campaign-wide high-water mark).
    void publish_metrics(telemetry::MetricsRegistry& registry,
                         const std::string& prefix = "netsim.sim") const;

private:
    struct Event {
        TimePoint at;
        std::uint64_t seq;
        Callback cb;
        const char* category = nullptr;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    void pop_and_run();
    /// Throws std::logic_error when called from a thread other than the one
    /// that constructed this simulator (single-owner affinity).
    void check_owner() const;

    /// Min-heap over `Later` maintained with std::push_heap/pop_heap instead
    /// of std::priority_queue: top() of the adapter is const, which forces a
    /// copy of every event — the heap lets events (and the buffers their
    /// callbacks own) move out.
    std::vector<Event> queue_;
    std::thread::id owner_ = std::this_thread::get_id();
    TimePoint now_ = TimePoint::origin();
    std::uint64_t next_seq_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t queue_hwm_ = 0;
    /// Interned by pointer: a handful of distinct literals per process, so a
    /// linear scan beats any map.
    std::vector<std::pair<const char*, std::uint64_t>> category_counts_;
};

/// A single re-armable, cancellable timer (QUIC PTO, idle timeout, delayed
/// ACK). Re-arming or cancelling invalidates any previously scheduled firing
/// via a generation counter, so stale queue entries become no-ops. The state
/// is shared with pending queue entries, so destroying a Timer while a stale
/// firing is still queued is safe (the firing becomes a no-op).
class Timer {
public:
    using Callback = util::MoveFunction<void()>;

    explicit Timer(Simulator& sim) : sim_{&sim}, state_{std::make_shared<State>()} {}

    /// Destruction cancels: a pending firing becomes a no-op (the shared
    /// state outlives the Timer inside any still-queued event).
    ~Timer() { cancel(); }

    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    /// Arms (or re-arms) the timer to fire `cb` at absolute time `t`.
    void set_at(TimePoint t, Callback cb);

    /// Arms (or re-arms) the timer to fire after `d`.
    void set_after(Duration d, Callback cb);

    /// Disarms the timer; a pending firing becomes a no-op.
    void cancel() noexcept;

    [[nodiscard]] bool armed() const noexcept { return state_->armed; }
    /// Expiry of the currently armed firing; TimePoint::never() if disarmed.
    [[nodiscard]] TimePoint expiry() const noexcept {
        return state_->armed ? state_->expiry : TimePoint::never();
    }

private:
    struct State {
        std::uint64_t generation = 0;
        bool armed = false;
        TimePoint expiry = TimePoint::never();
    };

    Simulator* sim_;
    std::shared_ptr<State> state_;
};

}  // namespace spinscope::netsim
