#include "netsim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace spinscope::netsim {

void Simulator::check_owner() const {
    if (std::this_thread::get_id() != owner_) {
        throw std::logic_error(
            "netsim: Simulator used from a thread other than its owner "
            "(simulators are single-threaded; shard workers must create "
            "their own)");
    }
}

void Simulator::schedule_at(TimePoint t, Callback cb, const char* category) {
    check_owner();
    if (t < now_) t = now_;
    queue_.push_back(Event{t, next_seq_++, std::move(cb), category});
    std::push_heap(queue_.begin(), queue_.end(), Later{});
    if (queue_.size() > queue_hwm_) queue_hwm_ = queue_.size();
}

void Simulator::schedule_after(Duration d, Callback cb, const char* category) {
    if (d.is_negative()) d = Duration::zero();
    schedule_at(now_ + d, std::move(cb), category);
}

void Simulator::pop_and_run() {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    now_ = ev.at;
    ++processed_;
    if (ev.category != nullptr) {
        bool found = false;
        for (auto& [name, count] : category_counts_) {
            if (name == ev.category) {
                ++count;
                found = true;
                break;
            }
        }
        if (!found) category_counts_.emplace_back(ev.category, 1);
    }
    ev.cb();
}

void Simulator::run() {
    check_owner();
    while (!queue_.empty()) pop_and_run();
}

bool Simulator::run_until(TimePoint deadline) {
    check_owner();
    while (!queue_.empty() && queue_.front().at <= deadline) pop_and_run();
    if (now_ < deadline) now_ = deadline;
    return queue_.empty();
}

void Simulator::run_steps(std::size_t max_events) {
    check_owner();
    for (std::size_t i = 0; i < max_events && !queue_.empty(); ++i) pop_and_run();
}

void Simulator::publish_metrics(telemetry::MetricsRegistry& registry,
                                const std::string& prefix) const {
    registry.counter(prefix + ".events_scheduled").add(next_seq_);
    registry.counter(prefix + ".events_processed").add(processed_);
    registry.gauge(prefix + ".queue_depth_hwm").set_max(static_cast<double>(queue_hwm_));
    for (const auto& [category, count] : category_counts_) {
        registry.counter(prefix + ".events." + category).add(count);
    }
}

void Timer::set_at(TimePoint t, Callback cb) {
    const std::uint64_t generation = ++state_->generation;
    state_->armed = true;
    state_->expiry = t;
    sim_->schedule_at(
        t,
        [state = state_, generation, cb = std::move(cb)]() mutable {
            if (generation != state->generation || !state->armed) return;
            state->armed = false;
            cb();
        },
        "timer");
}

void Timer::set_after(Duration d, Callback cb) { set_at(sim_->now() + d, std::move(cb)); }

void Timer::cancel() noexcept {
    ++state_->generation;
    state_->armed = false;
}

}  // namespace spinscope::netsim
