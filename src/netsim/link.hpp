// spinscope/netsim/link.hpp
//
// Unidirectional network link with configurable propagation delay, jitter,
// serialization rate, random loss and reordering, plus passive taps for
// on-path observers.
//
// Reordering matters to this study: RFC 9312 warns that reordering near spin
// edges produces ultra-short RTT samples (paper Fig. 1b), and §5.2 of the
// paper quantifies how rarely that bites in practice. The link therefore
// models reordering explicitly: a reorder event delays one datagram by an
// extra random amount and exempts it from the FIFO clamp, so later datagrams
// can overtake it.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "bytes/bytes.hpp"
#include "faults/faults.hpp"
#include "netsim/simulator.hpp"
#include "util/rng.hpp"

namespace spinscope::netsim {

/// A UDP-datagram-sized payload travelling the link: a move-only,
/// pool-recyclable byte buffer. Endpoints acquire one from their chunk's
/// bytes::BufferPool (or construct an unpooled one), encode in place, and
/// move it into send(); the link moves it through the event queue and the
/// storage returns to the pool when the delivery (or drop) destroys it.
using Datagram = bytes::Buffer;

/// Static link behaviour. All probabilities in [0, 1].
struct LinkConfig {
    /// One-way propagation delay (base, before jitter).
    Duration base_delay = Duration::millis(10);
    /// Lognormal jitter added to each datagram: exp(N(mu, sigma)) - 1,
    /// scaled by `jitter_scale`. Zero scale disables jitter.
    Duration jitter_scale = Duration::zero();
    double jitter_sigma = 0.5;
    /// Independent per-datagram drop probability.
    double loss_probability = 0.0;
    /// Probability that a datagram is hit by a reorder event: it receives an
    /// extra delay in [reorder_extra_min, reorder_extra_max] and is exempted
    /// from the FIFO clamp, so subsequent datagrams may overtake it.
    double reorder_probability = 0.0;
    Duration reorder_extra_min = Duration::micros(100);
    Duration reorder_extra_max = Duration::millis(4);
    /// Serialization rate in bits/s; 0 means infinitely fast.
    double bandwidth_bps = 0.0;
    /// When true (default), non-reordered datagrams are delivered in FIFO
    /// order even under jitter (arrival clamped to the previous arrival).
    bool enforce_fifo = true;
};

/// Sanitizes a LinkConfig in place: NaN probabilities and an inverted
/// reorder-delay range throw std::invalid_argument (configuration bugs);
/// finite out-of-range probabilities and negative scales are clamped into
/// their valid domain. Link's constructor applies this to its copy, so no
/// downstream sampling ever sees an invalid knob.
void validate_link_config(LinkConfig& config);

/// Statistics a link keeps about itself (ground truth for tests/benches).
struct LinkStats {
    std::uint64_t sent = 0;             ///< datagrams handed to the link
    std::uint64_t delivered = 0;        ///< datagrams delivered to the receiver
    std::uint64_t dropped = 0;          ///< datagrams lost
    std::uint64_t reordered = 0;        ///< datagrams that overtook or were overtaken
    std::uint64_t delivered_bytes = 0;  ///< payload bytes of delivered datagrams
    std::uint64_t dropped_bytes = 0;    ///< payload bytes of lost datagrams
    // Injected-fault accounting (all zero unless a FaultPlan is attached).
    std::uint64_t fault_burst_dropped = 0;      ///< Gilbert–Elliott losses
    std::uint64_t fault_blackhole_dropped = 0;  ///< losses in outage windows
    std::uint64_t fault_delay_spiked = 0;       ///< datagrams hit by a spike
    std::uint64_t fault_duplicated = 0;         ///< extra copies injected
};

/// Unidirectional link.
class Link {
public:
    /// Receiver invoked at delivery time (simulator clock already advanced).
    /// Receives a borrowed view of the wire bytes; the backing buffer lives
    /// until the delivery event returns, then recycles to its pool.
    using Receiver = std::function<void(bytes::ConstByteSpan)>;
    /// Passive tap invoked at the observation point with a borrowed view of
    /// the wire bytes (an on-path observer owns nothing). Taps see every
    /// datagram that will be delivered (not lost ones), at its delivery time
    /// — this matches an observer colocated with the receiving endpoint,
    /// which is the paper's vantage (qlog of received packets).
    using Tap = std::function<void(TimePoint, bytes::ConstByteSpan)>;

    Link(Simulator& sim, LinkConfig config, util::Rng rng);

    /// Sets the delivering endpoint. Must be set before send().
    void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

    /// Adds a passive observer tap; taps run before the receiver.
    void add_tap(Tap tap) { taps_.push_back(std::move(tap)); }

    /// Queues one datagram for transmission at the current simulated time.
    /// Takes the datagram by value and moves it end to end — through fault
    /// verdicts, the serializer and the delivery event — so a send never
    /// copies payload bytes (fault duplication clones explicitly).
    void send(Datagram datagram);

    /// Attaches an adversarial fault plan. `rng` must be a stream
    /// independent of the link's own (the injector never touches the link's
    /// draws, so an empty plan — or no plan — yields byte-identical
    /// schedules). Re-attaching replaces the previous plan and its state.
    void attach_faults(faults::FaultPlan plan, util::Rng rng) {
        injector_.emplace(std::move(plan), rng);
    }

    /// The active injector, if a plan is attached (stats introspection).
    [[nodiscard]] const faults::FaultInjector* fault_injector() const noexcept {
        return injector_ ? &*injector_ : nullptr;
    }

    [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }

    /// Adds this link's stats into `registry` as counters `<prefix>.sent`,
    /// `.delivered`, `.dropped`, `.reordered`, `.delivered_bytes`,
    /// `.dropped_bytes` (additive, so per-attempt links aggregate into
    /// campaign-wide totals).
    void publish_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

private:
    [[nodiscard]] Duration sample_jitter();
    void schedule_delivery(Datagram datagram, TimePoint arrival);

    Simulator* sim_;
    LinkConfig config_;
    util::Rng rng_;
    Receiver receiver_;
    std::vector<Tap> taps_;
    LinkStats stats_;
    std::optional<faults::FaultInjector> injector_;
    TimePoint last_scheduled_arrival_ = TimePoint::origin();
    TimePoint serializer_free_at_ = TimePoint::origin();
};

/// Symmetric duplex path between a client and a server: a forward
/// (client->server) and a return (server->client) link built from one
/// profile. The paper's spin observer sits on the return path at the client
/// side; `return_link().add_tap(...)` is where it attaches.
class Path {
public:
    Path(Simulator& sim, const LinkConfig& forward, const LinkConfig& ret, util::Rng& rng);

    [[nodiscard]] Link& forward_link() noexcept { return forward_; }
    [[nodiscard]] Link& return_link() noexcept { return return_; }

    /// Base (no jitter / queueing) network round-trip time of the path.
    [[nodiscard]] Duration base_rtt() const noexcept {
        return forward_.config().base_delay + return_.config().base_delay;
    }

private:
    Link forward_;
    Link return_;
};

}  // namespace spinscope::netsim
