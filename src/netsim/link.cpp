#include "netsim/link.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/distributions.hpp"

namespace spinscope::netsim {

namespace {

double checked_probability(double p, const char* name) {
    if (std::isnan(p)) {
        throw std::invalid_argument(std::string{"netsim: LinkConfig."} + name + " is NaN");
    }
    return std::clamp(p, 0.0, 1.0);
}

}  // namespace

void validate_link_config(LinkConfig& config) {
    config.loss_probability = checked_probability(config.loss_probability, "loss_probability");
    config.reorder_probability =
        checked_probability(config.reorder_probability, "reorder_probability");
    if (std::isnan(config.jitter_sigma)) {
        throw std::invalid_argument("netsim: LinkConfig.jitter_sigma is NaN");
    }
    if (std::isnan(config.bandwidth_bps)) {
        throw std::invalid_argument("netsim: LinkConfig.bandwidth_bps is NaN");
    }
    config.jitter_sigma = std::max(0.0, config.jitter_sigma);
    config.bandwidth_bps = std::max(0.0, config.bandwidth_bps);
    if (config.reorder_extra_min > config.reorder_extra_max) {
        throw std::invalid_argument(
            "netsim: LinkConfig.reorder_extra_min exceeds reorder_extra_max");
    }
    if (config.reorder_extra_min.is_negative()) {
        throw std::invalid_argument("netsim: LinkConfig.reorder_extra_min is negative");
    }
    if (config.base_delay.is_negative() || config.jitter_scale.is_negative()) {
        throw std::invalid_argument("netsim: LinkConfig delay knobs must be >= 0");
    }
}

Link::Link(Simulator& sim, LinkConfig config, util::Rng rng)
    : sim_{&sim}, config_{config}, rng_{rng} {
    validate_link_config(config_);
}

Duration Link::sample_jitter() {
    if (config_.jitter_scale.is_zero()) return Duration::zero();
    // exp(N(0, sigma)) - 1 is >= -1 with a right tail: occasional late
    // packets, never earlier than the propagation floor.
    const double factor = util::sample_lognormal(rng_, 0.0, config_.jitter_sigma) - 1.0;
    return Duration::from_ms(std::max(0.0, factor) * config_.jitter_scale.as_ms());
}

void Link::send(Datagram datagram) {
    ++stats_.sent;

    // Injected faults decide first: an outage or burst loss costs the
    // datagram before the steady-state channel model sees it. The injector
    // runs on its own RNG stream, so the link's draws below are unperturbed
    // whether or not a plan is attached.
    faults::FaultInjector::Verdict fault;
    if (injector_) {
        fault = injector_->on_send(sim_->now());
        if (fault.drop) {
            ++stats_.dropped;
            stats_.dropped_bytes += datagram.size();
            if (fault.blackholed) {
                ++stats_.fault_blackhole_dropped;
            } else {
                ++stats_.fault_burst_dropped;
            }
            return;
        }
        if (!fault.extra_delay.is_zero()) ++stats_.fault_delay_spiked;
        if (fault.duplicate) ++stats_.fault_duplicated;
    }

    if (rng_.chance(config_.loss_probability)) {
        ++stats_.dropped;
        stats_.dropped_bytes += datagram.size();
        return;
    }

    TimePoint departure = sim_->now();
    if (config_.bandwidth_bps > 0.0) {
        // Model a FIFO serializer: transmission begins when the line frees up.
        const double bits = static_cast<double>(datagram.size()) * 8.0;
        const auto serialization = Duration::from_ms(bits / config_.bandwidth_bps * 1e3);
        if (serializer_free_at_ < departure) serializer_free_at_ = departure;
        departure = serializer_free_at_;
        serializer_free_at_ = departure + serialization;
        departure = serializer_free_at_;  // last bit leaves at end of serialization
    }

    // A delay spike acts like a bufferbloat excursion: it delays this
    // datagram pre-clamp, so with FIFO enforcement later datagrams queue up
    // behind it instead of overtaking.
    TimePoint arrival = departure + config_.base_delay + sample_jitter() + fault.extra_delay;

    const bool reorder_event = rng_.chance(config_.reorder_probability);
    if (reorder_event) {
        const std::int64_t lo = config_.reorder_extra_min.count_nanos();
        const std::int64_t hi = config_.reorder_extra_max.count_nanos();
        arrival = arrival + Duration::nanos(rng_.uniform_i64(lo, std::max(lo, hi)));
        ++stats_.reordered;
    } else if (config_.enforce_fifo && arrival < last_scheduled_arrival_) {
        arrival = last_scheduled_arrival_;
    }
    if (!reorder_event) last_scheduled_arrival_ = arrival;

    if (fault.duplicate) {
        // The copy shares the original's arrival instant; scheduling order
        // keeps it right behind the original (stable same-time ordering).
        // clone() draws the copy's storage from the original's pool.
        schedule_delivery(datagram.clone(), arrival);
    }
    schedule_delivery(std::move(datagram), arrival);
}

void Link::schedule_delivery(Datagram datagram, TimePoint arrival) {
    sim_->schedule_at(
        arrival,
        [this, dg = std::move(datagram)] {
            ++stats_.delivered;
            stats_.delivered_bytes += dg.size();
            for (const auto& tap : taps_) tap(sim_->now(), dg.span());
            if (receiver_) receiver_(dg.span());
            // `dg` dies with this event; pooled storage recycles here.
        },
        "link.delivery");
}

void Link::publish_metrics(telemetry::MetricsRegistry& registry,
                           const std::string& prefix) const {
    registry.counter(prefix + ".sent").add(stats_.sent);
    registry.counter(prefix + ".delivered").add(stats_.delivered);
    registry.counter(prefix + ".dropped").add(stats_.dropped);
    registry.counter(prefix + ".reordered").add(stats_.reordered);
    registry.counter(prefix + ".delivered_bytes").add(stats_.delivered_bytes);
    registry.counter(prefix + ".dropped_bytes").add(stats_.dropped_bytes);
    // Fault counters are published only when a plan is attached, so idle
    // campaigns keep their metric schema unchanged.
    if (injector_) {
        registry.counter(prefix + ".fault.burst_dropped").add(stats_.fault_burst_dropped);
        registry.counter(prefix + ".fault.blackhole_dropped")
            .add(stats_.fault_blackhole_dropped);
        registry.counter(prefix + ".fault.delay_spiked").add(stats_.fault_delay_spiked);
        registry.counter(prefix + ".fault.duplicated").add(stats_.fault_duplicated);
        registry.counter(prefix + ".fault.burst_entries")
            .add(injector_->stats().burst_entries);
    }
}

Path::Path(Simulator& sim, const LinkConfig& forward, const LinkConfig& ret, util::Rng& rng)
    : forward_{sim, forward, rng.fork(1)}, return_{sim, ret, rng.fork(2)} {}

}  // namespace spinscope::netsim
