#include "netsim/link.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "util/distributions.hpp"

namespace spinscope::netsim {

Link::Link(Simulator& sim, LinkConfig config, util::Rng rng)
    : sim_{&sim}, config_{config}, rng_{rng} {}

Duration Link::sample_jitter() {
    if (config_.jitter_scale.is_zero()) return Duration::zero();
    // exp(N(0, sigma)) - 1 is >= -1 with a right tail: occasional late
    // packets, never earlier than the propagation floor.
    const double factor = util::sample_lognormal(rng_, 0.0, config_.jitter_sigma) - 1.0;
    return Duration::from_ms(std::max(0.0, factor) * config_.jitter_scale.as_ms());
}

void Link::send(Datagram datagram) {
    ++stats_.sent;
    if (rng_.chance(config_.loss_probability)) {
        ++stats_.dropped;
        stats_.dropped_bytes += datagram.size();
        return;
    }

    TimePoint departure = sim_->now();
    if (config_.bandwidth_bps > 0.0) {
        // Model a FIFO serializer: transmission begins when the line frees up.
        const double bits = static_cast<double>(datagram.size()) * 8.0;
        const auto serialization = Duration::from_ms(bits / config_.bandwidth_bps * 1e3);
        if (serializer_free_at_ < departure) serializer_free_at_ = departure;
        departure = serializer_free_at_;
        serializer_free_at_ = departure + serialization;
        departure = serializer_free_at_;  // last bit leaves at end of serialization
    }

    TimePoint arrival = departure + config_.base_delay + sample_jitter();

    const bool reorder_event = rng_.chance(config_.reorder_probability);
    if (reorder_event) {
        const std::int64_t lo = config_.reorder_extra_min.count_nanos();
        const std::int64_t hi = config_.reorder_extra_max.count_nanos();
        arrival = arrival + Duration::nanos(rng_.uniform_i64(lo, std::max(lo, hi)));
        ++stats_.reordered;
    } else if (config_.enforce_fifo && arrival < last_scheduled_arrival_) {
        arrival = last_scheduled_arrival_;
    }
    if (!reorder_event) last_scheduled_arrival_ = arrival;

    sim_->schedule_at(
        arrival,
        [this, dg = std::move(datagram)] {
            ++stats_.delivered;
            stats_.delivered_bytes += dg.size();
            for (const auto& tap : taps_) tap(sim_->now(), dg);
            if (receiver_) receiver_(dg);
        },
        "link.delivery");
}

void Link::publish_metrics(telemetry::MetricsRegistry& registry,
                           const std::string& prefix) const {
    registry.counter(prefix + ".sent").add(stats_.sent);
    registry.counter(prefix + ".delivered").add(stats_.delivered);
    registry.counter(prefix + ".dropped").add(stats_.dropped);
    registry.counter(prefix + ".reordered").add(stats_.reordered);
    registry.counter(prefix + ".delivered_bytes").add(stats_.delivered_bytes);
    registry.counter(prefix + ".dropped_bytes").add(stats_.dropped_bytes);
}

Path::Path(Simulator& sim, const LinkConfig& forward, const LinkConfig& ret, util::Rng& rng)
    : forward_{sim, forward, rng.fork(1)}, return_{sim, ret, rng.fork(2)} {}

}  // namespace spinscope::netsim
