#include "faults/storage.hpp"

#include <cerrno>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace spinscope::faults {

namespace {

/// splitmix64 step: the one-line generator used for seed derivation
/// elsewhere; good enough for picking a bit to flip.
std::uint64_t next_u64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t file_size_or_zero(const std::filesystem::path& path) noexcept {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

}  // namespace

void StorageFaultPlan::validate() const {
    if (fail_write_at != 0 && short_write_at != 0) {
        throw std::invalid_argument{
            "faults: fail_write_at and short_write_at target the same write path; "
            "enable one per plan"};
    }
    if (write_error == 0) {
        throw std::invalid_argument{"faults: write_error must be a nonzero errno"};
    }
}

FaultIo::FaultIo(util::Io& base, StorageFaultPlan plan)
    : base_{base}, plan_{plan}, flip_rng_state_{plan.seed} {
    plan_.validate();
}

int FaultIo::open_write(const std::filesystem::path& path, OpenMode mode,
                        util::IoResult& result) {
    std::lock_guard<std::mutex> lock{mutex_};
    if (power_lost_) {
        result = util::IoResult::failure(EIO);
        return kBadFile;
    }
    const int fd = base_.open_write(path, mode, result);
    if (fd == kBadFile) return kBadFile;
    OpenFile state;
    state.path = path;
    if (mode == OpenMode::append) {
        state.size = file_size_or_zero(path);
        // A file closed without fsync keeps its recorded durable length; its
        // unsynced tail is still at the mercy of a power cut.
        const auto it = unsynced_.find(path.string());
        state.durable = it != unsynced_.end() ? it->second : state.size;
        if (it != unsynced_.end()) unsynced_.erase(it);
    }
    open_[fd] = std::move(state);
    return fd;
}

util::IoResult FaultIo::write(int file, std::string_view bytes) {
    std::lock_guard<std::mutex> lock{mutex_};
    return write_locked(file, bytes);
}

util::IoResult FaultIo::write_locked(int file, std::string_view bytes) {
    if (power_lost_) return util::IoResult::failure(EIO);
    ++writes_;
    auto* state = open_.count(file) != 0 ? &open_[file] : nullptr;

    if (plan_.fail_write_at != 0 && writes_ == plan_.fail_write_at) {
        ++faults_;
        return util::IoResult::failure(plan_.write_error);
    }
    if (plan_.short_write_at != 0 && writes_ == plan_.short_write_at) {
        ++faults_;
        const std::string_view half = bytes.substr(0, bytes.size() / 2);
        if (!half.empty() && base_.write(file, half)) {
            if (state != nullptr) state->size += half.size();
            bytes_written_ += half.size();
        }
        return util::IoResult::failure(plan_.write_error);
    }
    if (plan_.enospc_after_bytes != 0 &&
        bytes_written_ + bytes.size() > plan_.enospc_after_bytes) {
        ++faults_;
        const std::uint64_t room = plan_.enospc_after_bytes > bytes_written_
                                       ? plan_.enospc_after_bytes - bytes_written_
                                       : 0;
        const std::string_view fits = bytes.substr(0, static_cast<std::size_t>(room));
        if (!fits.empty() && base_.write(file, fits)) {
            if (state != nullptr) state->size += fits.size();
            bytes_written_ += fits.size();
        }
        return util::IoResult::failure(ENOSPC);
    }

    const util::IoResult result = base_.write(file, bytes);
    if (result) {
        if (state != nullptr) state->size += bytes.size();
        bytes_written_ += bytes.size();
        if (plan_.power_loss_at_write != 0 && writes_ == plan_.power_loss_at_write) {
            ++faults_;
            cut_power_locked();
        }
    }
    return result;
}

util::IoResult FaultIo::fsync(int file) {
    std::lock_guard<std::mutex> lock{mutex_};
    if (power_lost_) return util::IoResult::failure(EIO);
    ++fsyncs_;
    if (plan_.fail_fsync_at != 0 && fsyncs_ >= plan_.fail_fsync_at) {
        ++faults_;
        return util::IoResult::failure(EIO);
    }
    const util::IoResult result = base_.fsync(file);
    if (result) {
        const auto it = open_.find(file);
        if (it != open_.end()) it->second.durable = it->second.size;
    }
    return result;
}

util::IoResult FaultIo::truncate(int file, std::uint64_t size) {
    std::lock_guard<std::mutex> lock{mutex_};
    if (power_lost_) return util::IoResult::failure(EIO);
    const util::IoResult result = base_.truncate(file, size);
    if (result) {
        const auto it = open_.find(file);
        if (it != open_.end()) {
            it->second.size = size;
            if (it->second.durable > size) it->second.durable = size;
        }
    }
    return result;
}

util::IoResult FaultIo::close(int file) {
    std::lock_guard<std::mutex> lock{mutex_};
    // Always allowed, even "after the power cut": callers' RAII cleanup must
    // be able to release the real descriptor.
    const auto it = open_.find(file);
    if (it != open_.end()) {
        if (it->second.durable < it->second.size) {
            unsynced_[it->second.path.string()] = it->second.durable;
        } else {
            unsynced_.erase(it->second.path.string());
        }
        open_.erase(it);
    }
    return base_.close(file);
}

util::IoResult FaultIo::rename(const std::filesystem::path& from,
                               const std::filesystem::path& to) {
    std::lock_guard<std::mutex> lock{mutex_};
    if (power_lost_) return util::IoResult::failure(EIO);
    const util::IoResult result = base_.rename(from, to);
    if (!result) return result;
    ++renames_;
    const auto it = unsynced_.find(from.string());
    if (it != unsynced_.end()) {
        unsynced_[to.string()] = it->second;
        unsynced_.erase(it);
    }
    if (plan_.flip_bit_at_rename != 0 && renames_ == plan_.flip_bit_at_rename) {
        ++faults_;
        // Post-hoc media corruption: the rename still reports success — the
        // caller has no way to know, which is exactly what scrub is for.
        flip_bit_in(to);
    }
    return result;
}

util::IoResult FaultIo::remove(const std::filesystem::path& path) {
    std::lock_guard<std::mutex> lock{mutex_};
    if (power_lost_) return util::IoResult::failure(EIO);
    unsynced_.erase(path.string());
    return base_.remove(path);
}

util::IoResult FaultIo::fsync_path(const std::filesystem::path& path, bool directory) {
    std::lock_guard<std::mutex> lock{mutex_};
    if (power_lost_) return util::IoResult::failure(EIO);
    ++fsyncs_;
    if (plan_.fail_fsync_at != 0 && fsyncs_ >= plan_.fail_fsync_at) {
        ++faults_;
        return util::IoResult::failure(EIO);
    }
    const util::IoResult result = base_.fsync_path(path, directory);
    if (result && !directory) unsynced_.erase(path.string());
    return result;
}

void FaultIo::cut_power_locked() {
    power_lost_ = true;
    for (auto& [fd, state] : open_) {
        (void)base_.truncate(fd, state.durable);
        state.size = state.durable;
    }
    for (const auto& [path, durable] : unsynced_) {
        std::error_code ec;
        if (file_size_or_zero(path) > durable) {
            std::filesystem::resize_file(path, durable, ec);
        }
    }
    unsynced_.clear();
}

void FaultIo::flip_bit_in(const std::filesystem::path& path) {
    const std::uint64_t size = file_size_or_zero(path);
    if (size == 0) return;
    const std::uint64_t offset = next_u64(flip_rng_state_) % size;
    const int bit = static_cast<int>(next_u64(flip_rng_state_) % 8);
    std::fstream f{path, std::ios::in | std::ios::out | std::ios::binary};
    if (!f) return;
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    if (!f.get(byte)) return;
    byte = static_cast<char>(byte ^ (1 << bit));
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(byte);
}

std::uint64_t FaultIo::writes_attempted() const {
    std::lock_guard<std::mutex> lock{mutex_};
    return writes_;
}

std::uint64_t FaultIo::fsyncs_attempted() const {
    std::lock_guard<std::mutex> lock{mutex_};
    return fsyncs_;
}

std::uint64_t FaultIo::renames_done() const {
    std::lock_guard<std::mutex> lock{mutex_};
    return renames_;
}

std::uint64_t FaultIo::faults_injected() const {
    std::lock_guard<std::mutex> lock{mutex_};
    return faults_;
}

bool FaultIo::power_lost() const {
    std::lock_guard<std::mutex> lock{mutex_};
    return power_lost_;
}

}  // namespace spinscope::faults
