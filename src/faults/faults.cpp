#include "faults/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace spinscope::faults {

namespace {

/// NaN is a configuration bug, not a degenerate probability: reject loudly.
double checked_probability(double p, const char* name) {
    if (std::isnan(p)) {
        throw std::invalid_argument(std::string{"faults: "} + name + " is NaN");
    }
    return std::clamp(p, 0.0, 1.0);
}

}  // namespace

void FaultPlan::validate() {
    burst_loss.p_good_to_bad =
        checked_probability(burst_loss.p_good_to_bad, "burst_loss.p_good_to_bad");
    burst_loss.p_bad_to_good =
        checked_probability(burst_loss.p_bad_to_good, "burst_loss.p_bad_to_good");
    burst_loss.loss_good = checked_probability(burst_loss.loss_good, "burst_loss.loss_good");
    burst_loss.loss_bad = checked_probability(burst_loss.loss_bad, "burst_loss.loss_bad");
    duplicate_probability =
        checked_probability(duplicate_probability, "duplicate_probability");
    for (const auto& window : blackholes) {
        if (window.end < window.start) {
            throw std::invalid_argument("faults: blackhole window ends before it starts");
        }
    }
    for (const auto& spike : delay_spikes) {
        if (spike.extra.is_negative()) {
            throw std::invalid_argument("faults: delay spike with negative extra delay");
        }
    }
}

FaultInjector::FaultInjector(FaultPlan plan, util::Rng rng)
    : plan_{std::move(plan)}, rng_{rng} {
    plan_.validate();
    // Spikes fire in time order regardless of declaration order.
    std::sort(plan_.delay_spikes.begin(), plan_.delay_spikes.end(),
              [](const DelaySpike& a, const DelaySpike& b) { return a.at < b.at; });
}

FaultInjector::Verdict FaultInjector::on_send(TimePoint now) {
    Verdict verdict;

    // Blackhole windows dominate: a dead link drops regardless of the
    // channel state, and skipping the other draws here would make loss
    // patterns after the window depend on its placement — so the chain below
    // still advances (state continuity), only the delivery decision is
    // overridden at the end.
    bool blackholed = false;
    for (const auto& window : plan_.blackholes) {
        if (window.start <= now && now < window.end) {
            blackholed = true;
            break;
        }
    }

    if (plan_.burst_loss.enabled) {
        // Transition, then emit — a freshly entered burst already loses.
        if (in_bad_state_) {
            if (rng_.chance(plan_.burst_loss.p_bad_to_good)) in_bad_state_ = false;
        } else if (rng_.chance(plan_.burst_loss.p_good_to_bad)) {
            in_bad_state_ = true;
            ++stats_.burst_entries;
        }
        const double p = in_bad_state_ ? plan_.burst_loss.loss_bad : plan_.burst_loss.loss_good;
        if (rng_.chance(p)) {
            verdict.drop = true;
            ++stats_.burst_dropped;
        }
    }

    if (!verdict.drop && next_spike_ < plan_.delay_spikes.size() &&
        plan_.delay_spikes[next_spike_].at <= now) {
        verdict.extra_delay = plan_.delay_spikes[next_spike_].extra;
        ++next_spike_;
        ++stats_.delay_spiked;
    }

    if (!verdict.drop && plan_.duplicate_probability > 0.0 &&
        rng_.chance(plan_.duplicate_probability)) {
        verdict.duplicate = true;
        ++stats_.duplicated;
    }

    if (blackholed) {
        if (verdict.drop) {
            --stats_.burst_dropped;  // reclassify: the outage is the cause
        }
        verdict.drop = true;
        verdict.blackholed = true;
        verdict.duplicate = false;
        ++stats_.blackhole_dropped;
    }
    return verdict;
}

}  // namespace spinscope::faults
