// spinscope/faults/faults.hpp
//
// Adversarial fault model for the measurement pipeline.
//
// The paper's scanner survived the real Internet: bursty loss, stalled
// handshakes, mid-connection blackholes and plainly misbehaving servers.
// RFC 9312 §4 stresses that spin-signal quality degrades exactly under such
// pathologies, so a faithful §5 accuracy reproduction needs them injectable
// and measurable. This module defines
//
//   * FaultPlan     — declarative per-link network faults: Gilbert–Elliott
//                     two-state burst loss (opt-in replacement for the
//                     i.i.d. model), scheduled blackhole windows (link
//                     flaps), one-shot delay spikes and duplicate delivery;
//   * FaultInjector — the per-link runtime that executes a plan with its own
//                     deterministic RNG stream, so an attached-but-empty
//                     plan consumes no randomness and perturbs nothing;
//   * ServerFaultMode / ServerFaultProfile — the hostile-server taxonomy the
//                     web population assigns to hosts and the scanner
//                     exercises (handshake stall, mid-transfer abort,
//                     garbage payloads, never-ACK).
//
// netsim::Link owns a FaultInjector when a plan is attached; web::Population
// hands out ServerFaultProfiles; scanner::Campaign wires both together.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace spinscope::faults {

using util::Duration;
using util::TimePoint;

/// Gilbert–Elliott two-state burst-loss channel. The chain starts in the
/// good state and transitions once per datagram *before* the loss draw:
///
///     good --p_good_to_bad--> bad        bad --p_bad_to_good--> good
///
/// Loss is Bernoulli(loss_good) in good and Bernoulli(loss_bad) in bad.
/// Stationary loss rate is pi_bad * loss_bad + pi_good * loss_good with
/// pi_bad = p_gb / (p_gb + p_bg); the mean sojourn in the bad state (and so
/// the mean loss-burst scale) is 1 / p_bad_to_good datagrams.
struct GilbertElliottConfig {
    bool enabled = false;
    double p_good_to_bad = 0.0005;  ///< per-datagram entry into the burst state
    double p_bad_to_good = 0.25;    ///< per-datagram burst exit (mean burst 4)
    double loss_good = 0.0;         ///< residual loss outside bursts
    double loss_bad = 0.6;          ///< loss inside bursts
};

/// Total outage of the link: every datagram handed to it during
/// [start, end) is dropped. Models link flaps and mid-connection blackholes.
struct BlackholeWindow {
    TimePoint start;
    TimePoint end;  ///< exclusive
};

/// One-shot latency excursion: the first datagram sent at or after `at`
/// receives `extra` additional one-way delay (bufferbloat spike, reroute).
/// Each spike fires exactly once.
struct DelaySpike {
    TimePoint at;
    Duration extra;
};

/// Declarative fault description attachable to one netsim::Link direction.
/// An empty (default-constructed) plan is an explicit no-op: the injector
/// draws no randomness for it, so attaching one is byte-identical to
/// attaching none.
struct FaultPlan {
    GilbertElliottConfig burst_loss{};
    std::vector<BlackholeWindow> blackholes;  ///< need not be sorted
    std::vector<DelaySpike> delay_spikes;     ///< consumed in time order
    /// Per-datagram probability of delivering a second copy.
    double duplicate_probability = 0.0;

    [[nodiscard]] bool empty() const noexcept {
        return !burst_loss.enabled && blackholes.empty() && delay_spikes.empty() &&
               duplicate_probability <= 0.0;
    }

    /// Throws std::invalid_argument on NaN knobs or inverted windows; clamps
    /// finite probabilities into [0, 1]. Mirrors netsim's LinkConfig rules.
    void validate();
};

/// What the injector did, for LinkStats/telemetry aggregation.
struct FaultStats {
    std::uint64_t burst_dropped = 0;      ///< Gilbert–Elliott losses
    std::uint64_t blackhole_dropped = 0;  ///< losses inside outage windows
    std::uint64_t delay_spiked = 0;       ///< datagrams hit by a spike
    std::uint64_t duplicated = 0;         ///< extra copies injected
    std::uint64_t burst_entries = 0;      ///< good->bad transitions taken
};

/// Per-link runtime state of a FaultPlan. One instance per link direction;
/// all randomness comes from the injector's own RNG stream so the host
/// link's draws (loss, jitter, reordering) are untouched.
class FaultInjector {
public:
    /// `plan` is copied; `rng` should be a stream independent of the link's.
    FaultInjector(FaultPlan plan, util::Rng rng);

    /// Verdict for one datagram handed to the link at time `now`.
    struct Verdict {
        bool drop = false;
        bool blackholed = false;       ///< drop cause was an outage window
        Duration extra_delay{};        ///< additive one-way delay
        bool duplicate = false;        ///< deliver a second copy
    };

    /// Advances the fault state machine and classifies one send. Draws RNG
    /// only for features the plan enables, so an empty plan is draw-free.
    [[nodiscard]] Verdict on_send(TimePoint now);

    [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
    /// True while the Gilbert–Elliott chain sits in the bad (burst) state.
    [[nodiscard]] bool in_burst() const noexcept { return in_bad_state_; }

private:
    FaultPlan plan_;
    util::Rng rng_;
    FaultStats stats_;
    bool in_bad_state_ = false;
    std::size_t next_spike_ = 0;
};

// --- hostile servers --------------------------------------------------------

/// How a misbehaving server fails its clients (scanner §3.3 reality check:
/// classifying a host needs every one of these to terminate in a defined
/// ConnectionOutcome, never a crash or silent hang).
enum class ServerFaultMode : std::uint8_t {
    none,                ///< healthy server
    handshake_stall,     ///< receives Initials, never answers
    mid_transfer_abort,  ///< closes with an error after response headers
    garbage_payload,     ///< emits undecodable 1-RTT frame payloads
    never_ack,           ///< completes the handshake, then goes deaf in 1-RTT
};

/// Number of ServerFaultMode values (for mode-indexed tables).
inline constexpr std::size_t kServerFaultModeCount = 5;

[[nodiscard]] constexpr const char* to_cstring(ServerFaultMode m) noexcept {
    switch (m) {
        case ServerFaultMode::none: return "none";
        case ServerFaultMode::handshake_stall: return "handshake_stall";
        case ServerFaultMode::mid_transfer_abort: return "mid_transfer_abort";
        case ServerFaultMode::garbage_payload: return "garbage_payload";
        case ServerFaultMode::never_ack: return "never_ack";
    }
    return "?";
}

/// A host's failure disposition. `per_attempt_probability` < 1 models
/// transient faults (overload, flapping middlebox) that a retry can dodge;
/// 1.0 models a persistently broken host.
struct ServerFaultProfile {
    ServerFaultMode mode = ServerFaultMode::none;
    double per_attempt_probability = 0.0;

    [[nodiscard]] bool healthy() const noexcept {
        return mode == ServerFaultMode::none || per_attempt_probability <= 0.0;
    }
};

}  // namespace spinscope::faults
