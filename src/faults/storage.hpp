// spinscope/faults/storage.hpp
//
// Deterministic storage-fault injection (DESIGN.md §16): FaultIo wraps a real
// util::Io and makes the disk lie on cue. A StorageFaultPlan is a small
// grammar of "when does it lie, and how" — fail the Nth write, run out of
// space after K bytes, refuse every fsync from the Nth on, cut power after
// the Nth write, flip a bit in the Nth renamed file. Every plan is seeded and
// replayable, so the diskchaos sweep can enumerate fault × injection-point
// combinations and assert the same campaign-level outcome every run: either
// byte-identical output, or a loud attributed refusal that scrub + resume
// recovers from. No wall clock, no real entropy.

#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>

#include "util/io.hpp"

namespace spinscope::faults {

/// Declarative fault plan. Counters are 1-based ordinals over the operations
/// FaultIo observes; 0 disables that fault. Plans compose — a sweep usually
/// enables exactly one knob per run so failures stay attributable.
struct StorageFaultPlan {
    /// Fail the Nth write() outright with `write_error`; no bytes persist.
    std::uint64_t fail_write_at = 0;
    /// On the Nth write(), persist only the first half of the buffer, then
    /// report `write_error` — the classic torn/short write.
    std::uint64_t short_write_at = 0;
    /// errno reported by fail_write_at / short_write_at. ENOSPC models a full
    /// disk; EIO models a dying one.
    int write_error = EIO;
    /// After this many bytes have been persisted (across all files), every
    /// further write persists only what still "fits" and reports ENOSPC —
    /// a disk that fills mid-campaign and stays full.
    std::uint64_t enospc_after_bytes = 0;
    /// The Nth and every subsequent fsync()/fsync_path() fails with EIO.
    /// Sticky on purpose: a device that cannot flush does not recover because
    /// the caller asked twice.
    std::uint64_t fail_fsync_at = 0;
    /// Immediately after the Nth successful write, simulate a power cut:
    /// every file loses all bytes written since its last successful fsync,
    /// and all subsequent operations fail with EIO (the machine is "off").
    /// close() still succeeds so RAII cleanup stays quiet.
    std::uint64_t power_loss_at_write = 0;
    /// After the Nth rename(), flip one seeded-random bit in the renamed
    /// file. The rename reports success — this is post-hoc media corruption
    /// (the lie scrub exists to catch), not an I/O error.
    std::uint64_t flip_bit_at_rename = 0;
    /// Seed for the bit-flip position stream.
    std::uint64_t seed = 0x5eed;

    /// Throws std::invalid_argument on a contradictory plan.
    void validate() const;
};

/// Io decorator applying a StorageFaultPlan on top of a base Io. Thread-safe:
/// one internal mutex serializes operation accounting, so an N-thread
/// campaign sees one global operation ordering (which ordinal fires may vary
/// across runs with threads > 1; the diskchaos sweep's invariant — identical
/// output or attributed refusal — holds regardless of which write loses).
///
/// Power-loss bookkeeping tracks, per file, the durable length (bytes covered
/// by the last successful fsync). At the cut, open files are truncated back
/// to their durable length via the base Io, and files written-then-closed
/// without an fsync are truncated on disk too — modelling page-cache loss.
class FaultIo final : public util::Io {
public:
    FaultIo(util::Io& base, StorageFaultPlan plan);

    [[nodiscard]] int open_write(const std::filesystem::path& path, OpenMode mode,
                                 util::IoResult& result) override;
    [[nodiscard]] util::IoResult write(int file, std::string_view bytes) override;
    [[nodiscard]] util::IoResult fsync(int file) override;
    [[nodiscard]] util::IoResult truncate(int file, std::uint64_t size) override;
    util::IoResult close(int file) override;
    [[nodiscard]] util::IoResult rename(const std::filesystem::path& from,
                                        const std::filesystem::path& to) override;
    util::IoResult remove(const std::filesystem::path& path) override;
    [[nodiscard]] util::IoResult fsync_path(const std::filesystem::path& path,
                                            bool directory) override;

    /// Introspection for sweep assertions.
    [[nodiscard]] std::uint64_t writes_attempted() const;
    [[nodiscard]] std::uint64_t fsyncs_attempted() const;
    [[nodiscard]] std::uint64_t renames_done() const;
    [[nodiscard]] std::uint64_t faults_injected() const;
    [[nodiscard]] bool power_lost() const;

private:
    struct OpenFile {
        std::filesystem::path path;
        std::uint64_t size = 0;     ///< bytes written through this handle's view
        std::uint64_t durable = 0;  ///< bytes covered by the last good fsync
    };

    util::IoResult write_locked(int file, std::string_view bytes);
    void cut_power_locked();
    void flip_bit_in(const std::filesystem::path& path);

    util::Io& base_;
    const StorageFaultPlan plan_;
    mutable std::mutex mutex_;
    std::uint64_t writes_ = 0;
    std::uint64_t fsyncs_ = 0;
    std::uint64_t renames_ = 0;
    std::uint64_t faults_ = 0;
    std::uint64_t bytes_written_ = 0;
    std::uint64_t flip_rng_state_;
    bool power_lost_ = false;
    std::map<int, OpenFile> open_;
    /// Closed-but-never-fsynced files: path → durable length, truncated to
    /// that length if power is cut before an fsync_path covers them.
    std::map<std::string, std::uint64_t> unsynced_;
};

}  // namespace spinscope::faults
