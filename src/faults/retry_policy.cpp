#include "faults/retry_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spinscope::faults {

void RetryPolicy::validate() const {
    if (max_attempts < 1) {
        throw std::invalid_argument("retry: max_attempts must be >= 1");
    }
    if (std::isnan(multiplier) || multiplier < 1.0) {
        throw std::invalid_argument("retry: multiplier must be >= 1");
    }
    if (initial_backoff.is_negative() || max_backoff.is_negative()) {
        throw std::invalid_argument("retry: backoff durations must be >= 0");
    }
}

util::Rng RetryPolicy::backoff_stream(std::uint64_t campaign_seed,
                                      std::uint64_t domain_id) noexcept {
    // The 0xb0ff tweak separates the backoff stream from the domain's
    // attempt streams; the constant is part of the golden-trace contract.
    return util::Rng{util::derive_stream_seed(campaign_seed, domain_id) ^ 0xb0ffULL};
}

util::Rng RetryPolicy::restart_stream(std::uint64_t campaign_seed,
                                      std::uint64_t chunk_index) noexcept {
    // 0x5afe ("safe") separates supervisor restart jitter from both the
    // backoff streams (0xb0ff) and the domains' attempt streams.
    return util::Rng{util::derive_stream_seed(campaign_seed, chunk_index) ^ 0x5afeULL};
}

Duration RetryPolicy::backoff_delay(int retry_index, util::Rng& rng) const {
    validate();
    const int exponent = std::max(0, retry_index - 1);
    // Grow in double space and cap before converting back, so large retry
    // counts saturate at max_backoff instead of overflowing nanoseconds.
    const double grown_ms =
        initial_backoff.as_ms() * std::pow(multiplier, static_cast<double>(exponent));
    const double cap_ms = std::min(grown_ms, max_backoff.as_ms());
    if (cap_ms <= 0.0) return Duration::zero();
    const double chosen_ms = full_jitter ? rng.uniform_double(0.0, cap_ms) : cap_ms;
    return Duration::from_ms(chosen_ms);
}

}  // namespace spinscope::faults
