// spinscope/faults/retry_policy.hpp
//
// Campaign retry policy: bounded attempts with capped exponential backoff
// and full jitter, in simulated time.
//
// "A First Look at QUIC in the Wild" re-probed failed hosts before
// classifying them as non-QUIC; the paper's scanner inherits that practice.
// The policy is deterministic given an RNG stream, so identically seeded
// campaigns schedule identical backoffs.

#pragma once

#include "util/rng.hpp"
#include "util/time.hpp"

namespace spinscope::faults {

using util::Duration;

/// Retry schedule for one target. The default (max_attempts = 1) disables
/// retrying entirely and is byte-identical to the pre-retry scanner.
struct RetryPolicy {
    /// Total connection attempts per hop, including the first (>= 1).
    int max_attempts = 1;
    /// Backoff before retry k (1-based) is drawn from
    /// [0, min(max_backoff, initial_backoff * multiplier^(k-1))] when
    /// full_jitter is set, or is exactly that cap otherwise.
    Duration initial_backoff = Duration::millis(200);
    double multiplier = 2.0;
    Duration max_backoff = Duration::seconds(5);
    bool full_jitter = true;

    /// True when `outcome_ok` is false and attempt `attempt` (0-based) was
    /// not the last one allowed.
    [[nodiscard]] bool should_retry(int attempt, bool outcome_ok) const noexcept {
        return !outcome_ok && attempt + 1 < max_attempts;
    }

    /// Simulated-time backoff before retry `retry_index` (1-based: the wait
    /// preceding the second attempt is retry_index 1). Deterministic in
    /// (policy, rng state).
    [[nodiscard]] Duration backoff_delay(int retry_index, util::Rng& rng) const;

    /// The backoff-jitter RNG for one domain of one campaign: an independent
    /// sub-stream keyed by (campaign seed, domain id) via
    /// util::derive_stream_seed. Part of the sharded determinism contract
    /// (DESIGN.md §9): retry schedules are a pure per-domain function, never
    /// a function of shard assignment, worker thread or scan order, and a
    /// policy that never retries never draws from the stream at all.
    [[nodiscard]] static util::Rng backoff_stream(std::uint64_t campaign_seed,
                                                  std::uint64_t domain_id) noexcept;

    /// The restart-jitter RNG for one work chunk of one campaign: the
    /// supervisor (scanner::run_supervised) draws crashed-worker restart
    /// backoffs from a sub-stream keyed by (campaign seed, chunk index), so
    /// restart schedules never perturb any domain's scan stream.
    [[nodiscard]] static util::Rng restart_stream(std::uint64_t campaign_seed,
                                                  std::uint64_t chunk_index) noexcept;

    /// Throws std::invalid_argument on nonsensical knobs (NaN or < 1
    /// multiplier, negative durations, max_attempts < 1).
    void validate() const;
};

}  // namespace spinscope::faults
