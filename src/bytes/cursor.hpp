// spinscope/bytes/cursor.hpp
//
// Sequential byte cursors over std::span, plus the RFC 9000 §16
// variable-length integer codec every wire format in this library uses.
// Relocated here from quic/varint.hpp so the cursors can write straight
// into pooled bytes::Buffer storage without a dependency cycle; quic/
// re-exports the old names.
//
// Varint wire format: the two most significant bits of the first byte
// select the encoded length (1, 2, 4 or 8 bytes); the remaining bits carry
// the value big-endian. Maximum representable value is 2^62 - 1.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bytes/bytes.hpp"

namespace spinscope::bytes {

/// Largest value a QUIC varint can carry.
inline constexpr std::uint64_t kVarintMax = (1ULL << 62) - 1;

/// Number of bytes encode_varint() will use for `value` (1, 2, 4 or 8).
/// Values above kVarintMax are not encodable; callers must check first.
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t value) noexcept {
    if (value < (1ULL << 6)) return 1;
    if (value < (1ULL << 14)) return 2;
    if (value < (1ULL << 30)) return 4;
    return 8;
}

/// Appends the minimal-length varint encoding of `value` (<= kVarintMax).
void encode_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Decodes a varint from the front of `in`. Returns the value and the number
/// of bytes consumed, or nullopt if `in` is too short.
struct VarintDecode {
    std::uint64_t value;
    std::size_t consumed;
};
[[nodiscard]] std::optional<VarintDecode> decode_varint(ConstByteSpan in) noexcept;

/// Sequential byte writer appending to a growable byte sink — an external
/// vector, a (pooled) Buffer, or an internally owned vector.
class ByteWriter {
public:
    ByteWriter() = default;
    explicit ByteWriter(std::vector<std::uint8_t>& out) : out_{&out} {}
    /// Appends into the buffer's storage in place (a pooled datagram is
    /// encoded without any intermediate vector).
    explicit ByteWriter(Buffer& out) : out_{&out.storage_} {}

    void u8(std::uint8_t v) { buffer().push_back(v); }
    /// Big-endian fixed-width writes (network byte order).
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /// Big-endian truncated write of the low `width` bytes (1..8) of `v`;
    /// used for packet-number encoding.
    void be_truncated(std::uint64_t v, std::size_t width);
    void varint(std::uint64_t v) { encode_varint(buffer(), v); }
    void bytes(ConstByteSpan data);
    /// Appends `n` copies of `fill` (PADDING frames).
    void fill(std::size_t n, std::uint8_t fill);

    /// Bytes in the target sink so far (not just bytes this writer wrote).
    [[nodiscard]] std::size_t size() const noexcept {
        return out_ != nullptr ? out_->size() : owned_.size();
    }

    [[nodiscard]] std::vector<std::uint8_t>& buffer() noexcept {
        return out_ != nullptr ? *out_ : owned_;
    }
    [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(owned_); }

private:
    std::vector<std::uint8_t>* out_ = nullptr;
    std::vector<std::uint8_t> owned_;
};

/// Sequential bounds-checked byte reader over a fixed span. All accessors
/// return nullopt past the end instead of throwing; wire input is untrusted.
class ByteReader {
public:
    explicit ByteReader(ConstByteSpan data) noexcept : data_{data} {}

    [[nodiscard]] std::optional<std::uint8_t> u8() noexcept;
    [[nodiscard]] std::optional<std::uint16_t> u16() noexcept;
    [[nodiscard]] std::optional<std::uint32_t> u32() noexcept;
    [[nodiscard]] std::optional<std::uint64_t> u64() noexcept;
    /// Big-endian read of `width` bytes (1..8) into the low bits.
    [[nodiscard]] std::optional<std::uint64_t> be_truncated(std::size_t width) noexcept;
    [[nodiscard]] std::optional<std::uint64_t> varint() noexcept;
    /// Like varint(), but rejects non-minimal ("overlong") encodings —
    /// required for frame types (RFC 9000 §12.4). Does not advance on
    /// failure.
    [[nodiscard]] std::optional<std::uint64_t> varint_minimal() noexcept;
    /// Returns a view of the next `n` bytes and advances, or nullopt.
    [[nodiscard]] std::optional<ConstByteSpan> bytes(std::size_t n) noexcept;

    [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
    [[nodiscard]] std::size_t consumed() const noexcept { return pos_; }
    [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
    /// Remaining bytes as a view without advancing.
    [[nodiscard]] ConstByteSpan peek_rest() const noexcept { return data_.subspan(pos_); }

private:
    ConstByteSpan data_;
    std::size_t pos_ = 0;
};

}  // namespace spinscope::bytes
