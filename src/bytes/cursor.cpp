#include "bytes/cursor.hpp"

#include <cassert>

namespace spinscope::bytes {

void encode_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
    assert(value <= kVarintMax);
    const std::size_t width = varint_size(value);
    switch (width) {
        case 1:
            out.push_back(static_cast<std::uint8_t>(value));
            break;
        case 2:
            out.push_back(static_cast<std::uint8_t>(0x40 | (value >> 8)));
            out.push_back(static_cast<std::uint8_t>(value & 0xff));
            break;
        case 4:
            out.push_back(static_cast<std::uint8_t>(0x80 | (value >> 24)));
            out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xff));
            out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xff));
            out.push_back(static_cast<std::uint8_t>(value & 0xff));
            break;
        default:
            out.push_back(static_cast<std::uint8_t>(0xc0 | (value >> 56)));
            for (int shift = 48; shift >= 0; shift -= 8) {
                out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
            }
            break;
    }
}

std::optional<VarintDecode> decode_varint(ConstByteSpan in) noexcept {
    if (in.empty()) return std::nullopt;
    const std::size_t width = static_cast<std::size_t>(1) << (in[0] >> 6);
    if (in.size() < width) return std::nullopt;
    std::uint64_t value = in[0] & 0x3f;
    for (std::size_t i = 1; i < width; ++i) value = (value << 8) | in[i];
    return VarintDecode{value, width};
}

void ByteWriter::u16(std::uint16_t v) {
    auto& b = buffer();
    b.push_back(static_cast<std::uint8_t>(v >> 8));
    b.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::u32(std::uint32_t v) {
    auto& b = buffer();
    for (int shift = 24; shift >= 0; shift -= 8) {
        b.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
    }
}

void ByteWriter::u64(std::uint64_t v) {
    auto& b = buffer();
    for (int shift = 56; shift >= 0; shift -= 8) {
        b.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
    }
}

void ByteWriter::be_truncated(std::uint64_t v, std::size_t width) {
    assert(width >= 1 && width <= 8);
    auto& b = buffer();
    for (std::size_t i = width; i-- > 0;) {
        b.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
}

void ByteWriter::bytes(ConstByteSpan data) {
    auto& b = buffer();
    b.insert(b.end(), data.begin(), data.end());
}

void ByteWriter::fill(std::size_t n, std::uint8_t fill) {
    auto& b = buffer();
    b.insert(b.end(), n, fill);
}

std::optional<std::uint8_t> ByteReader::u8() noexcept {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() noexcept {
    const auto v = be_truncated(2);
    if (!v) return std::nullopt;
    return static_cast<std::uint16_t>(*v);
}

std::optional<std::uint32_t> ByteReader::u32() noexcept {
    const auto v = be_truncated(4);
    if (!v) return std::nullopt;
    return static_cast<std::uint32_t>(*v);
}

std::optional<std::uint64_t> ByteReader::u64() noexcept { return be_truncated(8); }

std::optional<std::uint64_t> ByteReader::be_truncated(std::size_t width) noexcept {
    if (width < 1 || width > 8 || remaining() < width) return std::nullopt;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < width; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += width;
    return v;
}

std::optional<std::uint64_t> ByteReader::varint() noexcept {
    const auto decoded = decode_varint(data_.subspan(pos_));
    if (!decoded) return std::nullopt;
    pos_ += decoded->consumed;
    return decoded->value;
}

std::optional<std::uint64_t> ByteReader::varint_minimal() noexcept {
    const auto decoded = decode_varint(data_.subspan(pos_));
    if (!decoded || decoded->consumed != varint_size(decoded->value)) return std::nullopt;
    pos_ += decoded->consumed;
    return decoded->value;
}

std::optional<ConstByteSpan> ByteReader::bytes(std::size_t n) noexcept {
    if (remaining() < n) return std::nullopt;
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
}

}  // namespace spinscope::bytes
