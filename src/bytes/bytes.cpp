#include "bytes/bytes.hpp"

namespace spinscope::bytes {

Buffer Buffer::clone() const {
    if (pool_ == nullptr) return copy_of(span());
    Buffer copy = pool_->acquire(size());
    copy.append(span());
    return copy;
}

std::vector<std::uint8_t> Buffer::detach() && {
    if (pool_ != nullptr) {
        pool_->forget();
        pool_ = nullptr;
    }
    return std::move(storage_);
}

Buffer BufferPool::acquire(std::size_t size_hint) {
    ++stats_.acquires;
    Buffer buffer;
    if (!free_.empty()) {
        ++stats_.hits;
        buffer.storage_ = std::move(free_.back());
        free_.pop_back();
        buffer.storage_.clear();
    } else {
        ++stats_.misses;
    }
    if (size_hint > 0) buffer.storage_.reserve(size_hint);
    buffer.pool_ = this;
    ++stats_.outstanding;
    if (stats_.outstanding > stats_.outstanding_hwm) {
        stats_.outstanding_hwm = stats_.outstanding;
    }
    return buffer;
}

void BufferPool::recycle(std::vector<std::uint8_t>&& storage) noexcept {
    --stats_.outstanding;
    if (free_.size() >= max_free_) {
        ++stats_.trimmed;
        return;  // storage freed by the caller's moved-from destructor
    }
    ++stats_.recycled;
    free_.push_back(std::move(storage));
}

void BufferPool::forget() noexcept { --stats_.outstanding; }

void BufferPool::publish_metrics(telemetry::MetricsRegistry& registry,
                                 const std::string& prefix) const {
    registry.counter(prefix + ".acquires").add(stats_.acquires);
    registry.counter(prefix + ".hits").add(stats_.hits);
    registry.counter(prefix + ".misses").add(stats_.misses);
    registry.counter(prefix + ".recycled").add(stats_.recycled);
    registry.counter(prefix + ".trimmed").add(stats_.trimmed);
    registry.gauge(prefix + ".outstanding_hwm")
        .set_max(static_cast<double>(stats_.outstanding_hwm));
}

}  // namespace spinscope::bytes
