// spinscope/bytes/bytes.hpp
//
// Pooled byte storage for the packet hot path.
//
// The scan pipeline used to copy every datagram as a fresh
// std::vector<std::uint8_t> at each layer boundary (encode -> link ->
// deliver -> decode). Buffer is a move-only byte container whose backing
// storage is recycled through a BufferPool free list, so a campaign's
// steady state allocates nothing per packet: a datagram's storage is
// acquired at encode time, moved (never copied) through the simulator's
// event queue, exposed to passive taps as a ConstByteSpan view, and
// returned to the pool when the delivery event destroys it.
//
// Thread affinity: BufferPool is deliberately unsynchronized and
// chunk-private, exactly like the sharded campaign's per-chunk
// MetricsRegistry (DESIGN.md §9-10). A pool must outlive every Buffer it
// issued; buffers hold a raw back-pointer for recycling.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"

namespace spinscope::bytes {

/// Read-only view of raw bytes (what taps and decoders consume).
using ConstByteSpan = std::span<const std::uint8_t>;
/// Mutable view of raw bytes.
using ByteSpan = std::span<std::uint8_t>;

class BufferPool;

/// Move-only byte buffer, optionally backed by a BufferPool.
///
/// API mirrors the std::vector subset the packet path uses, so a Buffer
/// drops in where netsim::Datagram used to be a vector. Destruction (or
/// assignment-over) recycles pooled storage back to the issuing pool;
/// unpooled buffers simply free. The issuing pool must outlive the buffer.
class Buffer {
public:
    Buffer() noexcept = default;

    /// Unpooled buffer of `n` bytes, each set to `fill` (vector-compatible
    /// shape for tests and cold paths).
    explicit Buffer(std::size_t n, std::uint8_t fill = 0) : storage_(n, fill) {}

    /// Adopts an existing vector's storage (no copy).
    explicit Buffer(std::vector<std::uint8_t> storage) noexcept
        : storage_{std::move(storage)} {}

    /// Unpooled deep copy of `data`.
    [[nodiscard]] static Buffer copy_of(ConstByteSpan data) {
        return Buffer{std::vector<std::uint8_t>(data.begin(), data.end())};
    }

    ~Buffer() { release(); }

    Buffer(Buffer&& other) noexcept
        : storage_{std::move(other.storage_)}, pool_{std::exchange(other.pool_, nullptr)} {
        other.storage_.clear();
    }

    Buffer& operator=(Buffer&& other) noexcept {
        if (this != &other) {
            release();
            storage_ = std::move(other.storage_);
            other.storage_.clear();
            pool_ = std::exchange(other.pool_, nullptr);
        }
        return *this;
    }

    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;

    [[nodiscard]] const std::uint8_t* data() const noexcept { return storage_.data(); }
    [[nodiscard]] std::uint8_t* data() noexcept { return storage_.data(); }
    [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
    [[nodiscard]] bool empty() const noexcept { return storage_.empty(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return storage_.capacity(); }

    [[nodiscard]] std::uint8_t operator[](std::size_t i) const noexcept { return storage_[i]; }
    [[nodiscard]] std::uint8_t& operator[](std::size_t i) noexcept { return storage_[i]; }

    [[nodiscard]] const std::uint8_t* begin() const noexcept { return data(); }
    [[nodiscard]] const std::uint8_t* end() const noexcept { return data() + size(); }
    [[nodiscard]] std::uint8_t* begin() noexcept { return data(); }
    [[nodiscard]] std::uint8_t* end() noexcept { return data() + size(); }

    void clear() noexcept { storage_.clear(); }
    void resize(std::size_t n, std::uint8_t fill = 0) { storage_.resize(n, fill); }
    void reserve(std::size_t n) { storage_.reserve(n); }
    void push_back(std::uint8_t b) { storage_.push_back(b); }
    void append(ConstByteSpan data) {
        storage_.insert(storage_.end(), data.begin(), data.end());
    }

    [[nodiscard]] ConstByteSpan span() const noexcept { return {storage_}; }
    [[nodiscard]] ByteSpan writable_span() noexcept { return {storage_}; }
    operator ConstByteSpan() const noexcept { return span(); }  // NOLINT

    /// Deep copy drawing storage from the same pool (or unpooled when this
    /// buffer is unpooled) — how the fault injector duplicates datagrams.
    [[nodiscard]] Buffer clone() const;

    /// Surrenders the storage as a plain vector; the bytes leave the pool's
    /// orbit (its outstanding count drops, nothing is recycled later).
    [[nodiscard]] std::vector<std::uint8_t> detach() &&;

    /// Issuing pool, or nullptr for unpooled buffers.
    [[nodiscard]] BufferPool* pool() const noexcept { return pool_; }

private:
    friend class BufferPool;
    friend class ByteWriter;

    void release() noexcept;

    std::vector<std::uint8_t> storage_;
    BufferPool* pool_ = nullptr;
};

/// Recycling free list of byte-vector storage.
///
/// acquire() pops recycled storage when available (a hit) and allocates
/// otherwise (a miss); a returning Buffer pushes its storage back unless
/// the free list is at capacity (then the storage is freed — trimmed).
/// Single-threaded by design: the sharded campaign gives each work chunk
/// its own pool on the worker that runs it, mirroring the chunk-private
/// MetricsRegistry, so no synchronization is needed and determinism is
/// untouched (the pool only recycles capacity, never bytes: acquire()
/// always returns an empty-but-reserved buffer).
class BufferPool {
public:
    /// Free-list capacity. A campaign attempt keeps only a handful of
    /// datagrams in flight; 64 covers bursts without hoarding.
    static constexpr std::size_t kDefaultMaxFree = 64;

    explicit BufferPool(std::size_t max_free = kDefaultMaxFree) : max_free_{max_free} {}

    ~BufferPool() = default;
    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /// Returns an empty Buffer with at least `size_hint` bytes reserved,
    /// reusing recycled storage when available.
    [[nodiscard]] Buffer acquire(std::size_t size_hint = 0);

    struct Stats {
        std::uint64_t acquires = 0;  ///< total acquire() calls
        std::uint64_t hits = 0;      ///< served from the free list
        std::uint64_t misses = 0;    ///< needed a fresh allocation
        std::uint64_t recycled = 0;  ///< storages returned to the free list
        std::uint64_t trimmed = 0;   ///< returns dropped because the list was full
        std::uint64_t outstanding = 0;       ///< pooled buffers currently alive
        std::uint64_t outstanding_hwm = 0;   ///< high-water mark of outstanding
    };
    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
    [[nodiscard]] std::size_t free_count() const noexcept { return free_.size(); }

    /// Adds this pool's stats into `registry` under `<prefix>.*`: counters
    /// acquires / hits / misses / recycled / trimmed (additive across
    /// chunk-registry merges) and an outstanding_hwm gauge (max-merged).
    /// These counters depend on chunk geometry (ScanOptions::chunk_domains
    /// bounds the reuse horizon), so telemetry::deterministic_csv excludes
    /// the `bytes.pool` prefix alongside the wall-clock metrics.
    void publish_metrics(telemetry::MetricsRegistry& registry,
                         const std::string& prefix = "bytes.pool") const;

private:
    friend class Buffer;

    void recycle(std::vector<std::uint8_t>&& storage) noexcept;
    void forget() noexcept;  // a pooled buffer detached or was emptied by move

    std::vector<std::vector<std::uint8_t>> free_;
    std::size_t max_free_;
    Stats stats_;
};

inline void Buffer::release() noexcept {
    if (pool_ != nullptr) {
        pool_->recycle(std::move(storage_));
        pool_ = nullptr;
    }
}

}  // namespace spinscope::bytes
