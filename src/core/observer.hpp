// spinscope/core/observer.hpp
//
// Passive spin-bit RTT measurement — the heart of the paper.
//
// An observer watching one direction of a QUIC flow sees the spin bit flip
// ("spin edges") once per round trip; the time between consecutive edges is
// an RTT estimate (paper §2.1). This module implements:
//
//  * batch measurement over a recorded packet sequence, in received order
//    ("R") or packet-number-sorted order ("S") — the paper's §5.1 method for
//    quantifying the impact of reordering;
//  * a streaming observer with the RFC 9312 robustness heuristics
//    (packet-number filtering, implausible-sample rejection) that the paper
//    calls out as untested at scale.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "quic/types.hpp"
#include "util/time.hpp"

namespace spinscope::core {

using util::Duration;
using util::TimePoint;

/// One observed 1-RTT packet: arrival time, packet number, spin value.
/// This is exactly the triple the paper extracts from qlog (§3.3).
struct SpinObservation {
    TimePoint time;
    quic::PacketNumber packet_number = 0;
    bool spin = false;
    /// Valid Edge Counter (VEC extension); 0 for standard traffic.
    std::uint8_t vec = 0;
};

/// Packet iteration order for batch measurement (paper §5.1 terminology).
enum class PacketOrder : std::uint8_t {
    received,  ///< "R": order of arrival, reordering included
    sorted,    ///< "S": sorted by packet number, reordering corrected
};

/// Result of a batch spin-RTT measurement over one connection.
struct SpinRttResult {
    /// Edge-to-edge intervals, milliseconds, in edge order.
    std::vector<double> samples_ms;
    std::size_t edge_count = 0;
    bool saw_zero = false;
    bool saw_one = false;

    /// The paper's §3.3 candidate criterion: both spin values observed.
    [[nodiscard]] bool spin_candidate() const noexcept { return saw_zero && saw_one; }
    [[nodiscard]] bool has_samples() const noexcept { return !samples_ms.empty(); }
    [[nodiscard]] double mean_ms() const noexcept;
    [[nodiscard]] double min_ms() const noexcept;
};

/// Computes spin RTT samples over a full packet record.
///
/// Edges are detected as changes of the spin value between consecutive
/// packets in the chosen order; each edge-to-edge interval yields one
/// sample. Duplicate packet numbers are skipped in sorted order.
[[nodiscard]] SpinRttResult measure_spin_rtt(std::span<const SpinObservation> packets,
                                             PacketOrder order);

/// Robustness heuristics for the streaming observer (RFC 9312 §4.2/4.3).
struct ObserverConfig {
    /// Only treat a value change as an edge if it appears on a packet with a
    /// higher packet number than the packet that set the current value.
    /// This is the RFC's reordering defence (needs PN visibility, i.e. an
    /// endpoint-side observer; a mid-network one cannot read PNs).
    bool packet_number_filter = false;
    /// Reject samples below this floor (static plausibility check).
    Duration min_plausible_rtt = Duration::zero();
    /// Reject samples smaller than `dynamic_reject_ratio` times the current
    /// smoothed spin RTT (0 disables). Accepted samples update the smoothed
    /// value with weight 1/8 (mirrors RFC 9002 smoothing).
    double dynamic_reject_ratio = 0.0;
    /// Valid Edge Counter mode (De Vaere et al. extension): treat a value
    /// change as an edge only if the packet carries VEC > 0, and record a
    /// sample only when the edge is fully validated (VEC == 3). Requires
    /// VEC-enabled endpoints; standard traffic yields no samples.
    bool require_vec = false;
};

/// Streaming spin observer: feed packets in arrival order, collect samples.
/// With a default config it reproduces measure_spin_rtt(..., received).
class SpinEdgeObserver {
public:
    explicit SpinEdgeObserver(ObserverConfig config = {}) : config_{config} {}

    /// Processes one observed packet.
    void on_packet(const SpinObservation& packet);

    [[nodiscard]] const SpinRttResult& result() const noexcept { return result_; }
    /// Samples rejected by the plausibility heuristics.
    [[nodiscard]] std::size_t rejected_samples() const noexcept { return rejected_; }
    /// Current smoothed spin RTT (ms); nullopt before the first sample.
    [[nodiscard]] std::optional<double> smoothed_ms() const noexcept;

private:
    ObserverConfig config_;
    SpinRttResult result_;
    bool have_value_ = false;
    bool current_value_ = false;
    quic::PacketNumber value_set_by_pn_ = 0;
    TimePoint last_edge_ = TimePoint::never();
    std::size_t rejected_ = 0;
    double smoothed_ms_ = 0.0;
    bool have_smoothed_ = false;
};

}  // namespace spinscope::core
