// spinscope/core/wire_observer.hpp
//
// An on-path spin-bit observer working from raw datagrams, the way a real
// middlebox would (paper §2.1; Kunze et al. showed this runs on P4 switches).
//
// Unlike the endpoint-side qlog analysis, a wire observer cannot read packet
// numbers (they are header-protected in real QUIC), so the RFC 9312
// packet-number filter is unavailable and only time-based heuristics apply.
// Attach to a netsim::Link via tap() to watch one direction of a flow.

#pragma once

#include <functional>

#include "bytes/bytes.hpp"
#include "core/observer.hpp"
#include "netsim/link.hpp"

namespace spinscope::core {

/// Passive per-flow observer fed with raw datagrams.
class WireSpinTap {
public:
    explicit WireSpinTap(ObserverConfig config = {})
        : observer_{disable_pn_filter(config)} {}

    /// Processes one observed datagram at observation time `at`. Long-header
    /// and non-QUIC datagrams are counted but otherwise ignored. The span is
    /// a borrowed view of the in-flight datagram — nothing is copied.
    void on_datagram(util::TimePoint at, bytes::ConstByteSpan datagram);

    /// Adapter usable directly as a netsim::Link tap.
    [[nodiscard]] netsim::Link::Tap tap() {
        return [this](util::TimePoint at, bytes::ConstByteSpan dg) { on_datagram(at, dg); };
    }

    [[nodiscard]] const SpinRttResult& result() const noexcept { return observer_.result(); }
    [[nodiscard]] std::size_t short_header_packets() const noexcept { return short_packets_; }
    [[nodiscard]] std::size_t other_packets() const noexcept { return other_packets_; }
    [[nodiscard]] std::size_t rejected_samples() const noexcept {
        return observer_.rejected_samples();
    }

private:
    /// Packet numbers are header-protected on the wire, so the PN filter is
    /// forced off whatever the caller configured.
    [[nodiscard]] static ObserverConfig disable_pn_filter(ObserverConfig config) noexcept {
        config.packet_number_filter = false;
        return config;
    }

    SpinEdgeObserver observer_;
    std::size_t short_packets_ = 0;
    std::size_t other_packets_ = 0;
    quic::PacketNumber synthetic_pn_ = 0;
};

}  // namespace spinscope::core
