// spinscope/core/accuracy.hpp
//
// Per-connection spin-bit assessment: behaviour classification (paper §4.3,
// Table 3) and RTT measurement accuracy versus the QUIC stack baseline
// (paper §5.1, Figures 3-4).

#pragma once

#include <optional>

#include "core/observer.hpp"
#include "qlog/trace.hpp"

namespace spinscope::core {

/// How a connection used the spin bit, as classified from the client-side
/// received packet record (paper §3.3/§4.3).
enum class SpinBehavior : std::uint8_t {
    no_one_rtt,  ///< no 1-RTT packets received (excluded from Table 3)
    all_zero,    ///< every received packet carried spin=0
    all_one,     ///< every received packet carried spin=1
    spinning,    ///< both values seen, not caught by the grease filter
    greased,     ///< both values seen but filtered: some spin RTT sample is
                 ///< below the minimum stack RTT estimate — presumed greasing
};

[[nodiscard]] constexpr const char* to_cstring(SpinBehavior b) noexcept {
    switch (b) {
        case SpinBehavior::no_one_rtt: return "no_one_rtt";
        case SpinBehavior::all_zero: return "all_zero";
        case SpinBehavior::all_one: return "all_one";
        case SpinBehavior::spinning: return "spinning";
        case SpinBehavior::greased: return "greased";
    }
    return "?";
}

/// Full per-connection assessment.
struct ConnectionAssessment {
    SpinBehavior behavior = SpinBehavior::no_one_rtt;
    /// Spin RTT measured in received order ("R") and PN-sorted order ("S").
    SpinRttResult spin_received;
    SpinRttResult spin_sorted;
    /// QUIC stack baseline (ack-delay-adjusted samples from the trace).
    double quic_mean_ms = 0.0;
    double quic_min_ms = 0.0;
    bool has_quic_baseline = false;

    /// True when both a spin mean and the stack baseline exist, i.e. the
    /// connection contributes to Figures 3 and 4.
    [[nodiscard]] bool comparable(PacketOrder order) const noexcept;

    /// Absolute accuracy (paper §5.1 method 1): mean(spin) - mean(QUIC), ms.
    [[nodiscard]] std::optional<double> abs_diff_ms(PacketOrder order) const noexcept;

    /// Relative accuracy (paper §5.1 method 2): ratio of the means, always
    /// dividing by the smaller; negated when spin < QUIC (underestimation).
    /// Values are in (-inf, -1] u [1, inf).
    [[nodiscard]] std::optional<double> mapped_ratio(PacketOrder order) const noexcept;
};

/// Classifies and measures one connection from its qlog trace.
///
/// Mirrors the paper's §3.3 pipeline: take the received 1-RTT packets,
/// check for spin activity, compute spin RTTs in received and sorted order,
/// compare against the stack estimates, and apply the grease filter (a
/// connection is `greased` when any received-order spin sample undercuts the
/// minimum stack estimate).
[[nodiscard]] ConnectionAssessment assess_connection(const qlog::Trace& trace);

/// Extracts the spin observations (1-RTT received packets) from a trace.
[[nodiscard]] std::vector<SpinObservation> spin_observations(const qlog::Trace& trace);

}  // namespace spinscope::core
