#include "core/observer.hpp"

#include <algorithm>
#include <limits>

namespace spinscope::core {

double SpinRttResult::mean_ms() const noexcept {
    if (samples_ms.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_ms) sum += s;
    return sum / static_cast<double>(samples_ms.size());
}

double SpinRttResult::min_ms() const noexcept {
    if (samples_ms.empty()) return 0.0;
    return *std::min_element(samples_ms.begin(), samples_ms.end());
}

SpinRttResult measure_spin_rtt(std::span<const SpinObservation> packets, PacketOrder order) {
    std::vector<SpinObservation> sorted;
    std::span<const SpinObservation> view = packets;
    if (order == PacketOrder::sorted) {
        sorted.assign(packets.begin(), packets.end());
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const SpinObservation& a, const SpinObservation& b) {
                             return a.packet_number < b.packet_number;
                         });
        // Drop duplicate packet numbers (retransmitted observations).
        sorted.erase(std::unique(sorted.begin(), sorted.end(),
                                 [](const SpinObservation& a, const SpinObservation& b) {
                                     return a.packet_number == b.packet_number;
                                 }),
                     sorted.end());
        view = sorted;
    }

    SpinRttResult result;
    bool have_value = false;
    bool current = false;
    TimePoint last_edge = TimePoint::never();
    for (const auto& packet : view) {
        if (packet.spin) {
            result.saw_one = true;
        } else {
            result.saw_zero = true;
        }
        if (!have_value) {
            have_value = true;
            current = packet.spin;
            continue;
        }
        if (packet.spin == current) continue;
        // Edge.
        current = packet.spin;
        ++result.edge_count;
        if (!last_edge.is_never()) {
            result.samples_ms.push_back((packet.time - last_edge).as_ms());
        }
        last_edge = packet.time;
    }
    return result;
}

void SpinEdgeObserver::on_packet(const SpinObservation& packet) {
    if (packet.spin) {
        result_.saw_one = true;
    } else {
        result_.saw_zero = true;
    }
    if (!have_value_) {
        have_value_ = true;
        current_value_ = packet.spin;
        value_set_by_pn_ = packet.packet_number;
        return;
    }
    if (packet.spin == current_value_) {
        // Same value on a newer packet advances the PN watermark.
        if (packet.packet_number > value_set_by_pn_) value_set_by_pn_ = packet.packet_number;
        return;
    }
    if (config_.packet_number_filter && packet.packet_number < value_set_by_pn_) {
        // A stale (reordered) packet from before the current value was set;
        // RFC 9312: ignore it rather than treat it as an edge.
        return;
    }
    if (config_.require_vec && packet.vec == 0) {
        // VEC mode: a value change without an edge marking is a reordering
        // artefact (or the peer does not implement the extension).
        return;
    }

    current_value_ = packet.spin;
    value_set_by_pn_ = packet.packet_number;
    ++result_.edge_count;

    if (last_edge_.is_never()) {
        last_edge_ = packet.time;
        return;
    }
    const Duration interval = packet.time - last_edge_;
    last_edge_ = packet.time;

    const double sample_ms = interval.as_ms();
    bool reject = interval < config_.min_plausible_rtt;
    if (config_.require_vec && packet.vec < 3) {
        // Only fully validated edges (both endpoints confirmed the wave)
        // terminate a sample.
        reject = true;
    }
    if (!reject && config_.dynamic_reject_ratio > 0.0 && have_smoothed_ &&
        sample_ms < config_.dynamic_reject_ratio * smoothed_ms_) {
        reject = true;
    }
    if (reject) {
        ++rejected_;
        return;
    }
    result_.samples_ms.push_back(sample_ms);
    if (!have_smoothed_) {
        smoothed_ms_ = sample_ms;
        have_smoothed_ = true;
    } else {
        smoothed_ms_ = smoothed_ms_ * 0.875 + sample_ms * 0.125;
    }
}

std::optional<double> SpinEdgeObserver::smoothed_ms() const noexcept {
    if (!have_smoothed_) return std::nullopt;
    return smoothed_ms_;
}

}  // namespace spinscope::core
