#include "core/constrained_monitor.hpp"

#include <stdexcept>

#include "quic/packet.hpp"
#include "util/rng.hpp"

namespace spinscope::core {
namespace {

/// SplitMix64 finalizer as a stateless hash: the slot index must be a pure
/// function of the flow key (a P4 target computes it with a CRC unit; any
/// well-mixing hash models that).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    std::uint64_t state = x;
    return util::splitmix64_next(state);
}

constexpr char kHexDigits[] = "0123456789abcdef";

[[nodiscard]] int hex_nibble(char c) noexcept {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

void ConstrainedConfig::validate() const {
    if (log2_slots < 1 || log2_slots > 24) {
        throw std::invalid_argument(
            "ConstrainedConfig: log2_slots must be in [1, 24]");
    }
    if (dcid_length < 1 || dcid_length > 20) {
        throw std::invalid_argument(
            "ConstrainedConfig: dcid_length must be in [1, 20]");
    }
    if (sample_every < 1) {
        throw std::invalid_argument("ConstrainedConfig: sample_every must be >= 1");
    }
    if (ewma_shift > 15) {
        throw std::invalid_argument("ConstrainedConfig: ewma_shift must be <= 15");
    }
    if (eviction == EvictionPolicy::lru && lru_idle_packets < 1) {
        throw std::invalid_argument("ConstrainedConfig: lru_idle_packets must be >= 1");
    }
}

ConstrainedMonitor::ConstrainedMonitor(ConstrainedConfig config)
    : config_{config},
      key_len_{config.dcid_length < 8 ? config.dcid_length : 8},
      index_mask_{(std::uint64_t{1} << config.log2_slots) - 1} {
    config_.validate();
    slots_.resize(std::size_t{1} << config_.log2_slots);
}

std::uint64_t ConstrainedMonitor::pack_key(const std::uint8_t* dcid,
                                           std::size_t key_len) noexcept {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < key_len; ++i) key = (key << 8) | dcid[i];
    return key;
}

std::size_t ConstrainedMonitor::slot_of(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(mix64(key) & index_mask_);
}

void ConstrainedMonitor::reset_slot(Slot& slot, std::uint64_t key) noexcept {
    slot = Slot{};
    slot.key = key;
    slot.valid = true;
}

void ConstrainedMonitor::track(Slot& slot, util::TimePoint at, bool spin) noexcept {
    ++slot.packets;
    if (spin) {
        slot.saw_one = true;
    } else {
        slot.saw_zero = true;
    }
    if (!slot.have_value) {
        slot.have_value = true;
        slot.spin = spin;
        return;
    }
    if (spin == slot.spin) return;

    // Spin edge. Mirrors SpinEdgeObserver::on_packet for a wire observer
    // (no packet numbers, no VEC, no dynamic rejection) exactly — the
    // interval comparison below is the same int64 nanosecond compare the
    // float path performs before it ever converts to milliseconds.
    slot.spin = spin;
    ++slot.edge_count;
    if (slot.last_edge_ns < 0) {
        slot.last_edge_ns = at.count_nanos();
        return;
    }
    const std::int64_t interval_ns = at.count_nanos() - slot.last_edge_ns;
    slot.last_edge_ns = at.count_nanos();
    if (interval_ns < config_.min_plausible_rtt.count_nanos()) {
        ++slot.rejected;
        return;
    }
    const std::int64_t sample_us = interval_ns / 1'000;
    if (!slot.have_srtt) {
        slot.srtt_scaled_us = sample_us << config_.ewma_shift;
        slot.have_srtt = true;
    } else {
        // srtt += (sample - srtt) / 2^shift, carried as srtt << shift so the
        // division is a shift and no precision is lost to a narrow quotient.
        slot.srtt_scaled_us += sample_us - (slot.srtt_scaled_us >> config_.ewma_shift);
    }
    ++slot.samples;
}

void ConstrainedMonitor::on_datagram(util::TimePoint at, bytes::ConstByteSpan datagram) {
    ++counters_.offered;
    const auto view = quic::peek_short_header(datagram);
    if (!view || datagram.size() < view->dcid_offset + config_.dcid_length) {
        ++counters_.non_flow;
        return;
    }
    // 1-in-N sampling happens before any table access — its whole point is
    // to cut the register-file bandwidth, so skipped packets touch nothing.
    const bool take = (tick_ % config_.sample_every) == 0;
    ++tick_;
    if (!take) {
        ++counters_.sampled_out;
        return;
    }

    const std::uint64_t key = pack_key(datagram.data() + view->dcid_offset, key_len_);
    Slot& slot = slots_[slot_of(key)];
    if (!slot.valid) {
        reset_slot(slot, key);
        ++counters_.active_slots;
    } else if (slot.key != key) {
        ++counters_.collisions;
        bool evict = false;
        switch (config_.eviction) {
            case EvictionPolicy::none:
                break;
            case EvictionPolicy::lru:
                evict = tick_ - slot.generation > config_.lru_idle_packets;
                break;
            case EvictionPolicy::random:
                // A deterministic stand-in for the hardware LFSR: one hash
                // bit of (key, packet clock) — 1/2 replacement probability,
                // reproducible for a given input stream.
                evict = (mix64(key ^ (tick_ * 0x9e3779b97f4a7c15ULL)) & 1) != 0;
                break;
        }
        if (!evict) {
            ++counters_.untracked;
            return;
        }
        ++counters_.evictions;
        reset_slot(slot, key);
    }
    slot.generation = tick_;
    ++counters_.tracked;
    track(slot, at, view->spin);
}

ConstrainedFlowStats ConstrainedMonitor::stats_of(const Slot& slot,
                                                  unsigned ewma_shift) noexcept {
    ConstrainedFlowStats stats;
    stats.packets = slot.packets;
    stats.edge_count = slot.edge_count;
    stats.samples = slot.samples;
    stats.rejected_samples = slot.rejected;
    stats.saw_zero = slot.saw_zero;
    stats.saw_one = slot.saw_one;
    stats.has_estimate = slot.have_srtt;
    stats.srtt_us = slot.have_srtt ? (slot.srtt_scaled_us >> ewma_shift) : 0;
    return stats;
}

std::vector<std::pair<std::string, ConstrainedFlowStats>> ConstrainedMonitor::flows()
    const {
    std::vector<std::pair<std::string, ConstrainedFlowStats>> out;
    out.reserve(static_cast<std::size_t>(counters_.active_slots));
    for (const Slot& slot : slots_) {
        if (!slot.valid) continue;
        std::string hex;
        hex.reserve(key_len_ * 2);
        for (std::size_t i = 0; i < key_len_; ++i) {
            const auto byte = static_cast<std::uint8_t>(
                slot.key >> (8 * (key_len_ - 1 - i)));
            hex.push_back(kHexDigits[byte >> 4]);
            hex.push_back(kHexDigits[byte & 0xf]);
        }
        out.emplace_back(std::move(hex), stats_of(slot, config_.ewma_shift));
    }
    return out;
}

std::optional<ConstrainedFlowStats> ConstrainedMonitor::find_key(std::uint64_t key) const {
    const Slot& slot = slots_[slot_of(key)];
    if (!slot.valid || slot.key != key) return std::nullopt;
    return stats_of(slot, config_.ewma_shift);
}

std::optional<ConstrainedFlowStats> ConstrainedMonitor::find(const std::string& hex) const {
    if (hex.size() != key_len_ * 2) return std::nullopt;
    std::uint64_t key = 0;
    for (const char c : hex) {
        const int nibble = hex_nibble(c);
        if (nibble < 0) return std::nullopt;
        key = (key << 4) | static_cast<std::uint64_t>(nibble);
    }
    return find_key(key);
}

}  // namespace spinscope::core
