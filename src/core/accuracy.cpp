#include "core/accuracy.hpp"

#include <algorithm>

namespace spinscope::core {

namespace {

[[nodiscard]] const SpinRttResult& pick(const ConnectionAssessment& a, PacketOrder order) {
    return order == PacketOrder::received ? a.spin_received : a.spin_sorted;
}

}  // namespace

bool ConnectionAssessment::comparable(PacketOrder order) const noexcept {
    return has_quic_baseline && pick(*this, order).has_samples() && quic_mean_ms > 0.0;
}

std::optional<double> ConnectionAssessment::abs_diff_ms(PacketOrder order) const noexcept {
    if (!comparable(order)) return std::nullopt;
    return pick(*this, order).mean_ms() - quic_mean_ms;
}

std::optional<double> ConnectionAssessment::mapped_ratio(PacketOrder order) const noexcept {
    if (!comparable(order)) return std::nullopt;
    const double spin = pick(*this, order).mean_ms();
    const double quic = quic_mean_ms;
    if (spin <= 0.0 || quic <= 0.0) return std::nullopt;
    if (spin >= quic) return spin / quic;
    return -(quic / spin);
}

std::vector<SpinObservation> spin_observations(const qlog::Trace& trace) {
    std::vector<SpinObservation> out;
    out.reserve(trace.received.size());
    for (const auto& ev : trace.received) {
        if (ev.type != quic::PacketType::one_rtt) continue;
        out.push_back(SpinObservation{ev.time, ev.packet_number, ev.spin, ev.vec});
    }
    return out;
}

ConnectionAssessment assess_connection(const qlog::Trace& trace) {
    ConnectionAssessment assessment;

    const auto packets = spin_observations(trace);
    if (packets.empty()) {
        assessment.behavior = SpinBehavior::no_one_rtt;
        return assessment;
    }

    const auto& samples = trace.metrics.rtt_samples_ms;
    if (!samples.empty()) {
        assessment.has_quic_baseline = true;
        double sum = 0.0;
        double min = samples.front();
        for (double s : samples) {
            sum += s;
            min = std::min(min, s);
        }
        assessment.quic_mean_ms = sum / static_cast<double>(samples.size());
        assessment.quic_min_ms = min;
    }

    assessment.spin_received = measure_spin_rtt(packets, PacketOrder::received);
    assessment.spin_sorted = measure_spin_rtt(packets, PacketOrder::sorted);

    if (!assessment.spin_received.spin_candidate()) {
        // Uniform value: every packet was 0 or every packet was 1.
        assessment.behavior =
            packets.front().spin ? SpinBehavior::all_one : SpinBehavior::all_zero;
        return assessment;
    }

    // Grease filter (paper §3.3): as soon as one spin RTT estimate is
    // smaller than the minimum of all stack estimates, the peer presumably
    // greases (per-packet randomness creates ultra-short apparent periods).
    bool greased = false;
    if (assessment.has_quic_baseline && assessment.spin_received.has_samples()) {
        greased = assessment.spin_received.min_ms() < assessment.quic_min_ms;
    }
    assessment.behavior = greased ? SpinBehavior::greased : SpinBehavior::spinning;
    return assessment;
}

}  // namespace spinscope::core
