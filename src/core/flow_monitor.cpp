#include "core/flow_monitor.hpp"

#include "quic/packet.hpp"

namespace spinscope::core {

std::string dcid_hex(std::span<const std::uint8_t> dcid) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(dcid.size() * 2);
    for (const auto byte : dcid) {
        out.push_back(kDigits[byte >> 4]);
        out.push_back(kDigits[byte & 0xf]);
    }
    return out;
}

void FlowMonitor::on_datagram(util::TimePoint at, bytes::ConstByteSpan datagram) {
    const auto view = quic::peek_short_header(datagram);
    if (!view || datagram.size() < view->dcid_offset + dcid_length_) {
        ++non_flow_;
        return;
    }
    const bytes::ConstByteSpan dcid = datagram.subspan(view->dcid_offset, dcid_length_);
    const auto key = dcid_hex(dcid);
    auto [it, inserted] = flows_.try_emplace(key, observer_config_);
    auto& flow = it->second;
    ++flow.packets;
    flow.observer.on_packet(
        SpinObservation{at, synthetic_pn_[key]++, view->spin, view->vec});
}

std::vector<std::pair<std::string, FlowStats>> FlowMonitor::flows() const {
    std::vector<std::pair<std::string, FlowStats>> out;
    out.reserve(flows_.size());
    for (const auto& [key, flow] : flows_) {
        FlowStats stats;
        stats.packets = flow.packets;
        stats.spin = flow.observer.result();
        stats.rejected_samples = flow.observer.rejected_samples();
        stats.smoothed_rtt_ms = flow.observer.smoothed_ms().value_or(0.0);
        out.emplace_back(key, std::move(stats));
    }
    return out;
}

std::optional<FlowStats> FlowMonitor::find(const std::string& dcid_hex_key) const {
    const auto it = flows_.find(dcid_hex_key);
    if (it == flows_.end()) return std::nullopt;
    FlowStats stats;
    stats.packets = it->second.packets;
    stats.spin = it->second.observer.result();
    stats.rejected_samples = it->second.observer.rejected_samples();
    stats.smoothed_rtt_ms = it->second.observer.smoothed_ms().value_or(0.0);
    return stats;
}

}  // namespace spinscope::core
