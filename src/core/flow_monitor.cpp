#include "core/flow_monitor.hpp"

#include <algorithm>

#include "core/constrained_monitor.hpp"
#include "quic/packet.hpp"

namespace spinscope::core {
namespace {

/// Parses a hex flow key back into its raw packed form; nullopt on anything
/// that is not exactly `key_length` bytes of hex.
[[nodiscard]] std::optional<std::uint64_t> parse_hex_key(const std::string& hex,
                                                         std::size_t key_length) {
    if (hex.size() != key_length * 2) return std::nullopt;
    std::uint64_t key = 0;
    for (const char c : hex) {
        int nibble = -1;
        if (c >= '0' && c <= '9') {
            nibble = c - '0';
        } else if (c >= 'a' && c <= 'f') {
            nibble = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
            nibble = c - 'A' + 10;
        } else {
            return std::nullopt;
        }
        key = (key << 4) | static_cast<std::uint64_t>(nibble);
    }
    return key;
}

[[nodiscard]] std::string render_hex_key(std::uint64_t key, std::size_t key_length) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(key_length * 2);
    for (std::size_t i = 0; i < key_length; ++i) {
        const auto byte = static_cast<std::uint8_t>(key >> (8 * (key_length - 1 - i)));
        out.push_back(kDigits[byte >> 4]);
        out.push_back(kDigits[byte & 0xf]);
    }
    return out;
}

}  // namespace

std::string dcid_hex(std::span<const std::uint8_t> dcid) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(dcid.size() * 2);
    for (const auto byte : dcid) {
        out.push_back(kDigits[byte >> 4]);
        out.push_back(kDigits[byte & 0xf]);
    }
    return out;
}

void FlowMonitor::on_datagram(util::TimePoint at, bytes::ConstByteSpan datagram) {
    const auto view = quic::peek_short_header(datagram);
    if (!view || datagram.size() < view->dcid_offset + dcid_length_) {
        ++non_flow_;
        return;
    }
    // No per-packet string: the flow key is the raw DCID prefix packed into
    // one word. Hex exists only at the snapshot boundary below.
    const std::uint64_t key =
        ConstrainedMonitor::pack_key(datagram.data() + view->dcid_offset, key_length_);
    auto [it, inserted] = flows_.try_emplace(key, observer_config_);
    auto& flow = it->second;
    ++flow.packets;
    flow.observer.on_packet(SpinObservation{at, flow.next_pn++, view->spin, view->vec});
}

FlowStats FlowMonitor::stats_of(const Flow& flow) {
    FlowStats stats;
    stats.packets = flow.packets;
    stats.spin = flow.observer.result();
    stats.rejected_samples = flow.observer.rejected_samples();
    stats.smoothed_rtt_ms = flow.observer.smoothed_ms().value_or(0.0);
    return stats;
}

std::vector<std::pair<std::string, FlowStats>> FlowMonitor::flows() const {
    std::vector<std::pair<std::string, FlowStats>> out;
    out.reserve(flows_.size());
    for (const auto& [key, flow] : flows_) {
        out.emplace_back(render_hex_key(key, key_length_), stats_of(flow));
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
}

std::optional<FlowStats> FlowMonitor::find(const std::string& dcid_hex_key) const {
    const auto key = parse_hex_key(dcid_hex_key, key_length_);
    if (!key) return std::nullopt;
    return find_key(*key);
}

std::optional<FlowStats> FlowMonitor::find_key(std::uint64_t key) const {
    const auto it = flows_.find(key);
    if (it == flows_.end()) return std::nullopt;
    return stats_of(it->second);
}

}  // namespace spinscope::core
