#include "core/wire_observer.hpp"

#include "quic/packet.hpp"

namespace spinscope::core {

void WireSpinTap::on_datagram(util::TimePoint at, bytes::ConstByteSpan datagram) {
    const auto view = quic::peek_short_header(datagram);
    if (!view) {
        ++other_packets_;
        return;
    }
    ++short_packets_;
    // Packet numbers are invisible on the wire; feed a synthetic monotone
    // counter so the observer's bookkeeping stays well-defined.
    observer_.on_packet(SpinObservation{at, synthetic_pn_++, view->spin, view->vec});
}

}  // namespace spinscope::core
