// spinscope/core/constrained_monitor.hpp
//
// Hardware-faithful on-path spin observer (DESIGN.md §14) — the constrained
// counterpart of the idealized core::FlowMonitor.
//
// "Tracking the QUIC Spin Bit on Tofino" (PAPERS.md) shows what a real
// line-rate deployment has to work with: a fixed-size register file indexed
// by a hash of the flow key, so colliding flows fight over one slot; no
// floating point, so RTT smoothing is a shift-based integer EWMA; and, at
// high packet rates, 1-in-N packet sampling. This monitor models exactly
// that budget. By construction it can only degrade *from* FlowMonitor —
// the differential suite (tests/test_core_constrained_monitor.cpp) proves
// flow-for-flow equivalence when the constraints are lifted and that every
// divergence under constraints is explained by the collision/eviction/
// sampling counters.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bytes/bytes.hpp"
#include "netsim/link.hpp"
#include "util/time.hpp"

namespace spinscope::core {

/// What to do when a packet's flow hashes onto a slot owned by another flow.
/// A direct-mapped table has exactly one candidate slot, so the policy is a
/// keep-or-replace decision, the same one a P4 register allows.
enum class EvictionPolicy : std::uint8_t {
    none,    ///< drop-new: the resident flow keeps the slot; the packet is untracked
    lru,     ///< LRU-approx: evict residents idle for > lru_idle_packets (generation stamps)
    random,  ///< random replacement: evict with probability 1/2 (hash-derived, deterministic)
};

[[nodiscard]] constexpr const char* to_cstring(EvictionPolicy p) noexcept {
    switch (p) {
        case EvictionPolicy::none: return "none";
        case EvictionPolicy::lru: return "lru";
        case EvictionPolicy::random: return "random";
    }
    return "?";
}

/// The hardware budget. Defaults model the Tofino register file the paper's
/// follow-up work used: 2^16 slots, drop-new, 1/8 EWMA weight, no sampling.
struct ConstrainedConfig {
    /// Table size as a power of two (slot count = 1 << log2_slots).
    unsigned log2_slots = 16;
    /// Connection-ID length of the monitored deployment; the flow key is the
    /// first min(8, dcid_length) bytes of the DCID (a register key is one
    /// machine word — longer CIDs are truncated, exactly as hardware would).
    std::size_t dcid_length = 8;
    EvictionPolicy eviction = EvictionPolicy::none;
    /// Process every Nth short-header packet (1 = no sampling). The skipped
    /// packets are counted in sampled_out, never in any flow.
    std::uint32_t sample_every = 1;
    /// EWMA weight 1/2^ewma_shift (3 mirrors RFC 9002's 1/8, and the float
    /// path in SpinEdgeObserver).
    unsigned ewma_shift = 3;
    /// Static plausibility floor: edge-to-edge intervals below it are
    /// rejected (integer Duration compare — identical to the float path).
    util::Duration min_plausible_rtt = util::Duration::zero();
    /// EvictionPolicy::lru: a resident is evictable once its slot sat
    /// untouched for this many processed packets (generation-stamp distance).
    std::uint64_t lru_idle_packets = 1024;

    /// Throws std::invalid_argument on a nonsensical budget; called by the
    /// monitor's constructor and by ScanOptions::validate().
    void validate() const;
};

/// Snapshot of one flow slot, computed at the snapshot boundary (the only
/// place integer microseconds become milliseconds).
struct ConstrainedFlowStats {
    std::uint64_t packets = 0;
    std::uint32_t edge_count = 0;
    std::uint32_t samples = 0;           ///< accepted RTT samples
    std::uint32_t rejected_samples = 0;  ///< rejected by min_plausible_rtt
    bool saw_zero = false;
    bool saw_one = false;
    /// Integer smoothed spin RTT in microseconds; valid when has_estimate.
    std::int64_t srtt_us = 0;
    bool has_estimate = false;

    /// The paper's §3.3 candidate criterion (both spin values observed).
    [[nodiscard]] bool spin_candidate() const noexcept { return saw_zero && saw_one; }
    [[nodiscard]] double srtt_ms() const noexcept {
        return has_estimate ? static_cast<double>(srtt_us) / 1000.0 : 0.0;
    }
};

/// Monitor-level counters. The accounting identities the property suite
/// pins (every offered datagram lands in exactly one bucket):
///   offered   == non_flow + sampled_out + tracked + untracked
///   collisions == untracked + evictions
struct ConstrainedTableCounters {
    std::uint64_t offered = 0;      ///< datagrams seen by on_datagram
    std::uint64_t non_flow = 0;     ///< long-header / malformed / truncated
    std::uint64_t sampled_out = 0;  ///< skipped by 1-in-N sampling
    std::uint64_t tracked = 0;      ///< landed in a slot (hit or insert)
    std::uint64_t untracked = 0;    ///< collision, resident kept the slot
    std::uint64_t collisions = 0;   ///< slot owned by a different flow
    std::uint64_t evictions = 0;    ///< collisions resolved by replacement
    std::uint64_t active_slots = 0; ///< slots currently holding a flow
};

/// Passive multi-flow spin monitor under a fixed hardware budget. Datapath
/// arithmetic is integer-only: timestamps are int64 nanoseconds, the EWMA is
/// shift-based over microseconds, and the only doubles appear in snapshot
/// accessors.
class ConstrainedMonitor {
public:
    /// Throws std::invalid_argument when `config` fails validation.
    explicit ConstrainedMonitor(ConstrainedConfig config = {});

    /// Processes one observed datagram (borrowed view; nothing is copied).
    void on_datagram(util::TimePoint at, bytes::ConstByteSpan datagram);

    /// Adapter usable directly as a netsim::Link tap.
    [[nodiscard]] netsim::Link::Tap tap() {
        return [this](util::TimePoint at, bytes::ConstByteSpan dg) { on_datagram(at, dg); };
    }

    [[nodiscard]] const ConstrainedConfig& config() const noexcept { return config_; }
    [[nodiscard]] std::size_t slot_count() const noexcept { return slots_.size(); }
    [[nodiscard]] std::size_t flow_count() const noexcept {
        return static_cast<std::size_t>(counters_.active_slots);
    }
    [[nodiscard]] const ConstrainedTableCounters& counters() const noexcept {
        return counters_;
    }

    /// Snapshot of every resident flow in slot-index order (deterministic),
    /// keyed by the hex flow key — the same rendering FlowMonitor uses, so
    /// the differential suite can join the two snapshots.
    [[nodiscard]] std::vector<std::pair<std::string, ConstrainedFlowStats>> flows() const;

    /// Stats for one flow by raw key; nullopt when the flow is not resident
    /// (never was, or was evicted).
    [[nodiscard]] std::optional<ConstrainedFlowStats> find_key(std::uint64_t key) const;

    /// Stats by hex flow key (snapshot-boundary convenience; the datapath
    /// never touches strings).
    [[nodiscard]] std::optional<ConstrainedFlowStats> find(const std::string& hex) const;

    /// The slot index a raw key hashes to (tests craft collisions with it).
    [[nodiscard]] std::size_t slot_of(std::uint64_t key) const noexcept;

    /// Packs the first min(8, dcid_length) DCID bytes into a raw key,
    /// big-endian so the hex rendering equals the DCID prefix hex.
    [[nodiscard]] static std::uint64_t pack_key(const std::uint8_t* dcid,
                                                std::size_t key_len) noexcept;

private:
    /// One register-file entry. POD, fixed width — the layout a P4 target
    /// could hold in per-stage registers (DESIGN.md §14 discusses widths).
    struct Slot {
        std::uint64_t key = 0;
        std::int64_t last_edge_ns = -1;     ///< -1: no edge seen yet
        std::int64_t srtt_scaled_us = 0;    ///< srtt(µs) << ewma_shift
        std::uint64_t generation = 0;       ///< last-touch stamp (LRU-approx)
        std::uint64_t packets = 0;
        std::uint32_t edge_count = 0;
        std::uint32_t samples = 0;
        std::uint32_t rejected = 0;
        bool valid = false;
        bool have_value = false;
        bool spin = false;
        bool saw_zero = false;
        bool saw_one = false;
        bool have_srtt = false;
    };

    void reset_slot(Slot& slot, std::uint64_t key) noexcept;
    void track(Slot& slot, util::TimePoint at, bool spin) noexcept;
    [[nodiscard]] static ConstrainedFlowStats stats_of(const Slot& slot,
                                                       unsigned ewma_shift) noexcept;

    ConstrainedConfig config_;
    std::size_t key_len_;
    std::uint64_t index_mask_;
    std::vector<Slot> slots_;
    ConstrainedTableCounters counters_;
    /// Processed-packet clock: drives sampling, generation stamps and the
    /// random-replacement bit. Pure function of the input stream.
    std::uint64_t tick_ = 0;
};

}  // namespace spinscope::core
