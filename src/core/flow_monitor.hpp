// spinscope/core/flow_monitor.hpp
//
// Multi-flow passive spin monitor — the deployable version of the paper's
// observer. A real on-path device sees an interleaved packet mix of many
// QUIC connections; it must demultiplex flows before it can track each spin
// wave (Kunze et al. 2021 did this on P4 hardware). spinscope demuxes on
// the destination connection ID prefix of short-header packets, which is
// exactly what such devices key on.
//
// This is the IDEALIZED observer: unbounded flow table, float EWMA. Its
// hardware-budgeted counterpart is core::ConstrainedMonitor; the
// differential suite keeps the two in lockstep.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bytes/bytes.hpp"
#include "core/observer.hpp"
#include "netsim/link.hpp"

namespace spinscope::core {

/// Per-flow state the monitor exposes.
struct FlowStats {
    std::uint64_t packets = 0;
    SpinRttResult spin;
    std::size_t rejected_samples = 0;
    /// Latest smoothed spin RTT (ms); 0 until the first accepted sample.
    double smoothed_rtt_ms = 0.0;
};

/// Passive monitor over an interleaved multi-flow packet stream.
///
/// The hot tap path is string-free: flows are keyed on the raw DCID prefix
/// packed into one 64-bit word (the first min(8, dcid_length) bytes,
/// big-endian); hex keys exist only at the snapshot boundary (flows(),
/// find()).
class FlowMonitor {
public:
    /// `dcid_length` is the connection-ID length the monitored server pool
    /// uses (operators know their own deployment; 8 is spinscope's default).
    explicit FlowMonitor(ObserverConfig observer_config = {}, std::size_t dcid_length = 8)
        : observer_config_{observer_config},
          dcid_length_{dcid_length},
          key_length_{dcid_length < 8 ? dcid_length : 8} {}

    /// Processes one observed datagram (a borrowed view; nothing is copied
    /// beyond the flow key).
    void on_datagram(util::TimePoint at, bytes::ConstByteSpan datagram);

    /// Adapter usable directly as a netsim::Link tap.
    [[nodiscard]] netsim::Link::Tap tap() {
        return [this](util::TimePoint at, bytes::ConstByteSpan dg) { on_datagram(at, dg); };
    }

    [[nodiscard]] std::size_t flow_count() const noexcept { return flows_.size(); }
    [[nodiscard]] std::uint64_t non_flow_packets() const noexcept { return non_flow_; }

    /// Snapshot of every tracked flow, keyed by the hex DCID prefix and
    /// sorted by it (map iteration order must never leak into output).
    [[nodiscard]] std::vector<std::pair<std::string, FlowStats>> flows() const;

    /// Stats for one flow key (hex DCID prefix); nullopt if unknown.
    [[nodiscard]] std::optional<FlowStats> find(const std::string& dcid_hex) const;

    /// Stats for one flow by raw packed key; nullopt if unknown.
    [[nodiscard]] std::optional<FlowStats> find_key(std::uint64_t key) const;

private:
    struct Flow {
        explicit Flow(const ObserverConfig& config) : observer{config} {}
        SpinEdgeObserver observer;
        std::uint64_t packets = 0;
        /// Arrival index of this flow's packets — the synthetic packet
        /// number an on-wire observer (which cannot read protected PNs)
        /// feeds the RFC 9312 heuristics.
        quic::PacketNumber next_pn = 0;
    };

    [[nodiscard]] static FlowStats stats_of(const Flow& flow);

    ObserverConfig observer_config_;
    std::size_t dcid_length_;
    std::size_t key_length_;
    std::unordered_map<std::uint64_t, Flow> flows_;
    std::uint64_t non_flow_ = 0;
};

/// Hex rendering of a DCID prefix (flow key).
[[nodiscard]] std::string dcid_hex(std::span<const std::uint8_t> dcid);

}  // namespace spinscope::core
