#include "telemetry/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/format.hpp"

namespace spinscope::telemetry {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    out += buf;
}

void append_double(std::string& out, double v) {
    if (!std::isfinite(v)) {
        out += "0";  // JSON has no inf/nan; metrics should never produce them
        return;
    }
    char buf[40];
    // %.9g round-trips every value these metrics produce (ms timings, byte
    // counts) and stays compact for integers.
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
    out.push_back('"');
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    out.push_back('"');
}

[[nodiscard]] std::string format_value(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", std::isfinite(v) ? v : 0.0);
    return buf;
}

}  // namespace

std::string to_json(const MetricsRegistry& registry) {
    std::string out = "{\"schema\":\"spinscope-telemetry-v1\"";

    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, counter] : registry.counters()) {
        if (!first) out.push_back(',');
        first = false;
        append_quoted(out, name);
        out.push_back(':');
        append_u64(out, counter->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, gauge] : registry.gauges()) {
        if (!first) out.push_back(',');
        first = false;
        append_quoted(out, name);
        out.push_back(':');
        append_double(out, gauge->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, hist] : registry.histograms()) {
        if (!first) out.push_back(',');
        first = false;
        append_quoted(out, name);
        out += ":{\"count\":";
        append_u64(out, hist->count());
        out += ",\"sum\":";
        append_double(out, hist->sum());
        out += ",\"min\":";
        append_double(out, hist->min());
        out += ",\"max\":";
        append_double(out, hist->max());
        out += ",\"spec\":{\"min_value\":";
        append_double(out, hist->spec().min_value);
        out += ",\"factor\":";
        append_double(out, hist->spec().factor);
        out += ",\"buckets\":";
        append_u64(out, hist->spec().bucket_count);
        out += "},\"bucket_counts\":[";
        const auto& buckets = hist->buckets();
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            if (i > 0) out.push_back(',');
            append_u64(out, buckets[i]);
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

namespace {

std::string csv_impl(const MetricsRegistry& registry, bool deterministic_only) {
    std::string out = "kind,name,field,value\n";
    auto row = [&out](const char* kind, const std::string& name, const std::string& field,
                      const std::string& value) {
        out += kind;
        out.push_back(',');
        out += name;
        out.push_back(',');
        out += field;
        out.push_back(',');
        out += value;
        out.push_back('\n');
    };
    for (const auto& [name, counter] : registry.counters()) {
        if (deterministic_only &&
            (is_wall_clock_metric(name) || is_chunk_geometry_metric(name))) {
            continue;
        }
        std::string v;
        append_u64(v, counter->value());
        row("counter", name, "value", v);
    }
    for (const auto& [name, gauge] : registry.gauges()) {
        if (deterministic_only &&
            (is_wall_clock_metric(name) || is_chunk_geometry_metric(name))) {
            continue;
        }
        row("gauge", name, "value", format_value(gauge->value()));
    }
    for (const auto& [name, hist] : registry.histograms()) {
        if (deterministic_only &&
            (is_wall_clock_metric(name) || is_chunk_geometry_metric(name))) {
            continue;
        }
        std::string count;
        append_u64(count, hist->count());
        row("histogram", name, "count", count);
        // A histogram's sum regroups its floating-point additions when the
        // shard chunking changes; the deterministic view keeps only the
        // merge-exact fields (count, min, max, buckets).
        if (!deterministic_only) row("histogram", name, "sum", format_value(hist->sum()));
        row("histogram", name, "min", format_value(hist->min()));
        row("histogram", name, "max", format_value(hist->max()));
        const auto& buckets = hist->buckets();
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            if (buckets[i] == 0) continue;  // sparse: empty buckets are implied
            std::string v;
            append_u64(v, buckets[i]);
            row("histogram", name, "bucket_ge_" + format_value(hist->bucket_lower_bound(i)), v);
        }
    }
    return out;
}

}  // namespace

bool is_chunk_geometry_metric(const std::string& name) {
    return name.rfind("bytes.pool", 0) == 0;
}

bool is_wall_clock_metric(const std::string& name) {
    if (name.find(".phase.") != std::string::npos) return true;
    static constexpr char kPerSec[] = "_per_sec";
    constexpr std::size_t kPerSecLen = sizeof(kPerSec) - 1;
    return name.size() >= kPerSecLen &&
           name.compare(name.size() - kPerSecLen, kPerSecLen, kPerSec) == 0;
}

std::string to_csv(const MetricsRegistry& registry) {
    return csv_impl(registry, /*deterministic_only=*/false);
}

std::string deterministic_csv(const MetricsRegistry& registry) {
    return csv_impl(registry, /*deterministic_only=*/true);
}

std::string render_table(const MetricsRegistry& registry) {
    util::TextTable table;
    table.add_row({"metric", "kind", "value", "detail"});
    for (const auto& [name, counter] : registry.counters()) {
        table.add_row({name, "counter", util::group_digits(counter->value()), ""});
    }
    for (const auto& [name, gauge] : registry.gauges()) {
        table.add_row({name, "gauge", format_value(gauge->value()), ""});
    }
    for (const auto& [name, hist] : registry.histograms()) {
        std::string detail = "mean " + format_value(hist->mean()) + "  min " +
                             format_value(hist->min()) + "  max " + format_value(hist->max());
        table.add_row({name, "histogram", util::group_digits(hist->count()), detail});
    }
    return table.render(true);
}

bool write_json_file(const MetricsRegistry& registry, const std::string& path) {
    std::ofstream out{path, std::ios::trunc};
    if (!out) return false;
    out << to_json(registry) << '\n';
    return static_cast<bool>(out);
}

}  // namespace spinscope::telemetry
