#include "telemetry/export.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/format.hpp"

namespace spinscope::telemetry {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    out += buf;
}

void append_double(std::string& out, double v) {
    if (!std::isfinite(v)) {
        out += "0";  // JSON has no inf/nan; metrics should never produce them
        return;
    }
    char buf[40];
    // %.9g round-trips every value these metrics produce (ms timings, byte
    // counts) and stays compact for integers.
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
    out.push_back('"');
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    out.push_back('"');
}

[[nodiscard]] std::string format_value(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", std::isfinite(v) ? v : 0.0);
    return buf;
}

}  // namespace

std::string to_json(const MetricsRegistry& registry) {
    std::string out = "{\"schema\":\"spinscope-telemetry-v1\"";

    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, counter] : registry.counters()) {
        if (!first) out.push_back(',');
        first = false;
        append_quoted(out, name);
        out.push_back(':');
        append_u64(out, counter->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, gauge] : registry.gauges()) {
        if (!first) out.push_back(',');
        first = false;
        append_quoted(out, name);
        out.push_back(':');
        append_double(out, gauge->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, hist] : registry.histograms()) {
        if (!first) out.push_back(',');
        first = false;
        append_quoted(out, name);
        out += ":{\"count\":";
        append_u64(out, hist->count());
        out += ",\"sum\":";
        append_double(out, hist->sum());
        out += ",\"min\":";
        append_double(out, hist->min());
        out += ",\"max\":";
        append_double(out, hist->max());
        out += ",\"spec\":{\"min_value\":";
        append_double(out, hist->spec().min_value);
        out += ",\"factor\":";
        append_double(out, hist->spec().factor);
        out += ",\"buckets\":";
        append_u64(out, hist->spec().bucket_count);
        out += "},\"bucket_counts\":[";
        const auto& buckets = hist->buckets();
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            if (i > 0) out.push_back(',');
            append_u64(out, buckets[i]);
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

namespace {

std::string csv_impl(const MetricsRegistry& registry, bool deterministic_only) {
    std::string out = "kind,name,field,value\n";
    auto row = [&out](const char* kind, const std::string& name, const std::string& field,
                      const std::string& value) {
        out += kind;
        out.push_back(',');
        out += name;
        out.push_back(',');
        out += field;
        out.push_back(',');
        out += value;
        out.push_back('\n');
    };
    const auto excluded = [deterministic_only](const std::string& name) {
        return deterministic_only &&
               (is_wall_clock_metric(name) || is_chunk_geometry_metric(name) ||
                is_recovery_metric(name));
    };
    for (const auto& [name, counter] : registry.counters()) {
        if (excluded(name)) continue;
        std::string v;
        append_u64(v, counter->value());
        row("counter", name, "value", v);
    }
    for (const auto& [name, gauge] : registry.gauges()) {
        if (excluded(name)) continue;
        row("gauge", name, "value", format_value(gauge->value()));
    }
    for (const auto& [name, hist] : registry.histograms()) {
        if (excluded(name)) continue;
        std::string count;
        append_u64(count, hist->count());
        row("histogram", name, "count", count);
        // A histogram's sum regroups its floating-point additions when the
        // shard chunking changes; the deterministic view keeps only the
        // merge-exact fields (count, min, max, buckets).
        if (!deterministic_only) row("histogram", name, "sum", format_value(hist->sum()));
        row("histogram", name, "min", format_value(hist->min()));
        row("histogram", name, "max", format_value(hist->max()));
        const auto& buckets = hist->buckets();
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            if (buckets[i] == 0) continue;  // sparse: empty buckets are implied
            std::string v;
            append_u64(v, buckets[i]);
            row("histogram", name, "bucket_ge_" + format_value(hist->bucket_lower_bound(i)), v);
        }
    }
    return out;
}

}  // namespace

bool is_chunk_geometry_metric(const std::string& name) {
    // trace.* recorder bookkeeping counts wall lanes and per-worker events,
    // which vary with thread scheduling and lane geometry just like the
    // pool's hit/miss split varies with chunking.
    return name.rfind("bytes.pool", 0) == 0 || name.rfind("trace.", 0) == 0;
}

bool is_recovery_metric(const std::string& name) {
    // obs.* resource observations (RSS, allocation traffic, phase wall time)
    // describe THIS host run, not the scan results — like the recovery
    // counters, a resumed run necessarily reports different values even
    // though its scan output is byte-identical.
    return name.rfind("campaign.", 0) == 0 || name.rfind("obs.", 0) == 0;
}

bool is_wall_clock_metric(const std::string& name) {
    if (name.find(".phase.") != std::string::npos) return true;
    static constexpr char kPerSec[] = "_per_sec";
    constexpr std::size_t kPerSecLen = sizeof(kPerSec) - 1;
    return name.size() >= kPerSecLen &&
           name.compare(name.size() - kPerSecLen, kPerSecLen, kPerSec) == 0;
}

std::string to_csv(const MetricsRegistry& registry) {
    return csv_impl(registry, /*deterministic_only=*/false);
}

std::string deterministic_csv(const MetricsRegistry& registry) {
    return csv_impl(registry, /*deterministic_only=*/true);
}

std::string render_table(const MetricsRegistry& registry) {
    util::TextTable table;
    table.add_row({"metric", "kind", "value", "detail"});
    for (const auto& [name, counter] : registry.counters()) {
        table.add_row({name, "counter", util::group_digits(counter->value()), ""});
    }
    for (const auto& [name, gauge] : registry.gauges()) {
        table.add_row({name, "gauge", format_value(gauge->value()), ""});
    }
    for (const auto& [name, hist] : registry.histograms()) {
        std::string detail = "mean " + format_value(hist->mean()) + "  min " +
                             format_value(hist->min()) + "  max " + format_value(hist->max());
        table.add_row({name, "histogram", util::group_digits(hist->count()), detail});
    }
    return table.render(true);
}

bool write_json_file(const MetricsRegistry& registry, const std::string& path) {
    return util::write_file_atomic(path, to_json(registry) + "\n");
}

namespace {

/// %.17g: the shortest format guaranteed to round-trip every IEEE-754
/// double through from_chars exactly — snapshot values must survive a
/// write/parse cycle bit for bit, not just "close enough".
void append_exact_double(std::string& out, double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

bool parse_u64(std::string_view token, std::uint64_t& out) {
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
    return ec == std::errc{} && ptr == token.data() + token.size();
}

bool parse_exact_double(std::string_view token, double& out) {
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
    return ec == std::errc{} && ptr == token.data() + token.size();
}

}  // namespace

std::string snapshot(const MetricsRegistry& registry) {
    std::string out;
    for (const auto& [name, counter] : registry.counters()) {
        out += "counter ";
        out += name;
        out.push_back(' ');
        append_u64(out, counter->value());
        out.push_back('\n');
    }
    for (const auto& [name, gauge] : registry.gauges()) {
        out += "gauge ";
        out += name;
        out += gauge->has_value() ? " 1 " : " 0 ";
        append_exact_double(out, gauge->value());
        out.push_back('\n');
    }
    for (const auto& [name, hist] : registry.histograms()) {
        out += "hist ";
        out += name;
        out.push_back(' ');
        append_exact_double(out, hist->spec().min_value);
        out.push_back(' ');
        append_exact_double(out, hist->spec().factor);
        out.push_back(' ');
        append_u64(out, hist->spec().bucket_count);
        out.push_back(' ');
        append_u64(out, hist->count());
        out.push_back(' ');
        append_exact_double(out, hist->sum());
        out.push_back(' ');
        // Internal min_/max_ are only meaningful when count > 0; min()/max()
        // already normalize the empty case to 0, which restore() re-applies.
        append_exact_double(out, hist->min());
        out.push_back(' ');
        append_exact_double(out, hist->max());
        for (const auto bucket : hist->buckets()) {
            out.push_back(' ');
            append_u64(out, bucket);
        }
        out.push_back('\n');
    }
    return out;
}

std::optional<MetricsRegistry> parse_snapshot(const std::string& text) {
    MetricsRegistry registry;
    std::istringstream in{text};
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::istringstream fields{line};
        std::string kind;
        std::string name;
        if (!(fields >> kind >> name)) return std::nullopt;
        if (kind == "counter") {
            std::string value;
            std::string extra;
            if (!(fields >> value) || fields >> extra) return std::nullopt;
            std::uint64_t v = 0;
            if (!parse_u64(value, v)) return std::nullopt;
            registry.counter(name).add(v);
        } else if (kind == "gauge") {
            std::string has;
            std::string value;
            std::string extra;
            if (!(fields >> has >> value) || fields >> extra) return std::nullopt;
            double v = 0.0;
            if ((has != "0" && has != "1") || !parse_exact_double(value, v)) {
                return std::nullopt;
            }
            // A never-set gauge is registered but keeps has_value() false, so
            // a later merge_from treats it exactly like the original.
            if (has == "1") {
                registry.gauge(name).set(v);
            } else {
                (void)registry.gauge(name);
            }
        } else if (kind == "hist") {
            std::string min_value;
            std::string factor;
            std::string bucket_count;
            std::string count;
            std::string sum;
            std::string min;
            std::string max;
            if (!(fields >> min_value >> factor >> bucket_count >> count >> sum >> min >>
                  max)) {
                return std::nullopt;
            }
            HistogramSpec spec;
            std::uint64_t buckets = 0;
            std::uint64_t recorded = 0;
            double sum_v = 0.0;
            double min_v = 0.0;
            double max_v = 0.0;
            if (!parse_exact_double(min_value, spec.min_value) ||
                !parse_exact_double(factor, spec.factor) || !parse_u64(bucket_count, buckets) ||
                !parse_u64(count, recorded) || !parse_exact_double(sum, sum_v) ||
                !parse_exact_double(min, min_v) || !parse_exact_double(max, max_v)) {
                return std::nullopt;
            }
            if (spec.min_value <= 0.0 || spec.factor <= 1.0 || buckets == 0 ||
                buckets > 4096) {
                return std::nullopt;
            }
            spec.bucket_count = static_cast<std::size_t>(buckets);
            std::vector<std::uint64_t> bucket_counts;
            bucket_counts.reserve(spec.bucket_count);
            std::string bucket;
            while (fields >> bucket) {
                std::uint64_t b = 0;
                if (!parse_u64(bucket, b)) return std::nullopt;
                bucket_counts.push_back(b);
            }
            if (bucket_counts.size() != spec.bucket_count) return std::nullopt;
            try {
                registry.histogram(name, spec).restore(recorded, sum_v, min_v, max_v,
                                                       bucket_counts);
            } catch (const std::invalid_argument&) {
                return std::nullopt;
            }
        } else {
            return std::nullopt;
        }
    }
    return registry;
}

}  // namespace spinscope::telemetry
