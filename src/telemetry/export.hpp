// spinscope/telemetry/export.hpp
//
// Registry exporters: machine-readable JSON (the bench sidecar format — one
// self-contained object per run so BENCH_*.json deltas can be attributed to
// specific phases), flat CSV for spreadsheet/plotting pipelines, and an
// aligned text table for terminals.
//
// Field order is deterministic (name-sorted, fixed key order per object), so
// two runs of the same binary produce byte-identical output modulo the
// metric values themselves — sidecars are diffable.

#pragma once

#include <optional>
#include <string>

#include "telemetry/metrics.hpp"

namespace spinscope::telemetry {

/// Serializes the whole registry as one JSON object:
///
///   {"schema":"spinscope-telemetry-v1",
///    "counters":{"name":123,...},
///    "gauges":{"name":1.5,...},
///    "histograms":{"name":{"count":N,"sum":S,"min":m,"max":M,
///                          "spec":{"min_value":..,"factor":..,"buckets":N},
///                          "bucket_counts":[...]},...}}
[[nodiscard]] std::string to_json(const MetricsRegistry& registry);

/// Flat CSV: `kind,name,field,value` rows (counters/gauges one row each,
/// histograms one row per summary field plus one per non-empty bucket).
[[nodiscard]] std::string to_csv(const MetricsRegistry& registry);

/// True when `name` records host wall-clock time and is therefore different
/// on every run by nature: phase spans (".phase." infix, see ScopedTimer)
/// and wall-clock-derived rates ("_per_sec" suffix). Everything else in the
/// registry is a pure function of (population, options, seed).
[[nodiscard]] bool is_wall_clock_metric(const std::string& name);

/// True when `name` depends on shard chunk geometry rather than on scan
/// results: the "bytes.pool" datagram-pool counters (hit/miss ratios change
/// with how many domains share one chunk-private pool, DESIGN.md §10) — so
/// the deterministic view must drop them even though they are repeatable
/// for a fixed chunk size.
[[nodiscard]] bool is_chunk_geometry_metric(const std::string& name);

/// True when `name` records crash-recovery bookkeeping rather than scan
/// results: the "campaign." prefix (journal replay counters, quarantine and
/// worker-restart counts, DESIGN.md §11). A resumed campaign replays journal
/// records where an uninterrupted one scans, so these counters necessarily
/// differ between the two even though the scan output is byte-identical —
/// the deterministic view must drop them.
[[nodiscard]] bool is_recovery_metric(const std::string& name);

/// The DETERMINISM-CONTRACT view of a registry (DESIGN.md §9): to_csv minus
/// (a) wall-clock metrics, (b) chunk-geometry metrics (buffer-pool
/// counters), and (c) histogram `sum` rows, whose floating-point
/// accumulation order depends on the shard chunk size. Two campaigns with
/// identical population + ScanOptions produce byte-identical
/// deterministic_csv output regardless of thread count, chunk size or host
/// load — this is the representation the golden fixtures and the parallel
/// determinism suite compare.
[[nodiscard]] std::string deterministic_csv(const MetricsRegistry& registry);

/// Aligned text table (util::TextTable) for human consumption.
[[nodiscard]] std::string render_table(const MetricsRegistry& registry);

/// Writes to_json() to `path` atomically (util::write_file_atomic): a crash
/// mid-export leaves the previous sidecar intact, never a torn file.
/// Returns false when the file cannot be written.
bool write_json_file(const MetricsRegistry& registry, const std::string& path);

/// FULL-FIDELITY registry serialization for the campaign journal: a
/// line-based text form that round-trips every instrument exactly —
/// counters, gauges (including has-value state), histogram geometry, bucket
/// counts and the floating-point count/sum/min/max (printed with %.17g, so
/// the parsed doubles are bit-identical). Metric names must not contain
/// whitespace (spinscope names are dotted identifiers). Unlike to_json this
/// form exists to be parsed back: parse_snapshot(snapshot(r)) merged in
/// place of r is indistinguishable from merging r itself.
[[nodiscard]] std::string snapshot(const MetricsRegistry& registry);

/// Parses a snapshot() string. Returns nullopt on any malformed line,
/// unknown record kind or histogram-geometry inconsistency.
[[nodiscard]] std::optional<MetricsRegistry> parse_snapshot(const std::string& text);

}  // namespace spinscope::telemetry
