// spinscope/telemetry/export.hpp
//
// Registry exporters: machine-readable JSON (the bench sidecar format — one
// self-contained object per run so BENCH_*.json deltas can be attributed to
// specific phases), flat CSV for spreadsheet/plotting pipelines, and an
// aligned text table for terminals.
//
// Field order is deterministic (name-sorted, fixed key order per object), so
// two runs of the same binary produce byte-identical output modulo the
// metric values themselves — sidecars are diffable.

#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace spinscope::telemetry {

/// Serializes the whole registry as one JSON object:
///
///   {"schema":"spinscope-telemetry-v1",
///    "counters":{"name":123,...},
///    "gauges":{"name":1.5,...},
///    "histograms":{"name":{"count":N,"sum":S,"min":m,"max":M,
///                          "spec":{"min_value":..,"factor":..,"buckets":N},
///                          "bucket_counts":[...]},...}}
[[nodiscard]] std::string to_json(const MetricsRegistry& registry);

/// Flat CSV: `kind,name,field,value` rows (counters/gauges one row each,
/// histograms one row per summary field plus one per non-empty bucket).
[[nodiscard]] std::string to_csv(const MetricsRegistry& registry);

/// Aligned text table (util::TextTable) for human consumption.
[[nodiscard]] std::string render_table(const MetricsRegistry& registry);

/// Writes to_json() to `path`. Returns false when the file cannot be
/// opened/written.
bool write_json_file(const MetricsRegistry& registry, const std::string& path);

}  // namespace spinscope::telemetry
