// spinscope/telemetry/export.hpp
//
// Registry exporters: machine-readable JSON (the bench sidecar format — one
// self-contained object per run so BENCH_*.json deltas can be attributed to
// specific phases), flat CSV for spreadsheet/plotting pipelines, and an
// aligned text table for terminals.
//
// Field order is deterministic (name-sorted, fixed key order per object), so
// two runs of the same binary produce byte-identical output modulo the
// metric values themselves — sidecars are diffable.

#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace spinscope::telemetry {

/// Serializes the whole registry as one JSON object:
///
///   {"schema":"spinscope-telemetry-v1",
///    "counters":{"name":123,...},
///    "gauges":{"name":1.5,...},
///    "histograms":{"name":{"count":N,"sum":S,"min":m,"max":M,
///                          "spec":{"min_value":..,"factor":..,"buckets":N},
///                          "bucket_counts":[...]},...}}
[[nodiscard]] std::string to_json(const MetricsRegistry& registry);

/// Flat CSV: `kind,name,field,value` rows (counters/gauges one row each,
/// histograms one row per summary field plus one per non-empty bucket).
[[nodiscard]] std::string to_csv(const MetricsRegistry& registry);

/// True when `name` records host wall-clock time and is therefore different
/// on every run by nature: phase spans (".phase." infix, see ScopedTimer)
/// and wall-clock-derived rates ("_per_sec" suffix). Everything else in the
/// registry is a pure function of (population, options, seed).
[[nodiscard]] bool is_wall_clock_metric(const std::string& name);

/// True when `name` depends on shard chunk geometry rather than on scan
/// results: the "bytes.pool" datagram-pool counters (hit/miss ratios change
/// with how many domains share one chunk-private pool, DESIGN.md §10) — so
/// the deterministic view must drop them even though they are repeatable
/// for a fixed chunk size.
[[nodiscard]] bool is_chunk_geometry_metric(const std::string& name);

/// The DETERMINISM-CONTRACT view of a registry (DESIGN.md §9): to_csv minus
/// (a) wall-clock metrics, (b) chunk-geometry metrics (buffer-pool
/// counters), and (c) histogram `sum` rows, whose floating-point
/// accumulation order depends on the shard chunk size. Two campaigns with
/// identical population + ScanOptions produce byte-identical
/// deterministic_csv output regardless of thread count, chunk size or host
/// load — this is the representation the golden fixtures and the parallel
/// determinism suite compare.
[[nodiscard]] std::string deterministic_csv(const MetricsRegistry& registry);

/// Aligned text table (util::TextTable) for human consumption.
[[nodiscard]] std::string render_table(const MetricsRegistry& registry);

/// Writes to_json() to `path`. Returns false when the file cannot be
/// opened/written.
bool write_json_file(const MetricsRegistry& registry, const std::string& path);

}  // namespace spinscope::telemetry
