#include "telemetry/resource.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace spinscope::telemetry {

namespace alloc {

namespace {
std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_active{false};
}  // namespace

void record(std::size_t bytes) noexcept {
    g_count.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void mark_active() noexcept { g_active.store(true, std::memory_order_relaxed); }

bool active() noexcept { return g_active.load(std::memory_order_relaxed); }

std::uint64_t count() noexcept { return g_count.load(std::memory_order_relaxed); }

std::uint64_t bytes() noexcept { return g_bytes.load(std::memory_order_relaxed); }

}  // namespace alloc

AllocSnapshot::AllocSnapshot() : count{alloc::count()}, bytes{alloc::bytes()} {}

std::uint64_t AllocSnapshot::count_since() const noexcept {
    return alloc::count() - count;
}

std::uint64_t AllocSnapshot::bytes_since() const noexcept {
    return alloc::bytes() - bytes;
}

namespace {

/// Reads one "<key>:  <n> kB" line from /proc/self/status; 0 when the file
/// or key is unavailable (non-Linux hosts).
std::uint64_t proc_status_kb(const char* key) {
    std::FILE* f = std::fopen("/proc/self/status", "re");
    if (f == nullptr) return 0;
    char line[256];
    const std::size_t key_len = std::strlen(key);
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof line, f) != nullptr) {
        if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') continue;
        unsigned long long value = 0;
        if (std::sscanf(line + key_len + 1, "%llu", &value) == 1) kb = value;
        break;
    }
    std::fclose(f);
    return kb;
}

}  // namespace

std::uint64_t peak_rss_bytes() {
    if (const std::uint64_t kb = proc_status_kb("VmHWM"); kb > 0) return kb * 1024;
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
        return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
        return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kB on Linux
#endif
    }
#endif
    return 0;
}

std::uint64_t current_rss_bytes() { return proc_status_kb("VmRSS") * 1024; }

ResourceProbe::ResourceProbe(std::string phase)
    : phase_{std::move(phase)}, wall_start_{std::chrono::steady_clock::now()} {}

ResourceProbe::Report ResourceProbe::sample() const {
    Report report;
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_)
            .count();
    report.alloc_active = alloc::active();
    if (report.alloc_active) {
        report.allocs = start_.count_since();
        report.alloc_bytes = start_.bytes_since();
    }
    report.peak_rss = peak_rss_bytes();
    return report;
}

void ResourceProbe::publish(MetricsRegistry& registry) const {
    const Report report = sample();
    const std::string prefix = "obs.resource." + phase_ + ".";
    registry.gauge(prefix + "wall_seconds").set(report.wall_seconds);
    registry.gauge(prefix + "peak_rss_bytes").set_max(static_cast<double>(report.peak_rss));
    if (report.alloc_active) {
        registry.gauge(prefix + "allocs").set(static_cast<double>(report.allocs));
        registry.gauge(prefix + "alloc_bytes")
            .set(static_cast<double>(report.alloc_bytes));
    }
}

}  // namespace spinscope::telemetry
