// spinscope/telemetry/span.hpp
//
// Wall-clock spans for profiling campaign phases (resolve → attempt →
// redirect → trace-finalize) plus simulated-time accounting.
//
// A Span measures host wall-clock time — where the *scanner* spends its CPU
// budget, the quantity every perf PR optimizes. Simulated time (where the
// *modelled network* spends its time) is recorded separately via
// record_sim_time; the two must never be mixed, which is why the sim-time
// helper takes a util::Duration and the span does not expose one.

#pragma once

#include <chrono>
#include <string>

#include "telemetry/metrics.hpp"
#include "util/time.hpp"

namespace spinscope::telemetry {

/// Default geometry for wall-clock phase histograms: bucket 0 starts at
/// 1 us, doubling 32 times (covers 1 us .. ~4300 s).
[[nodiscard]] constexpr HistogramSpec wall_ms_spec() noexcept {
    return HistogramSpec{0.001, 2.0, 32};
}

/// Default geometry for simulated-time histograms: bucket 0 starts at
/// 0.1 ms, doubling 24 times (covers 0.1 ms .. ~28 min of sim time).
[[nodiscard]] constexpr HistogramSpec sim_ms_spec() noexcept {
    return HistogramSpec{0.1, 2.0, 24};
}

/// One manually finished wall-clock measurement. finish() records the
/// elapsed milliseconds into histogram `<name>` (created with wall_ms_spec)
/// and returns them; a Span abandoned without finish() records nothing.
class Span {
public:
    Span(MetricsRegistry& registry, std::string name);

    /// Records the elapsed time; idempotent (only the first call records).
    double finish();

    [[nodiscard]] bool finished() const noexcept { return finished_; }

private:
    MetricsRegistry* registry_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    bool finished_ = false;
};

/// RAII wrapper: records on scope exit. The workhorse for phase profiling:
///
///     { telemetry::ScopedTimer t{reg, "scanner.phase.attempt_ms"}; ... }
class ScopedTimer {
public:
    ScopedTimer(MetricsRegistry& registry, std::string name)
        : span_{registry, std::move(name)} {}
    ~ScopedTimer() { span_.finish(); }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    Span span_;
};

/// Records a simulated-time duration (ms) into histogram `<name>` (created
/// with sim_ms_spec). Negative durations are clamped to zero.
void record_sim_time(MetricsRegistry& registry, const std::string& name, util::Duration d);

}  // namespace spinscope::telemetry
