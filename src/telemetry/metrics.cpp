#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace spinscope::telemetry {

Histogram::Histogram(HistogramSpec spec) : spec_{spec} {
    assert(spec_.min_value > 0.0);
    assert(spec_.factor > 1.0);
    if (spec_.bucket_count == 0) spec_.bucket_count = 1;
    bounds_.reserve(spec_.bucket_count);
    double bound = spec_.min_value;
    for (std::size_t i = 0; i < spec_.bucket_count; ++i) {
        bounds_.push_back(bound);
        bound *= spec_.factor;
    }
    counts_.assign(spec_.bucket_count, 0);
}

void Histogram::record(double value) noexcept {
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;

    // upper_bound over the precomputed bounds: first bound > value, minus
    // one, clamped into [0, buckets). Exact and platform-independent, unlike
    // a log()-based index.
    const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
    const std::size_t index =
        it == bounds_.begin() ? 0 : static_cast<std::size_t>(it - bounds_.begin()) - 1;
    ++counts_[std::min(index, counts_.size() - 1)];
}

void Histogram::merge_from(const Histogram& other) {
    if (spec_.min_value != other.spec_.min_value || spec_.factor != other.spec_.factor ||
        spec_.bucket_count != other.spec_.bucket_count) {
        throw std::invalid_argument("telemetry: histogram merge with mismatched geometry");
    }
    if (other.count_ == 0) return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

void Histogram::restore(std::uint64_t count, double sum, double min, double max,
                        const std::vector<std::uint64_t>& bucket_counts) {
    if (bucket_counts.size() != counts_.size()) {
        throw std::invalid_argument("telemetry: histogram restore with mismatched geometry");
    }
    std::uint64_t bucket_total = 0;
    for (const auto c : bucket_counts) bucket_total += c;
    if (bucket_total != count) {
        throw std::invalid_argument("telemetry: histogram restore bucket total != count");
    }
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
    counts_ = bucket_counts;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, HistogramSpec spec) {
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>(spec);
    return *slot;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
    for (const auto& [name, src] : other.counters_) counter(name).merge_from(*src);
    for (const auto& [name, src] : other.gauges_) gauge(name).merge_from(*src);
    for (const auto& [name, src] : other.histograms_) {
        histogram(name, src->spec()).merge_from(*src);
    }
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

}  // namespace spinscope::telemetry
