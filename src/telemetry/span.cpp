#include "telemetry/span.hpp"

#include <algorithm>
#include <utility>

namespace spinscope::telemetry {

Span::Span(MetricsRegistry& registry, std::string name)
    : registry_{&registry}, name_{std::move(name)}, start_{std::chrono::steady_clock::now()} {}

double Span::finish() {
    if (finished_) return 0.0;
    finished_ = true;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double ms = std::chrono::duration<double, std::milli>(elapsed).count();
    registry_->histogram(name_, wall_ms_spec()).record(ms);
    return ms;
}

void record_sim_time(MetricsRegistry& registry, const std::string& name, util::Duration d) {
    registry.histogram(name, sim_ms_spec()).record(std::max(0.0, d.as_ms()));
}

}  // namespace spinscope::telemetry
