// spinscope/telemetry/alloc_interpose.hpp
//
// Global operator new/delete interposition feeding telemetry::alloc — the
// allocation probe benches use to report allocs_per_domain-style counters
// (promoted out of bench_packet_path, which defined this privately before
// the flight-recorder PR).
//
// Include this header in EXACTLY ONE translation unit of a BINARY that wants
// heap accounting (a bench or test main). Never include it from a library:
// the replacement operators apply to the whole program, and only the final
// binary may make that choice. Binaries that skip it keep the toolchain's
// allocator untouched and telemetry::alloc::active() stays false.
//
// The replacement set is deliberately minimal — sized/aligned variants fall
// back to these via the standard's forwarding rules, matching the original
// bench interposition byte for byte in its reported counters.

#pragma once

#include <cstdlib>
#include <new>

#include "telemetry/resource.hpp"

namespace spinscope::telemetry::detail {
/// Flips alloc::active() exactly once per binary at static-init time.
inline const bool alloc_interpose_registered = [] {
    alloc::mark_active();
    return true;
}();
}  // namespace spinscope::telemetry::detail

// GCC pairs the replaceable operator new with operator delete only; it
// cannot see that this new is malloc-based when it inlines the deletes below
// into calling code, and flags the free() as mismatched. The pairing here is
// malloc/free on both sides by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
    spinscope::telemetry::alloc::record(size);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
