// spinscope/telemetry/trace.hpp
//
// Campaign flight recorder: a Chrome trace-event JSON writer (the format
// chrome://tracing and Perfetto load directly) that records where a sharded
// campaign spends its time — one lane per shard worker plus the merge
// thread, chunk lifecycle spans, retry/quarantine/watchdog instant events
// and counter tracks.
//
// Two clocks, two files. Every event carries one of two clocks:
//
//   sim   Simulated time. Spans are positioned on a deterministic virtual
//         timeline (cumulative simulated nanoseconds in merge order), so
//         the sim trace of a campaign is BYTE-IDENTICAL for every thread
//         count and across kill/resume — it is part of the determinism
//         contract (DESIGN.md §12) and safe to diff or pin.
//   wall  Host wall-clock time. Worker scheduling, queue waits, merge and
//         journal-append latencies — different on every run by nature.
//
// write() emits the sim events to the requested path and the wall events to
// a clearly-marked `<path minus .json>.wall.json` sidecar, so deterministic
// tooling never has to filter wall noise out of the golden file.
//
// Thread safety: all recording methods are safe to call concurrently (shard
// workers record wall spans while the merge thread records sim spans); the
// recorder serializes internally. Sim events must only be recorded from one
// thread (the campaign's merge thread) — their ORDER in the file is append
// order, which is what makes the sim trace deterministic.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "telemetry/metrics.hpp"

namespace spinscope::telemetry {

/// Which clock an event is timestamped on (and which output file it lands in).
enum class TraceClock { sim, wall };

/// One "key":value argument attached to a trace event. Values are stored
/// preformatted: numbers verbatim, strings JSON-quoted via TraceArg::str.
struct TraceArg {
    std::string key;
    std::string value;  ///< raw JSON scalar ("3", "1.5", "\"ok\"")

    [[nodiscard]] static TraceArg num(std::string key, std::uint64_t v);
    [[nodiscard]] static TraceArg num(std::string key, double v);
    [[nodiscard]] static TraceArg str(std::string key, const std::string& v);
};

/// Records trace events and serializes them as Chrome trace-event JSON.
class TraceRecorder {
public:
    TraceRecorder();

    /// Registers (or looks up) a lane — a Perfetto "thread" row — on the
    /// given clock. Registration order fixes the numeric tid, so lanes that
    /// must be deterministic (sim) have to be registered from one thread in
    /// a deterministic order. Returns the lane's tid.
    int lane(TraceClock clock, const std::string& name);

    /// Wall-lane helper for shard workers: returns a lane keyed by the
    /// CALLING thread, lazily named "<prefix> <n>" in first-come order.
    /// Worker identity is scheduling-dependent, which is exactly why these
    /// lanes live on the wall clock.
    int wall_lane_for_current_thread(const std::string& prefix);

    /// A complete span ("ph":"X"): [ts_ns, ts_ns + dur_ns) on `lane`.
    void complete(TraceClock clock, int lane, std::string name, std::int64_t ts_ns,
                  std::int64_t dur_ns, std::vector<TraceArg> args = {});

    /// An instant event ("ph":"i", thread scope) at ts_ns on `lane`.
    void instant(TraceClock clock, int lane, std::string name, std::int64_t ts_ns,
                 std::vector<TraceArg> args = {});

    /// One sample of the counter track `name` ("ph":"C") at ts_ns. Counter
    /// tracks are global per clock (pid-scoped), not per lane.
    void counter(TraceClock clock, const std::string& name, std::int64_t ts_ns,
                 double value);

    /// Nanoseconds of host wall clock since the recorder was constructed
    /// (the wall-trace time origin).
    [[nodiscard]] std::int64_t wall_now_ns() const;

    /// Serializes one clock's events as a self-contained Chrome trace JSON
    /// object ({"displayTimeUnit":"ms","traceEvents":[...]}). Event order is
    /// recording order; lane-name metadata events come first.
    [[nodiscard]] std::string to_json(TraceClock clock) const;

    /// Writes the sim trace to `path` and the wall trace to
    /// wall_sidecar_path(path), both atomically. Returns false when either
    /// file cannot be written.
    bool write(const std::string& path) const;

    /// `campaign.trace.json` -> `campaign.trace.wall.json` (appends
    /// `.wall.json` when `path` has no `.json` suffix).
    [[nodiscard]] static std::string wall_sidecar_path(const std::string& path);

    /// Event counts per clock, for tests and capacity planning.
    [[nodiscard]] std::size_t event_count(TraceClock clock) const;

    /// Publishes recorder bookkeeping as `trace.events_sim` /
    /// `trace.events_wall` / `trace.lanes` counters (excluded from the
    /// deterministic telemetry view — wall-event counts depend on thread
    /// scheduling and lane geometry).
    void publish_metrics(MetricsRegistry& registry) const;

private:
    struct Event {
        char phase = 'X';  ///< 'X' complete, 'i' instant, 'C' counter
        int tid = 0;
        std::int64_t ts_ns = 0;
        std::int64_t dur_ns = 0;  ///< complete spans only
        std::string name;
        std::vector<TraceArg> args;
    };

    struct Lanes {
        std::vector<std::string> names;  ///< index == tid
        std::unordered_map<std::string, int> by_name;
    };

    void record(TraceClock clock, Event event);
    [[nodiscard]] const Lanes& lanes_of(TraceClock clock) const {
        return clock == TraceClock::sim ? sim_lanes_ : wall_lanes_;
    }

    mutable std::mutex mu_;
    Lanes sim_lanes_;
    Lanes wall_lanes_;
    std::vector<Event> sim_events_;
    std::vector<Event> wall_events_;
    std::unordered_map<std::thread::id, int> thread_lanes_;
    std::int64_t wall_origin_ns_ = 0;
};

}  // namespace spinscope::telemetry
