// spinscope/telemetry/resource.hpp
//
// Host resource probes: allocation accounting, resident-set sampling and
// per-phase wall timers — the "what does this pipeline actually consume"
// half of the flight recorder (DESIGN.md §12).
//
// Allocation accounting works by interposition: a binary that wants heap
// counters includes telemetry/alloc_interpose.hpp in EXACTLY ONE translation
// unit, which defines global operator new/delete forwarding into the relaxed
// atomics here. Binaries without the interposer read zeros and
// alloc::active() == false — the probe never changes behaviour of code that
// does not opt in (libraries must NOT include the interpose header).
//
// RSS sampling reads /proc/self/status (VmHWM / VmRSS) and falls back to
// getrusage(RU_MAXRSS) for the peak; on platforms with neither, the probes
// return 0 and callers degrade gracefully.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "telemetry/metrics.hpp"

namespace spinscope::telemetry {

namespace alloc {

/// Feed one allocation into the counters (called by the interposed operator
/// new; safe from any thread, relaxed ordering — counters, not fences).
void record(std::size_t bytes) noexcept;

/// Marks that an interposer is linked into this binary (called once by the
/// interpose header's static initializer).
void mark_active() noexcept;

/// True when telemetry/alloc_interpose.hpp is linked into this binary.
[[nodiscard]] bool active() noexcept;

/// Global totals since process start (0 without an interposer).
[[nodiscard]] std::uint64_t count() noexcept;
[[nodiscard]] std::uint64_t bytes() noexcept;

}  // namespace alloc

/// Point-in-time capture of the allocation counters; `*_since()` measures
/// the traffic between the capture and now. The unit benches report
/// (allocs_per_domain and friends) is `count_since() / work_items`.
struct AllocSnapshot {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;

    AllocSnapshot();  ///< captures the current totals

    [[nodiscard]] std::uint64_t count_since() const noexcept;
    [[nodiscard]] std::uint64_t bytes_since() const noexcept;
};

/// Peak resident set of this process, in bytes (VmHWM, getrusage fallback);
/// 0 when neither source is available.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Current resident set of this process, in bytes (VmRSS); 0 when
/// /proc/self/status is unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes();

/// Measures one phase: wall time, allocation traffic and peak RSS between
/// construction and sample(). publish() writes the report as
/// `obs.resource.<phase>.*` gauges — host observations, excluded from the
/// deterministic telemetry view (telemetry::is_recovery_metric).
class ResourceProbe {
public:
    explicit ResourceProbe(std::string phase);

    struct Report {
        double wall_seconds = 0.0;
        std::uint64_t allocs = 0;       ///< 0 unless alloc::active()
        std::uint64_t alloc_bytes = 0;  ///< 0 unless alloc::active()
        std::uint64_t peak_rss = 0;     ///< process peak RSS in bytes
        bool alloc_active = false;
    };

    [[nodiscard]] Report sample() const;

    /// Publishes sample() under `obs.resource.<phase>.`: wall_seconds,
    /// allocs, alloc_bytes (only when the interposer is linked) and
    /// peak_rss_bytes gauges.
    void publish(MetricsRegistry& registry) const;

private:
    std::string phase_;
    AllocSnapshot start_;
    std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace spinscope::telemetry
