// spinscope/telemetry/metrics.hpp
//
// The campaign observability substrate: a registry of named counters, gauges
// and fixed-bucket log-scale histograms that every layer (netsim, quic,
// scanner, bench) records into.
//
// The paper's measurement pipeline (§3.2-3.3) is only trustworthy if the
// operator can see what the scanner actually did — how many domains resolved,
// how handshakes ended, how often PTO fired, where the wall-clock time went.
// This module is deliberately simple: plain structs, no locks, no atomics.
// An instance is single-threaded by design; the sharded campaign gives every
// work chunk its own private registry and merges them (merge_from) on the
// merge thread in ascending chunk order, which keeps aggregate telemetry
// deterministic across thread counts without any atomics on the hot path.
// Merge semantics per instrument: counters add, gauges max-merge (worker
// threads must only publish high-water-mark style gauges; last-write gauges
// such as rates belong to the merge thread after aggregation), histograms
// add counts/sums bucket-wise and require identical geometry.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spinscope::telemetry {

/// Monotonically increasing event count.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept { value_ += n; }
    [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
    /// Shard merge: counts are additive.
    void merge_from(const Counter& other) noexcept { value_ += other.value_; }

private:
    std::uint64_t value_ = 0;
};

/// Last-written scalar, with a max-merge helper for high-water marks.
class Gauge {
public:
    void set(double v) noexcept { value_ = v; has_value_ = true; }
    /// Keeps the larger of the current and the new value (high-water marks
    /// published once per attempt merge correctly across attempts).
    void set_max(double v) noexcept {
        if (!has_value_ || v > value_) value_ = v;
        has_value_ = true;
    }
    [[nodiscard]] double value() const noexcept { return value_; }
    [[nodiscard]] bool has_value() const noexcept { return has_value_; }
    /// Shard merge: max-merge (commutative, so the result is independent of
    /// merge order). Worker-published gauges must therefore be high-water
    /// marks; last-write gauges are set by the merge thread post-merge.
    void merge_from(const Gauge& other) noexcept {
        if (other.has_value_) set_max(other.value_);
    }

private:
    double value_ = 0.0;
    bool has_value_ = false;
};

/// Geometry of a log-scale histogram: bucket i spans
/// [min_value * factor^i, min_value * factor^(i+1)); values below the first
/// bound land in bucket 0, values at or above the last bound in the final
/// bucket. Fixed at creation so exported bucket arrays always line up.
struct HistogramSpec {
    double min_value = 0.001;  ///< lower bound of bucket 0 (e.g. 1 us in ms)
    double factor = 2.0;       ///< geometric bucket growth (> 1)
    std::size_t bucket_count = 32;
};

/// Fixed-bucket log-scale histogram (durations, sizes — anything spanning
/// orders of magnitude). Bucket bounds are precomputed by repeated
/// multiplication, so bucketing is exact and platform-independent.
class Histogram {
public:
    explicit Histogram(HistogramSpec spec);

    void record(double value) noexcept;

    [[nodiscard]] const HistogramSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    /// Smallest / largest recorded value; 0 when empty.
    [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
    [[nodiscard]] double mean() const noexcept {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept { return counts_; }
    /// Inclusive lower bound of bucket i.
    [[nodiscard]] double bucket_lower_bound(std::size_t i) const { return bounds_.at(i); }

    /// Shard merge: bucket counts, count, min and max merge exactly; `sum`
    /// adds the partial sums, which regroups the floating-point additions —
    /// deterministic for a fixed chunking, but not bit-promised across
    /// different chunk sizes (see telemetry::deterministic_csv). Throws
    /// std::invalid_argument when the geometries differ.
    void merge_from(const Histogram& other);

    /// Journal replay: overwrites the recorded state with a previously
    /// exported snapshot (count/sum/min/max plus per-bucket counts). Throws
    /// std::invalid_argument when `bucket_counts` does not match this
    /// histogram's geometry or the bucket total disagrees with `count`.
    void restore(std::uint64_t count, double sum, double min, double max,
                 const std::vector<std::uint64_t>& bucket_counts);

private:
    HistogramSpec spec_;
    std::vector<double> bounds_;  ///< bounds_[i] = min_value * factor^i
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Owns all metrics of one campaign / bench run, addressed by name.
///
/// Lookup is by full dotted name ("netsim.link.delivered"); the first lookup
/// creates the instrument, later lookups return the same instance, so call
/// sites need no registration step. References stay valid for the registry's
/// lifetime (instruments are heap-allocated and never removed).
class MetricsRegistry {
public:
    [[nodiscard]] Counter& counter(const std::string& name);
    [[nodiscard]] Gauge& gauge(const std::string& name);
    /// `spec` applies only when `name` is first created; later calls return
    /// the existing histogram unchanged (the geometry is part of the schema).
    [[nodiscard]] Histogram& histogram(const std::string& name, HistogramSpec spec = {});

    /// nullptr when the metric does not exist (read-only probes for tests
    /// and exporters; never creates).
    [[nodiscard]] const Counter* find_counter(const std::string& name) const;
    [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
    [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

    /// Name-sorted views (std::map order) for deterministic export.
    [[nodiscard]] const std::map<std::string, std::unique_ptr<Counter>>& counters() const noexcept {
        return counters_;
    }
    [[nodiscard]] const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const noexcept {
        return gauges_;
    }
    [[nodiscard]] const std::map<std::string, std::unique_ptr<Histogram>>& histograms()
        const noexcept {
        return histograms_;
    }

    /// Total number of registered instruments of all kinds.
    [[nodiscard]] std::size_t size() const noexcept {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /// Merges every instrument of `other` into this registry, creating
    /// missing instruments (histograms inherit the source geometry). The
    /// sharded campaign calls this once per work chunk, in ascending chunk
    /// order on the merge thread, so merged telemetry is deterministic and
    /// independent of worker scheduling. Counters add, gauges max-merge,
    /// histograms merge per Histogram::merge_from.
    void merge_from(const MetricsRegistry& other);

private:
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace spinscope::telemetry
