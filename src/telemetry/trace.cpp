#include "telemetry/trace.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/atomic_file.hpp"

namespace spinscope::telemetry {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    out += buf;
}

/// Trace timestamps are microseconds (the trace-event convention). Emitting
/// them as `<whole>.<frac3>` derived from integer nanoseconds keeps the JSON
/// a pure function of the recorded integers — no floating-point formatting
/// in the deterministic path.
void append_us_from_ns(std::string& out, std::int64_t ns) {
    if (ns < 0) {
        out.push_back('-');
        ns = -ns;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%lld.%03lld",
                  static_cast<long long>(ns / 1000), static_cast<long long>(ns % 1000));
    out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
    out.push_back('"');
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    out.push_back('"');
}

}  // namespace

TraceArg TraceArg::num(std::string key, std::uint64_t v) {
    TraceArg arg;
    arg.key = std::move(key);
    append_u64(arg.value, v);
    return arg;
}

TraceArg TraceArg::num(std::string key, double v) {
    TraceArg arg;
    arg.key = std::move(key);
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", std::isfinite(v) ? v : 0.0);
    arg.value = buf;
    return arg;
}

TraceArg TraceArg::str(std::string key, const std::string& v) {
    TraceArg arg;
    arg.key = std::move(key);
    append_quoted(arg.value, v);
    return arg;
}

TraceRecorder::TraceRecorder() {
    wall_origin_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
}

int TraceRecorder::lane(TraceClock clock, const std::string& name) {
    std::lock_guard<std::mutex> lock{mu_};
    Lanes& lanes = clock == TraceClock::sim ? sim_lanes_ : wall_lanes_;
    const auto it = lanes.by_name.find(name);
    if (it != lanes.by_name.end()) return it->second;
    const int tid = static_cast<int>(lanes.names.size());
    lanes.names.push_back(name);
    lanes.by_name.emplace(name, tid);
    return tid;
}

int TraceRecorder::wall_lane_for_current_thread(const std::string& prefix) {
    const auto id = std::this_thread::get_id();
    {
        std::lock_guard<std::mutex> lock{mu_};
        const auto it = thread_lanes_.find(id);
        if (it != thread_lanes_.end()) return it->second;
    }
    // Name by first-come registration order; the racy window between the two
    // locks only costs a re-lookup inside lane(), never a duplicate name for
    // the same thread (thread_lanes_ is re-checked under the lock).
    std::lock_guard<std::mutex> lock{mu_};
    const auto it = thread_lanes_.find(id);
    if (it != thread_lanes_.end()) return it->second;
    const std::string name =
        prefix + " " + std::to_string(thread_lanes_.size());
    const auto existing = wall_lanes_.by_name.find(name);
    int tid = 0;
    if (existing != wall_lanes_.by_name.end()) {
        tid = existing->second;
    } else {
        tid = static_cast<int>(wall_lanes_.names.size());
        wall_lanes_.names.push_back(name);
        wall_lanes_.by_name.emplace(name, tid);
    }
    thread_lanes_.emplace(id, tid);
    return tid;
}

void TraceRecorder::record(TraceClock clock, Event event) {
    std::lock_guard<std::mutex> lock{mu_};
    (clock == TraceClock::sim ? sim_events_ : wall_events_).push_back(std::move(event));
}

void TraceRecorder::complete(TraceClock clock, int lane, std::string name,
                             std::int64_t ts_ns, std::int64_t dur_ns,
                             std::vector<TraceArg> args) {
    Event event;
    event.phase = 'X';
    event.tid = lane;
    event.ts_ns = ts_ns;
    event.dur_ns = dur_ns < 0 ? 0 : dur_ns;
    event.name = std::move(name);
    event.args = std::move(args);
    record(clock, std::move(event));
}

void TraceRecorder::instant(TraceClock clock, int lane, std::string name,
                            std::int64_t ts_ns, std::vector<TraceArg> args) {
    Event event;
    event.phase = 'i';
    event.tid = lane;
    event.ts_ns = ts_ns;
    event.name = std::move(name);
    event.args = std::move(args);
    record(clock, std::move(event));
}

void TraceRecorder::counter(TraceClock clock, const std::string& name,
                            std::int64_t ts_ns, double value) {
    Event event;
    event.phase = 'C';
    event.tid = 0;
    event.ts_ns = ts_ns;
    event.name = name;
    event.args.push_back(TraceArg::num("value", value));
    record(clock, std::move(event));
}

std::int64_t TraceRecorder::wall_now_ns() const {
    const std::int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count();
    return now - wall_origin_ns_;
}

std::string TraceRecorder::to_json(TraceClock clock) const {
    std::lock_guard<std::mutex> lock{mu_};
    const Lanes& lanes = lanes_of(clock);
    const std::vector<Event>& events =
        clock == TraceClock::sim ? sim_events_ : wall_events_;

    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    const auto comma = [&] {
        if (!first) out.push_back(',');
        first = false;
    };

    // Process + lane names first (metadata events), so viewers label rows
    // before the first real event references them.
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":"
           "{\"name\":";
    append_quoted(out, clock == TraceClock::sim ? "spinscope campaign (simulated time)"
                                                : "spinscope campaign (wall time)");
    out += "}}";
    for (std::size_t tid = 0; tid < lanes.names.size(); ++tid) {
        comma();
        out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
        append_u64(out, tid);
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
        append_quoted(out, lanes.names[tid]);
        out += "}}";
        // Pin row order to registration order (merge lane first).
        comma();
        out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
        append_u64(out, tid);
        out += ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":";
        append_u64(out, tid);
        out += "}}";
    }

    for (const Event& event : events) {
        comma();
        out += "{\"ph\":\"";
        out.push_back(event.phase);
        out += "\",\"pid\":1,\"tid\":";
        append_u64(out, static_cast<std::uint64_t>(event.tid));
        out += ",\"ts\":";
        append_us_from_ns(out, event.ts_ns);
        if (event.phase == 'X') {
            out += ",\"dur\":";
            append_us_from_ns(out, event.dur_ns);
        }
        if (event.phase == 'i') out += ",\"s\":\"t\"";
        out += ",\"name\":";
        append_quoted(out, event.name);
        out += ",\"cat\":";
        append_quoted(out, clock == TraceClock::sim ? "sim" : "wall");
        if (!event.args.empty()) {
            out += ",\"args\":{";
            for (std::size_t i = 0; i < event.args.size(); ++i) {
                if (i > 0) out.push_back(',');
                append_quoted(out, event.args[i].key);
                out.push_back(':');
                out += event.args[i].value;
            }
            out.push_back('}');
        }
        out.push_back('}');
    }
    out += "]}";
    return out;
}

std::string TraceRecorder::wall_sidecar_path(const std::string& path) {
    static constexpr char kJson[] = ".json";
    constexpr std::size_t kJsonLen = sizeof(kJson) - 1;
    if (path.size() > kJsonLen &&
        path.compare(path.size() - kJsonLen, kJsonLen, kJson) == 0) {
        return path.substr(0, path.size() - kJsonLen) + ".wall.json";
    }
    return path + ".wall.json";
}

bool TraceRecorder::write(const std::string& path) const {
    return util::write_file_atomic(path, to_json(TraceClock::sim) + "\n") &&
           util::write_file_atomic(wall_sidecar_path(path),
                                   to_json(TraceClock::wall) + "\n");
}

std::size_t TraceRecorder::event_count(TraceClock clock) const {
    std::lock_guard<std::mutex> lock{mu_};
    return clock == TraceClock::sim ? sim_events_.size() : wall_events_.size();
}

void TraceRecorder::publish_metrics(MetricsRegistry& registry) const {
    std::lock_guard<std::mutex> lock{mu_};
    registry.counter("trace.events_sim").add(sim_events_.size());
    registry.counter("trace.events_wall").add(wall_events_.size());
    registry.counter("trace.lanes").add(sim_lanes_.names.size() +
                                        wall_lanes_.names.size());
}

}  // namespace spinscope::telemetry
