// spinscope/analysis/accuracy.hpp
//
// RTT accuracy analysis (paper §5, Figures 3 and 4): histograms of the
// absolute difference and the mapped ratio between per-connection means of
// spin-bit estimates and the QUIC stack baseline, for Spin and Grease
// connections, in received (R) and packet-number-sorted (S) order — plus the
// §5.2 reordering-impact statistics.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/accuracy.hpp"
#include "util/stats.hpp"

namespace spinscope::analysis {

/// The four series of Figures 3/4.
enum class AccuracySeries : std::uint8_t {
    spin_received = 0,   ///< Spin (R)
    spin_sorted = 1,     ///< Spin (S)
    grease_received = 2, ///< Grease (R)
    grease_sorted = 3,   ///< Grease (S)
};
inline constexpr std::size_t kSeriesCount = 4;

[[nodiscard]] constexpr const char* to_cstring(AccuracySeries s) noexcept {
    switch (s) {
        case AccuracySeries::spin_received: return "Spin (R)";
        case AccuracySeries::spin_sorted: return "Spin (S)";
        case AccuracySeries::grease_received: return "Grease (R)";
        case AccuracySeries::grease_sorted: return "Grease (S)";
    }
    return "?";
}

/// Headline numbers the paper quotes for one series.
struct AccuracyHeadline {
    std::uint64_t connections = 0;
    double overestimate_share = 0.0;      ///< abs diff > 0 (97.7 % for Spin R)
    double within_25ms_share = 0.0;       ///< |abs diff| <= 25 ms (28.8 %)
    double over_200ms_share = 0.0;        ///< abs diff > 200 ms (41.3 %)
    double within_ratio_125_share = 0.0;  ///< |ratio| <= 1.25 (30.5 %)
    double within_ratio_2_share = 0.0;    ///< |ratio| <= 2 (36.0 %)
    double over_ratio_3_share = 0.0;      ///< ratio > 3 (51.7 %)
    double underestimate_share = 0.0;     ///< ratio < 0 (Grease: 46.0 %)
};

/// §5.2 reordering impact (Spin connections, R vs S).
struct ReorderingImpact {
    std::uint64_t connections = 0;       ///< comparable spin connections
    std::uint64_t differing = 0;         ///< mean(R) != mean(S)
    std::uint64_t diff_below_1ms = 0;    ///< |mean(R)-mean(S)| < 1 ms
    std::uint64_t improved = 0;          ///< sorting moved mean toward QUIC
    [[nodiscard]] double differing_share() const noexcept;
    [[nodiscard]] double below_1ms_share() const noexcept;
    [[nodiscard]] double improved_share() const noexcept;
};

/// Streaming accuracy aggregator; feed every spin-candidate connection.
class AccuracyAggregator {
public:
    AccuracyAggregator();

    /// Adds one assessed connection (ignores non-candidates).
    void add(const core::ConnectionAssessment& assessment);

    [[nodiscard]] const util::Histogram& abs_histogram(AccuracySeries s) const {
        return abs_[static_cast<std::size_t>(s)];
    }
    [[nodiscard]] const util::Histogram& ratio_histogram(AccuracySeries s) const {
        return ratio_[static_cast<std::size_t>(s)];
    }
    [[nodiscard]] AccuracyHeadline headline(AccuracySeries s) const;
    [[nodiscard]] const ReorderingImpact& reordering() const noexcept { return reordering_; }

    /// Figure 3: relative histogram of abs differences, all four series.
    [[nodiscard]] std::string render_abs_figure() const;
    /// Figure 4: relative histogram of mapped ratios, all four series.
    [[nodiscard]] std::string render_ratio_figure() const;
    /// §5.2 text block.
    [[nodiscard]] std::string render_reordering_impact() const;
    /// Headline numbers vs the paper's, for EXPERIMENTS.md-style output.
    [[nodiscard]] std::string render_headlines() const;

private:
    void add_series(AccuracySeries series, const core::ConnectionAssessment& assessment,
                    core::PacketOrder order);

    std::vector<util::Histogram> abs_;
    std::vector<util::Histogram> ratio_;
    std::vector<std::vector<double>> abs_values_;    // per series, for headline shares
    std::vector<std::vector<double>> ratio_values_;
    ReorderingImpact reordering_;
};

}  // namespace spinscope::analysis
