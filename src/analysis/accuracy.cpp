#include "analysis/accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/format.hpp"

namespace spinscope::analysis {

namespace {

// Figure 3 bins: milliseconds of absolute difference spin - QUIC.
std::vector<double> abs_edges() {
    return {-400, -200, -100, -50, -25, 0, 25, 50, 100, 200, 400, 800, 1600};
}

// Figure 4 bins: mapped ratio in (-inf,-1] u [1,inf).
std::vector<double> ratio_edges() {
    return {-8, -4, -3, -2, -1.25, -1.0, 1.0, 1.25, 1.5, 2, 3, 4, 8, 16};
}

[[nodiscard]] double share_where(const std::vector<double>& values,
                                 bool (*predicate)(double)) {
    if (values.empty()) return 0.0;
    const auto n = std::count_if(values.begin(), values.end(), predicate);
    return static_cast<double>(n) / static_cast<double>(values.size());
}

}  // namespace

double ReorderingImpact::differing_share() const noexcept {
    return connections == 0 ? 0.0
                            : static_cast<double>(differing) / static_cast<double>(connections);
}

double ReorderingImpact::below_1ms_share() const noexcept {
    return differing == 0 ? 0.0
                          : static_cast<double>(diff_below_1ms) / static_cast<double>(differing);
}

double ReorderingImpact::improved_share() const noexcept {
    return differing == 0 ? 0.0
                          : static_cast<double>(improved) / static_cast<double>(differing);
}

AccuracyAggregator::AccuracyAggregator() {
    for (std::size_t i = 0; i < kSeriesCount; ++i) {
        abs_.emplace_back(abs_edges());
        ratio_.emplace_back(ratio_edges());
    }
    abs_values_.resize(kSeriesCount);
    ratio_values_.resize(kSeriesCount);
}

void AccuracyAggregator::add_series(AccuracySeries series,
                                    const core::ConnectionAssessment& assessment,
                                    core::PacketOrder order) {
    const auto abs_diff = assessment.abs_diff_ms(order);
    const auto ratio = assessment.mapped_ratio(order);
    if (!abs_diff || !ratio) return;
    const auto idx = static_cast<std::size_t>(series);
    abs_[idx].add(*abs_diff);
    ratio_[idx].add(*ratio);
    abs_values_[idx].push_back(*abs_diff);
    ratio_values_[idx].push_back(*ratio);
}

void AccuracyAggregator::add(const core::ConnectionAssessment& assessment) {
    using core::PacketOrder;
    using core::SpinBehavior;
    if (assessment.behavior == SpinBehavior::spinning) {
        add_series(AccuracySeries::spin_received, assessment, PacketOrder::received);
        add_series(AccuracySeries::spin_sorted, assessment, PacketOrder::sorted);

        const auto mean_r = assessment.abs_diff_ms(PacketOrder::received);
        const auto mean_s = assessment.abs_diff_ms(PacketOrder::sorted);
        if (mean_r && mean_s) {
            ++reordering_.connections;
            const double delta = std::fabs(*mean_r - *mean_s);
            if (delta > 1e-9) {
                ++reordering_.differing;
                if (delta < 1.0) ++reordering_.diff_below_1ms;
                if (std::fabs(*mean_s) < std::fabs(*mean_r)) ++reordering_.improved;
            }
        }
    } else if (assessment.behavior == SpinBehavior::greased) {
        add_series(AccuracySeries::grease_received, assessment, PacketOrder::received);
        add_series(AccuracySeries::grease_sorted, assessment, PacketOrder::sorted);
    }
}

AccuracyHeadline AccuracyAggregator::headline(AccuracySeries s) const {
    const auto idx = static_cast<std::size_t>(s);
    AccuracyHeadline h;
    const auto& abs_values = abs_values_[idx];
    const auto& ratio_values = ratio_values_[idx];
    h.connections = abs_values.size();
    h.overestimate_share = share_where(abs_values, [](double v) { return v > 0.0; });
    h.within_25ms_share = share_where(abs_values, [](double v) { return std::fabs(v) <= 25.0; });
    h.over_200ms_share = share_where(abs_values, [](double v) { return v > 200.0; });
    h.within_ratio_125_share =
        share_where(ratio_values, [](double v) { return std::fabs(v) <= 1.25; });
    h.within_ratio_2_share =
        share_where(ratio_values, [](double v) { return std::fabs(v) <= 2.0; });
    h.over_ratio_3_share = share_where(ratio_values, [](double v) { return v > 3.0; });
    h.underestimate_share = share_where(ratio_values, [](double v) { return v < 0.0; });
    return h;
}

namespace {

std::string render_histogram(const char* title,
                             const std::vector<const util::Histogram*>& series,
                             const std::vector<const char*>& labels,
                             const char* unit) {
    std::ostringstream out;
    out << title << "\n";
    util::TextTable table;
    std::vector<std::string> header{std::string{"bin ("} + unit + ")"};
    for (const auto* label : labels) header.emplace_back(label);
    table.add_row(std::move(header));

    const auto& edges = series.front()->edges();
    auto row_for = [&](const std::string& name, auto getter) {
        std::vector<std::string> row{name};
        for (const auto* h : series) row.push_back(util::percent(getter(*h), 2));
        table.add_row(std::move(row));
    };
    row_for("< " + util::fixed(edges.front(), 2),
            [](const util::Histogram& h) { return h.underflow_share(); });
    for (std::size_t b = 0; b + 1 < edges.size(); ++b) {
        row_for("[" + util::fixed(edges[b], 2) + ", " + util::fixed(edges[b + 1], 2) + ")",
                [b](const util::Histogram& h) { return h.share(b); });
    }
    row_for(">= " + util::fixed(edges.back(), 2),
            [](const util::Histogram& h) { return h.overflow_share(); });
    out << table.render();
    return out.str();
}

}  // namespace

std::string AccuracyAggregator::render_abs_figure() const {
    return render_histogram(
        "Figure 3: abs. difference between means of spin-bit and QUIC estimate",
        {&abs_[0], &abs_[1], &abs_[2], &abs_[3]},
        {to_cstring(AccuracySeries::spin_received), to_cstring(AccuracySeries::spin_sorted),
         to_cstring(AccuracySeries::grease_received),
         to_cstring(AccuracySeries::grease_sorted)},
        "ms");
}

std::string AccuracyAggregator::render_ratio_figure() const {
    return render_histogram(
        "Figure 4: mapped ratio of the means of spin-bit and QUIC estimate",
        {&ratio_[0], &ratio_[1], &ratio_[2], &ratio_[3]},
        {to_cstring(AccuracySeries::spin_received), to_cstring(AccuracySeries::spin_sorted),
         to_cstring(AccuracySeries::grease_received),
         to_cstring(AccuracySeries::grease_sorted)},
        "x");
}

std::string AccuracyAggregator::render_reordering_impact() const {
    std::ostringstream out;
    out << "Reordering impact (Spin connections, R vs S):\n";
    out << "  comparable connections : " << reordering_.connections << "\n";
    out << "  differing R/S results  : " << reordering_.differing << " ("
        << util::percent(reordering_.differing_share(), 2) << ")   [paper: 0.28 %]\n";
    out << "  |difference| < 1 ms    : " << util::percent(reordering_.below_1ms_share(), 1)
        << " of differing   [paper: 98.7 %]\n";
    out << "  sorting improves result: " << util::percent(reordering_.improved_share(), 1)
        << " of differing   [paper: 93.1 %]\n";
    return out.str();
}

std::string AccuracyAggregator::render_headlines() const {
    std::ostringstream out;
    util::TextTable table;
    table.add_row({"Series", "conns", ">0 (over)", "<=25ms", ">200ms", "<=1.25x", "<=2x",
                   ">3x", "under (<0)"});
    for (std::size_t i = 0; i < kSeriesCount; ++i) {
        const auto h = headline(static_cast<AccuracySeries>(i));
        table.add_row({to_cstring(static_cast<AccuracySeries>(i)),
                       std::to_string(h.connections), util::percent(h.overestimate_share),
                       util::percent(h.within_25ms_share), util::percent(h.over_200ms_share),
                       util::percent(h.within_ratio_125_share),
                       util::percent(h.within_ratio_2_share),
                       util::percent(h.over_ratio_3_share),
                       util::percent(h.underestimate_share)});
    }
    table.add_row({"paper Spin(R)", "~86M", "97.7 %", "28.8 %", "41.3 %", "30.5 %", "36.0 %",
                   "51.7 %", "2.3 %"});
    table.add_row({"paper Grease(R)", "", "", "", "", "", "62.5 %", "", "46.0 %"});
    out << table.render();
    return out.str();
}

}  // namespace spinscope::analysis
