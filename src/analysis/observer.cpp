#include "analysis/observer.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/flow_monitor.hpp"
#include "quic/packet.hpp"
#include "util/rng.hpp"

namespace spinscope::analysis {

void ObserverReplay::add(const qlog::Trace& trace) {
    const auto observations = core::spin_observations(trace);
    if (observations.empty()) return;

    Connection conn;
    // Flow identity is a derived sub-stream of the replay seed keyed by the
    // registration index (DESIGN.md §9 scheme) — stable across runs, and
    // 64-bit, so accidental key sharing between connections is negligible
    // while slot collisions in the constrained table remain the experiment.
    conn.key = util::derive_stream_seed(seed_, static_cast<std::uint64_t>(connections_.size()));
    conn.assessment = core::assess_connection(trace);
    const auto conn_index = static_cast<std::uint32_t>(connections_.size());
    connections_.push_back(std::move(conn));

    std::uint32_t seq = 0;
    events_.reserve(events_.size() + observations.size());
    for (const auto& obs : observations) {
        events_.push_back(Event{obs.time.count_nanos(), conn_index, seq++, obs});
    }
}

std::vector<ObserverReplay::Event> ObserverReplay::sorted_events() const {
    std::vector<Event> sorted = events_;
    std::sort(sorted.begin(), sorted.end(), [](const Event& a, const Event& b) {
        return std::tie(a.time_ns, a.conn, a.seq) < std::tie(b.time_ns, b.conn, b.seq);
    });
    return sorted;
}

template <typename Monitor>
void ObserverReplay::drive(Monitor& monitor) const {
    std::vector<std::uint8_t> datagram;
    static constexpr std::uint8_t kPing[] = {0x01};
    for (const Event& event : sorted_events()) {
        quic::PacketHeader header;
        header.type = quic::PacketType::one_rtt;
        header.dcid = quic::ConnectionId::from_u64(connections_[event.conn].key);
        header.packet_number = event.obs.packet_number;
        header.spin = event.obs.spin;
        header.vec = event.obs.vec;
        datagram.clear();
        quic::encode_packet(datagram, header, kPing,
                            event.obs.packet_number > 0 ? event.obs.packet_number - 1 : 0);
        monitor.on_datagram(util::TimePoint::origin() + util::Duration::nanos(event.time_ns),
                            bytes::ConstByteSpan{datagram.data(), datagram.size()});
    }
}

ObserverRun ObserverReplay::run_idealized(core::ObserverConfig config) const {
    core::FlowMonitor monitor{config};
    drive(monitor);

    ObserverRun run;
    run.summary.connections = connections_.size();
    double err_sum = 0.0;
    for (const Connection& conn : connections_) {
        if (conn.assessment.spin_received.has_samples()) ++run.summary.candidates;
        const auto stats = monitor.find_key(conn.key);
        core::ConnectionAssessment assessed = conn.assessment;
        if (stats) {
            // A wire observer sees arrival order only (PNs are protected),
            // so both series carry the received-order result.
            assessed.spin_received = stats->spin;
            assessed.spin_sorted = stats->spin;
        } else {
            assessed.spin_received = core::SpinRttResult{};
            assessed.spin_sorted = core::SpinRttResult{};
        }
        if (stats && stats->spin.has_samples()) {
            ++run.summary.measured;
            if (conn.assessment.has_quic_baseline) {
                ++run.summary.comparable;
                const double err =
                    std::abs(stats->spin.mean_ms() - conn.assessment.quic_mean_ms);
                err_sum += err;
                if (err <= 25.0) ++run.summary.within_25ms;
            }
        }
        run.aggregator.add(assessed);
    }
    if (run.summary.candidates > 0) {
        run.summary.coverage = static_cast<double>(run.summary.measured) /
                               static_cast<double>(run.summary.candidates);
    }
    if (run.summary.comparable > 0) {
        run.summary.mean_abs_err_ms =
            err_sum / static_cast<double>(run.summary.comparable);
    }
    return run;
}

ObserverRun ObserverReplay::run_constrained(const core::ConstrainedConfig& config) const {
    core::ConstrainedMonitor monitor{config};
    drive(monitor);

    ObserverRun run;
    run.summary.connections = connections_.size();
    double err_sum = 0.0;
    for (const Connection& conn : connections_) {
        if (conn.assessment.spin_received.has_samples()) ++run.summary.candidates;
        const auto stats = monitor.find_key(conn.key);
        core::ConnectionAssessment assessed = conn.assessment;
        core::SpinRttResult observed;
        if (stats) {
            observed.edge_count = stats->edge_count;
            observed.saw_zero = stats->saw_zero;
            observed.saw_one = stats->saw_one;
            // The hardware estimate is one number: the integer EWMA. Wrap it
            // as a single sample so the Fig. 3/4 machinery (per-connection
            // means) scores it like any other estimator.
            if (stats->has_estimate) observed.samples_ms.push_back(stats->srtt_ms());
        }
        assessed.spin_received = observed;
        assessed.spin_sorted = observed;
        if (stats && stats->has_estimate) {
            ++run.summary.measured;
            if (conn.assessment.has_quic_baseline) {
                ++run.summary.comparable;
                const double err =
                    std::abs(stats->srtt_ms() - conn.assessment.quic_mean_ms);
                err_sum += err;
                if (err <= 25.0) ++run.summary.within_25ms;
            }
        }
        run.aggregator.add(assessed);
    }
    if (run.summary.candidates > 0) {
        run.summary.coverage = static_cast<double>(run.summary.measured) /
                               static_cast<double>(run.summary.candidates);
    }
    if (run.summary.comparable > 0) {
        run.summary.mean_abs_err_ms =
            err_sum / static_cast<double>(run.summary.comparable);
    }
    run.summary.table = monitor.counters();
    return run;
}

}  // namespace spinscope::analysis
