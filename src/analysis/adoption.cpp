#include "analysis/adoption.hpp"

#include <algorithm>

#include "util/format.hpp"

namespace spinscope::analysis {

using util::group_digits;
using util::percent;
using util::TextTable;

DomainSpinClass classify_domain(const scanner::DomainScan& scan) {
    bool any_quic = false;
    bool any_spin = false;
    bool any_grease = false;
    bool any_zero = false;
    bool any_one = false;
    for (const auto& trace : scan.connections) {
        if (trace.outcome != qlog::ConnectionOutcome::ok) continue;
        any_quic = true;
        const auto assessment = core::assess_connection(trace);
        switch (assessment.behavior) {
            case core::SpinBehavior::spinning: any_spin = true; break;
            case core::SpinBehavior::greased: any_grease = true; break;
            case core::SpinBehavior::all_zero: any_zero = true; break;
            case core::SpinBehavior::all_one: any_one = true; break;
            case core::SpinBehavior::no_one_rtt: break;
        }
    }
    if (!any_quic) return DomainSpinClass::not_quic;
    if (any_spin) return DomainSpinClass::spinning;
    if (any_grease) return DomainSpinClass::greased;
    if (any_zero && any_one) return DomainSpinClass::mixed;
    if (any_one) return DomainSpinClass::all_one;
    return DomainSpinClass::all_zero;  // all_zero or only no_one_rtt traces
}

bool in_list(const web::Domain& domain, ListId list) noexcept {
    switch (list) {
        case ListId::toplists: return domain.on_toplist;
        case ListId::czds: return domain.segment() != web::Segment::toplist_extra;
        case ListId::cno: return domain.segment() == web::Segment::czds_cno;
    }
    return false;
}

HostSet::HostSet(const web::PopulationModel& model, bool ipv6) : ipv6_{ipv6} {
    const std::size_t orgs = model.orgs().size();
    base_.assign(orgs + 1, 0);
    for (std::size_t i = 0; i < orgs; ++i) {
        const std::uint64_t pool =
            ipv6 ? model.ipv6_pool(i) : static_cast<std::uint64_t>(model.ipv4_pool(i));
        base_[i + 1] = base_[i] + pool;
    }
    bits_.assign((base_[orgs] + 63) / 64, 0);
}

std::uint64_t HostSet::slot(const web::Domain& d) const noexcept {
    const std::uint64_t host = ipv6_ ? d.ipv6_host : d.ipv4_host;
    return base_[d.org] + host;
}

bool HostSet::insert(const web::Domain& d) {
    const std::uint64_t s = slot(d);
    const std::uint64_t mask = 1ULL << (s % 64);
    if ((bits_[s / 64] & mask) != 0) return false;
    bits_[s / 64] |= mask;
    ++count_;
    return true;
}

bool HostSet::contains(const web::Domain& d) const noexcept {
    const std::uint64_t s = slot(d);
    return (bits_[s / 64] & (1ULL << (s % 64))) != 0;
}

bool HostSet::subset_of(const HostSet& other) const noexcept {
    if (other.bits_.size() < bits_.size()) return false;
    for (std::size_t i = 0; i < bits_.size(); ++i) {
        if ((bits_[i] & ~other.bits_[i]) != 0) return false;
    }
    return true;
}

AdoptionAggregator::AdoptionAggregator(const web::PopulationModel& model, bool ipv6)
    : model_{&model}, ipv6_{ipv6} {
    for (auto& counters : lists_) {
        counters.ips_resolved = HostSet{model, ipv6};
        counters.ips_quic = HostSet{model, ipv6};
        counters.ips_spin = HostSet{model, ipv6};
    }
    orgs_.reserve(model.orgs().size());
    for (const auto& org : model.orgs()) {
        orgs_.push_back(OrgCounters{org.name, 0, 0});
    }
    webserver_counts_.assign(model.stacks().size(), 0);
    webserver_spin_counts_.assign(model.stacks().size(), 0);
}

void AdoptionAggregator::add(const web::Domain& domain, const scanner::DomainScan& scan) {
    const DomainSpinClass domain_class = classify_domain(scan);
    const bool quic_ok = domain_class != DomainSpinClass::not_quic;

    for (std::size_t l = 0; l < kListCount; ++l) {
        const auto id = static_cast<ListId>(l);
        if (!in_list(domain, id)) continue;
        auto& counters = lists_[l];
        ++counters.domains_total;
        if (!scan.resolved) continue;
        ++counters.domains_resolved;
        counters.ips_resolved.insert(domain);
        if (!quic_ok) continue;
        ++counters.domains_quic;
        counters.ips_quic.insert(domain);
        switch (domain_class) {
            case DomainSpinClass::spinning:
                ++counters.domains_spin;
                counters.ips_spin.insert(domain);
                break;
            case DomainSpinClass::greased: ++counters.domains_grease; break;
            case DomainSpinClass::all_zero: ++counters.domains_all_zero; break;
            case DomainSpinClass::all_one: ++counters.domains_all_one; break;
            default: break;
        }
    }

    // Table 2 counts connections of the com/net/org view (paper §4.2).
    if (in_list(domain, ListId::cno) && quic_ok) {
        auto& org = orgs_.at(domain.org);
        const auto& stack = model_->org_of(domain).stack;
        for (const auto& trace : scan.connections) {
            if (trace.outcome != qlog::ConnectionOutcome::ok) continue;
            ++org.connections;
            ++webserver_counts_.at(stack);
            const auto assessment = core::assess_connection(trace);
            if (assessment.behavior == core::SpinBehavior::spinning) {
                ++org.spin_connections;
                ++webserver_spin_counts_.at(stack);
            }
        }
    }
}

std::vector<std::pair<std::string, std::uint64_t>> AdoptionAggregator::webserver_connections(
    bool spinning_only) const {
    const auto& counts = spinning_only ? webserver_spin_counts_ : webserver_counts_;
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) continue;
        out.emplace_back(model_->stacks()[i].name, counts[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    return out;
}

std::string AdoptionAggregator::render_overview_table() const {
    TextTable table;
    table.add_row({"List", "", "Total", "Resolved", "QUIC", "Spin"});
    for (std::size_t l = 0; l < kListCount; ++l) {
        const auto& c = lists_[l];
        const double spin_share =
            c.domains_quic == 0
                ? 0.0
                : static_cast<double>(c.domains_spin) / static_cast<double>(c.domains_quic);
        table.add_row({to_cstring(static_cast<ListId>(l)), "#Domains",
                       group_digits(c.domains_total), group_digits(c.domains_resolved),
                       group_digits(c.domains_quic), percent(spin_share)});
        const double ip_spin_share =
            c.ips_quic.empty() ? 0.0
                               : static_cast<double>(c.ips_spin.size()) /
                                     static_cast<double>(c.ips_quic.size());
        table.add_row({"", "#IPs", "", group_digits(c.ips_resolved.size()),
                       group_digits(c.ips_quic.size()), percent(ip_spin_share)});
    }
    return table.render();
}

std::string AdoptionAggregator::render_org_table(std::size_t top_n) const {
    // Rank organizations by total connections; report the paper's columns.
    std::vector<std::size_t> by_total(orgs_.size());
    for (std::size_t i = 0; i < orgs_.size(); ++i) by_total[i] = i;
    std::sort(by_total.begin(), by_total.end(), [this](std::size_t a, std::size_t b) {
        return orgs_[a].connections > orgs_[b].connections;
    });
    std::vector<std::size_t> spin_rank(orgs_.size(), 0);
    {
        std::vector<std::size_t> by_spin = by_total;
        std::sort(by_spin.begin(), by_spin.end(), [this](std::size_t a, std::size_t b) {
            return orgs_[a].spin_connections > orgs_[b].spin_connections;
        });
        for (std::size_t rank = 0; rank < by_spin.size(); ++rank) {
            spin_rank[by_spin[rank]] = rank + 1;
        }
    }

    TextTable table;
    table.add_row({"Rank", "Total #", "AS Organization", "Spin #", "Spin %", "Spin rank"});
    std::uint64_t other_total = 0;
    std::uint64_t other_spin = 0;
    for (std::size_t rank = 0; rank < by_total.size(); ++rank) {
        const auto& org = orgs_[by_total[rank]];
        if (org.connections == 0) continue;
        if (rank < top_n) {
            const double share =
                static_cast<double>(org.spin_connections) /
                static_cast<double>(std::max<std::uint64_t>(1, org.connections));
            table.add_row({std::to_string(rank + 1), group_digits(org.connections), org.name,
                           group_digits(org.spin_connections), percent(share),
                           org.spin_connections > 0 ? std::to_string(spin_rank[by_total[rank]])
                                                    : "-"});
        } else {
            other_total += org.connections;
            other_spin += org.spin_connections;
        }
    }
    if (other_total > 0) {
        const double share =
            static_cast<double>(other_spin) / static_cast<double>(other_total);
        table.add_row({"", group_digits(other_total), "<other>", group_digits(other_spin),
                       percent(share), ""});
    }
    return table.render();
}

std::string AdoptionAggregator::render_config_table() const {
    TextTable table;
    table.add_row({"List", "All Zero", "All One", "Spin", "Grease"});
    for (std::size_t l = 0; l < kListCount; ++l) {
        const auto& c = lists_[l];
        const auto quic = static_cast<double>(std::max<std::uint64_t>(1, c.domains_quic));
        const auto cell = [&](std::uint64_t v) {
            return group_digits(v) + " (" + percent(static_cast<double>(v) / quic, 2) + ")";
        };
        table.add_row({to_cstring(static_cast<ListId>(l)), cell(c.domains_all_zero),
                       cell(c.domains_all_one), group_digits(c.domains_spin),
                       cell(c.domains_grease)});
    }
    return table.render();
}

}  // namespace spinscope::analysis
