// spinscope/analysis/observer.hpp
//
// On-path observer replay: re-runs the paper's Fig. 3/4 RTT-accuracy
// pipeline from the viewpoint of a passive device on the server→client
// path, under either observer model —
//
//   idealized    core::FlowMonitor       (unbounded table, float EWMA)
//   constrained  core::ConstrainedMonitor (fixed slots, eviction, integer
//                                          EWMA, sampling — DESIGN.md §14)
//
// Campaign traces are endpoint-side records; a wire observer instead sees an
// interleaved datagram mix of every concurrent connection. The replay
// synthesizes that mix: each registered connection gets a deterministic
// 8-byte DCID, its received 1-RTT packets are re-encoded as short-header
// datagrams, and the union is ordered by observation time before being fed
// to the monitor under test. Accuracy is then scored with the same
// AccuracyAggregator the endpoint pipeline uses, so constrained-observer
// histograms are directly comparable with the paper's figures.

#pragma once

#include <cstdint>
#include <vector>

#include "analysis/accuracy.hpp"
#include "core/accuracy.hpp"
#include "core/constrained_monitor.hpp"
#include "core/observer.hpp"
#include "qlog/trace.hpp"

namespace spinscope::analysis {

/// Aggregate outcome of one replay run.
struct ObserverRunSummary {
    std::uint64_t connections = 0;  ///< registered connections (1-RTT traffic)
    /// Connections whose endpoint-side record yields spin RTT samples — the
    /// coverage denominator (an observer cannot beat full information).
    std::uint64_t candidates = 0;
    std::uint64_t measured = 0;    ///< flows the observer produced an estimate for
    std::uint64_t comparable = 0;  ///< measured flows with a QUIC stack baseline
    /// measured / candidates (0 when there are no candidates).
    double coverage = 0.0;
    /// Mean |observer estimate - stack mean| over comparable flows, ms.
    double mean_abs_err_ms = 0.0;
    /// Comparable flows whose |error| is within 25 ms (the Fig. 3 bucket).
    std::uint64_t within_25ms = 0;
    /// Table pressure counters; all zero for the idealized run.
    core::ConstrainedTableCounters table;
};

/// One replay run: the Fig. 3/4 aggregator plus the summary row.
struct ObserverRun {
    AccuracyAggregator aggregator;
    ObserverRunSummary summary;
};

/// Builds the interleaved wire stream from campaign traces and drives either
/// observer model over it.
class ObserverReplay {
public:
    explicit ObserverReplay(std::uint64_t seed = 0x0b5e'feedULL) : seed_{seed} {}

    /// Registers one connection's trace (ignored unless it received 1-RTT
    /// packets). The registration index keys the flow's synthetic DCID, so
    /// add order — not scan order — defines flow identity.
    void add(const qlog::Trace& trace);

    [[nodiscard]] std::size_t connection_count() const noexcept {
        return connections_.size();
    }

    /// Replays the stream through an idealized FlowMonitor.
    [[nodiscard]] ObserverRun run_idealized(core::ObserverConfig config = {}) const;

    /// Replays the stream through a ConstrainedMonitor with the given budget.
    [[nodiscard]] ObserverRun run_constrained(const core::ConstrainedConfig& config) const;

private:
    struct Connection {
        std::uint64_t key = 0;  ///< raw 8-byte DCID (packed big-endian)
        core::ConnectionAssessment assessment;  ///< endpoint-side baseline
    };
    struct Event {
        std::int64_t time_ns = 0;
        std::uint32_t conn = 0;
        std::uint32_t seq = 0;  ///< per-connection arrival index (tie order)
        core::SpinObservation obs;
    };

    /// Events sorted by (time, conn, seq) — the deterministic interleave.
    [[nodiscard]] std::vector<Event> sorted_events() const;
    template <typename Monitor>
    void drive(Monitor& monitor) const;

    std::uint64_t seed_;
    std::vector<Connection> connections_;
    std::vector<Event> events_;
};

}  // namespace spinscope::analysis
