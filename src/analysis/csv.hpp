// spinscope/analysis/csv.hpp
//
// CSV exports of the figure data series, so the reproduction can be plotted
// with any external tool (the paper's released artifacts ship analysis
// scripts; these exports are the equivalent hook).

#pragma once

#include <string>

#include "analysis/accuracy.hpp"
#include "analysis/longitudinal.hpp"

namespace spinscope::analysis {

/// Figure 3 as CSV: one row per bin, one column per series, values are
/// relative shares. Columns: bin_low,bin_high,spin_r,spin_s,grease_r,grease_s.
[[nodiscard]] std::string abs_histogram_csv(const AccuracyAggregator& aggregator);

/// Figure 4 as CSV (same layout over the mapped-ratio bins).
[[nodiscard]] std::string ratio_histogram_csv(const AccuracyAggregator& aggregator);

/// Figure 2 as CSV: weeks,measured,rfc9000,rfc9312 (shares).
[[nodiscard]] std::string weeks_histogram_csv(const LongitudinalAggregator& aggregator);

}  // namespace spinscope::analysis
