// spinscope/analysis/adoption.hpp
//
// Adoption analysis (paper §4): per-list domain/IP support tables (Tables 1
// and 4), per-organization drill-down (Table 2), spin-bit configuration
// behaviour (Table 3), and webserver attribution (§4.2).

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/accuracy.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

namespace spinscope::analysis {

/// Domain-level spin classification aggregated over a scan's connections.
enum class DomainSpinClass : std::uint8_t {
    not_quic,   ///< no completed QUIC connection
    all_zero,   ///< every 1-RTT packet of every connection carried 0
    all_one,    ///< ... carried 1
    spinning,   ///< at least one connection classified spinning
    greased,    ///< no spinning connection, at least one grease-filtered
    mixed,      ///< fixed values differing across connections
};

/// Classifies one domain scan (paper §3.3 applied per connection, then
/// folded: spinning > greased > fixed-value classes).
[[nodiscard]] DomainSpinClass classify_domain(const scanner::DomainScan& scan);

/// The list views of Table 1/4.
enum class ListId : std::uint8_t { toplists = 0, czds = 1, cno = 2 };
inline constexpr std::size_t kListCount = 3;

[[nodiscard]] constexpr const char* to_cstring(ListId list) noexcept {
    switch (list) {
        case ListId::toplists: return "Toplists";
        case ListId::czds: return "CZDS";
        case ListId::cno: return "com/net/org";
    }
    return "?";
}

/// Whether a domain belongs to a list view.
[[nodiscard]] bool in_list(const web::Domain& domain, ListId list) noexcept;

/// Fixed-footprint distinct-host tracker: one bit per host of the model's
/// closed-form per-org pools (for one address family), indexed
/// `base[org] + host_index`. Replaces hash sets whose memory grew with the
/// number of distinct hosts *seen* — out-of-core analysis state must depend
/// only on the model geometry, never on how many domains streamed through.
class HostSet {
public:
    HostSet() = default;
    HostSet(const web::PopulationModel& model, bool ipv6);

    /// Marks the host serving `d`; returns true when newly set.
    bool insert(const web::Domain& d);
    [[nodiscard]] bool contains(const web::Domain& d) const noexcept;
    /// Number of distinct hosts marked so far.
    [[nodiscard]] std::uint64_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    /// True when every host of this set is also marked in `other` (same
    /// model geometry and family assumed).
    [[nodiscard]] bool subset_of(const HostSet& other) const noexcept;

private:
    [[nodiscard]] std::uint64_t slot(const web::Domain& d) const noexcept;

    std::vector<std::uint64_t> base_;  ///< per-org prefix sums into the bit space
    std::vector<std::uint64_t> bits_;
    std::uint64_t count_ = 0;
    bool ipv6_ = false;
};

/// Counters backing one row block of Table 1/4.
struct ListCounters {
    std::uint64_t domains_total = 0;
    std::uint64_t domains_resolved = 0;
    std::uint64_t domains_quic = 0;
    std::uint64_t domains_spin = 0;     // "Spin" column (spinning class)
    std::uint64_t domains_all_zero = 0;  // Table 3 columns
    std::uint64_t domains_all_one = 0;
    std::uint64_t domains_grease = 0;
    HostSet ips_resolved;
    HostSet ips_quic;
    HostSet ips_spin;
};

/// Per-organization counters (Table 2; counts connections, not domains).
struct OrgCounters {
    std::string name;
    std::uint64_t connections = 0;
    std::uint64_t spin_connections = 0;
};

/// Streaming aggregator over one sweep's DomainScans. Single-pass and
/// fixed-footprint: all state is counters plus HostSet bitvectors sized from
/// the model's closed-form geometry, so feeding the 216 M-domain universe
/// through chunk by chunk never grows it.
class AdoptionAggregator {
public:
    AdoptionAggregator(const web::PopulationModel& model, bool ipv6);
    AdoptionAggregator(const web::Population& population, bool ipv6)
        : AdoptionAggregator{population.model(), ipv6} {}

    /// Folds one scanned domain into all aggregates.
    void add(const web::Domain& domain, const scanner::DomainScan& scan);

    [[nodiscard]] const ListCounters& list(ListId id) const {
        return lists_[static_cast<std::size_t>(id)];
    }
    [[nodiscard]] const std::vector<OrgCounters>& orgs() const noexcept { return orgs_; }

    /// Connections per webserver stack name (for §4.2's LiteSpeed finding) —
    /// counts QUIC connections of com/net/org domains. With `spinning_only`,
    /// counts only connections that showed spin activity.
    [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> webserver_connections(
        bool spinning_only = false) const;

    // --- renderers (bench harness output) -----------------------------------
    /// Table 1 (ipv6=false) / Table 4 (ipv6=true) shape: per list, domains
    /// and IPs through Total -> Resolved -> QUIC -> Spin.
    [[nodiscard]] std::string render_overview_table() const;
    /// Table 2 shape: top organizations by connections, with spin share.
    [[nodiscard]] std::string render_org_table(std::size_t top_n = 8) const;
    /// Table 3 shape: All Zero / All One / Spin / Grease per list.
    [[nodiscard]] std::string render_config_table() const;

private:
    const web::PopulationModel* model_;
    bool ipv6_;
    std::array<ListCounters, kListCount> lists_;
    std::vector<OrgCounters> orgs_;
    std::vector<std::uint64_t> webserver_counts_;  // indexed by stack
    std::vector<std::uint64_t> webserver_spin_counts_;
};

}  // namespace spinscope::analysis
