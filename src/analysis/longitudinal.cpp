#include "analysis/longitudinal.hpp"

#include <bit>
#include <sstream>

#include "util/format.hpp"

namespace spinscope::analysis {

void LongitudinalAggregator::add(std::uint32_t domain_id, unsigned week, bool connected,
                                 bool spun) {
    if (week >= weeks_) return;
    auto& record = records_[domain_id];
    if (connected) record.connected_mask |= 1U << week;
    if (spun) record.spun_mask |= 1U << week;
}

void LongitudinalAggregator::add_domain(std::uint32_t connected_mask,
                                        std::uint32_t spun_mask) {
    const std::uint32_t all = all_weeks_mask();
    spun_mask &= all;
    if (spun_mask == 0) return;
    ++spun_any_;
    if ((connected_mask & all) != all) return;
    ++connected_all_;
    ++histogram_[static_cast<std::size_t>(std::popcount(spun_mask))];
}

std::uint64_t LongitudinalAggregator::spun_any() const {
    std::uint64_t n = spun_any_;
    for (const auto& [id, record] : records_) {
        if (record.spun_mask != 0) ++n;
    }
    return n;
}

std::uint64_t LongitudinalAggregator::connected_all() const {
    const std::uint32_t all = all_weeks_mask();
    std::uint64_t n = connected_all_;
    for (const auto& [id, record] : records_) {
        if (record.spun_mask != 0 && (record.connected_mask & all) == all) ++n;
    }
    return n;
}

util::CategoricalCounts LongitudinalAggregator::weeks_spinning_histogram() const {
    const std::uint32_t all = all_weeks_mask();
    util::CategoricalCounts counts{weeks_ + 1};
    for (std::size_t k = 0; k < histogram_.size(); ++k) {
        if (histogram_[k] > 0) counts.add(k, histogram_[k]);
    }
    for (const auto& [id, record] : records_) {
        if (record.spun_mask == 0) continue;
        if ((record.connected_mask & all) != all) continue;
        counts.add(static_cast<std::size_t>(std::popcount(record.spun_mask & all)));
    }
    return counts;
}

std::vector<double> LongitudinalAggregator::rfc_shares(unsigned lottery) const {
    // Per connection, spin is active with p = (lottery-1)/lottery; condition
    // the binomial on "active at least once in n weeks".
    const double p = lottery == 0
                         ? 1.0
                         : (static_cast<double>(lottery) - 1.0) / static_cast<double>(lottery);
    std::vector<double> shares(weeks_ + 1, 0.0);
    const double none = util::binomial_pmf(weeks_, 0, p);
    const double norm = 1.0 - none;
    for (unsigned k = 1; k <= weeks_; ++k) {
        shares[k] = util::binomial_pmf(weeks_, k, p) / (norm > 0.0 ? norm : 1.0);
    }
    return shares;
}

std::string LongitudinalAggregator::render_figure() const {
    const auto histogram = weeks_spinning_histogram();
    const auto rfc9000 = rfc_shares(16);
    const auto rfc9312 = rfc_shares(8);

    std::ostringstream out;
    out << "Figure 2: weeks with spin bit enabled (of " << weeks_ << " sampled weeks)\n";
    out << "  domains spinning in any week : " << spun_any() << "\n";
    out << "  thereof connected every week : " << connected_all() << "\n";
    util::TextTable table;
    table.add_row({"weeks", "measured", "RFC 9000 (1/16)", "RFC 9312 (1/8)"});
    for (unsigned k = 1; k <= weeks_; ++k) {
        table.add_row({std::to_string(k), util::percent(histogram.share(k)),
                       util::percent(rfc9000[k]), util::percent(rfc9312[k])});
    }
    out << table.render();
    out << "\n";
    for (unsigned k = 1; k <= weeks_; ++k) {
        out << util::bar_line("  " + std::to_string(k) + (k < 10 ? " " : "") + " wk",
                              histogram.share(k), 40)
            << "\n";
    }
    return out.str();
}

}  // namespace spinscope::analysis
