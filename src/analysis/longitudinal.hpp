// spinscope/analysis/longitudinal.hpp
//
// Longitudinal RFC-compliance analysis (paper §4.3, Figure 2): across n
// sampled measurement weeks, how many weeks did each spin-capable domain
// actually spin? Compared against the binomial behaviour RFC 9000 (disable
// 1-in-16) and RFC 9312 (1-in-8) would predict for an always-capable host.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"

namespace spinscope::analysis {

/// Collects per-domain weekly outcomes over a campaign.
class LongitudinalAggregator {
public:
    /// `weeks` = number of sampled measurement weeks (the paper uses 12).
    explicit LongitudinalAggregator(unsigned weeks) : weeks_{weeks} {}

    /// Records one domain-week outcome.
    void add(std::uint32_t domain_id, unsigned week, bool connected, bool spun);

    /// Number of domains that spun in at least one week.
    [[nodiscard]] std::uint64_t spun_any() const;
    /// Number of those connectable in every week (Figure 2's population).
    [[nodiscard]] std::uint64_t connected_all() const;

    /// Histogram over k = 1..weeks of "spun in exactly k weeks", relative to
    /// the Figure 2 population (spun >= 1 week, connected every week).
    [[nodiscard]] util::CategoricalCounts weeks_spinning_histogram() const;

    /// Theoretical share for k of n weeks if the host always participates
    /// and disables via a fair 1-in-`lottery` per-connection draw,
    /// conditioned on spinning at least once (as the empirical histogram is).
    [[nodiscard]] std::vector<double> rfc_shares(unsigned lottery) const;

    /// Figure 2 rendering: empirical histogram plus RFC 9000/9312 overlays.
    [[nodiscard]] std::string render_figure() const;

    [[nodiscard]] unsigned weeks() const noexcept { return weeks_; }

private:
    struct DomainRecord {
        std::uint32_t connected_mask = 0;
        std::uint32_t spun_mask = 0;
    };

    unsigned weeks_;
    std::unordered_map<std::uint32_t, DomainRecord> records_;
};

}  // namespace spinscope::analysis
