// spinscope/analysis/longitudinal.hpp
//
// Longitudinal RFC-compliance analysis (paper §4.3, Figure 2): across n
// sampled measurement weeks, how many weeks did each spin-capable domain
// actually spin? Compared against the binomial behaviour RFC 9000 (disable
// 1-in-16) and RFC 9312 (1-in-8) would predict for an always-capable host.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"

namespace spinscope::analysis {

/// Collects per-domain weekly outcomes over a campaign.
///
/// Two feeding modes:
///  - add_domain(): the streaming path — the caller visits each domain once
///    with its full weekly bitmasks (domains-outer, weeks-inner sweeps) and
///    the aggregator folds it into O(weeks) counters on the spot. Memory is
///    independent of the domain count; this is the out-of-core mode.
///  - add(): the legacy weeks-outer path — per domain-week outcomes
///    accumulate in a map until queried. Memory grows with the number of
///    distinct domains seen; fine for tests and small sweeps.
/// Queries fold both.
class LongitudinalAggregator {
public:
    /// `weeks` = number of sampled measurement weeks (the paper uses 12).
    explicit LongitudinalAggregator(unsigned weeks)
        : weeks_{weeks}, histogram_(static_cast<std::size_t>(weeks) + 1, 0) {}

    /// Records one domain-week outcome.
    void add(std::uint32_t domain_id, unsigned week, bool connected, bool spun);

    /// Streaming fold: records one domain's complete campaign in one call.
    /// Bit w of each mask is week w's outcome. The domain must not also be
    /// fed through add() (it would be counted twice).
    void add_domain(std::uint32_t connected_mask, std::uint32_t spun_mask);

    /// Number of domains that spun in at least one week.
    [[nodiscard]] std::uint64_t spun_any() const;
    /// Number of those connectable in every week (Figure 2's population).
    [[nodiscard]] std::uint64_t connected_all() const;

    /// Histogram over k = 1..weeks of "spun in exactly k weeks", relative to
    /// the Figure 2 population (spun >= 1 week, connected every week).
    [[nodiscard]] util::CategoricalCounts weeks_spinning_histogram() const;

    /// Theoretical share for k of n weeks if the host always participates
    /// and disables via a fair 1-in-`lottery` per-connection draw,
    /// conditioned on spinning at least once (as the empirical histogram is).
    [[nodiscard]] std::vector<double> rfc_shares(unsigned lottery) const;

    /// Figure 2 rendering: empirical histogram plus RFC 9000/9312 overlays.
    [[nodiscard]] std::string render_figure() const;

    [[nodiscard]] unsigned weeks() const noexcept { return weeks_; }

private:
    struct DomainRecord {
        std::uint32_t connected_mask = 0;
        std::uint32_t spun_mask = 0;
    };

    [[nodiscard]] std::uint32_t all_weeks_mask() const noexcept {
        return (weeks_ >= 32) ? ~0U : ((1U << weeks_) - 1);
    }

    unsigned weeks_;
    std::unordered_map<std::uint32_t, DomainRecord> records_;
    // Incremental accumulators of the streaming path.
    std::uint64_t spun_any_ = 0;
    std::uint64_t connected_all_ = 0;
    std::vector<std::uint64_t> histogram_;  ///< weeks-spinning counts, index k
};

}  // namespace spinscope::analysis
