#include "analysis/csv.hpp"

#include <sstream>

namespace spinscope::analysis {

namespace {

std::string histogram_csv(const AccuracyAggregator& aggregator,
                          const util::Histogram& (AccuracyAggregator::*get)(AccuracySeries)
                              const) {
    std::ostringstream out;
    out << "bin_low,bin_high,spin_r,spin_s,grease_r,grease_s\n";
    const auto& edges = (aggregator.*get)(AccuracySeries::spin_received).edges();
    const auto row = [&](const std::string& lo, const std::string& hi, std::size_t bin,
                         bool underflow, bool overflow) {
        out << lo << ',' << hi;
        for (const auto series :
             {AccuracySeries::spin_received, AccuracySeries::spin_sorted,
              AccuracySeries::grease_received, AccuracySeries::grease_sorted}) {
            const auto& h = (aggregator.*get)(series);
            double share = 0.0;
            if (underflow) {
                share = h.underflow_share();
            } else if (overflow) {
                share = h.overflow_share();
            } else {
                share = h.share(bin);
            }
            out << ',' << share;
        }
        out << '\n';
    };
    row("-inf", std::to_string(edges.front()), 0, true, false);
    for (std::size_t b = 0; b + 1 < edges.size(); ++b) {
        row(std::to_string(edges[b]), std::to_string(edges[b + 1]), b, false, false);
    }
    row(std::to_string(edges.back()), "inf", 0, false, true);
    return out.str();
}

}  // namespace

std::string abs_histogram_csv(const AccuracyAggregator& aggregator) {
    return histogram_csv(aggregator, &AccuracyAggregator::abs_histogram);
}

std::string ratio_histogram_csv(const AccuracyAggregator& aggregator) {
    return histogram_csv(aggregator, &AccuracyAggregator::ratio_histogram);
}

std::string weeks_histogram_csv(const LongitudinalAggregator& aggregator) {
    std::ostringstream out;
    out << "weeks,measured,rfc9000,rfc9312\n";
    const auto histogram = aggregator.weeks_spinning_histogram();
    const auto rfc9000 = aggregator.rfc_shares(16);
    const auto rfc9312 = aggregator.rfc_shares(8);
    for (unsigned k = 1; k <= aggregator.weeks(); ++k) {
        out << k << ',' << histogram.share(k) << ',' << rfc9000[k] << ',' << rfc9312[k]
            << '\n';
    }
    return out.str();
}

}  // namespace spinscope::analysis
