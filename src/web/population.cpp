#include "web/population.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace spinscope::web {

namespace {

using util::DelayComponent;
using util::DelayMixture;
using util::Rng;

/// Salt separating the domain-generation sub-streams from the scanner's
/// per-domain attempt streams (which key derive_stream_seed on the same
/// campaign seed and domain id).
constexpr std::uint64_t kDomainStreamSalt = 0xd0a1'b10cULL;

/// Host indices are bitfield-packed into 28 bits; pools are clamped so a
/// draw can never overflow the field (2^28 ≈ 268 M hosts per org/family,
/// comfortably above the 1:1-scale pools).
constexpr std::uint64_t kMaxPool = (1ULL << 28) - 1;

/// Deterministic per-entity uniform draw in [0,1): hash of (seed, a, b, c).
[[nodiscard]] double hashed_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                                    std::uint64_t c) {
    std::uint64_t state = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^ (b * 0xbf58476d1ce4e5b9ULL) ^
                          (c * 0x94d049bb133111ebULL);
    const std::uint64_t x = util::splitmix64_next(state);
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

[[nodiscard]] DelayMixture shared_hosting_header_delay() {
    // LiteSpeed-style shared hosting: a fast static tier, a moderate
    // CMS tier and a slow dynamic tier (database-bound WordPress et al.).
    return DelayMixture{{
        DelayComponent{0.45, std::log(4.0), 0.6, 1.0},
        DelayComponent{0.35, std::log(60.0), 0.8, 15.0},
        DelayComponent{0.20, std::log(350.0), 0.7, 80.0},
    }};
}

[[nodiscard]] DelayMixture shared_hosting_body_delay() {
    return DelayMixture{{
        DelayComponent{0.30, std::log(3.0), 0.6, 0.5},
        DelayComponent{0.35, std::log(120.0), 0.8, 30.0},
        DelayComponent{0.35, std::log(500.0), 0.8, 150.0},
    }};
}

[[nodiscard]] DelayMixture fast_static_delay() {
    return DelayMixture{{
        DelayComponent{0.90, std::log(2.0), 0.5, 0.3},
        DelayComponent{0.10, std::log(15.0), 0.6, 2.0},
    }};
}

[[nodiscard]] DelayMixture edge_cache_delay() {
    return DelayMixture{{
        DelayComponent{1.0, std::log(1.0), 0.5, 0.2},
    }};
}

}  // namespace

PopulationModel::PopulationModel(const PopulationConfig& config) : config_{config} {
    build_profiles();
    compute_geometry();
}

void PopulationModel::build_profiles() {
    stacks_.resize(kStackCount);

    auto& litespeed = stacks_[kStackLiteSpeed];
    litespeed.name = "LiteSpeed";
    litespeed.spin_enabled = quic::SpinConfig{quic::SpinPolicy::spin, 16,
                                              quic::SpinPolicy::always_zero};
    litespeed.disabled_mode = quic::SpinPolicy::always_zero;
    litespeed.header_delay = shared_hosting_header_delay();
    litespeed.body_delay = shared_hosting_body_delay();
    litespeed.body_log_mu = std::log(26000.0);
    litespeed.body_log_sigma = 1.1;
    litespeed.chunked_body_rate = 0.85;

    auto& imunify = stacks_[kStackImunify];
    imunify = litespeed;  // imunify360-webshield builds on LiteSpeed (§4.2)
    imunify.name = "imunify360-webshield";
    imunify.chunked_body_rate = 0.88;

    auto& nginx = stacks_[kStackNginxQuic];
    nginx.name = "nginx-quic";
    nginx.spin_enabled = quic::SpinConfig{quic::SpinPolicy::spin, 16,
                                          quic::SpinPolicy::always_zero};
    nginx.disabled_mode = quic::SpinPolicy::always_zero;
    nginx.header_delay = fast_static_delay();
    nginx.body_delay = fast_static_delay();
    nginx.body_log_mu = std::log(15000.0);
    nginx.body_log_sigma = 1.0;
    nginx.chunked_body_rate = 0.2;

    auto& caddy = stacks_[kStackCaddy];
    caddy = nginx;
    caddy.name = "Caddy";

    auto& edge_a = stacks_[kStackCdnEdgeA];
    edge_a.name = "cloudflare-edge";
    edge_a.spin_enabled = quic::SpinConfig{quic::SpinPolicy::spin, 16,
                                           quic::SpinPolicy::always_zero};
    edge_a.disabled_mode = quic::SpinPolicy::always_zero;
    edge_a.header_delay = edge_cache_delay();
    edge_a.body_delay = edge_cache_delay();
    edge_a.body_log_mu = std::log(30000.0);
    edge_a.body_log_sigma = 1.0;
    edge_a.chunked_body_rate = 0.15;

    auto& edge_b = stacks_[kStackCdnEdgeB];
    edge_b = edge_a;
    edge_b.name = "gws-quic";

    auto& edge_c = stacks_[kStackCdnEdgeC];
    edge_c = edge_a;
    edge_c.name = "fastly-edge";

    // --- organizations ------------------------------------------------------
    // Weights are the Table 2 connection shares (com/net/org, IPv4, CW 20):
    // Cloudflare 50.4 %, Google 27.0 %, Hostinger 6.8 %, Fastly 1.4 %, OVH /
    // A2 / SingleHop / ServerCentral ~1 % each, <other> 11.1 %. Spin host
    // rates are the per-connection spin shares divided by the expected
    // lottery pass rate (15/16) and edge-visibility (~0.97).
    auto add = [this](OrgProfile profile) { orgs_.push_back(std::move(profile)); };

    add({.name = "Cloudflare", .asn = 13335, .weight_cno = 0.5038, .weight_other = 0.60,
         .weight_toplist = 0.49, .stack = kStackCdnEdgeA, .spin_host_rate = 0.0,
         .domains_per_ipv4 = 400.0, .ipv6_rate = 0.5, .domains_per_ipv6 = 150.0,
         .spin_host_rate_v6 = 0.0, .rtt_log_mu = std::log(8.0), .rtt_log_sigma = 0.45,
         .redirect_rate = 0.12, .spin_stable_fraction = 1.0, .spin_weekly_persistence = 1.0});

    add({.name = "Google", .asn = 15169, .weight_cno = 0.2703, .weight_other = 0.24,
         .weight_toplist = 0.27, .stack = kStackCdnEdgeB, .spin_host_rate = 0.0015,
         .domains_per_ipv4 = 100.0, .ipv6_rate = 0.55, .domains_per_ipv6 = 80.0,
         .spin_host_rate_v6 = 0.0012, .rtt_log_mu = std::log(7.0), .rtt_log_sigma = 0.4,
         .redirect_rate = 0.18, .spin_stable_fraction = 1.0, .spin_weekly_persistence = 1.0});

    add({.name = "Hostinger", .asn = 47583, .weight_cno = 0.0679, .weight_other = 0.010,
         .weight_toplist = 0.040, .stack = kStackLiteSpeed, .spin_host_rate = 0.630,
         .domains_per_ipv4 = 30.0, .ipv6_rate = 0.65, .domains_per_ipv6 = 1.0,
         .spin_host_rate_v6 = 0.84, .rtt_log_mu = std::log(34.0), .rtt_log_sigma = 0.80,
         .redirect_rate = 0.20, .spin_stable_fraction = 0.62,
         .spin_weekly_persistence = 0.85});

    add({.name = "Fastly", .asn = 54113, .weight_cno = 0.0143, .weight_other = 0.030,
         .weight_toplist = 0.060, .stack = kStackCdnEdgeC, .spin_host_rate = 0.0,
         .domains_per_ipv4 = 60.0, .ipv6_rate = 0.5, .domains_per_ipv6 = 60.0,
         .spin_host_rate_v6 = 0.0, .rtt_log_mu = std::log(9.0), .rtt_log_sigma = 0.45,
         .redirect_rate = 0.12, .spin_stable_fraction = 1.0, .spin_weekly_persistence = 1.0});

    add({.name = "OVH SAS", .asn = 16276, .weight_cno = 0.00962, .weight_other = 0.004,
         .weight_toplist = 0.012, .stack = kStackLiteSpeed, .spin_host_rate = 0.790,
         .domains_per_ipv4 = 7.0, .ipv6_rate = 0.20, .domains_per_ipv6 = 1.0,
         .spin_host_rate_v6 = 0.70, .rtt_log_mu = std::log(15.0), .rtt_log_sigma = 0.4,
         .redirect_rate = 0.18, .spin_stable_fraction = 0.60,
         .spin_weekly_persistence = 0.85});

    add({.name = "A2 Hosting", .asn = 55293, .weight_cno = 0.00957, .weight_other = 0.004,
         .weight_toplist = 0.008, .stack = kStackLiteSpeed, .spin_host_rate = 0.730,
         .domains_per_ipv4 = 8.0, .ipv6_rate = 0.15, .domains_per_ipv6 = 1.0,
         .spin_host_rate_v6 = 0.70, .rtt_log_mu = std::log(105.0), .rtt_log_sigma = 0.25,
         .redirect_rate = 0.20, .spin_stable_fraction = 0.60,
         .spin_weekly_persistence = 0.85});

    add({.name = "SingleHop", .asn = 32475, .weight_cno = 0.00761, .weight_other = 0.002,
         .weight_toplist = 0.004, .stack = kStackImunify, .spin_host_rate = 0.830,
         .domains_per_ipv4 = 9.0, .ipv6_rate = 0.12, .domains_per_ipv6 = 1.0,
         .spin_host_rate_v6 = 0.70, .rtt_log_mu = std::log(110.0), .rtt_log_sigma = 0.25,
         .redirect_rate = 0.20, .spin_stable_fraction = 0.58,
         .spin_weekly_persistence = 0.85});

    add({.name = "Server Central", .asn = 23352, .weight_cno = 0.00652,
         .weight_other = 0.002, .weight_toplist = 0.004, .stack = kStackImunify,
         .spin_host_rate = 0.930, .domains_per_ipv4 = 9.0, .ipv6_rate = 0.12,
         .domains_per_ipv6 = 1.0, .spin_host_rate_v6 = 0.75,
         .rtt_log_mu = std::log(100.0), .rtt_log_sigma = 0.25, .redirect_rate = 0.20,
         .spin_stable_fraction = 0.62, .spin_weekly_persistence = 0.85});

    // <other>: a broad base of ~20 small-to-medium hosters, together 11.1 %
    // of com/net/org connections with ~53 % average spin activity (§4.2
    // "there is a broad base of support"). Individually each stays below
    // ServerCentral so the paper's top-8 ranking is preserved.
    struct Small {
        const char* name;
        std::uint32_t asn;
        double spin;
        double rtt_mu;
        std::size_t stack;
    };
    const Small named_smalls[] = {
        {"Contabo", 51167, 0.62, std::log(14.0), kStackLiteSpeed},
        {"Hetzner", 24940, 0.57, std::log(12.0), kStackLiteSpeed},
        {"IONOS", 8560, 0.50, std::log(18.0), kStackLiteSpeed},
        {"DreamHost", 26347, 0.69, std::log(115.0), kStackLiteSpeed},
        {"Namecheap", 22612, 0.76, std::log(95.0), kStackImunify},
        {"WebhostPool", 64500, 0.67, std::log(55.0), kStackNginxQuic},
    };
    // Total <other> weights per segment, spread over 20 orgs.
    constexpr double kOtherCno = 0.1106;
    constexpr double kOtherOther = 0.0816;
    constexpr double kOtherTop = 0.062;
    constexpr std::size_t kSmallCount = 20;
    std::uint64_t synth_seed = config_.seed ^ 0x51a11ULL;
    for (std::size_t i = 0; i < kSmallCount; ++i) {
        Small s;
        char name_buf[32];
        if (i < std::size(named_smalls)) {
            s = named_smalls[i];
        } else {
            std::snprintf(name_buf, sizeof name_buf, "SmallHoster-%02zu", i - 5);
            const double u1 = static_cast<double>(util::splitmix64_next(synth_seed) >> 11) *
                              0x1.0p-53;
            const double u2 = static_cast<double>(util::splitmix64_next(synth_seed) >> 11) *
                              0x1.0p-53;
            s.name = name_buf;
            s.asn = static_cast<std::uint32_t>(64600 + i);
            s.spin = 0.44 + 0.22 * u1;  // 0.44 .. 0.66 before the path factor
            s.rtt_mu = std::log(14.0 + 170.0 * u2);  // EU-near to US/Asia-far
            // Longer paths see fewer spin periods per connection, so a far
            // host needs a higher enable rate for the same observed share.
            if (s.rtt_mu > std::log(60.0)) s.spin = std::min(0.95, s.spin * 1.25);
            s.stack = i % 5 == 4 ? kStackImunify : kStackLiteSpeed;
        }
        add({.name = s.name, .asn = s.asn, .weight_cno = kOtherCno / kSmallCount,
             .weight_other = kOtherOther / kSmallCount,
             .weight_toplist = kOtherTop / kSmallCount, .stack = s.stack,
             .spin_host_rate = s.spin, .domains_per_ipv4 = 30.0, .ipv6_rate = 0.10,
             .domains_per_ipv6 = 1.0, .spin_host_rate_v6 = 0.45, .rtt_log_mu = s.rtt_mu,
             .rtt_log_sigma = 0.5, .redirect_rate = 0.18, .spin_stable_fraction = 0.55,
             .spin_weekly_persistence = 0.82});
    }

    // Toplist-only extra capacity (Akamai-/Amazon-like edges, no spin).
    add({.name = "EdgeCDN-D", .asn = 20940, .weight_cno = 0.0, .weight_other = 0.026,
         .weight_toplist = 0.052, .stack = kStackCdnEdgeC, .spin_host_rate = 0.0,
         .domains_per_ipv4 = 40.0, .ipv6_rate = 0.5, .domains_per_ipv6 = 40.0,
         .spin_host_rate_v6 = 0.0, .rtt_log_mu = std::log(10.0), .rtt_log_sigma = 0.5,
         .redirect_rate = 0.12, .spin_stable_fraction = 1.0, .spin_weekly_persistence = 1.0});

    // Catch-all for resolved domains without QUIC (the bulk of the web).
    add({.name = "VariousHosting", .asn = 64512, .weight_cno = 0.0, .weight_other = 0.0,
         .weight_toplist = 0.0, .stack = kStackNginxQuic, .spin_host_rate = 0.0,
         .domains_per_ipv4 = 16.0, .ipv6_rate = 0.077, .domains_per_ipv6 = 4.0,
         .spin_host_rate_v6 = 0.0, .rtt_log_mu = std::log(50.0), .rtt_log_sigma = 0.9,
         .redirect_rate = 0.15, .spin_stable_fraction = 1.0, .spin_weekly_persistence = 1.0});
}

void PopulationModel::compute_geometry() {
    const double inv = 1.0 / config_.scale;
    n_cno_ = static_cast<std::size_t>(shape_.cno_domains * inv);
    n_other_ = static_cast<std::size_t>((shape_.czds_domains - shape_.cno_domains) * inv);
    const auto n_toplist = static_cast<std::size_t>(shape_.toplist_domains * inv);
    n_extra_ =
        static_cast<std::size_t>(shape_.toplist_domains * shape_.toplist_outside_czds * inv);
    const std::size_t n_top_inside = n_toplist - n_extra_;
    p_top_inside_czds_ = static_cast<double>(n_top_inside) /
                         static_cast<double>(std::max<std::size_t>(1, n_cno_ + n_other_));

    // Per-segment QUIC-org samplers built from the profile weights.
    std::vector<double> w_cno;
    std::vector<double> w_other;
    std::vector<double> w_top;
    for (const auto& org : orgs_) {
        w_cno.push_back(org.weight_cno);
        w_other.push_back(org.weight_other);
        w_top.push_back(org.weight_toplist);
    }
    pick_cno_ = util::DiscreteSampler{w_cno};
    pick_other_ = util::DiscreteSampler{w_other};
    pick_top_ = util::DiscreteSampler{w_top};

    // --- closed-form host pools --------------------------------------------
    // Pool sizes derive from the *expected* resolved-domain mass of each org,
    // never from realized counts — the model must not materialize domains.
    // Each segment contributes its domain count split between the on-toplist
    // path (toplist resolve/QUIC rates, toplist org weights) and the zone
    // path (segment rates and weights); the no-QUIC catch-all additionally
    // absorbs every resolved domain that fails the QUIC draw.
    const double sum_cno = std::max(1e-12, std::accumulate(w_cno.begin(), w_cno.end(), 0.0));
    const double sum_other =
        std::max(1e-12, std::accumulate(w_other.begin(), w_other.end(), 0.0));
    const double sum_top = std::max(1e-12, std::accumulate(w_top.begin(), w_top.end(), 0.0));

    struct SegmentGeometry {
        double n;
        double p_top;
        double resolve;
        double quic;
        const std::vector<double>* weights;
        double weight_sum;
    };
    const SegmentGeometry segments[] = {
        {static_cast<double>(n_cno_), p_top_inside_czds_, shape_.resolve_cno, shape_.quic_cno,
         &w_cno, sum_cno},
        {static_cast<double>(n_other_), p_top_inside_czds_, shape_.resolve_other,
         shape_.quic_other, &w_other, sum_other},
        {static_cast<double>(n_extra_), 1.0, shape_.resolve_other, shape_.quic_other, &w_other,
         sum_other},
    };

    std::vector<double> expected(orgs_.size(), 0.0);
    double no_quic_mass = 0.0;
    for (const auto& seg : segments) {
        const double top_mass = seg.n * seg.p_top * shape_.resolve_toplist;
        const double zone_mass = seg.n * (1.0 - seg.p_top) * seg.resolve;
        for (std::size_t i = 0; i < orgs_.size(); ++i) {
            expected[i] += top_mass * shape_.quic_toplist * (w_top[i] / sum_top) +
                           zone_mass * seg.quic * ((*seg.weights)[i] / seg.weight_sum);
        }
        no_quic_mass +=
            top_mass * (1.0 - shape_.quic_toplist) + zone_mass * (1.0 - seg.quic);
    }
    expected.back() += no_quic_mass;

    v4_pool_.assign(orgs_.size(), 1);
    v6_pool_.assign(orgs_.size(), 1);
    for (std::size_t i = 0; i < orgs_.size(); ++i) {
        const auto v4 = static_cast<std::uint64_t>(
            std::max<double>(1.0, std::llround(expected[i] / orgs_[i].domains_per_ipv4)));
        const auto v6 = static_cast<std::uint64_t>(std::max<double>(
            1.0,
            std::llround(expected[i] * orgs_[i].ipv6_rate / orgs_[i].domains_per_ipv6)));
        v4_pool_[i] = static_cast<std::uint32_t>(std::min(v4, kMaxPool));
        v6_pool_[i] = std::min(v6, kMaxPool);
    }
}

Domain PopulationModel::domain(std::uint32_t id) const {
    // The purity contract (DESIGN.md §15): every attribute of domain `id` is
    // drawn from a dedicated sub-stream keyed on (seed, id), in a fixed
    // order, so regeneration is independent of which block asked and when.
    Rng rng{util::derive_stream_seed(config_.seed ^ kDomainStreamSalt, id)};

    Domain d;
    d.id = id;
    const Segment segment = segment_of(id);
    d.set_segment(segment);
    d.on_toplist =
        segment == Segment::toplist_extra ? true : rng.chance(p_top_inside_czds_);

    double resolve_rate = 0.0;
    double quic_rate = 0.0;
    const util::DiscreteSampler* org_picker = nullptr;
    if (d.on_toplist) {
        resolve_rate = shape_.resolve_toplist;
        quic_rate = shape_.quic_toplist;
        org_picker = &pick_top_;
    } else if (segment == Segment::czds_cno) {
        resolve_rate = shape_.resolve_cno;
        quic_rate = shape_.quic_cno;
        org_picker = &pick_cno_;
    } else {
        resolve_rate = shape_.resolve_other;
        quic_rate = shape_.quic_other;
        org_picker = &pick_other_;
    }

    d.resolves = rng.chance(resolve_rate);
    d.quic = d.resolves && rng.chance(quic_rate);
    d.org = d.quic ? static_cast<std::uint16_t>(org_picker->sample(rng))
                   : static_cast<std::uint16_t>(orgs_.size() - 1);

    if (d.resolves) {
        const auto& org = orgs_[d.org];
        d.ipv4_host = static_cast<std::uint32_t>(rng.uniform_u64(v4_pool_[d.org]));
        // Toplist customers of the shared hosters use custom setups far more
        // often and enable IPv6 less — the paper's §4.4 finding that toplist
        // IPv6 spin support trails the zone files by a wide margin.
        const bool discounted = d.on_toplist && org.spin_host_rate > 0.05;
        d.has_ipv6 = rng.chance(org.ipv6_rate * (discounted ? 0.45 : 1.0));
        d.ipv6_host = static_cast<std::uint32_t>(rng.uniform_u64(v6_pool_[d.org]));
        d.set_rtt_ms(std::clamp(
            util::sample_lognormal(rng, org.rtt_log_mu, org.rtt_log_sigma), 0.8, 400.0));
        d.redirects = rng.chance(org.redirect_rate);
    }
    return d;
}

DomainBlock PopulationModel::materialize(std::size_t begin, std::size_t end) const {
    const std::size_t total = domain_count();
    begin = std::min(begin, total);
    end = std::min(std::max(end, begin), total);
    DomainBlock block;
    block.begin = static_cast<std::uint32_t>(begin);
    block.domains.reserve(end - begin);
    for (std::size_t id = begin; id < end; ++id) {
        block.domains.push_back(domain(static_cast<std::uint32_t>(id)));
    }
    return block;
}

DomainBlock PopulationModel::materialize_chunk(std::size_t chunk_index,
                                               std::size_t chunk_domains) const {
    const std::size_t begin = chunk_index * chunk_domains;
    return materialize(begin, begin + chunk_domains);
}

bool PopulationModel::host_spins(const Domain& d, int week, bool ipv6) const {
    const auto& org = orgs_[d.org];
    const double enable_rate = ipv6 ? org.spin_host_rate_v6 : org.spin_host_rate;
    if (enable_rate <= 0.0) return false;
    const std::uint64_t host = host_key(d, ipv6);
    const std::uint64_t host_index = ipv6 ? d.ipv6_host : d.ipv4_host;

    // Host-level enablement uses low-discrepancy (golden-ratio) sequences
    // per org so the enabled share tracks the configured rate closely even
    // when a downscaled population leaves an org with only a handful of
    // hosts. Stable hosts keep their state for the whole campaign; churning
    // hosts re-draw weekly as a two-state Markov chain (deployment updates,
    // provider migrations — Fig. 2).
    const auto strat = [&](double stride, std::uint64_t salt) {
        const double offset =
            hashed_uniform(config_.seed, d.org, salt, ipv6 ? 1 : 0);
        const double v = offset + static_cast<double>(host_index) * stride;
        return v - std::floor(v);
    };
    const double stable_draw = strat(0.41421356237309515, 11);   // sqrt(2)-1
    const double enabled_draw = strat(0.6180339887498949, 13);   // phi-1
    const bool enabled_at_start = enabled_draw < enable_rate;
    if (stable_draw < org.spin_stable_fraction) return enabled_at_start;

    bool enabled = enabled_at_start;
    for (int w = 1; w <= week; ++w) {
        const double flip = hashed_uniform(config_.seed, host, 17, static_cast<std::uint64_t>(w));
        if (enabled) {
            if (flip >= org.spin_weekly_persistence) enabled = false;
        } else {
            // Re-enable with a rate that keeps the stationary share near the
            // org's enable rate: p_on = (1-persist) * rate / (1-rate).
            const double p_on = (1.0 - org.spin_weekly_persistence) * enable_rate /
                                std::max(1e-9, 1.0 - enable_rate);
            if (flip < p_on) enabled = true;
        }
    }
    return enabled;
}

quic::SpinPolicy PopulationModel::host_disabled_policy(const Domain& d, bool ipv6) const {
    // Drawn per site (domain-host pair): fixed-one and greasing behaviours
    // come from per-virtual-host configuration in practice, and a per-site
    // draw keeps the Table 3 shares stable under population downscaling.
    const std::uint64_t host = host_key(d, ipv6);
    const double draw = hashed_uniform(config_.seed, host, 19, d.id);
    // Calibrated against Table 3: All-One ~0.28 % of QUIC domains, grease
    // hits ~0.02 %; per-connection greasing folds into the fixed-value
    // columns (indistinguishable, as the paper notes in §2.1).
    if (draw < 0.0028) return quic::SpinPolicy::always_one;
    if (draw < 0.0031) return quic::SpinPolicy::grease_per_packet;
    if (draw < 0.0036) return quic::SpinPolicy::grease_per_connection;
    return quic::SpinPolicy::always_zero;
}

faults::ServerFaultProfile PopulationModel::server_fault_profile(const Domain& d,
                                                                 bool ipv6) const {
    faults::ServerFaultProfile profile;
    const double rate =
        std::clamp(std::max(config_.host_fault_rate, orgs_[d.org].fault_host_rate), 0.0, 1.0);
    if (rate <= 0.0) return profile;
    const std::uint64_t host = host_key(d, ipv6);
    if (hashed_uniform(config_.seed, host, 23, 1) >= rate) return profile;

    // The failure mode is a host property: a broken stack fails the same way
    // on every visit. Modes are drawn uniformly from the non-healthy ones.
    const double mode_draw = hashed_uniform(config_.seed, host, 29, 2);
    const auto mode_index =
        1 + static_cast<std::size_t>(mode_draw *
                                     static_cast<double>(faults::kServerFaultModeCount - 1));
    profile.mode = static_cast<faults::ServerFaultMode>(
        std::min<std::size_t>(mode_index, faults::kServerFaultModeCount - 1));

    // Persistent vs. transient is a host property as well; only transient
    // faults leave room for retries to succeed.
    const bool transient =
        hashed_uniform(config_.seed, host, 31, 3) < config_.transient_fault_share;
    profile.per_attempt_probability =
        transient ? std::clamp(config_.transient_fault_probability, 0.0, 1.0) : 1.0;
    return profile;
}

std::string PopulationModel::domain_name(const Domain& d) const {
    static constexpr const char* kCnoTlds[] = {"com", "com", "com", "net", "org"};
    static constexpr const char* kOtherTlds[] = {"xyz", "info", "online", "shop", "site"};
    static constexpr const char* kExtraTlds[] = {"de", "io", "co", "us", "tv"};
    const char* tld = "com";
    switch (d.segment()) {
        case Segment::czds_cno: tld = kCnoTlds[d.id % 5]; break;
        case Segment::czds_other: tld = kOtherTlds[d.id % 5]; break;
        case Segment::toplist_extra: tld = kExtraTlds[d.id % 5]; break;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "d%07u.%s", d.id, tld);
    return buf;
}

std::string PopulationModel::host_address(const Domain& d, bool ipv6) const {
    char buf[48];
    if (ipv6) {
        std::snprintf(buf, sizeof buf, "fd00:%x::%x:%x", d.org + 1,
                      static_cast<unsigned>(d.ipv6_host >> 16),
                      static_cast<unsigned>(d.ipv6_host & 0xffff));
    } else {
        const std::uint32_t addr = d.ipv4_host;
        std::snprintf(buf, sizeof buf, "10.%u.%u.%u", (d.org + 1) & 0xff, (addr >> 8) & 0xff,
                      addr & 0xff);
    }
    return buf;
}

std::uint64_t PopulationModel::host_key(const Domain& d, bool ipv6) const {
    const std::uint64_t host = ipv6 ? d.ipv6_host : d.ipv4_host;
    return (static_cast<std::uint64_t>(d.org) << 40) | (ipv6 ? (1ULL << 39) : 0) | host;
}

Population::Population(const PopulationConfig& config) : model_{config} {
    domains_ = model_.materialize(0, model_.domain_count()).domains;
}

}  // namespace spinscope::web
