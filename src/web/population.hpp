// spinscope/web/population.hpp
//
// Synthetic web population — the substitute for the paper's 216 M-domain
// target set (DESIGN.md §2).
//
// The population is generated from a table of organization profiles
// (Cloudflare-, Google-, Hostinger-, OVH-like, ...) whose parameters are
// calibrated against the paper's published marginals: per-list QUIC and
// spin-bit rates (Table 1/4), per-organization connection shares and spin
// shares (Table 2), disable behaviour (Table 3), webserver-stack mix (§4.2),
// path RTTs from a German university vantage and end-host delay behaviour
// (Figures 3-4), and longitudinal spin churn (Figure 2).
//
// Every domain is a deterministic function of the population seed, so scans
// are reproducible and weekly re-scans see consistent per-domain behaviour.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "quic/spin.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace spinscope::web {

using util::Duration;

/// Which target-list segment a domain belongs to (paper §3.1). The paper's
/// toplists overlap the CZDS zones; segments are disjoint and the overlap is
/// expressed with the `on_toplist` flag.
enum class Segment : std::uint8_t {
    czds_cno,       ///< CZDS .com/.net/.org zones
    czds_other,     ///< CZDS, other gTLD zones
    toplist_extra,  ///< toplist-only domains outside the CZDS zones (ccTLDs)
};

/// Webserver stack profile (paper §4.2: LiteSpeed dominates spin support).
struct StackProfile {
    std::string name;
    /// How hosts of this stack behave when the spin bit is on.
    quic::SpinConfig spin_enabled{};
    /// How hosts set the bit when spin support is off (Table 3: mostly zero).
    quic::SpinPolicy disabled_mode = quic::SpinPolicy::always_zero;
    /// Delay between receiving the full request and the response headers.
    util::DelayMixture header_delay;
    /// Delay between response headers and (each chunk of) the body — the
    /// application-limited page-generation pauses behind Fig. 3/4's
    /// overestimates.
    util::DelayMixture body_delay;
    /// Lognormal body size: exp(N(mu, sigma)) bytes.
    double body_log_mu = 9.8;     // median ~18 kB
    double body_log_sigma = 1.0;
    /// Probability that the body is generated in two app-limited chunks.
    double chunked_body_rate = 0.5;
    Duration max_ack_delay = Duration::millis(25);
};

/// Organization (AS-level) deployment profile.
struct OrgProfile {
    std::string name;
    std::uint32_t asn = 0;
    /// Relative weight among *QUIC-enabled* domains, per segment
    /// (calibrated from Table 2 connection shares).
    double weight_cno = 0.0;
    double weight_other = 0.0;
    double weight_toplist = 0.0;
    /// Index into the population's stack table.
    std::size_t stack = 0;
    /// Fraction of this org's hosts with the spin bit enabled.
    double spin_host_rate = 0.0;
    /// IPv4 shared-hosting density (domains per IP) and pool behaviour.
    double domains_per_ipv4 = 20.0;
    /// Fraction of this org's QUIC domains reachable over IPv6.
    double ipv6_rate = 0.0;
    /// IPv6 density; ~1 models per-domain v6 addresses (Table 4's IP boom).
    double domains_per_ipv6 = 1.0;
    /// Spin-enable rate of the v6 hosts (may exceed v4 — §4.4).
    double spin_host_rate_v6 = 0.0;
    /// Path RTT from the vantage: lognormal(mu of ln ms, sigma).
    double rtt_log_mu = 3.0;
    double rtt_log_sigma = 0.5;
    /// Probability a landing page answers with an HTTP redirect.
    double redirect_rate = 0.15;
    /// Longitudinal behaviour (Fig. 2): fraction of spin-enabled hosts whose
    /// configuration is stable across the campaign; the rest toggle weekly
    /// with the given persistence probability (deployment churn).
    double spin_stable_fraction = 0.5;
    double spin_weekly_persistence = 0.85;
    /// Fraction of this org's hosts with a serving-side failure mode
    /// (broken stacks, deaf middleboxes — see faults::ServerFaultMode).
    /// Defaults to 0 so the calibrated universe stays fault-free.
    double fault_host_rate = 0.0;
};

/// One synthetic domain. Kept compact; names are derived on demand.
struct Domain {
    std::uint32_t id = 0;
    std::uint16_t org = 0;
    Segment segment = Segment::czds_cno;
    bool on_toplist = false;
    bool resolves = false;        ///< DNS (A record) resolves
    bool quic = false;            ///< host answers HTTP/3
    bool has_ipv6 = false;        ///< AAAA record resolves
    std::uint32_t ipv4_host = 0;  ///< host index within the org's v4 pool
    std::uint32_t ipv6_host = 0;  ///< host index within the org's v6 pool
    float rtt_ms = 40.0F;         ///< base path RTT to the serving host
    bool redirects = false;       ///< landing page issues one redirect
};

/// Scale + seed of the synthetic universe.
struct PopulationConfig {
    /// 1:N downscale of the paper's CW 20/2023 universe (counts divided by
    /// this; percentages are scale-invariant).
    double scale = 1000.0;
    std::uint64_t seed = 20230520;
    /// Floor on every org's fault_host_rate — hostile-universe sweeps raise
    /// this; the default 0 leaves the calibrated universe fault-free.
    double host_fault_rate = 0.0;
    /// Among faulty hosts, the fraction whose failure is transient (fires
    /// per attempt with `transient_fault_probability`) rather than
    /// persistent (fires on every attempt). Transient faults are what a
    /// campaign retry policy can recover from.
    double transient_fault_share = 0.7;
    double transient_fault_probability = 0.6;
};

/// Counts of the paper's CW 20/2023 universe at 1:1 scale, used to size the
/// synthetic segments.
struct UniverseShape {
    double czds_domains = 216'520'521.0;
    double cno_domains = 183'047'638.0;
    double toplist_domains = 2'732'702.0;
    /// Share of toplist domains that live outside the CZDS zones.
    double toplist_outside_czds = 0.30;
    /// P(resolve) per segment.
    double resolve_cno = 0.868;
    double resolve_other = 0.742;
    double resolve_toplist = 0.709;
    /// P(QUIC | resolved) per segment.
    double quic_cno = 0.1159;
    double quic_other = 0.1528;
    double quic_toplist = 0.2823;
};

/// The generated universe plus its generating profiles.
class Population {
public:
    explicit Population(const PopulationConfig& config);

    [[nodiscard]] std::span<const Domain> domains() const noexcept { return domains_; }
    [[nodiscard]] std::span<const OrgProfile> orgs() const noexcept { return orgs_; }
    [[nodiscard]] std::span<const StackProfile> stacks() const noexcept { return stacks_; }
    [[nodiscard]] const PopulationConfig& config() const noexcept { return config_; }
    [[nodiscard]] const UniverseShape& shape() const noexcept { return shape_; }

    [[nodiscard]] const OrgProfile& org_of(const Domain& d) const { return orgs_.at(d.org); }
    [[nodiscard]] const StackProfile& stack_of(const Domain& d) const {
        return stacks_.at(orgs_.at(d.org).stack);
    }

    /// Whether the host serving `d` (v4 or v6 flavour) has the spin bit
    /// enabled in measurement week `week` (0-based since campaign start).
    /// Deterministic per (host, week); models stable hosts plus weekly
    /// configuration churn (Fig. 2).
    [[nodiscard]] bool host_spins(const Domain& d, int week, bool ipv6) const;

    /// How a non-spinning host sets the bit (paper §4.3 / Table 3): almost
    /// always zero, rarely fixed one, rarely greased per packet or per
    /// connection. Deterministic per host.
    [[nodiscard]] quic::SpinPolicy host_disabled_policy(const Domain& d, bool ipv6) const;

    /// Serving-side failure behaviour of the host behind `d` (v4 or v6
    /// flavour). Deterministic per host: a broken stack fails the same way
    /// on every visit, and whether the failure is persistent or transient is
    /// a host property too. Returns a healthy profile unless the config (or
    /// the org) opts into faults.
    [[nodiscard]] faults::ServerFaultProfile server_fault_profile(const Domain& d,
                                                                  bool ipv6) const;

    /// Synthesized DNS name, e.g. "d001234.com".
    [[nodiscard]] std::string domain_name(const Domain& d) const;
    /// Synthesized address string for the serving host.
    [[nodiscard]] std::string host_address(const Domain& d, bool ipv6) const;

    /// Global host key (unique across orgs and address families), for
    /// IP-level aggregation.
    [[nodiscard]] std::uint64_t host_key(const Domain& d, bool ipv6) const;

    /// Host pool sizes (number of distinct serving addresses) per org.
    [[nodiscard]] std::uint32_t ipv4_pool(std::size_t org) const { return v4_pool_.at(org); }
    [[nodiscard]] std::uint64_t ipv6_pool(std::size_t org) const { return v6_pool_.at(org); }

private:
    void build_profiles();
    void generate();

    PopulationConfig config_;
    UniverseShape shape_;
    std::vector<StackProfile> stacks_;
    std::vector<OrgProfile> orgs_;
    std::vector<Domain> domains_;
    std::vector<std::uint32_t> v4_pool_;
    std::vector<std::uint64_t> v6_pool_;
};

/// Default stack table (index constants used by the org profiles).
enum : std::size_t {
    kStackLiteSpeed = 0,
    kStackImunify = 1,
    kStackNginxQuic = 2,
    kStackCaddy = 3,
    kStackCdnEdgeA = 4,  ///< Cloudflare-like proprietary edge
    kStackCdnEdgeB = 5,  ///< Google-like proprietary edge
    kStackCdnEdgeC = 6,  ///< Fastly-like proprietary edge
    kStackCount = 7,
};

}  // namespace spinscope::web
