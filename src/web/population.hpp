// spinscope/web/population.hpp
//
// Synthetic web population — the substitute for the paper's 216 M-domain
// target set (DESIGN.md §2, §15).
//
// The population is generated from a table of organization profiles
// (Cloudflare-, Google-, Hostinger-, OVH-like, ...) whose parameters are
// calibrated against the paper's published marginals: per-list QUIC and
// spin-bit rates (Table 1/4), per-organization connection shares and spin
// shares (Table 2), disable behaviour (Table 3), webserver-stack mix (§4.2),
// path RTTs from a German university vantage and end-host delay behaviour
// (Figures 3-4), and longitudinal spin churn (Figure 2).
//
// Out-of-core split (DESIGN.md §15): the cheap PopulationModel holds only
// profiles, closed-form segment geometry and per-org host-pool sizes — O(orgs)
// state, independent of the domain count. Every Domain is a pure function of
// (seed, domain_id) via util::derive_stream_seed sub-streams, so any range of
// the universe can be (re)materialized as a transient DomainBlock in any
// order, at any chunk size, on any worker — byte-identically. The eager
// Population wrapper below materializes the whole universe once for callers
// that still want a resident vector (tests, small analysis sweeps).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "quic/spin.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace spinscope::web {

using util::Duration;

/// Which target-list segment a domain belongs to (paper §3.1). The paper's
/// toplists overlap the CZDS zones; segments are disjoint and the overlap is
/// expressed with the `on_toplist` flag.
enum class Segment : std::uint8_t {
    czds_cno,       ///< CZDS .com/.net/.org zones
    czds_other,     ///< CZDS, other gTLD zones
    toplist_extra,  ///< toplist-only domains outside the CZDS zones (ccTLDs)
};

/// Webserver stack profile (paper §4.2: LiteSpeed dominates spin support).
struct StackProfile {
    std::string name;
    /// How hosts of this stack behave when the spin bit is on.
    quic::SpinConfig spin_enabled{};
    /// How hosts set the bit when spin support is off (Table 3: mostly zero).
    quic::SpinPolicy disabled_mode = quic::SpinPolicy::always_zero;
    /// Delay between receiving the full request and the response headers.
    util::DelayMixture header_delay;
    /// Delay between response headers and (each chunk of) the body — the
    /// application-limited page-generation pauses behind Fig. 3/4's
    /// overestimates.
    util::DelayMixture body_delay;
    /// Lognormal body size: exp(N(mu, sigma)) bytes.
    double body_log_mu = 9.8;     // median ~18 kB
    double body_log_sigma = 1.0;
    /// Probability that the body is generated in two app-limited chunks.
    double chunked_body_rate = 0.5;
    Duration max_ack_delay = Duration::millis(25);
};

/// Organization (AS-level) deployment profile.
struct OrgProfile {
    std::string name;
    std::uint32_t asn = 0;
    /// Relative weight among *QUIC-enabled* domains, per segment
    /// (calibrated from Table 2 connection shares).
    double weight_cno = 0.0;
    double weight_other = 0.0;
    double weight_toplist = 0.0;
    /// Index into the population's stack table.
    std::size_t stack = 0;
    /// Fraction of this org's hosts with the spin bit enabled.
    double spin_host_rate = 0.0;
    /// IPv4 shared-hosting density (domains per IP) and pool behaviour.
    double domains_per_ipv4 = 20.0;
    /// Fraction of this org's QUIC domains reachable over IPv6.
    double ipv6_rate = 0.0;
    /// IPv6 density; ~1 models per-domain v6 addresses (Table 4's IP boom).
    double domains_per_ipv6 = 1.0;
    /// Spin-enable rate of the v6 hosts (may exceed v4 — §4.4).
    double spin_host_rate_v6 = 0.0;
    /// Path RTT from the vantage: lognormal(mu of ln ms, sigma).
    double rtt_log_mu = 3.0;
    double rtt_log_sigma = 0.5;
    /// Probability a landing page answers with an HTTP redirect.
    double redirect_rate = 0.15;
    /// Longitudinal behaviour (Fig. 2): fraction of spin-enabled hosts whose
    /// configuration is stable across the campaign; the rest toggle weekly
    /// with the given persistence probability (deployment churn).
    double spin_stable_fraction = 0.5;
    double spin_weekly_persistence = 0.85;
    /// Fraction of this org's hosts with a serving-side failure mode
    /// (broken stacks, deaf middleboxes — see faults::ServerFaultMode).
    /// Defaults to 0 so the calibrated universe stays fault-free.
    double fault_host_rate = 0.0;
};

/// One synthetic domain, packed into 16 bytes. Out-of-core campaigns hold
/// millions of these per transient block, so every flag is a bitfield and
/// the RTT is quantized to tenths of a millisecond (the clamp range
/// [0.8, 400] ms needs 8..4000 — well inside 16 bits). 28-bit host indices
/// cover 268 M hosts per org and family, beyond the 1:1-scale pools.
struct Domain {
    std::uint32_t id = 0;
    std::uint16_t org = 0;
    std::uint16_t rtt_tenths = 400;   ///< base path RTT, tenths of ms
    std::uint32_t ipv4_host : 28 = 0; ///< host index within the org's v4 pool
    std::uint32_t segment_raw : 2 = 0;
    std::uint32_t resolves : 1 = 0;   ///< DNS (A record) resolves
    std::uint32_t quic : 1 = 0;       ///< host answers HTTP/3
    std::uint32_t ipv6_host : 28 = 0; ///< host index within the org's v6 pool
    std::uint32_t on_toplist : 1 = 0;
    std::uint32_t has_ipv6 : 1 = 0;   ///< AAAA record resolves
    std::uint32_t redirects : 1 = 0;  ///< landing page issues one redirect
    std::uint32_t reserved : 1 = 0;

    [[nodiscard]] Segment segment() const noexcept {
        return static_cast<Segment>(segment_raw);
    }
    void set_segment(Segment s) noexcept {
        segment_raw = static_cast<std::uint32_t>(s) & 0x3U;
    }
    [[nodiscard]] float rtt_ms() const noexcept {
        return static_cast<float>(rtt_tenths) * 0.1F;
    }
    void set_rtt_ms(double ms) noexcept {
        rtt_tenths = static_cast<std::uint16_t>(ms * 10.0 + 0.5);
    }
};
static_assert(sizeof(Domain) <= 16, "web::Domain must stay a compact 16-byte record");

/// Scale + seed of the synthetic universe.
struct PopulationConfig {
    /// 1:N downscale of the paper's CW 20/2023 universe (counts divided by
    /// this; percentages are scale-invariant).
    double scale = 1000.0;
    std::uint64_t seed = 20230520;
    /// Floor on every org's fault_host_rate — hostile-universe sweeps raise
    /// this; the default 0 leaves the calibrated universe fault-free.
    double host_fault_rate = 0.0;
    /// Among faulty hosts, the fraction whose failure is transient (fires
    /// per attempt with `transient_fault_probability`) rather than
    /// persistent (fires on every attempt). Transient faults are what a
    /// campaign retry policy can recover from.
    double transient_fault_share = 0.7;
    double transient_fault_probability = 0.6;
};

/// Counts of the paper's CW 20/2023 universe at 1:1 scale, used to size the
/// synthetic segments.
struct UniverseShape {
    double czds_domains = 216'520'521.0;
    double cno_domains = 183'047'638.0;
    double toplist_domains = 2'732'702.0;
    /// Share of toplist domains that live outside the CZDS zones.
    double toplist_outside_czds = 0.30;
    /// P(resolve) per segment.
    double resolve_cno = 0.868;
    double resolve_other = 0.742;
    double resolve_toplist = 0.709;
    /// P(QUIC | resolved) per segment.
    double quic_cno = 0.1159;
    double quic_other = 0.1528;
    double quic_toplist = 0.2823;
};

/// One materialized range [begin, begin + domains.size()) of the universe —
/// the transient unit a streaming consumer scans and discards. domains[i] is
/// the domain with id begin + i (domain ids equal global indices).
struct DomainBlock {
    std::uint32_t begin = 0;
    std::vector<Domain> domains;

    [[nodiscard]] std::span<const Domain> span() const noexcept { return domains; }
    [[nodiscard]] std::size_t size() const noexcept { return domains.size(); }
};

/// The generating model of the universe: profiles, closed-form segment
/// geometry and per-org host pools — no per-domain state. domain(id) is a
/// pure function of (config.seed, id), so materialize() is order- and
/// chunk-size-independent (the §15 purity contract).
class PopulationModel {
public:
    explicit PopulationModel(const PopulationConfig& config);

    [[nodiscard]] const PopulationConfig& config() const noexcept { return config_; }
    [[nodiscard]] const UniverseShape& shape() const noexcept { return shape_; }
    [[nodiscard]] std::span<const OrgProfile> orgs() const noexcept { return orgs_; }
    [[nodiscard]] std::span<const StackProfile> stacks() const noexcept { return stacks_; }

    /// Total number of domains in the (downscaled) universe.
    [[nodiscard]] std::size_t domain_count() const noexcept {
        return n_cno_ + n_other_ + n_extra_;
    }
    /// Closed-form segment sizes (segments are emitted in enum order:
    /// czds_cno ids [0, n_cno), czds_other [n_cno, n_cno + n_other), ...).
    [[nodiscard]] std::size_t segment_count(Segment segment) const noexcept {
        switch (segment) {
            case Segment::czds_cno: return n_cno_;
            case Segment::czds_other: return n_other_;
            case Segment::toplist_extra: return n_extra_;
        }
        return 0;
    }
    [[nodiscard]] Segment segment_of(std::uint32_t id) const noexcept {
        if (id < n_cno_) return Segment::czds_cno;
        if (id < n_cno_ + n_other_) return Segment::czds_other;
        return Segment::toplist_extra;
    }

    /// Regenerates one domain — a pure function of (config.seed, id).
    [[nodiscard]] Domain domain(std::uint32_t id) const;

    /// Materializes the id range [begin, end) as a transient block.
    [[nodiscard]] DomainBlock materialize(std::size_t begin, std::size_t end) const;
    /// Materializes chunk `chunk_index` of a `chunk_domains`-sized chunking.
    [[nodiscard]] DomainBlock materialize_chunk(std::size_t chunk_index,
                                                std::size_t chunk_domains) const;

    [[nodiscard]] const OrgProfile& org_of(const Domain& d) const { return orgs_.at(d.org); }
    [[nodiscard]] const StackProfile& stack_of(const Domain& d) const {
        return stacks_.at(orgs_.at(d.org).stack);
    }

    /// Whether the host serving `d` (v4 or v6 flavour) has the spin bit
    /// enabled in measurement week `week` (0-based since campaign start).
    /// Deterministic per (host, week); models stable hosts plus weekly
    /// configuration churn (Fig. 2).
    [[nodiscard]] bool host_spins(const Domain& d, int week, bool ipv6) const;

    /// How a non-spinning host sets the bit (paper §4.3 / Table 3): almost
    /// always zero, rarely fixed one, rarely greased per packet or per
    /// connection. Deterministic per host.
    [[nodiscard]] quic::SpinPolicy host_disabled_policy(const Domain& d, bool ipv6) const;

    /// Serving-side failure behaviour of the host behind `d` (v4 or v6
    /// flavour). Deterministic per host: a broken stack fails the same way
    /// on every visit, and whether the failure is persistent or transient is
    /// a host property too. Returns a healthy profile unless the config (or
    /// the org) opts into faults.
    [[nodiscard]] faults::ServerFaultProfile server_fault_profile(const Domain& d,
                                                                  bool ipv6) const;

    /// Synthesized DNS name, e.g. "d001234.com".
    [[nodiscard]] std::string domain_name(const Domain& d) const;
    /// Synthesized address string for the serving host.
    [[nodiscard]] std::string host_address(const Domain& d, bool ipv6) const;

    /// Global host key (unique across orgs and address families), for
    /// IP-level aggregation.
    [[nodiscard]] std::uint64_t host_key(const Domain& d, bool ipv6) const;

    /// Host pool sizes (number of distinct serving addresses) per org,
    /// derived in closed form from the expected resolved-domain mass of the
    /// org — never from a realized count, so no domain materialization.
    [[nodiscard]] std::uint32_t ipv4_pool(std::size_t org) const { return v4_pool_.at(org); }
    [[nodiscard]] std::uint64_t ipv6_pool(std::size_t org) const { return v6_pool_.at(org); }

private:
    void build_profiles();
    void compute_geometry();

    PopulationConfig config_;
    UniverseShape shape_;
    std::vector<StackProfile> stacks_;
    std::vector<OrgProfile> orgs_;
    std::vector<std::uint32_t> v4_pool_;
    std::vector<std::uint64_t> v6_pool_;
    std::size_t n_cno_ = 0;
    std::size_t n_other_ = 0;
    std::size_t n_extra_ = 0;
    double p_top_inside_czds_ = 0.0;
    /// Per-segment QUIC-org samplers built once from the profile weights.
    util::DiscreteSampler pick_cno_{std::span<const double>{}};
    util::DiscreteSampler pick_other_{std::span<const double>{}};
    util::DiscreteSampler pick_top_{std::span<const double>{}};
};

/// The eagerly materialized universe plus its generating model — the
/// resident-vector view for tests and small sweeps. Large campaigns should
/// consume the model() directly and stream DomainBlocks instead.
class Population {
public:
    explicit Population(const PopulationConfig& config);

    [[nodiscard]] const PopulationModel& model() const noexcept { return model_; }

    [[nodiscard]] std::span<const Domain> domains() const noexcept { return domains_; }
    [[nodiscard]] std::span<const OrgProfile> orgs() const noexcept { return model_.orgs(); }
    [[nodiscard]] std::span<const StackProfile> stacks() const noexcept {
        return model_.stacks();
    }
    [[nodiscard]] const PopulationConfig& config() const noexcept { return model_.config(); }
    [[nodiscard]] const UniverseShape& shape() const noexcept { return model_.shape(); }

    [[nodiscard]] const OrgProfile& org_of(const Domain& d) const { return model_.org_of(d); }
    [[nodiscard]] const StackProfile& stack_of(const Domain& d) const {
        return model_.stack_of(d);
    }
    [[nodiscard]] bool host_spins(const Domain& d, int week, bool ipv6) const {
        return model_.host_spins(d, week, ipv6);
    }
    [[nodiscard]] quic::SpinPolicy host_disabled_policy(const Domain& d, bool ipv6) const {
        return model_.host_disabled_policy(d, ipv6);
    }
    [[nodiscard]] faults::ServerFaultProfile server_fault_profile(const Domain& d,
                                                                  bool ipv6) const {
        return model_.server_fault_profile(d, ipv6);
    }
    [[nodiscard]] std::string domain_name(const Domain& d) const {
        return model_.domain_name(d);
    }
    [[nodiscard]] std::string host_address(const Domain& d, bool ipv6) const {
        return model_.host_address(d, ipv6);
    }
    [[nodiscard]] std::uint64_t host_key(const Domain& d, bool ipv6) const {
        return model_.host_key(d, ipv6);
    }
    [[nodiscard]] std::uint32_t ipv4_pool(std::size_t org) const {
        return model_.ipv4_pool(org);
    }
    [[nodiscard]] std::uint64_t ipv6_pool(std::size_t org) const {
        return model_.ipv6_pool(org);
    }

private:
    PopulationModel model_;
    std::vector<Domain> domains_;
};

/// Default stack table (index constants used by the org profiles).
enum : std::size_t {
    kStackLiteSpeed = 0,
    kStackImunify = 1,
    kStackNginxQuic = 2,
    kStackCaddy = 3,
    kStackCdnEdgeA = 4,  ///< Cloudflare-like proprietary edge
    kStackCdnEdgeB = 5,  ///< Google-like proprietary edge
    kStackCdnEdgeC = 6,  ///< Fastly-like proprietary edge
    kStackCount = 7,
};

}  // namespace spinscope::web
