// Unit tests for the analysis aggregators (Tables 1-4, Figures 2-4).

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "analysis/accuracy.hpp"
#include "analysis/adoption.hpp"
#include "analysis/csv.hpp"
#include "analysis/longitudinal.hpp"

namespace spinscope::analysis {
namespace {

using util::Duration;
using util::TimePoint;

qlog::PacketEvent one_rtt(std::int64_t ms, quic::PacketNumber pn, bool spin) {
    return {TimePoint::origin() + Duration::millis(ms), quic::PacketType::one_rtt, pn, spin,
            100, true};
}

qlog::Trace make_trace(std::initializer_list<bool> spins, std::vector<double> quic_samples,
                       qlog::ConnectionOutcome outcome = qlog::ConnectionOutcome::ok) {
    qlog::Trace trace;
    trace.host = "www.x";
    trace.ip = "10.0.0.1";
    trace.outcome = outcome;
    quic::PacketNumber pn = 0;
    std::int64_t t = 0;
    for (const bool spin : spins) {
        trace.record_received(one_rtt(t, pn++, spin));
        t += 30;
    }
    trace.metrics.rtt_samples_ms = std::move(quic_samples);
    return trace;
}

scanner::DomainScan make_scan(std::vector<qlog::Trace> traces) {
    scanner::DomainScan scan;
    scan.resolved = true;
    scan.connections = std::move(traces);
    return scan;
}

// --- classify_domain ----------------------------------------------------------

TEST(ClassifyDomain, NotQuicWithoutOkConnections) {
    scanner::DomainScan scan;
    scan.resolved = true;
    EXPECT_EQ(classify_domain(scan), DomainSpinClass::not_quic);
    scan.connections.push_back(
        make_trace({}, {}, qlog::ConnectionOutcome::handshake_timeout));
    EXPECT_EQ(classify_domain(scan), DomainSpinClass::not_quic);
}

TEST(ClassifyDomain, SingleBehaviours) {
    EXPECT_EQ(classify_domain(make_scan({make_trace({false, false, false}, {20.0})})),
              DomainSpinClass::all_zero);
    EXPECT_EQ(classify_domain(make_scan({make_trace({true, true}, {20.0})})),
              DomainSpinClass::all_one);
    EXPECT_EQ(classify_domain(make_scan({make_trace({false, true, false, true}, {20.0})})),
              DomainSpinClass::spinning);
}

TEST(ClassifyDomain, SpinningTakesPrecedence) {
    auto scan = make_scan({make_trace({false, false}, {20.0}),
                           make_trace({false, true, false, true}, {20.0})});
    EXPECT_EQ(classify_domain(scan), DomainSpinClass::spinning);
}

TEST(ClassifyDomain, MixedFixedValues) {
    auto scan = make_scan({make_trace({false, false}, {20.0}),
                           make_trace({true, true}, {20.0})});
    EXPECT_EQ(classify_domain(scan), DomainSpinClass::mixed);
}

TEST(ClassifyDomain, GreasedWhenFilterFires) {
    // Spin period 30 ms but stack says ~50 ms: the filter treats it as
    // presumed greasing.
    auto scan = make_scan({make_trace({false, true, false, true}, {50.0, 52.0})});
    EXPECT_EQ(classify_domain(scan), DomainSpinClass::greased);
}

// --- in_list -------------------------------------------------------------------

TEST(InList, MembershipRules) {
    web::Domain domain;
    domain.set_segment(web::Segment::czds_cno);
    domain.on_toplist = false;
    EXPECT_TRUE(in_list(domain, ListId::czds));
    EXPECT_TRUE(in_list(domain, ListId::cno));
    EXPECT_FALSE(in_list(domain, ListId::toplists));

    domain.on_toplist = true;
    EXPECT_TRUE(in_list(domain, ListId::toplists));

    domain.set_segment(web::Segment::czds_other);
    EXPECT_TRUE(in_list(domain, ListId::czds));
    EXPECT_FALSE(in_list(domain, ListId::cno));

    domain.set_segment(web::Segment::toplist_extra);
    EXPECT_FALSE(in_list(domain, ListId::czds));
    EXPECT_FALSE(in_list(domain, ListId::cno));
    EXPECT_TRUE(in_list(domain, ListId::toplists));
}

// --- AdoptionAggregator ----------------------------------------------------------

class AdoptionTest : public ::testing::Test {
protected:
    AdoptionTest() : population_{{200000.0, 20230520}}, aggregator_{population_, false} {}

    web::Population population_;
    AdoptionAggregator aggregator_;
};

TEST_F(AdoptionTest, CountsFunnelMonotonically) {
    // Synthesize: one unresolved, one resolved non-QUIC, one spinning.
    const auto& d0 = population_.domains()[0];
    scanner::DomainScan unresolved;
    unresolved.resolved = false;
    aggregator_.add(d0, unresolved);

    scanner::DomainScan no_quic;
    no_quic.resolved = true;
    aggregator_.add(d0, no_quic);

    aggregator_.add(d0, make_scan({make_trace({false, true, false, true}, {25.0})}));

    for (std::size_t l = 0; l < kListCount; ++l) {
        const auto& c = aggregator_.list(static_cast<ListId>(l));
        EXPECT_GE(c.domains_total, c.domains_resolved);
        EXPECT_GE(c.domains_resolved, c.domains_quic);
        EXPECT_GE(c.domains_quic, c.domains_spin);
    }
    const auto& czds = aggregator_.list(ListId::czds);
    if (in_list(d0, ListId::czds)) {
        EXPECT_EQ(czds.domains_total, 3u);
        EXPECT_EQ(czds.domains_resolved, 2u);
        EXPECT_EQ(czds.domains_quic, 1u);
        EXPECT_EQ(czds.domains_spin, 1u);
        EXPECT_EQ(czds.ips_spin.size(), 1u);
    }
}

TEST_F(AdoptionTest, OrgConnectionCounting) {
    const web::Domain* cno_domain = nullptr;
    for (const auto& d : population_.domains()) {
        if (d.segment() == web::Segment::czds_cno && d.resolves) {
            cno_domain = &d;
            break;
        }
    }
    ASSERT_NE(cno_domain, nullptr);
    aggregator_.add(*cno_domain,
                    make_scan({make_trace({false, true, false}, {25.0}),
                               make_trace({false, false}, {25.0})}));
    const auto& orgs = aggregator_.orgs();
    std::uint64_t total = 0;
    std::uint64_t spin = 0;
    for (const auto& org : orgs) {
        total += org.connections;
        spin += org.spin_connections;
    }
    EXPECT_EQ(total, 2u);  // both OK connections counted
    EXPECT_EQ(spin, 1u);   // only the flipping one
}

TEST_F(AdoptionTest, RenderersProduceTables) {
    const auto& d0 = population_.domains()[0];
    aggregator_.add(d0, make_scan({make_trace({false, true, false, true}, {25.0})}));
    EXPECT_NE(aggregator_.render_overview_table().find("Resolved"), std::string::npos);
    EXPECT_NE(aggregator_.render_org_table().find("AS Organization"), std::string::npos);
    EXPECT_NE(aggregator_.render_config_table().find("All Zero"), std::string::npos);
}

// --- AccuracyAggregator ----------------------------------------------------------

TEST(AccuracyAgg, HeadlineSharesFromKnownInputs) {
    AccuracyAggregator agg;
    // The make_trace square wave has a 30 ms spin period.
    // Connection A: spin 30 vs quic 24 -> over, ratio 1.25, diff 6 ms.
    agg.add(core::assess_connection(make_trace({false, true, false, true, false}, {24.0})));
    // Connection B: spin 30 vs quic 10 -> over, ratio 3.0, diff 20 ms.
    agg.add(core::assess_connection(make_trace({false, true, false, true, false}, {10.0})));
    const auto h = agg.headline(AccuracySeries::spin_received);
    EXPECT_EQ(h.connections, 2u);
    EXPECT_DOUBLE_EQ(h.overestimate_share, 1.0);
    EXPECT_DOUBLE_EQ(h.within_25ms_share, 1.0);
    EXPECT_DOUBLE_EQ(h.over_200ms_share, 0.0);
    EXPECT_DOUBLE_EQ(h.within_ratio_125_share, 0.5);
    EXPECT_DOUBLE_EQ(h.within_ratio_2_share, 0.5);
    EXPECT_DOUBLE_EQ(h.underestimate_share, 0.0);
}

TEST(AccuracyAgg, GreasedGoesToGreaseSeries) {
    AccuracyAggregator agg;
    agg.add(core::assess_connection(make_trace({false, true, false, true}, {50.0, 52.0})));
    EXPECT_EQ(agg.headline(AccuracySeries::spin_received).connections, 0u);
    const auto grease = agg.headline(AccuracySeries::grease_received);
    EXPECT_EQ(grease.connections, 1u);
    EXPECT_DOUBLE_EQ(grease.underestimate_share, 1.0);
}

TEST(AccuracyAgg, NonCandidatesIgnored) {
    AccuracyAggregator agg;
    agg.add(core::assess_connection(make_trace({false, false, false}, {20.0})));
    EXPECT_EQ(agg.headline(AccuracySeries::spin_received).connections, 0u);
    EXPECT_EQ(agg.reordering().connections, 0u);
}

TEST(AccuracyAgg, ReorderingImpactDetection) {
    AccuracyAggregator agg;
    // Build a trace whose R and S means differ (reordered straggler).
    qlog::Trace trace;
    trace.outcome = qlog::ConnectionOutcome::ok;
    trace.record_received(one_rtt(0, 0, false));
    trace.record_received(one_rtt(40, 1, true));
    trace.record_received(one_rtt(80, 3, false));
    trace.record_received(one_rtt(81, 2, true));
    trace.record_received(one_rtt(120, 4, true));
    trace.metrics.rtt_samples_ms = {1.0};  // tiny baseline: not greased? min spin 1ms >= 1
    const auto assessment = core::assess_connection(trace);
    agg.add(assessment);
    if (assessment.behavior == core::SpinBehavior::spinning) {
        EXPECT_EQ(agg.reordering().connections, 1u);
        EXPECT_EQ(agg.reordering().differing, 1u);
    }
    // A clean connection adds a non-differing data point.
    agg.add(core::assess_connection(make_trace({false, true, false, true}, {25.0})));
    EXPECT_GT(agg.reordering().connections, 0u);
    EXPECT_NE(agg.render_reordering_impact().find("differing"), std::string::npos);
}

TEST(AccuracyAgg, FiguresRender) {
    AccuracyAggregator agg;
    agg.add(core::assess_connection(make_trace({false, true, false, true}, {25.0})));
    EXPECT_NE(agg.render_abs_figure().find("Figure 3"), std::string::npos);
    EXPECT_NE(agg.render_ratio_figure().find("Figure 4"), std::string::npos);
    EXPECT_NE(agg.render_headlines().find("paper Spin(R)"), std::string::npos);
}

// --- LongitudinalAggregator -------------------------------------------------------

TEST(Longitudinal, HistogramCountsWeeks) {
    LongitudinalAggregator agg{4};
    // Domain 1: connected+spun all 4 weeks.
    for (unsigned w = 0; w < 4; ++w) agg.add(1, w, true, true);
    // Domain 2: connected all, spun 2 weeks.
    for (unsigned w = 0; w < 4; ++w) agg.add(2, w, true, w < 2);
    // Domain 3: spun but missed one week's connection -> excluded.
    for (unsigned w = 0; w < 4; ++w) agg.add(3, w, w != 2, true);
    // Domain 4: never spun -> not in the population at all.
    for (unsigned w = 0; w < 4; ++w) agg.add(4, w, true, false);

    EXPECT_EQ(agg.spun_any(), 3u);
    EXPECT_EQ(agg.connected_all(), 2u);
    const auto histogram = agg.weeks_spinning_histogram();
    EXPECT_EQ(histogram.total(), 2u);
    EXPECT_EQ(histogram.count(4), 1u);
    EXPECT_EQ(histogram.count(2), 1u);
    EXPECT_EQ(histogram.count(3), 0u);
}

TEST(Longitudinal, OutOfRangeWeekIgnored) {
    LongitudinalAggregator agg{2};
    agg.add(1, 5, true, true);
    EXPECT_EQ(agg.spun_any(), 0u);
}

TEST(Longitudinal, RfcSharesAreConditionedDistribution) {
    LongitudinalAggregator agg{12};
    for (const unsigned lottery : {8u, 16u}) {
        const auto shares = agg.rfc_shares(lottery);
        ASSERT_EQ(shares.size(), 13u);
        double sum = 0.0;
        for (unsigned k = 1; k <= 12; ++k) sum += shares[k];
        EXPECT_NEAR(sum, 1.0, 1e-9);
        EXPECT_DOUBLE_EQ(shares[0], 0.0);
    }
    // 1-in-16 spins more often than 1-in-8 at the top bin.
    EXPECT_GT(agg.rfc_shares(16)[12], agg.rfc_shares(8)[12]);
}

TEST(Csv, HistogramExportsParse) {
    AccuracyAggregator agg;
    agg.add(core::assess_connection(make_trace({false, true, false, true}, {25.0})));
    const auto abs_csv = abs_histogram_csv(agg);
    const auto ratio_csv = ratio_histogram_csv(agg);
    // Header + one row per bin + under/overflow rows.
    const auto lines = [](const std::string& text) {
        return std::count(text.begin(), text.end(), '\n');
    };
    EXPECT_EQ(static_cast<std::size_t>(lines(abs_csv)),
              agg.abs_histogram(AccuracySeries::spin_received).bin_count() + 3);
    EXPECT_EQ(static_cast<std::size_t>(lines(ratio_csv)),
              agg.ratio_histogram(AccuracySeries::spin_received).bin_count() + 3);
    EXPECT_EQ(abs_csv.find("bin_low,bin_high,spin_r"), 0u);
    // Every data row has exactly 5 commas.
    std::istringstream in{abs_csv};
    std::string line;
    std::getline(in, line);
    while (std::getline(in, line)) {
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 5) << line;
    }
}

TEST(Csv, WeeksExport) {
    LongitudinalAggregator agg{4};
    for (unsigned w = 0; w < 4; ++w) agg.add(1, w, true, true);
    const auto csv = weeks_histogram_csv(agg);
    EXPECT_EQ(csv.find("weeks,measured,rfc9000,rfc9312"), 0u);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);  // header + 4 weeks
    EXPECT_NE(csv.find("4,1"), std::string::npos);  // all-4-weeks share = 1
}

TEST(Longitudinal, RendersFigure) {
    LongitudinalAggregator agg{12};
    for (unsigned w = 0; w < 12; ++w) agg.add(1, w, true, w % 2 == 0);
    const auto out = agg.render_figure();
    EXPECT_NE(out.find("Figure 2"), std::string::npos);
    EXPECT_NE(out.find("RFC 9000"), std::string::npos);
}

}  // namespace
}  // namespace spinscope::analysis
