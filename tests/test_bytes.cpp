// Buffer/BufferPool semantics and a seeded property sweep over the byte
// cursors: every schema round-trips exactly, every truncated prefix fails
// cleanly (run under ASan to enforce no over-read), and ByteReader's varint
// agrees with the free decode_varint on all valid inputs.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "bytes/bytes.hpp"
#include "bytes/cursor.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"

namespace spinscope::bytes {
namespace {

using util::Rng;

// ---------------------------------------------------------------------------
// Buffer semantics

TEST(Buffer, DefaultIsEmptyAndUnpooled) {
    Buffer b;
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.size(), 0u);
    EXPECT_EQ(b.pool(), nullptr);
}

TEST(Buffer, VectorShapeOperations) {
    Buffer b{4, 0xab};
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 0xab);
    b.push_back(0x01);
    b.append(std::vector<std::uint8_t>{2, 3});
    ASSERT_EQ(b.size(), 7u);
    EXPECT_EQ(b[4], 0x01);
    EXPECT_EQ(b[6], 3);
    b.resize(2);
    EXPECT_EQ(b.size(), 2u);
    b.clear();
    EXPECT_TRUE(b.empty());
}

TEST(Buffer, AdoptsVectorWithoutCopy) {
    std::vector<std::uint8_t> v{1, 2, 3};
    const auto* before = v.data();
    Buffer b{std::move(v)};
    EXPECT_EQ(b.data(), before);
    EXPECT_EQ(b.size(), 3u);
}

TEST(Buffer, MoveTransfersStorageAndEmptiesSource) {
    Buffer a = Buffer::copy_of(std::vector<std::uint8_t>{9, 8, 7});
    Buffer b{std::move(a)};
    EXPECT_EQ(b.size(), 3u);
    EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): post-move state is defined
    Buffer c;
    c = std::move(b);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c[0], 9);
}

TEST(Buffer, SpanViewsSeeTheBytes) {
    Buffer b = Buffer::copy_of(std::vector<std::uint8_t>{1, 2, 3});
    ConstByteSpan view = b;  // implicit conversion, borrowed
    ASSERT_EQ(view.size(), 3u);
    EXPECT_EQ(view[2], 3);
    b.writable_span()[0] = 42;
    EXPECT_EQ(b.span()[0], 42);
}

TEST(Buffer, UnpooledCloneIsDeepAndUnpooled) {
    Buffer a = Buffer::copy_of(std::vector<std::uint8_t>{5, 6});
    Buffer b = a.clone();
    EXPECT_NE(a.data(), b.data());
    EXPECT_EQ(b.pool(), nullptr);
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b[1], 6);
}

// ---------------------------------------------------------------------------
// BufferPool semantics

TEST(BufferPool, FirstAcquireMissesThenRecycledStorageHits) {
    BufferPool pool;
    {
        Buffer b = pool.acquire(1200);
        EXPECT_GE(b.capacity(), 1200u);
        EXPECT_TRUE(b.empty());  // capacity is recycled, bytes never are
        EXPECT_EQ(b.pool(), &pool);
        b.push_back(0xff);
    }  // destructor recycles
    EXPECT_EQ(pool.free_count(), 1u);
    {
        Buffer b = pool.acquire(100);
        EXPECT_TRUE(b.empty());
        EXPECT_GE(b.capacity(), 1200u);  // reused the recycled storage
    }
    const auto& s = pool.stats();
    EXPECT_EQ(s.acquires, 2u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.recycled, 2u);
    EXPECT_EQ(s.outstanding, 0u);
}

TEST(BufferPool, OutstandingTracksLiveBuffersWithHighWaterMark) {
    BufferPool pool;
    {
        Buffer a = pool.acquire();
        Buffer b = pool.acquire();
        EXPECT_EQ(pool.stats().outstanding, 2u);
    }
    EXPECT_EQ(pool.stats().outstanding, 0u);
    { Buffer c = pool.acquire(); }
    EXPECT_EQ(pool.stats().outstanding_hwm, 2u);
}

TEST(BufferPool, FreeListIsCappedAndTrims) {
    BufferPool pool{2};
    {
        Buffer a = pool.acquire();
        Buffer b = pool.acquire();
        Buffer c = pool.acquire();
    }
    EXPECT_EQ(pool.free_count(), 2u);
    EXPECT_EQ(pool.stats().trimmed, 1u);
    EXPECT_EQ(pool.stats().recycled, 2u);
}

TEST(BufferPool, MovedFromBufferDoesNotDoubleRecycle) {
    BufferPool pool;
    {
        Buffer a = pool.acquire();
        Buffer b = std::move(a);
        // `a` no longer owns pool storage; only `b`'s death may recycle.
    }
    EXPECT_EQ(pool.stats().recycled, 1u);
    EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufferPool, CloneDrawsFromTheSamePool) {
    BufferPool pool;
    Buffer a = pool.acquire();
    a.append(std::vector<std::uint8_t>{1, 2, 3});
    Buffer b = a.clone();
    EXPECT_EQ(b.pool(), &pool);
    EXPECT_EQ(b.size(), 3u);
    EXPECT_NE(a.data(), b.data());
}

TEST(BufferPool, DetachLeavesThePoolsOrbit) {
    BufferPool pool;
    std::vector<std::uint8_t> v;
    {
        Buffer b = pool.acquire();
        b.push_back(7);
        v = std::move(b).detach();
    }
    EXPECT_EQ(v, (std::vector<std::uint8_t>{7}));
    EXPECT_EQ(pool.free_count(), 0u);  // nothing came back
    EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufferPool, PublishMetricsMergesAcrossChunkRegistries) {
    // Two chunk-private pools publish into two chunk registries that merge
    // into one — the sharded campaign's exact telemetry shape.
    telemetry::MetricsRegistry merged;
    for (int chunk = 0; chunk < 2; ++chunk) {
        BufferPool pool;
        {
            Buffer a = pool.acquire();
            Buffer b = pool.acquire();
        }
        { Buffer c = pool.acquire(); }
        telemetry::MetricsRegistry chunk_registry;
        pool.publish_metrics(chunk_registry);
        merged.merge_from(chunk_registry);
    }
    EXPECT_EQ(merged.counter("bytes.pool.acquires").value(), 6u);
    EXPECT_EQ(merged.counter("bytes.pool.hits").value(), 2u);
    EXPECT_EQ(merged.counter("bytes.pool.misses").value(), 4u);
    EXPECT_DOUBLE_EQ(merged.gauge("bytes.pool.outstanding_hwm").value(), 2.0);
}

TEST(ByteWriter, WritesInPlaceIntoPooledBuffer) {
    BufferPool pool;
    Buffer b = pool.acquire(64);
    ByteWriter w{b};
    w.u8(0x40);
    w.varint(1200);
    w.bytes(std::vector<std::uint8_t>{1, 2});
    EXPECT_EQ(w.size(), b.size());
    EXPECT_EQ(b[0], 0x40);
}

// ---------------------------------------------------------------------------
// Cursor property sweep

struct Field {
    enum Kind { u8, u16, u32, u64, varint, be_truncated, raw_bytes, fill } kind;
    std::uint64_t value = 0;
    std::size_t width = 0;  // be_truncated / raw_bytes / fill length
};

std::vector<Field> random_schema(Rng& rng) {
    std::vector<Field> fields;
    const std::size_t n = 1 + rng.uniform_u64(12);
    fields.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Field f;
        f.kind = static_cast<Field::Kind>(rng.uniform_u64(8));
        switch (f.kind) {
            case Field::u8: f.value = rng.uniform_u64(1ULL << 8); break;
            case Field::u16: f.value = rng.uniform_u64(1ULL << 16); break;
            case Field::u32: f.value = rng.uniform_u64(1ULL << 32); break;
            case Field::u64: f.value = rng.next(); break;
            case Field::varint:
                // Bit-length-uniform so all four encoded widths occur often.
                f.value = rng.next() >> rng.uniform_u64(64);
                if (f.value > kVarintMax) f.value >>= 2;
                break;
            case Field::be_truncated:
                f.width = 1 + rng.uniform_u64(8);
                f.value = rng.next() & (f.width == 8 ? ~0ULL : (1ULL << (8 * f.width)) - 1);
                break;
            case Field::raw_bytes:
            case Field::fill:
                f.width = rng.uniform_u64(16);
                f.value = rng.uniform_u64(1ULL << 8);
                break;
        }
        fields.push_back(f);
    }
    return fields;
}

std::vector<std::uint8_t> encode_schema(const std::vector<Field>& fields) {
    std::vector<std::uint8_t> wire;
    ByteWriter w{wire};
    for (const Field& f : fields) {
        switch (f.kind) {
            case Field::u8: w.u8(static_cast<std::uint8_t>(f.value)); break;
            case Field::u16: w.u16(static_cast<std::uint16_t>(f.value)); break;
            case Field::u32: w.u32(static_cast<std::uint32_t>(f.value)); break;
            case Field::u64: w.u64(f.value); break;
            case Field::varint: w.varint(f.value); break;
            case Field::be_truncated: w.be_truncated(f.value, f.width); break;
            case Field::raw_bytes: {
                std::vector<std::uint8_t> data(f.width,
                                               static_cast<std::uint8_t>(f.value));
                w.bytes(data);
                break;
            }
            case Field::fill: w.fill(f.width, static_cast<std::uint8_t>(f.value)); break;
        }
    }
    return wire;
}

// Reads one field; nullopt on a clean decode failure (truncation).
bool read_field(ByteReader& r, const Field& f, bool check_values) {
    const auto check = [&](std::uint64_t got) {
        if (check_values) EXPECT_EQ(got, f.value);
    };
    switch (f.kind) {
        case Field::u8: {
            const auto v = r.u8();
            if (!v) return false;
            check(*v);
            return true;
        }
        case Field::u16: {
            const auto v = r.u16();
            if (!v) return false;
            check(*v);
            return true;
        }
        case Field::u32: {
            const auto v = r.u32();
            if (!v) return false;
            check(*v);
            return true;
        }
        case Field::u64: {
            const auto v = r.u64();
            if (!v) return false;
            check(*v);
            return true;
        }
        case Field::varint: {
            const auto v = r.varint();
            if (!v) return false;
            check(*v);
            return true;
        }
        case Field::be_truncated: {
            const auto v = r.be_truncated(f.width);
            if (!v) return false;
            check(*v);
            return true;
        }
        case Field::raw_bytes:
        case Field::fill: {
            const auto v = r.bytes(f.width);
            if (!v) return false;
            if (check_values) {
                for (const auto byte : *v) {
                    EXPECT_EQ(byte, static_cast<std::uint8_t>(f.value));
                }
            }
            return true;
        }
    }
    return false;
}

TEST(CursorSweep, TenThousandSchemasRoundTripExactly) {
    Rng rng{0xB17E5};
    for (int seed_case = 0; seed_case < 10'000; ++seed_case) {
        const auto fields = random_schema(rng);
        const auto wire = encode_schema(fields);
        ByteReader r{wire};
        for (const Field& f : fields) {
            ASSERT_TRUE(read_field(r, f, /*check_values=*/true))
                << "case " << seed_case << " failed on complete input";
        }
        EXPECT_TRUE(r.done()) << "case " << seed_case << " left trailing bytes";
    }
}

TEST(CursorSweep, EveryTruncatedPrefixFailsCleanly) {
    // Distinct seed from the round-trip sweep, smaller case count: the inner
    // loop is quadratic in the wire size.
    Rng rng{0x7A17};
    for (int seed_case = 0; seed_case < 500; ++seed_case) {
        const auto fields = random_schema(rng);
        const auto wire = encode_schema(fields);
        for (std::size_t cut = 0; cut < wire.size(); ++cut) {
            ByteReader r{ConstByteSpan{wire.data(), cut}};
            bool failed = false;
            for (const Field& f : fields) {
                if (!read_field(r, f, /*check_values=*/false)) {
                    failed = true;
                    break;
                }
            }
            ASSERT_TRUE(failed) << "prefix of " << cut << '/' << wire.size()
                                << " bytes decoded every field";
            // A failed read never advances past the end.
            ASSERT_LE(r.consumed(), cut);
        }
    }
}

TEST(CursorSweep, ReaderVarintAgreesWithFreeDecoderOnValidInputs) {
    Rng rng{0xDEC0DE};
    for (int i = 0; i < 10'000; ++i) {
        std::uint64_t value = rng.next() >> rng.uniform_u64(64);
        if (value > kVarintMax) value >>= 2;
        std::vector<std::uint8_t> wire;
        encode_varint(wire, value);
        ASSERT_EQ(wire.size(), varint_size(value));

        const auto free_form = decode_varint(wire);
        ASSERT_TRUE(free_form.has_value());
        EXPECT_EQ(free_form->value, value);
        EXPECT_EQ(free_form->consumed, wire.size());

        ByteReader r{wire};
        const auto cursor_form = r.varint();
        ASSERT_TRUE(cursor_form.has_value());
        EXPECT_EQ(*cursor_form, free_form->value);
        EXPECT_EQ(r.consumed(), free_form->consumed);
        EXPECT_TRUE(r.done());
    }
}

TEST(CursorSweep, VarintMinimalRejectsOverlongWithoutAdvancing) {
    // 0x4001 is an overlong encoding of 1: varint() accepts, minimal rejects.
    const std::vector<std::uint8_t> overlong{0x40, 0x01};
    ByteReader plain{overlong};
    EXPECT_EQ(plain.varint(), std::optional<std::uint64_t>{1});
    ByteReader minimal{overlong};
    EXPECT_FALSE(minimal.varint_minimal().has_value());
    EXPECT_EQ(minimal.consumed(), 0u);  // no advance on failure
    EXPECT_EQ(minimal.varint(), std::optional<std::uint64_t>{1});  // still readable
}

}  // namespace
}  // namespace spinscope::bytes
