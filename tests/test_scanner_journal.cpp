// Crash-safe campaign suite (DESIGN.md §11): journal round-trips, torn-tail
// detection and repair, kill-and-resume byte-identity, worker supervision
// (restart + quarantine) and the hung-scan watchdog.
//
// The recovery contract under test: a campaign killed at ANY byte of its
// journal and resumed produces byte-identical sink streams, stats and
// deterministic telemetry to an uninterrupted run, at every thread count —
// and a campaign whose chunks crash or hang completes degraded instead of
// dying.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "golden.hpp"
#include "scanner/campaign.hpp"
#include "scanner/journal.hpp"
#include "scanner/shard.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "web/population.hpp"

namespace spinscope::scanner {
namespace {

using spinscope::testing::render_scan_stream;

// ~110 domains at seed 1 — 7 chunks at the default chunk_domains=16, small
// enough that the boundary × thread-count resume sweep stays fast.
web::Population tiny_population() { return web::Population{{2'000'000.0, 1}}; }

class JournalTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("spinscope_journal_test_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

CampaignHeader sample_header() {
    CampaignHeader header;
    header.seed = 0x5ca7;
    header.week = 3;
    header.ipv6 = true;
    header.chunk_domains = 16;
    header.domain_count = 110;
    header.has_telemetry = true;
    return header;
}

ChunkRecord sample_chunk(std::size_t index) {
    ChunkRecord record;
    record.chunk_index = index;
    DomainScan scan;
    scan.domain_id = static_cast<std::uint32_t>(100 + index);
    scan.resolved = true;
    scan.redirects_followed = 1;
    scan.retries = 2;
    scan.recovered_by_retry = true;
    scan.attempts_truncated = 3;
    scan.error = "weird bytes: % space\nnewline";
    ResponseInfo response;
    response.status = 301;
    response.body_bytes = 12345;
    response.location = "www.target.example";
    response.server_name = "nginx 1.2";
    scan.final_response = response;
    scan.attempts.push_back(DomainScan::AttemptRecord{
        1, 2, qlog::ConnectionOutcome::watchdog_cancelled, util::Duration::millis(7),
        faults::ServerFaultMode::none});
    qlog::Trace trace;
    trace.host = "www.a.example";
    trace.ip = "10.1.2.3";
    trace.outcome = qlog::ConnectionOutcome::ok;
    trace.record_sent({util::TimePoint::from_nanos(1000), quic::PacketType::initial, 0,
                       false, 1200, true, 0});
    trace.record_received({util::TimePoint::from_nanos(2500), quic::PacketType::one_rtt, 1,
                           true, 600, true, 2});
    trace.metrics.rtt_samples_ms = {1.25, 3.5};
    trace.metrics.min_rtt_ms = 1.25;
    trace.metrics.packets_sent = 7;
    scan.connections.push_back(trace);
    record.scans.push_back(std::move(scan));
    record.telemetry_snapshot = "counter scanner.connections 5\n";
    return record;
}

// --- Payload round-trips -----------------------------------------------------

TEST_F(JournalTest, HeaderPayloadRoundTrips) {
    const CampaignHeader header = sample_header();
    const auto parsed = parse_header(serialize_header(header));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == header);

    EXPECT_FALSE(parse_header("").has_value());
    EXPECT_FALSE(parse_header("campaign seed=1\n").has_value());
    EXPECT_FALSE(parse_header("chunk index=0\n").has_value());
}

TEST_F(JournalTest, ChunkPayloadRoundTripsIncludingHostileStrings) {
    const ChunkRecord record = sample_chunk(4);
    const std::string payload = serialize_chunk_record(record);
    const auto parsed = parse_chunk_record(payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->chunk_index, 4u);
    EXPECT_FALSE(parsed->quarantined);
    ASSERT_EQ(parsed->scans.size(), 1u);
    const DomainScan& scan = parsed->scans[0];
    EXPECT_EQ(scan.domain_id, 104u);
    EXPECT_TRUE(scan.resolved);
    EXPECT_EQ(scan.redirects_followed, 1u);
    EXPECT_EQ(scan.retries, 2u);
    EXPECT_TRUE(scan.recovered_by_retry);
    EXPECT_EQ(scan.attempts_truncated, 3u);
    EXPECT_EQ(scan.error, "weird bytes: % space\nnewline");
    ASSERT_TRUE(scan.final_response.has_value());
    EXPECT_EQ(scan.final_response->status, 301);
    EXPECT_EQ(scan.final_response->body_bytes, 12345u);
    EXPECT_EQ(scan.final_response->location, "www.target.example");
    EXPECT_EQ(scan.final_response->server_name, "nginx 1.2");
    ASSERT_EQ(scan.attempts.size(), 1u);
    EXPECT_EQ(scan.attempts[0].outcome, qlog::ConnectionOutcome::watchdog_cancelled);
    EXPECT_EQ(scan.attempts[0].backoff, util::Duration::millis(7));
    ASSERT_EQ(scan.connections.size(), 1u);
    // The trace must re-serialize to the exact bytes the journal stored —
    // this is what makes resumed golden streams byte-identical.
    EXPECT_EQ(qlog::to_jsonl(scan.connections[0]),
              qlog::to_jsonl(record.scans[0].connections[0]));
    EXPECT_EQ(parsed->telemetry_snapshot, record.telemetry_snapshot);

    // A payload that survives CRC but is garbled must parse to nullopt, not
    // crash or mis-parse.
    EXPECT_FALSE(parse_chunk_record("").has_value());
    EXPECT_FALSE(parse_chunk_record("chunk index=0\n").has_value());
    std::string clipped = payload.substr(0, payload.size() / 2);
    EXPECT_FALSE(parse_chunk_record(clipped).has_value());
}

// --- Writer / replay ---------------------------------------------------------

TEST_F(JournalTest, WriterReplayRoundTripWithSegmentRotation) {
    const CampaignHeader header = sample_header();
    {
        // Tiny segments force rotation: every record seals a segment.
        JournalWriter writer{dir_, header, JournalWriter::Mode::fresh,
                             JournalOptions{256}};
        for (std::size_t c = 0; c < 5; ++c) writer.append_chunk(sample_chunk(c));
        EXPECT_GE(writer.segments_sealed(), 4u);
        writer.close();
    }
    std::size_t sealed = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        const auto name = entry.path().filename().string();
        EXPECT_TRUE(name.ends_with(".jsonl")) << name << " left unsealed after close()";
        if (name.ends_with(".jsonl")) ++sealed;
    }
    EXPECT_GE(sealed, 5u);

    const ReplayResult replay = replay_journal(dir_);
    ASSERT_TRUE(replay.has_header);
    EXPECT_TRUE(replay.header == header);
    EXPECT_EQ(replay.torn_bytes_discarded, 0u);
    ASSERT_EQ(replay.chunks.size(), 5u);
    for (std::size_t c = 0; c < 5; ++c) {
        EXPECT_EQ(replay.chunks[c].chunk_index, c);
        EXPECT_EQ(replay.chunks[c].telemetry_snapshot, "counter scanner.connections 5\n");
    }
}

TEST_F(JournalTest, ReplayOfMissingOrEmptyDirectoryIsEmpty) {
    const ReplayResult missing = replay_journal(dir_ / "nope");
    EXPECT_FALSE(missing.has_header);
    EXPECT_TRUE(missing.chunks.empty());
    EXPECT_EQ(missing.torn_bytes_discarded, 0u);
}

TEST_F(JournalTest, TornTailIsDetectedDiscardedAndRepaired) {
    const CampaignHeader header = sample_header();
    {
        JournalWriter writer{dir_, header, JournalWriter::Mode::fresh};
        for (std::size_t c = 0; c < 3; ++c) writer.append_chunk(sample_chunk(c));
    }
    // Reconstruct the crash state: the destructor sealed the segment, but a
    // killed process leaves it under the .open name — rename it back and
    // append half a framed record at the tail.
    auto open_segment = dir_ / "segment-00000.jsonl.open";
    std::filesystem::rename(dir_ / "segment-00000.jsonl", open_segment);
    ASSERT_TRUE(std::filesystem::exists(open_segment));
    const auto intact_size = std::filesystem::file_size(open_segment);
    {
        std::ofstream out{open_segment, std::ios::binary | std::ios::app};
        const std::string torn = frame_record(serialize_chunk_record(sample_chunk(3)));
        out << torn.substr(0, torn.size() / 2);
    }

    const ReplayResult replay = replay_journal(dir_);
    ASSERT_TRUE(replay.has_header);
    EXPECT_EQ(replay.chunks.size(), 3u);
    EXPECT_GT(replay.torn_bytes_discarded, 0u);

    // Attach repairs the tail (write-temp + rename) and appends cleanly.
    {
        JournalWriter writer{dir_, header, JournalWriter::Mode::attach};
        EXPECT_EQ(std::filesystem::file_size(open_segment), intact_size);
        writer.append_chunk(sample_chunk(3));
        writer.close();
    }
    const ReplayResult repaired = replay_journal(dir_);
    EXPECT_EQ(repaired.torn_bytes_discarded, 0u);
    ASSERT_EQ(repaired.chunks.size(), 4u);
    EXPECT_EQ(repaired.chunks[3].chunk_index, 3u);
}

TEST_F(JournalTest, ChecksumCorruptionCutsReplayAtTheCorruptRecord) {
    const CampaignHeader header = sample_header();
    {
        JournalWriter writer{dir_, header, JournalWriter::Mode::fresh};
        for (std::size_t c = 0; c < 4; ++c) writer.append_chunk(sample_chunk(c));
        writer.close();
    }
    const auto segment = dir_ / "segment-00000.jsonl";
    ASSERT_TRUE(std::filesystem::exists(segment));
    // Flip one payload byte in the middle of the file: the CRC of that
    // record fails, and replay must stop THERE, keeping the prefix.
    const auto size = std::filesystem::file_size(segment);
    {
        std::fstream file{segment, std::ios::binary | std::ios::in | std::ios::out};
        file.seekp(static_cast<std::streamoff>(size / 2));
        file.put('\xff');
    }
    const ReplayResult replay = replay_journal(dir_);
    ASSERT_TRUE(replay.has_header);
    EXPECT_LT(replay.chunks.size(), 4u);
    EXPECT_GT(replay.torn_bytes_discarded, 0u);
    for (std::size_t c = 0; c < replay.chunks.size(); ++c) {
        EXPECT_EQ(replay.chunks[c].chunk_index, c);
    }
}

TEST_F(JournalTest, AttachRejectsAForeignCampaignHeader) {
    {
        JournalWriter writer{dir_, sample_header(), JournalWriter::Mode::fresh};
        writer.append_chunk(sample_chunk(0));
        writer.close();
    }
    CampaignHeader other = sample_header();
    other.seed ^= 1;
    EXPECT_THROW(JournalWriter(dir_, other, JournalWriter::Mode::attach),
                 std::invalid_argument);
}

// --- Kill-and-resume byte-identity -------------------------------------------

struct SweepResult {
    std::string stream;                ///< concatenated render_scan_stream, sink order
    std::vector<std::uint32_t> order;  ///< domain ids in sink order
    CampaignStats stats;
    std::string telemetry;  ///< telemetry::deterministic_csv
};

void expect_same_stats(const CampaignStats& a, const CampaignStats& b) {
    EXPECT_EQ(a.domains_scanned, b.domains_scanned);
    EXPECT_EQ(a.domains_resolved, b.domains_resolved);
    EXPECT_EQ(a.domains_quic_ok, b.domains_quic_ok);
    EXPECT_EQ(a.connections, b.connections);
    EXPECT_EQ(a.redirects_followed, b.redirects_followed);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.domains_recovered_by_retry, b.domains_recovered_by_retry);
    EXPECT_EQ(a.domains_errored, b.domains_errored);
    EXPECT_EQ(a.outcomes, b.outcomes);
    EXPECT_EQ(a.server_faults, b.server_faults);
}

SweepResult run_to_completion(const web::Population& population, const ScanOptions& options,
                              bool resume) {
    Campaign campaign{population, options};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    SweepResult result;
    const auto sink = [&](const web::Domain& domain, DomainScan&& scan) {
        result.order.push_back(domain.id);
        result.stream += render_scan_stream(scan);
    };
    result.stats = resume ? campaign.resume(sink) : campaign.run(sink);
    result.telemetry = telemetry::deterministic_csv(registry);
    return result;
}

/// Runs a journaled campaign and kills it (exception out of the sink) once
/// `kill_after` domains have been merged; kill_after = 0 kills on the very
/// first merge. Returns true when the kill fired (a large kill_after may let
/// the run complete).
bool run_and_kill(const web::Population& population, const ScanOptions& options,
                  std::uint64_t kill_after) {
    struct Kill {};
    Campaign campaign{population, options};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    std::uint64_t merged = 0;
    try {
        campaign.run([&](const web::Domain&, DomainScan&&) {
            if (merged >= kill_after) throw Kill{};
            ++merged;
        });
    } catch (const Kill&) {
        return true;
    }
    return false;
}

TEST_F(JournalTest, ResumeAfterKillAtEveryChunkBoundaryIsByteIdentical) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.retry.max_attempts = 2;  // exercise backoff streams across resume
    const SweepResult baseline = run_to_completion(population, options, /*resume=*/false);
    const std::size_t domain_count = baseline.order.size();
    ASSERT_GT(domain_count, 80u);
    const std::size_t chunk_count =
        (domain_count + options.chunk_domains - 1) / options.chunk_domains;
    ASSERT_GE(chunk_count, 5u);

    for (const unsigned threads : {1u, 2u, 8u}) {
        for (std::size_t boundary = 0; boundary <= chunk_count; ++boundary) {
            const auto journal_dir =
                dir_ / ("boundary_" + std::to_string(threads) + "_" +
                        std::to_string(boundary));
            ScanOptions killed = options;
            killed.threads = threads;
            killed.journal_dir = journal_dir.string();
            const std::uint64_t kill_after = boundary * options.chunk_domains;
            const bool killed_early =
                run_and_kill(population, killed, kill_after);
            if (boundary < chunk_count) {
                ASSERT_TRUE(killed_early);
            }

            const SweepResult resumed =
                run_to_completion(population, killed, /*resume=*/true);
            EXPECT_EQ(resumed.order, baseline.order)
                << "threads=" << threads << " boundary=" << boundary;
            EXPECT_EQ(resumed.stream, baseline.stream)
                << "threads=" << threads << " boundary=" << boundary;
            EXPECT_EQ(resumed.telemetry, baseline.telemetry)
                << "threads=" << threads << " boundary=" << boundary;
            expect_same_stats(resumed.stats, baseline.stats);
        }
    }
}

TEST_F(JournalTest, ResumeFromJournalTruncatedMidRecordIsByteIdentical) {
    const web::Population population = tiny_population();
    ScanOptions options;
    const SweepResult baseline = run_to_completion(population, options, /*resume=*/false);

    // A complete single-segment journal to truncate at hostile offsets.
    const auto complete_dir = dir_ / "complete";
    ScanOptions journaled = options;
    journaled.journal_dir = complete_dir.string();
    (void)run_to_completion(population, journaled, /*resume=*/false);
    const auto sealed = complete_dir / "segment-00000.jsonl";
    ASSERT_TRUE(std::filesystem::exists(sealed));
    std::string bytes;
    {
        std::ifstream in{sealed, std::ios::binary};
        bytes.assign(std::istreambuf_iterator<char>{in},
                     std::istreambuf_iterator<char>{});
    }

    // Truncation corpus: mid-header, mid-record, one byte short, and a few
    // proportional cuts. Every prefix must resume to byte-identical output —
    // a cut before the first intact record simply rescans everything.
    const std::size_t offsets[] = {0,
                                   3,
                                   bytes.size() / 7,
                                   bytes.size() / 3,
                                   bytes.size() / 2,
                                   (bytes.size() * 7) / 8,
                                   bytes.size() - 1};
    for (const std::size_t offset : offsets) {
        const auto trunc_dir = dir_ / ("trunc_" + std::to_string(offset));
        std::filesystem::create_directories(trunc_dir);
        {
            // The truncated copy is written under the OPEN name — a sealed
            // segment is by definition complete, a crash tears the open one.
            std::ofstream out{trunc_dir / "segment-00000.jsonl.open",
                              std::ios::binary | std::ios::trunc};
            out.write(bytes.data(), static_cast<std::streamsize>(offset));
        }
        ScanOptions resume_options = options;
        resume_options.journal_dir = trunc_dir.string();
        const SweepResult resumed =
            run_to_completion(population, resume_options, /*resume=*/true);
        EXPECT_EQ(resumed.stream, baseline.stream) << "offset=" << offset;
        EXPECT_EQ(resumed.telemetry, baseline.telemetry) << "offset=" << offset;
        expect_same_stats(resumed.stats, baseline.stats);
    }
}

TEST_F(JournalTest, ResumeOfCompleteJournalRescansNothing) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "full").string();
    const SweepResult baseline = run_to_completion(population, options, /*resume=*/false);

    std::atomic<std::size_t> chunks_scanned{0};
    ScanOptions resume_options = options;
    resume_options.chunk_fault_hook = [&](std::size_t) { ++chunks_scanned; };
    const SweepResult resumed =
        run_to_completion(population, resume_options, /*resume=*/true);
    EXPECT_EQ(chunks_scanned.load(), 0u) << "a complete journal must replay, not rescan";
    EXPECT_EQ(resumed.stream, baseline.stream);
    EXPECT_EQ(resumed.telemetry, baseline.telemetry);
    expect_same_stats(resumed.stats, baseline.stats);
}

TEST_F(JournalTest, ResumeRejectsMismatchedCampaignOptions) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "mismatch").string();
    (void)run_to_completion(population, options, /*resume=*/false);

    ScanOptions other = options;
    other.week = 5;  // a different sweep: its scans are NOT interchangeable
    Campaign campaign{population, other};
    EXPECT_THROW((void)campaign.resume([](const web::Domain&, DomainScan&&) {}),
                 std::invalid_argument);

    ScanOptions no_journal;
    Campaign without{population, no_journal};
    EXPECT_THROW((void)without.resume([](const web::Domain&, DomainScan&&) {}),
                 std::invalid_argument);
}

// --- Worker supervision ------------------------------------------------------

TEST_F(JournalTest, TransientChunkCrashIsRestartedWithIdenticalOutput) {
    const web::Population population = tiny_population();
    ScanOptions options;
    const SweepResult baseline = run_to_completion(population, options, /*resume=*/false);

    ScanOptions faulty = options;
    faulty.worker_restart.initial_backoff = util::Duration::millis(1);
    faulty.worker_restart.max_backoff = util::Duration::millis(2);
    std::mutex mu;
    std::set<std::size_t> crashed_once;
    faulty.chunk_fault_hook = [&](std::size_t chunk) {
        std::lock_guard<std::mutex> lock{mu};
        if (chunk == 2 && crashed_once.insert(chunk).second) {
            throw std::runtime_error("injected transient chunk crash");
        }
    };
    const SweepResult recovered = run_to_completion(population, faulty, /*resume=*/false);
    EXPECT_EQ(recovered.stats.worker_restarts, 1u);
    EXPECT_EQ(recovered.stats.chunks_quarantined, 0u);
    EXPECT_EQ(recovered.stream, baseline.stream);
    EXPECT_EQ(recovered.telemetry, baseline.telemetry);
    expect_same_stats(recovered.stats, baseline.stats);
}

TEST_F(JournalTest, PersistentChunkCrashIsQuarantinedAndTheCampaignCompletes) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.threads = 4;
    options.worker_restart.initial_backoff = util::Duration::millis(1);
    options.worker_restart.max_backoff = util::Duration::millis(2);
    options.journal_dir = (dir_ / "quarantine").string();
    options.chunk_fault_hook = [](std::size_t chunk) {
        if (chunk == 3) throw std::runtime_error("poisoned chunk");
    };
    Campaign campaign{population, options};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    std::uint64_t sink_count = 0;
    std::uint64_t quarantined_scans = 0;
    const CampaignStats stats =
        campaign.run([&](const web::Domain&, DomainScan&& scan) {
            ++sink_count;
            if (scan.error.rfind("chunk quarantined:", 0) == 0) ++quarantined_scans;
        });

    EXPECT_EQ(stats.chunks_quarantined, 1u);
    EXPECT_EQ(stats.domains_quarantined, options.chunk_domains);
    EXPECT_EQ(stats.worker_restarts, 1u);  // one restart before giving up
    EXPECT_GE(stats.domains_errored, options.chunk_domains);
    EXPECT_EQ(stats.domains_scanned, sink_count);  // degraded but COMPLETE
    EXPECT_EQ(quarantined_scans, options.chunk_domains);
    const auto* quarantine_counter = registry.find_counter("campaign.quarantined_chunks");
    ASSERT_NE(quarantine_counter, nullptr);
    EXPECT_EQ(quarantine_counter->value(), 1u);

    // The quarantine is journaled: a resume replays the degraded state
    // instead of rescanning (and re-crashing on) the poisoned chunk.
    ScanOptions resume_options = options;
    resume_options.chunk_fault_hook = nullptr;
    Campaign resumed{population, resume_options};
    telemetry::MetricsRegistry resume_registry;
    resumed.set_metrics(&resume_registry);
    std::uint64_t resumed_quarantined = 0;
    const CampaignStats resumed_stats =
        resumed.resume([&](const web::Domain&, DomainScan&& scan) {
            if (scan.error.rfind("chunk quarantined:", 0) == 0) ++resumed_quarantined;
        });
    EXPECT_EQ(resumed_stats.chunks_quarantined, 1u);
    EXPECT_EQ(resumed_quarantined, options.chunk_domains);
}

TEST(RunSupervisedTest, QuarantinesInAscendingOrderAndKeepsMerging) {
    const ShardConfig config{4, 1};
    const ShardPlan plan{10, 1};
    SupervisorConfig supervisor;
    supervisor.restart.max_attempts = 2;
    supervisor.restart.initial_backoff = util::Duration::zero();
    supervisor.sleep_on_restart = false;
    std::vector<std::string> events;  // merge-thread only
    const SupervisionReport report = run_supervised(
        config, plan, supervisor,
        [&](std::size_t chunk) {
            if (chunk == 3 || chunk == 7) throw std::runtime_error("boom");
        },
        [&](std::size_t chunk) { events.push_back("merge " + std::to_string(chunk)); },
        [&](const ChunkFailure& failure) {
            EXPECT_EQ(failure.attempts, 2);
            EXPECT_EQ(failure.error, "boom");
            events.push_back("quarantine " + std::to_string(failure.chunk));
        });
    EXPECT_EQ(report.quarantined, 2u);
    EXPECT_EQ(report.restarts, 2u);
    ASSERT_EQ(events.size(), 10u);
    for (std::size_t c = 0; c < 10; ++c) {
        const std::string expected =
            (c == 3 || c == 7) ? "quarantine " + std::to_string(c)
                               : "merge " + std::to_string(c);
        EXPECT_EQ(events[c], expected);
    }
}

TEST(RunSupervisedTest, MergeExceptionStillCancelsAndRethrows) {
    const ShardConfig config{2, 1};
    const ShardPlan plan{8, 1};
    SupervisorConfig supervisor;
    supervisor.sleep_on_restart = false;
    EXPECT_THROW(
        run_supervised(
            config, plan, supervisor, [](std::size_t) {},
            [](std::size_t chunk) {
                if (chunk == 1) throw std::logic_error("merge failed");
            },
            [](const ChunkFailure&) {}),
        std::logic_error);
}

// --- Scrub: offline verify / repair (DESIGN.md §16) --------------------------
//
// The corruption corpus: each case damages a journal in a distinct way, then
// asserts that scrub_journal classifies the damage correctly, repairs or
// quarantines it (never deletes bytes), and that a resume over the scrubbed
// journal is byte-identical to an uninterrupted run — the no-silent-
// corruption invariant end to end.

TEST_F(JournalTest, ScrubOfCleanJournalFindsNothing) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "clean").string();
    const SweepResult baseline = run_to_completion(population, options, /*resume=*/false);

    const ScrubReport report = scrub_journal(options.journal_dir);
    EXPECT_TRUE(report.clean());
    EXPECT_TRUE(report.has_header);
    EXPECT_EQ(report.bytes_discarded, 0u);
    EXPECT_GE(report.chunks_intact, 5u);
    EXPECT_EQ(report.resume_from_chunk, report.chunks_intact);
    EXPECT_FALSE(std::filesystem::exists(std::filesystem::path{options.journal_dir} /
                                         "corrupt"));

    const SweepResult resumed = run_to_completion(population, options, /*resume=*/true);
    EXPECT_EQ(resumed.stream, baseline.stream);
    EXPECT_EQ(resumed.telemetry, baseline.telemetry);
}

TEST_F(JournalTest, ScrubClassifiesHeaderCorruptionAndQuarantinesEverything) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "hdr").string();
    const SweepResult baseline = run_to_completion(population, options, /*resume=*/false);

    // Garble the frame marker of record 0: the campaign header no longer
    // parses, so NOTHING in the journal can be attributed to a campaign.
    const auto segment = std::filesystem::path{options.journal_dir} / "segment-00000.jsonl";
    ASSERT_TRUE(std::filesystem::exists(segment));
    {
        std::fstream file{segment, std::ios::binary | std::ios::in | std::ios::out};
        file.write("XXXX", 4);
    }

    const ScrubReport report = scrub_journal(options.journal_dir);
    ASSERT_FALSE(report.clean());
    EXPECT_FALSE(report.has_header);
    EXPECT_EQ(report.findings[0].damage, ScrubDamage::header_corrupt);
    EXPECT_TRUE(report.findings[0].quarantined);
    EXPECT_EQ(report.chunks_intact, 0u);
    EXPECT_EQ(report.resume_from_chunk, 0u);
    EXPECT_GT(report.bytes_discarded, 0u);
    // Quarantined, never deleted: the damaged segment lives under corrupt/.
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path{options.journal_dir} /
                                        "corrupt" / "segment-00000.jsonl"));
    EXPECT_FALSE(std::filesystem::exists(segment));

    // Resume over the emptied journal rescans everything — byte-identical.
    const SweepResult resumed = run_to_completion(population, options, /*resume=*/true);
    EXPECT_EQ(resumed.stream, baseline.stream);
    EXPECT_EQ(resumed.telemetry, baseline.telemetry);
    expect_same_stats(resumed.stats, baseline.stats);
}

TEST_F(JournalTest, ScrubClassifiesBitFlipInASealedSegmentAsMidSegmentCorruption) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "flip").string();
    options.journal_segment_bytes = 1024;  // force several sealed segments
    const SweepResult baseline = run_to_completion(population, options, /*resume=*/false);

    std::vector<std::filesystem::path> sealed;
    for (const auto& entry :
         std::filesystem::directory_iterator(options.journal_dir)) {
        if (entry.path().filename().string().ends_with(".jsonl")) {
            sealed.push_back(entry.path());
        }
    }
    std::sort(sealed.begin(), sealed.end());
    ASSERT_GE(sealed.size(), 3u);

    // Flip one payload byte in the MIDDLE sealed segment: records after it
    // are intact on disk but behind the damage in the prefix order.
    const auto& victim = sealed[1];
    const auto size = std::filesystem::file_size(victim);
    {
        std::fstream file{victim, std::ios::binary | std::ios::in | std::ios::out};
        file.seekp(static_cast<std::streamoff>(size / 2));
        char byte = 0;
        file.seekg(static_cast<std::streamoff>(size / 2));
        file.get(byte);
        file.seekp(static_cast<std::streamoff>(size / 2));
        file.put(static_cast<char>(byte ^ 0x01));
    }

    const ScrubReport report = scrub_journal(options.journal_dir);
    ASSERT_FALSE(report.clean());
    EXPECT_EQ(report.findings[0].damage, ScrubDamage::mid_segment_corruption);
    EXPECT_TRUE(report.findings[0].quarantined);
    EXPECT_GT(report.bytes_discarded, 0u);
    EXPECT_GE(report.chunks_intact, 1u);  // segment 0's records survive
    EXPECT_EQ(report.resume_from_chunk, report.chunks_intact);
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path{options.journal_dir} /
                                        "corrupt" / "scrub.report"));

    const SweepResult resumed = run_to_completion(population, options, /*resume=*/true);
    EXPECT_EQ(resumed.stream, baseline.stream);
    EXPECT_EQ(resumed.telemetry, baseline.telemetry);
    expect_same_stats(resumed.stats, baseline.stats);
}

TEST_F(JournalTest, ScrubClassifiesADeletedMiddleSegmentAndResumes) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "gap").string();
    options.journal_segment_bytes = 1024;
    const SweepResult baseline = run_to_completion(population, options, /*resume=*/false);

    const auto missing =
        std::filesystem::path{options.journal_dir} / "segment-00001.jsonl";
    ASSERT_TRUE(std::filesystem::exists(missing));
    std::filesystem::remove(missing);

    const ScrubReport report = scrub_journal(options.journal_dir);
    ASSERT_FALSE(report.clean());
    EXPECT_EQ(report.findings[0].damage, ScrubDamage::missing_segment);
    EXPECT_GE(report.chunks_intact, 1u);
    EXPECT_EQ(report.resume_from_chunk, report.chunks_intact);

    const SweepResult resumed = run_to_completion(population, options, /*resume=*/true);
    EXPECT_EQ(resumed.stream, baseline.stream);
    EXPECT_EQ(resumed.telemetry, baseline.telemetry);
    expect_same_stats(resumed.stats, baseline.stats);
}

TEST_F(JournalTest, ScrubQuarantinesAMapChunkThatFramesButFailsCrc) {
    // Map layout: publish a header and three chunks, then rewrite chunk 1
    // with a frame whose declared CRC does not match its payload.
    const CampaignHeader header = sample_header();
    init_map_journal(dir_, header, /*wipe=*/true);
    for (std::size_t c = 0; c < 3; ++c) {
        ASSERT_TRUE(write_map_chunk(dir_, sample_chunk(c)));
    }
    const std::string payload = serialize_chunk_record(sample_chunk(1));
    std::string framed = frame_record(payload);
    framed[framed.size() - 1] ^= 0x01;  // parses as a frame, fails the CRC
    {
        std::ofstream out{map_chunk_path(dir_, 1), std::ios::binary | std::ios::trunc};
        out << framed;
    }
    ASSERT_FALSE(read_map_chunk(dir_, 1).has_value());

    const ScrubReport report = scrub_journal(dir_);
    ASSERT_FALSE(report.clean());
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].damage, ScrubDamage::corrupt_map_chunk);
    EXPECT_TRUE(report.findings[0].quarantined);
    ASSERT_EQ(report.chunks_to_rescan.size(), 1u);
    EXPECT_EQ(report.chunks_to_rescan[0], 1u);
    EXPECT_EQ(report.chunks_intact, 2u);
    EXPECT_TRUE(report.has_header);
    // The corrupt record is preserved under corrupt/, not deleted, and the
    // live directory no longer lists it — the reducer will rescan chunk 1.
    EXPECT_FALSE(std::filesystem::exists(map_chunk_path(dir_, 1)));
    EXPECT_TRUE(std::filesystem::exists(dir_ / "corrupt" / "chunk-00001.rec"));
    const MapReplayResult replay = read_map_journal(dir_);
    EXPECT_EQ(replay.chunks.size(), 2u);
    EXPECT_EQ(replay.corrupt_chunks, 0u);
}

TEST_F(JournalTest, ScrubWithoutRepairOnlyClassifies) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "dry").string();
    (void)run_to_completion(population, options, /*resume=*/false);

    const auto segment = std::filesystem::path{options.journal_dir} / "segment-00000.jsonl";
    const auto size = std::filesystem::file_size(segment);
    {
        std::fstream file{segment, std::ios::binary | std::ios::in | std::ios::out};
        file.seekp(static_cast<std::streamoff>(size - 4));
        file.put('\xff');
    }

    ScrubOptions dry;
    dry.repair = false;
    const ScrubReport report = scrub_journal(options.journal_dir, dry);
    ASSERT_FALSE(report.clean());
    for (const ScrubFinding& finding : report.findings) {
        EXPECT_FALSE(finding.repaired);
        EXPECT_FALSE(finding.quarantined);
    }
    // Dry run: the damaged bytes are untouched and nothing was quarantined.
    EXPECT_EQ(std::filesystem::file_size(segment), size);
    EXPECT_FALSE(std::filesystem::exists(std::filesystem::path{options.journal_dir} /
                                         "corrupt"));
}

// --- Watchdog and bounded buffers --------------------------------------------

TEST(WatchdogTest, HungScanIsCancelledWithWatchdogOutcome) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.retry.max_attempts = 3;
    // Budget below one handshake timeout: every non-QUIC target's simulation
    // is still busy when the watchdog fires.
    options.domain_deadline = util::Duration::seconds(2);
    Campaign campaign{population, options};
    const CampaignStats stats = campaign.run([](const web::Domain&, DomainScan&&) {});
    EXPECT_GT(stats.outcome(qlog::ConnectionOutcome::watchdog_cancelled), 0u);
    // The watchdog kill is terminal for the domain: no retries follow it, so
    // no domain records more than one watchdog_cancelled attempt... which
    // also means the retry knob must not multiply cancelled attempts.
    EXPECT_LE(stats.outcome(qlog::ConnectionOutcome::watchdog_cancelled),
              stats.domains_resolved);
}

TEST(WatchdogTest, WatchdogKillStopsRetriesAndRedirects) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.retry.max_attempts = 5;
    options.domain_deadline = util::Duration::seconds(2);
    Campaign campaign{population, options};
    bool saw_cancelled = false;
    (void)campaign.run([&](const web::Domain&, DomainScan&& scan) {
        for (std::size_t i = 0; i < scan.attempts.size(); ++i) {
            if (scan.attempts[i].outcome == qlog::ConnectionOutcome::watchdog_cancelled) {
                saw_cancelled = true;
                EXPECT_EQ(i + 1, scan.attempts.size())
                    << "attempts continued after a watchdog kill";
            }
        }
    });
    EXPECT_TRUE(saw_cancelled);
}

TEST(WatchdogTest, DefaultDeadlineNeverFiresOnAHealthySweep) {
    const web::Population population = tiny_population();
    Campaign campaign{population, {}};
    const CampaignStats stats = campaign.run([](const web::Domain&, DomainScan&&) {});
    EXPECT_EQ(stats.outcome(qlog::ConnectionOutcome::watchdog_cancelled), 0u);
}

TEST(AttemptCapTest, AttemptRecordsAreBoundedAndCounted) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.retry.max_attempts = 5;
    options.max_attempt_records = 2;
    Campaign campaign{population, options};
    bool saw_truncation = false;
    (void)campaign.run([&](const web::Domain&, DomainScan&& scan) {
        EXPECT_LE(scan.attempts.size(), 2u);
        EXPECT_LE(scan.connections.size(), 2u);
        if (scan.attempts_truncated > 0) saw_truncation = true;
    });
    // ~90% of the tiny universe fails its handshake and retries 5 times —
    // truncation must have kicked in somewhere.
    EXPECT_TRUE(saw_truncation);
}

}  // namespace
}  // namespace spinscope::scanner
