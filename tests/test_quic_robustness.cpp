// Robustness and failure-injection tests: malformed input never crashes or
// wedges an endpoint, duplicates are harmless, and the codecs survive fuzzed
// bytes (wire input is untrusted).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"
#include "quic/frame.hpp"
#include "quic/packet.hpp"
#include "util/rng.hpp"

namespace spinscope::quic {
namespace {

using netsim::Datagram;
using util::Duration;
using util::Rng;
using util::TimePoint;

/// Minimal pair on a clean 10 ms-one-way path with a transfer workload.
struct Pair {
    Pair() : rng{0xbeef}, path{sim, link_config(), link_config(), rng} {
        ConnectionConfig ccfg;
        ccfg.role = Role::client;
        client = std::make_unique<Connection>(
            sim, ccfg, rng.fork(1),
            [this](Datagram dg) { path.forward_link().send(std::move(dg)); }, &trace);
        ConnectionConfig scfg;
        scfg.role = Role::server;
        server = std::make_unique<Connection>(
            sim, scfg, rng.fork(2),
            [this](Datagram dg) { path.return_link().send(std::move(dg)); });
        path.forward_link().set_receiver(
            [this](spinscope::bytes::ConstByteSpan dg) { server->on_datagram(dg); });
        path.return_link().set_receiver(
            [this](spinscope::bytes::ConstByteSpan dg) { client->on_datagram(dg); });
        server->on_stream_complete = [this](std::uint64_t, std::vector<std::uint8_t>) {
            server->send_stream(0, std::vector<std::uint8_t>(30'000, 1), true);
        };
        client->on_handshake_complete = [this] {
            client->send_stream(0, std::vector<std::uint8_t>(100, 2), true);
        };
        client->on_stream_complete = [this](std::uint64_t, std::vector<std::uint8_t> data) {
            response_size = data.size();
            client->close(0, "done");
        };
    }

    static netsim::LinkConfig link_config() {
        netsim::LinkConfig link;
        link.base_delay = Duration::millis(10);
        return link;
    }

    void run() { sim.run_until(TimePoint::origin() + Duration::seconds(60)); }

    netsim::Simulator sim;
    Rng rng;
    netsim::Path path;
    qlog::Trace trace;
    std::unique_ptr<Connection> client;
    std::unique_ptr<Connection> server;
    std::size_t response_size = 0;
};

TEST(Robustness, GarbageDatagramsAreIgnored) {
    Pair pair;
    // Inject junk into both endpoints throughout the exchange.
    Rng fuzz{1};
    pair.sim.schedule_after(Duration::millis(1), [&] {
        for (int i = 0; i < 50; ++i) {
            Datagram junk(fuzz.uniform_u64(64) + 1);
            for (auto& b : junk) b = static_cast<std::uint8_t>(fuzz.next());
            pair.client->on_datagram(junk);
            pair.server->on_datagram(junk);
        }
    });
    pair.client->connect();
    pair.run();
    EXPECT_EQ(pair.response_size, 30'000u);
}

TEST(Robustness, EmptyAndTinyDatagrams) {
    Pair pair;
    pair.client->connect();
    pair.sim.schedule_after(Duration::millis(30), [&] {
        pair.client->on_datagram(spinscope::bytes::ConstByteSpan{});
        pair.client->on_datagram(std::vector<std::uint8_t>{0x40});           // short header, missing DCID
        pair.client->on_datagram(std::vector<std::uint8_t>{0x00, 0x00});     // fixed bit clear
        pair.server->on_datagram(std::vector<std::uint8_t>{0xc0});           // truncated long header
    });
    pair.run();
    EXPECT_EQ(pair.response_size, 30'000u);
}

TEST(Robustness, DuplicatedDatagramsAreDeduplicated) {
    Pair pair;
    // Duplicate every server->client datagram.
    pair.path.return_link().set_receiver([&pair](spinscope::bytes::ConstByteSpan dg) {
        pair.client->on_datagram(dg);
        pair.client->on_datagram(dg);
    });
    pair.client->connect();
    pair.run();
    EXPECT_EQ(pair.response_size, 30'000u);
    // Trace records only deduplicated packets: packet numbers are unique.
    std::set<std::pair<int, quic::PacketNumber>> seen;
    for (const auto& ev : pair.trace.received) {
        const auto key = std::make_pair(static_cast<int>(ev.type), ev.packet_number);
        EXPECT_TRUE(seen.insert(key).second)
            << "duplicate pn " << ev.packet_number << " recorded";
    }
}

TEST(Robustness, VersionNegotiationPacketIgnored) {
    Pair pair;
    pair.client->connect();
    pair.sim.schedule_after(Duration::millis(5), [&] {
        pair.client->on_datagram(std::vector<std::uint8_t>{0xc0, 0x00, 0x00, 0x00, 0x00, 0x08});
    });
    pair.run();
    EXPECT_EQ(pair.response_size, 30'000u);
}

TEST(Robustness, MalformedFramePayloadDropsPacketOnly) {
    Pair pair;
    pair.client->connect();
    pair.sim.schedule_after(Duration::millis(25), [&] {
        // Valid short header carrying an unknown frame type.
        PacketHeader header;
        header.type = PacketType::one_rtt;
        header.dcid = ConnectionId::from_u64(0);  // wrong CID is fine, parse-only
        header.packet_number = 9999;
        std::vector<std::uint8_t> payload;
        encode_varint(payload, 0x3f);  // unimplemented frame type
        Datagram wire;
        encode_packet(wire, header, payload, kInvalidPacketNumber);
        pair.client->on_datagram(wire);
    });
    pair.run();
    EXPECT_EQ(pair.response_size, 30'000u);
}

// Tiny helper so the fuzz loop's results are observed.
void benchmarkish_use(bool) {}

TEST(Robustness, CodecFuzzNeverCrashes) {
    Rng rng{0xf00d};
    for (int i = 0; i < 20000; ++i) {
        Datagram bytes(rng.uniform_u64(80));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
        auto packet = decode_packet(bytes, 8, rng.uniform_u64(1000));
        if (packet) {
            auto frames = decode_frames(packet->payload, 3);
            benchmarkish_use(frames.has_value());
        }
        auto view = peek_short_header(bytes);
        benchmarkish_use(view.has_value());
    }
    SUCCEED();
}

TEST(Robustness, DecodedPacketsReencodeConsistently) {
    // Round-trip property on structured random packets.
    Rng rng{0xc0de};
    for (int i = 0; i < 2000; ++i) {
        PacketHeader header;
        header.type = rng.coin() ? PacketType::one_rtt
                                 : (rng.coin() ? PacketType::initial : PacketType::handshake);
        header.dcid = ConnectionId::from_u64(rng.next());
        header.scid = ConnectionId::from_u64(rng.next());
        header.packet_number = rng.uniform_u64(1 << 20);
        header.spin = rng.coin();
        header.vec = static_cast<std::uint8_t>(rng.uniform_u64(4));
        std::vector<std::uint8_t> payload(rng.uniform_u64(64) + 1, 0x01);  // PING frames

        Datagram wire;
        const PacketNumber largest_acked =
            header.packet_number == 0 ? kInvalidPacketNumber : header.packet_number - 1;
        encode_packet(wire, header, payload, largest_acked);
        const auto decoded = decode_packet(
            wire, 8, header.packet_number == 0 ? kInvalidPacketNumber
                                               : header.packet_number - 1);
        ASSERT_TRUE(decoded.has_value());
        ASSERT_EQ(decoded->header.type, header.type);
        ASSERT_EQ(decoded->header.packet_number, header.packet_number);
        if (header.type == PacketType::one_rtt) {
            ASSERT_EQ(decoded->header.spin, header.spin);
            ASSERT_EQ(decoded->header.vec, header.vec);
        }
        ASSERT_EQ(decoded->payload.size(), payload.size());
    }
}

TEST(Robustness, StreamsOnManyIdsConcurrently) {
    Pair pair;
    std::map<std::uint64_t, std::size_t> received;
    pair.server->on_stream_complete = [&](std::uint64_t id, std::vector<std::uint8_t> data) {
        received[id] = data.size();
        if (received.size() == 4) {
            pair.server->send_stream(0, std::vector<std::uint8_t>(500, 1), true);
        }
    };
    pair.client->on_handshake_complete = [&] {
        for (std::uint64_t id : {0, 4, 8, 12}) {
            pair.client->send_stream(id, std::vector<std::uint8_t>(1000 + id * 100, 2), true);
        }
    };
    pair.client->connect();
    pair.run();
    ASSERT_EQ(received.size(), 4u);
    EXPECT_EQ(received[0], 1000u);
    EXPECT_EQ(received[12], 1000u + 1200u);
    EXPECT_EQ(pair.response_size, 500u);
}

TEST(Robustness, SurvivesExtremeLoss) {
    netsim::Simulator sim;
    Rng rng{0xbad};
    netsim::LinkConfig lossy;
    lossy.base_delay = Duration::millis(10);
    lossy.loss_probability = 0.25;
    netsim::Path path{sim, lossy, lossy, rng};
    ConnectionConfig ccfg;
    ccfg.role = Role::client;
    ccfg.max_pto_count = 10;
    ccfg.idle_timeout = Duration::seconds(40);
    Connection client{sim, ccfg, rng.fork(1),
                      [&path](Datagram dg) { path.forward_link().send(std::move(dg)); }};
    ConnectionConfig scfg;
    scfg.role = Role::server;
    scfg.max_pto_count = 10;
    scfg.idle_timeout = Duration::seconds(40);
    Connection server{sim, scfg, rng.fork(2),
                      [&path](Datagram dg) { path.return_link().send(std::move(dg)); }};
    path.forward_link().set_receiver(
        [&server](spinscope::bytes::ConstByteSpan dg) { server.on_datagram(dg); });
    path.return_link().set_receiver(
        [&client](spinscope::bytes::ConstByteSpan dg) { client.on_datagram(dg); });
    std::size_t got = 0;
    server.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
        server.send_stream(0, std::vector<std::uint8_t>(15'000, 1), true);
    };
    client.on_handshake_complete = [&] {
        client.send_stream(0, std::vector<std::uint8_t>(100, 2), true);
    };
    client.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t> data) {
        got = data.size();
        client.close(0, "done");
    };
    client.connect();
    sim.run_until(TimePoint::origin() + Duration::seconds(120));
    // At 25 % bidirectional loss either the transfer completes (usual case,
    // thanks to PTO + loss recovery) or the endpoint reports failure — it
    // must never hang in between.
    EXPECT_TRUE(got == 15'000u || client.failed());
    // Recovery machinery was exercised: the link dropped traffic in both
    // directions (pto_count itself resets on forward progress, so assert on
    // the link's ground truth instead).
    EXPECT_GT(path.forward_link().stats().dropped + path.return_link().stats().dropped, 0u);
}

TEST(Robustness, GarbagePayloadFromPeerIsProtocolError) {
    // A hostile server answers the request with an undecodable 1-RTT packet
    // (correct connection ID, junk frames). The client must classify this as
    // a protocol error — close cleanly, never crash or hang.
    Pair pair;
    pair.server->on_stream_complete = [&pair](std::uint64_t, std::vector<std::uint8_t>) {
        std::vector<std::uint8_t> junk(48, 0xAA);
        junk[0] = 0x21;  // unknown frame type
        pair.server->send_raw_payload(std::move(junk));
    };
    pair.client->connect();
    pair.run();
    EXPECT_TRUE(pair.client->protocol_error());
    EXPECT_TRUE(pair.client->closed());
    EXPECT_EQ(pair.response_size, 0u);
    pair.client->finalize_trace();
    EXPECT_EQ(pair.trace.outcome, qlog::ConnectionOutcome::protocol_error);
}

TEST(Robustness, HostileStreamOffsetIsBoundedNotAllocated) {
    // A STREAM offset of 2^30 passes the frame-level varint checks but must
    // trip the connection's reassembly bound (protocol error), not reserve a
    // gigabyte of buffer.
    Pair pair;
    pair.server->on_stream_complete = [&pair](std::uint64_t, std::vector<std::uint8_t>) {
        StreamFrame poison;
        poison.stream_id = 0;
        poison.offset = 1ULL << 30;
        poison.data = {1, 2, 3};
        std::vector<std::uint8_t> payload;
        encode_frame(payload, Frame{poison}, 3);
        pair.server->send_raw_payload(std::move(payload));
    };
    pair.client->connect();
    pair.run();
    EXPECT_TRUE(pair.client->protocol_error());
    EXPECT_EQ(pair.response_size, 0u);
}

TEST(Robustness, OverlongFrameTypeEncodingRejected) {
    // RFC 9000 §12.4: frame types use the minimal varint encoding. 0x4001 is
    // an overlong PING and must not alias it.
    const std::vector<std::uint8_t> overlong{0x40, 0x01};
    EXPECT_FALSE(decode_frames(overlong, 3).has_value());
    const std::vector<std::uint8_t> minimal{0x01};
    const auto frames = decode_frames(minimal, 3);
    ASSERT_TRUE(frames.has_value());
    ASSERT_EQ(frames->size(), 1u);
    EXPECT_TRUE(std::holds_alternative<PingFrame>(frames->front()));
}

TEST(Robustness, HugeAckDelayIsClampedNotOverflowed) {
    // delay_units = kVarintMax with a large exponent would shift far past
    // int64 without the clamp; the decoded delay must stay finite and sane.
    std::vector<std::uint8_t> wire;
    Writer w{wire};
    w.varint(0x02);        // ACK
    w.varint(5);           // largest acked
    w.varint(kVarintMax);  // ack delay units
    w.varint(0);           // extra range count
    w.varint(1);           // first range
    const auto frames = decode_frames(wire, /*ack_delay_exponent=*/20);
    ASSERT_TRUE(frames.has_value());
    const auto* ack = std::get_if<AckFrame>(&frames->front());
    ASSERT_NE(ack, nullptr);
    EXPECT_FALSE(ack->ack_delay.is_negative());
    EXPECT_LE(ack->ack_delay.count_micros(), static_cast<std::int64_t>(1ULL << 42));
}

TEST(Robustness, FrameOffsetsNearVarintMaxRejected) {
    // STREAM: offset + length may not exceed the varint ceiling (§19.8).
    std::vector<std::uint8_t> stream_wire;
    Writer sw{stream_wire};
    sw.varint(0x0e);  // STREAM | OFF | LEN
    sw.varint(0);     // stream id
    sw.varint(kVarintMax);
    sw.varint(1);
    sw.u8(0xAB);
    EXPECT_FALSE(decode_frames(stream_wire, 3).has_value());

    // CRYPTO: same rule (§19.6).
    std::vector<std::uint8_t> crypto_wire;
    Writer cw{crypto_wire};
    cw.varint(0x06);
    cw.varint(kVarintMax);
    cw.varint(2);
    cw.u8(0x01);
    cw.u8(0x02);
    EXPECT_FALSE(decode_frames(crypto_wire, 3).has_value());
}

TEST(Robustness, TruncatedFramesNeverOverread) {
    // Every prefix of a valid multi-frame payload either decodes or fails
    // cleanly — no crash, no over-read (run under ASan to enforce).
    std::vector<Frame> frames;
    StreamFrame stream;
    stream.stream_id = 4;
    stream.offset = 100;
    stream.data.assign(32, 0x5c);
    frames.emplace_back(stream);
    AckFrame ack;
    ack.ranges.push_back({3, 9});
    ack.ack_delay = Duration::millis(5);
    frames.emplace_back(ack);
    frames.emplace_back(PingFrame{});
    const auto payload = encode_frames(frames, 3);
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        const std::span<const std::uint8_t> prefix{payload.data(), cut};
        benchmarkish_use(decode_frames(prefix, 3).has_value());
    }
    ASSERT_TRUE(decode_frames(payload, 3).has_value());
}

}  // namespace
}  // namespace spinscope::quic
