// End-to-end integration tests: population -> campaign -> qlog -> analysis,
// including cross-checks between aggregates and serialization round-trips
// through the full pipeline.

#include <gtest/gtest.h>

#include "analysis/accuracy.hpp"
#include "analysis/adoption.hpp"
#include "analysis/longitudinal.hpp"
#include "core/accuracy.hpp"
#include "qlog/trace.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

namespace spinscope {
namespace {

class PipelineTest : public ::testing::Test {
protected:
    PipelineTest() : population_{{20000.0, 20230520}} {}

    web::Population population_;
};

TEST_F(PipelineTest, SweepProducesConsistentFunnel) {
    scanner::ScanOptions options;
    options.week = 57;
    scanner::Campaign campaign{population_, options};
    analysis::AdoptionAggregator aggregator{population_, false};
    campaign.run([&](const web::Domain& domain, scanner::DomainScan&& scan) {
        aggregator.add(domain, scan);
    });

    for (std::size_t l = 0; l < analysis::kListCount; ++l) {
        const auto& c = aggregator.list(static_cast<analysis::ListId>(l));
        // Domain funnel is monotone.
        EXPECT_GE(c.domains_total, c.domains_resolved);
        EXPECT_GE(c.domains_resolved, c.domains_quic);
        EXPECT_GE(c.domains_quic,
                  c.domains_spin + c.domains_all_zero + c.domains_all_one + c.domains_grease);
        // IP funnel is monotone and spin IPs exist only among QUIC IPs.
        EXPECT_GE(c.ips_resolved.size(), c.ips_quic.size());
        EXPECT_GE(c.ips_quic.size(), c.ips_spin.size());
        EXPECT_TRUE(c.ips_spin.subset_of(c.ips_quic));
    }

    // com/net/org is a subset of CZDS in every counter.
    const auto& czds = aggregator.list(analysis::ListId::czds);
    const auto& cno = aggregator.list(analysis::ListId::cno);
    EXPECT_GE(czds.domains_total, cno.domains_total);
    EXPECT_GE(czds.domains_quic, cno.domains_quic);
    EXPECT_GE(czds.domains_spin, cno.domains_spin);

    // Sanity: some spin activity exists at this scale.
    EXPECT_GT(czds.domains_spin, 0u);
    EXPECT_GT(czds.domains_all_zero, czds.domains_spin);
}

TEST_F(PipelineTest, Table2ConnectionsMatchClassifiedScans) {
    scanner::ScanOptions options;
    options.week = 57;
    scanner::Campaign campaign{population_, options};
    analysis::AdoptionAggregator aggregator{population_, false};
    std::uint64_t expected_connections = 0;
    campaign.run([&](const web::Domain& domain, scanner::DomainScan&& scan) {
        if (analysis::in_list(domain, analysis::ListId::cno)) {
            const bool quic_ok = scan.quic_ok();
            for (const auto& trace : scan.connections) {
                if (quic_ok && trace.outcome == qlog::ConnectionOutcome::ok) {
                    ++expected_connections;
                }
            }
        }
        aggregator.add(domain, scan);
    });
    std::uint64_t counted = 0;
    for (const auto& org : aggregator.orgs()) counted += org.connections;
    EXPECT_EQ(counted, expected_connections);
}

TEST_F(PipelineTest, QlogRoundTripPreservesAssessment) {
    scanner::ScanOptions options;
    scanner::Campaign campaign{population_, options};
    int checked = 0;
    for (const auto& domain : population_.domains()) {
        if (!domain.quic || population_.org_of(domain).spin_host_rate <= 0.3) continue;
        const auto scan = campaign.scan_domain(domain);
        for (const auto& trace : scan.connections) {
            if (trace.outcome != qlog::ConnectionOutcome::ok) continue;
            const auto direct = core::assess_connection(trace);
            const auto parsed = qlog::parse_jsonl(qlog::to_jsonl(trace));
            ASSERT_TRUE(parsed.has_value());
            const auto through_disk = core::assess_connection(*parsed);
            EXPECT_EQ(direct.behavior, through_disk.behavior);
            EXPECT_EQ(direct.spin_received.samples_ms, through_disk.spin_received.samples_ms);
            EXPECT_DOUBLE_EQ(direct.quic_mean_ms, through_disk.quic_mean_ms);
            ++checked;
        }
        if (checked >= 10) break;
    }
    EXPECT_GE(checked, 1);
}

TEST_F(PipelineTest, SpinningConnectionsProduceUsableAccuracyData) {
    scanner::ScanOptions options;
    options.week = 57;
    scanner::Campaign campaign{population_, options};
    analysis::AccuracyAggregator accuracy;
    for (const auto& domain : population_.domains()) {
        if (!domain.quic || population_.org_of(domain).spin_host_rate <= 0.0) continue;
        const auto scan = campaign.scan_domain(domain);
        for (const auto& trace : scan.connections) {
            if (trace.outcome != qlog::ConnectionOutcome::ok) continue;
            accuracy.add(core::assess_connection(trace));
        }
    }
    const auto headline = accuracy.headline(analysis::AccuracySeries::spin_received);
    ASSERT_GT(headline.connections, 10u);
    // The dominant qualitative finding must hold at any scale: the spin bit
    // overestimates for the overwhelming majority of connections.
    EXPECT_GT(headline.overestimate_share, 0.85);
    EXPECT_LT(headline.underestimate_share, 0.15);
}

TEST_F(PipelineTest, LongitudinalWeeksVary) {
    analysis::LongitudinalAggregator longitudinal{4};
    for (unsigned week = 0; week < 4; ++week) {
        scanner::ScanOptions options;
        options.week = static_cast<int>(week * 15);
        scanner::Campaign campaign{population_, options};
        for (const auto& domain : population_.domains()) {
            if (!domain.quic || population_.org_of(domain).spin_host_rate <= 0.0) continue;
            const auto scan = campaign.scan_domain(domain);
            const bool spun =
                analysis::classify_domain(scan) == analysis::DomainSpinClass::spinning;
            longitudinal.add(domain.id, week, scan.quic_ok(), spun);
        }
    }
    EXPECT_GT(longitudinal.spun_any(), 10u);
    const auto histogram = longitudinal.weeks_spinning_histogram();
    // Spin activity is neither all-or-nothing: some domains miss weeks.
    EXPECT_GT(histogram.total(), 0u);
    std::uint64_t partial = 0;
    for (unsigned k = 1; k < 4; ++k) partial += histogram.count(k);
    EXPECT_GT(partial, 0u);
    EXPECT_GT(histogram.count(4), 0u);
}

TEST_F(PipelineTest, Ipv6SweepHasDistinctFootprint) {
    scanner::ScanOptions v4;
    v4.week = 57;
    scanner::ScanOptions v6 = v4;
    v6.ipv6 = true;
    analysis::AdoptionAggregator agg4{population_, false};
    analysis::AdoptionAggregator agg6{population_, true};
    scanner::Campaign campaign4{population_, v4};
    scanner::Campaign campaign6{population_, v6};
    campaign4.run([&](const web::Domain& d, scanner::DomainScan&& s) { agg4.add(d, s); });
    campaign6.run([&](const web::Domain& d, scanner::DomainScan&& s) { agg6.add(d, s); });
    const auto& czds4 = agg4.list(analysis::ListId::czds);
    const auto& czds6 = agg6.list(analysis::ListId::czds);
    // Fewer v6-resolved domains, but per-domain v6 hosts at the shared
    // hosters (§4.4's "drastically more IPs" relative to domain count).
    EXPECT_LT(czds6.domains_resolved, czds4.domains_resolved);
    ASSERT_GT(czds6.domains_quic, 0u);
    const double v6_ip_per_quic_domain =
        static_cast<double>(czds6.ips_quic.size()) / static_cast<double>(czds6.domains_quic);
    const double v4_ip_per_quic_domain =
        static_cast<double>(czds4.ips_quic.size()) / static_cast<double>(czds4.domains_quic);
    EXPECT_GT(v6_ip_per_quic_domain, v4_ip_per_quic_domain);
}

}  // namespace
}  // namespace spinscope
