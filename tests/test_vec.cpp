// Tests for the Valid Edge Counter extension (De Vaere et al.): wire
// encoding in the reserved bits, the endpoint saturation logic, and the
// VEC-aware observer's robustness to reordering.

#include <gtest/gtest.h>

#include "core/observer.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"
#include "quic/packet.hpp"
#include "quic/spin.hpp"

namespace spinscope {
namespace {

using quic::Role;
using quic::SpinConfig;
using quic::SpinPolicy;
using quic::SpinState;
using util::Duration;
using util::TimePoint;

SpinConfig vec_config() {
    SpinConfig config{SpinPolicy::spin, 0, SpinPolicy::always_zero};
    config.enable_vec = true;
    return config;
}

TEST(VecWire, ReservedBitsRoundTrip) {
    for (std::uint8_t vec = 0; vec <= 3; ++vec) {
        quic::PacketHeader header;
        header.type = quic::PacketType::one_rtt;
        header.dcid = quic::ConnectionId::from_u64(1);
        header.packet_number = 5;
        header.spin = true;
        header.vec = vec;
        std::vector<std::uint8_t> wire;
        quic::encode_packet(wire, header, {}, quic::kInvalidPacketNumber);
        const auto decoded = quic::decode_packet(wire, 8, 4);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->header.vec, vec);
        const auto view = quic::peek_short_header(wire);
        ASSERT_TRUE(view.has_value());
        EXPECT_EQ(view->vec, vec);
    }
}

TEST(VecWire, StandardTrafficKeepsReservedBitsZero) {
    quic::PacketHeader header;
    header.type = quic::PacketType::one_rtt;
    header.dcid = quic::ConnectionId::from_u64(1);
    header.spin = true;
    std::vector<std::uint8_t> wire;
    quic::encode_packet(wire, header, {}, quic::kInvalidPacketNumber);
    EXPECT_EQ(wire[0] & 0x18, 0);  // RFC 9000: reserved bits zero
}

TEST(VecState, NonEdgePacketsCarryZero) {
    util::Rng rng{1};
    SpinState client{Role::client, vec_config(), rng};
    // First packet: value 0, not an edge relative to the wave baseline.
    auto bits = client.outgoing(rng);
    EXPECT_FALSE(bits.spin);
    EXPECT_EQ(bits.vec, 0);
    // Repeat without new input: same value, still no edge.
    bits = client.outgoing(rng);
    EXPECT_EQ(bits.vec, 0);
}

TEST(VecState, WaveSaturatesAtThree) {
    util::Rng rng{2};
    SpinState client{Role::client, vec_config(), rng};
    SpinState server{Role::server, vec_config(), rng};

    // Client sends 0 (baseline); server reflects 0.
    auto c = client.outgoing(rng);
    server.on_packet_received(0, c.spin, c.vec);
    auto s = server.outgoing(rng);
    EXPECT_EQ(s.vec, 0);  // reflecting 0 with no edge

    // Client sees 0, inverts -> first real edge, VEC 1.
    client.on_packet_received(0, s.spin, s.vec);
    c = client.outgoing(rng);
    EXPECT_TRUE(c.spin);
    EXPECT_EQ(c.vec, 1);

    // Server reflects the edge -> VEC 2.
    server.on_packet_received(1, c.spin, c.vec);
    s = server.outgoing(rng);
    EXPECT_TRUE(s.spin);
    EXPECT_EQ(s.vec, 2);

    // Client inverts again -> VEC 3 (saturated).
    client.on_packet_received(1, s.spin, s.vec);
    c = client.outgoing(rng);
    EXPECT_FALSE(c.spin);
    EXPECT_EQ(c.vec, 3);

    // And the wave stays saturated from here on.
    server.on_packet_received(2, c.spin, c.vec);
    s = server.outgoing(rng);
    EXPECT_EQ(s.vec, 3);
}

TEST(VecState, DisabledMeansAlwaysZero) {
    util::Rng rng{3};
    SpinConfig config{SpinPolicy::spin, 0, SpinPolicy::always_zero};  // enable_vec false
    SpinState client{Role::client, config, rng};
    client.on_packet_received(0, false, 0);
    const auto bits = client.outgoing(rng);
    EXPECT_TRUE(bits.spin);
    EXPECT_EQ(bits.vec, 0);
}

TEST(VecObserver, RejectsFabricatedEdges) {
    core::ObserverConfig config;
    config.require_vec = true;
    core::SpinEdgeObserver observer{config};
    const auto at = [](std::int64_t ms) { return TimePoint::origin() + Duration::millis(ms); };

    observer.on_packet({at(0), 0, false, 0});
    observer.on_packet({at(40), 1, true, 3});    // valid edge
    observer.on_packet({at(80), 3, false, 3});   // valid edge -> 40 ms sample
    observer.on_packet({at(81), 2, true, 0});    // reordered packet: NOT an edge
    observer.on_packet({at(120), 4, true, 3});   // valid edge -> 40 ms sample
    EXPECT_EQ(observer.result().edge_count, 3u);
    ASSERT_EQ(observer.result().samples_ms.size(), 2u);
    EXPECT_DOUBLE_EQ(observer.result().samples_ms[0], 40.0);
    EXPECT_DOUBLE_EQ(observer.result().samples_ms[1], 40.0);
}

TEST(VecObserver, UnvalidatedEdgesDoNotProduceSamples) {
    core::ObserverConfig config;
    config.require_vec = true;
    core::SpinEdgeObserver observer{config};
    const auto at = [](std::int64_t ms) { return TimePoint::origin() + Duration::millis(ms); };
    observer.on_packet({at(0), 0, false, 0});
    observer.on_packet({at(40), 1, true, 1});   // wave starting: vec 1
    observer.on_packet({at(80), 2, false, 2});  // vec 2: edge counted, sample rejected
    EXPECT_EQ(observer.result().edge_count, 2u);
    EXPECT_TRUE(observer.result().samples_ms.empty());
    EXPECT_EQ(observer.rejected_samples(), 1u);
}

TEST(VecEndToEnd, ConnectionsCarrySaturatedVec) {
    netsim::Simulator sim;
    util::Rng rng{7};
    netsim::LinkConfig link;
    link.base_delay = Duration::millis(10);
    netsim::Path path{sim, link, link, rng};

    qlog::Trace trace;
    quic::ConnectionConfig client_cfg;
    client_cfg.role = Role::client;
    client_cfg.spin = vec_config();
    quic::Connection client{sim, client_cfg, rng.fork(1),
                            [&path](netsim::Datagram dg) {
                                path.forward_link().send(std::move(dg));
                            },
                            &trace};
    quic::ConnectionConfig server_cfg;
    server_cfg.role = Role::server;
    server_cfg.spin = vec_config();
    quic::Connection server{sim, server_cfg, rng.fork(2), [&path](netsim::Datagram dg) {
                                path.return_link().send(std::move(dg));
                            }};
    path.forward_link().set_receiver(
        [&server](spinscope::bytes::ConstByteSpan dg) { server.on_datagram(dg); });
    path.return_link().set_receiver(
        [&client](spinscope::bytes::ConstByteSpan dg) { client.on_datagram(dg); });

    server.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
        server.send_stream(0, std::vector<std::uint8_t>(80'000, 1), true);
    };
    client.on_handshake_complete = [&] {
        client.send_stream(0, std::vector<std::uint8_t>(100, 2), true);
    };
    client.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
        client.close(0, "done");
    };
    client.connect();
    sim.run_until(TimePoint::origin() + Duration::seconds(30));

    // The received stream contains saturated edges and zero-VEC non-edges.
    int saturated_edges = 0;
    int nonzero_nonedges = 0;
    bool last = false;
    bool have_last = false;
    for (const auto& ev : trace.received) {
        if (ev.type != quic::PacketType::one_rtt) continue;
        const bool is_edge = have_last && ev.spin != last;
        if (is_edge && ev.vec == 3) ++saturated_edges;
        if (!is_edge && have_last && ev.vec != 0) ++nonzero_nonedges;
        last = ev.spin;
        have_last = true;
    }
    EXPECT_GE(saturated_edges, 1);
    EXPECT_EQ(nonzero_nonedges, 0);

    // A VEC-aware assessment of the same trace yields plausible samples.
    core::ObserverConfig vec_observer_config;
    vec_observer_config.require_vec = true;
    core::SpinEdgeObserver vec_observer{vec_observer_config};
    for (const auto& ev : trace.received_one_rtt()) {
        vec_observer.on_packet({ev.time, ev.packet_number, ev.spin, ev.vec});
    }
    ASSERT_TRUE(vec_observer.result().has_samples());
    EXPECT_GT(vec_observer.result().min_ms(), 19.0);
}

}  // namespace
}  // namespace spinscope
