// Golden-trace fixture helpers (tests/golden/).
//
// A golden fixture pins the exact bytes a fixed (population, ScanOptions)
// configuration must produce — scan streams, campaign stats, deterministic
// telemetry — so a future PR that silently perturbs simulation results fails
// tier-1 instead of drifting. The fixtures in tests/golden/ were captured
// from the sequential pre-sharding scanner; the sharded scanner must keep
// matching them bit for bit at every thread count.
//
// Regeneration (after an INTENTIONAL behaviour change, reviewed like a
// schema change): SPINSCOPE_REGEN_GOLDEN=1 ctest -R golden — the comparator
// then rewrites the fixture files in the source tree and fails the test so
// a regen run can never pass CI silently.

#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "scanner/campaign.hpp"

#ifndef SPINSCOPE_GOLDEN_DIR
#error "tests must be compiled with -DSPINSCOPE_GOLDEN_DIR=\"...\""
#endif

namespace spinscope::testing {

inline std::string golden_path(const std::string& filename) {
    return std::string{SPINSCOPE_GOLDEN_DIR} + "/" + filename;
}

/// Canonical text form of one domain's scan: a comment header, one comment
/// line per attempt (the error taxonomy), then the qlog JSONL of every
/// connection. This is the "DomainScan stream" the determinism suite and
/// the golden fixtures compare.
inline std::string render_scan_stream(const scanner::DomainScan& scan) {
    std::string out = "# domain " + std::to_string(scan.domain_id) +
                      " resolved=" + (scan.resolved ? "1" : "0") +
                      " retries=" + std::to_string(scan.retries) +
                      " redirects=" + std::to_string(scan.redirects_followed) + "\n";
    for (std::size_t i = 0; i < scan.connections.size(); ++i) {
        const auto& attempt = scan.attempts[i];
        out += "# attempt hop=" + std::to_string(attempt.redirect_hop) +
               " retry=" + std::to_string(attempt.retry) +
               " outcome=" + qlog::to_cstring(attempt.outcome) +
               " backoff_ns=" + std::to_string(attempt.backoff.count_nanos()) +
               " fault=" + faults::to_cstring(attempt.server_fault) + "\n";
        out += qlog::to_jsonl(scan.connections[i]);
    }
    return out;
}

/// CampaignStats::render() with the wall clock taken out entirely: the
/// wall-seconds value is zeroed BEFORE rendering (its digit count would
/// otherwise leak into the table's column alignment on a slow run — e.g.
/// under TSan) and the wall rows are then stripped from the text.
inline std::string deterministic_render(scanner::CampaignStats stats);

/// Drops the wall-clock rows ("wall seconds", "domains/sec") from a
/// CampaignStats::render(). Prefer deterministic_render for fixture
/// comparisons; this alone leaves the alignment wall-clock-dependent.
inline std::string strip_wall_rows(const std::string& rendered) {
    std::istringstream in{rendered};
    std::string out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("wall seconds") != std::string::npos) continue;
        if (line.find("domains/sec") != std::string::npos) continue;
        out += line + "\n";
    }
    return out;
}

inline std::string deterministic_render(scanner::CampaignStats stats) {
    stats.wall_seconds = 0.0;
    return strip_wall_rows(stats.render());
}

/// Compares `actual` against the fixture `filename`; on mismatch the failure
/// message points at the first differing line. With SPINSCOPE_REGEN_GOLDEN
/// set, rewrites the fixture and fails (regen runs must be reviewed).
inline ::testing::AssertionResult matches_golden(const std::string& filename,
                                                 const std::string& actual) {
    const std::string path = golden_path(filename);
    if (std::getenv("SPINSCOPE_REGEN_GOLDEN") != nullptr) {
        std::ofstream out{path, std::ios::trunc};
        out << actual;
        return ::testing::AssertionFailure()
               << "regenerated " << path << " (" << actual.size()
               << " bytes); review the diff and re-run without SPINSCOPE_REGEN_GOLDEN";
    }
    std::ifstream in{path};
    if (!in) {
        return ::testing::AssertionFailure()
               << "missing golden fixture " << path
               << " (run with SPINSCOPE_REGEN_GOLDEN=1 to create it)";
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();
    if (expected == actual) return ::testing::AssertionSuccess();

    std::istringstream a{expected};
    std::istringstream b{actual};
    std::string line_a;
    std::string line_b;
    std::size_t line_no = 1;
    for (;; ++line_no) {
        const bool more_a = static_cast<bool>(std::getline(a, line_a));
        const bool more_b = static_cast<bool>(std::getline(b, line_b));
        if (!more_a && !more_b) break;
        if (!more_a || !more_b || line_a != line_b) {
            return ::testing::AssertionFailure()
                   << filename << " drifted at line " << line_no << ":\n  golden: "
                   << (more_a ? line_a : std::string{"<eof>"})
                   << "\n  actual: " << (more_b ? line_b : std::string{"<eof>"})
                   << "\nSimulation output is part of the repo's golden contract; if "
                      "the change is intentional, regenerate with "
                      "SPINSCOPE_REGEN_GOLDEN=1 and review the fixture diff.";
        }
    }
    return ::testing::AssertionFailure() << filename << " differs (sizes "
                                         << expected.size() << " vs " << actual.size() << ")";
}

}  // namespace spinscope::testing
