// Unit tests for the telemetry subsystem: registry instruments, log-scale
// histogram bucketing, spans, and the JSON/CSV/table exporters.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace spinscope::telemetry {
namespace {

TEST(Counter, AccumulatesAndStartsAtZero) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndSetMax) {
    Gauge g;
    g.set(5.0);
    EXPECT_DOUBLE_EQ(g.value(), 5.0);
    g.set_max(3.0);
    EXPECT_DOUBLE_EQ(g.value(), 5.0);  // smaller value does not win
    g.set_max(9.0);
    EXPECT_DOUBLE_EQ(g.value(), 9.0);
    g.set(1.0);  // plain set always overwrites
    EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Gauge, SetMaxOnFreshGaugeTakesAnyValue) {
    Gauge g;
    g.set_max(-7.0);  // no prior value: even a negative one is adopted
    EXPECT_DOUBLE_EQ(g.value(), -7.0);
}

TEST(Histogram, BucketBoundsAreGeometric) {
    Histogram h{{1.0, 2.0, 8}};
    EXPECT_DOUBLE_EQ(h.bucket_lower_bound(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bucket_lower_bound(3), 8.0);
    EXPECT_DOUBLE_EQ(h.bucket_lower_bound(7), 128.0);
    EXPECT_EQ(h.buckets().size(), 8u);
}

TEST(Histogram, BucketCountsAreCorrect) {
    // Bucket i of {min=1, factor=2, n=4} spans [2^i, 2^(i+1)) with bucket 0
    // also absorbing underflow and bucket 3 absorbing overflow.
    Histogram h{{1.0, 2.0, 4}};
    h.record(0.25);  // underflow -> bucket 0
    h.record(1.0);   // exactly at bound 0 -> bucket 0
    h.record(1.9);   // bucket 0
    h.record(2.0);   // exactly at bound 1 -> bucket 1
    h.record(3.999);
    h.record(4.0);  // bucket 2
    h.record(7.5);  // bucket 2
    h.record(8.0);  // bucket 3
    h.record(1e9);  // overflow -> bucket 3
    const auto& buckets = h.buckets();
    EXPECT_EQ(buckets[0], 3u);
    EXPECT_EQ(buckets[1], 2u);
    EXPECT_EQ(buckets[2], 2u);
    EXPECT_EQ(buckets[3], 2u);
    EXPECT_EQ(h.count(), 9u);
    EXPECT_DOUBLE_EQ(h.min(), 0.25);
    EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(Histogram, SumAndMeanTrackRecordedValues) {
    Histogram h{{0.001, 2.0, 16}};
    h.record(1.0);
    h.record(2.0);
    h.record(3.0);
    EXPECT_DOUBLE_EQ(h.sum(), 6.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, EmptyHistogramIsAllZero) {
    Histogram h{{1.0, 10.0, 4}};
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
    MetricsRegistry registry;
    Counter& a = registry.counter("x.count");
    a.add(3);
    Counter& b = registry.counter("x.count");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 3u);

    Histogram& h1 = registry.histogram("x.hist", {1.0, 2.0, 4});
    // A second lookup with a different spec returns the existing geometry.
    Histogram& h2 = registry.histogram("x.hist", {99.0, 3.0, 7});
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.spec().bucket_count, 4u);
}

TEST(MetricsRegistry, NamespacesAreIndependent) {
    MetricsRegistry registry;
    registry.counter("same.name").add(1);
    registry.gauge("same.name").set(2.0);
    (void)registry.histogram("same.name");
    EXPECT_EQ(registry.size(), 3u);
    EXPECT_NE(registry.find_counter("same.name"), nullptr);
    EXPECT_NE(registry.find_gauge("same.name"), nullptr);
    EXPECT_NE(registry.find_histogram("same.name"), nullptr);
    EXPECT_EQ(registry.find_counter("missing"), nullptr);
}

TEST(Span, FinishRecordsIntoHistogram) {
    MetricsRegistry registry;
    Span span{registry, "phase.test_ms"};
    const double ms = span.finish();
    EXPECT_GE(ms, 0.0);
    const Histogram* h = registry.find_histogram("phase.test_ms");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 1u);
    // finish() is idempotent.
    EXPECT_DOUBLE_EQ(span.finish(), 0.0);
    EXPECT_EQ(h->count(), 1u);
}

TEST(ScopedTimer, RecordsOnScopeExit) {
    MetricsRegistry registry;
    {
        ScopedTimer timer{registry, "phase.scoped_ms"};
    }
    {
        ScopedTimer timer{registry, "phase.scoped_ms"};
    }
    const Histogram* h = registry.find_histogram("phase.scoped_ms");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);
}

TEST(SimTime, RecordsDurationMillis) {
    MetricsRegistry registry;
    record_sim_time(registry, "attempt.sim_ms", util::Duration::millis(250));
    record_sim_time(registry, "attempt.sim_ms", util::Duration::millis(-5));  // clamped
    const Histogram* h = registry.find_histogram("attempt.sim_ms");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);
    EXPECT_DOUBLE_EQ(h->max(), 250.0);
    EXPECT_DOUBLE_EQ(h->min(), 0.0);
}

TEST(Export, JsonContainsAllKindsInSortedOrder) {
    MetricsRegistry registry;
    registry.counter("b.count").add(7);
    registry.counter("a.count").add(1);
    registry.gauge("z.gauge").set(2.5);
    registry.histogram("m.hist", {1.0, 2.0, 3}).record(2.0);

    const std::string json = to_json(registry);
    EXPECT_NE(json.find("\"schema\":\"spinscope-telemetry-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"a.count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"b.count\":7"), std::string::npos);
    EXPECT_NE(json.find("\"z.gauge\":2.5"), std::string::npos);
    EXPECT_NE(json.find("\"bucket_counts\":[0,1,0]"), std::string::npos);
    // Name-sorted: "a.count" must precede "b.count".
    EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
}

TEST(Export, JsonIsDeterministic) {
    auto build = [] {
        MetricsRegistry registry;
        registry.counter("x").add(1);
        registry.gauge("y").set(3.0);
        registry.histogram("z").record(0.5);
        return to_json(registry);
    };
    EXPECT_EQ(build(), build());
}

TEST(Export, CsvListsEveryInstrument) {
    MetricsRegistry registry;
    registry.counter("c").add(3);
    registry.gauge("g").set(1.25);
    registry.histogram("h", {1.0, 2.0, 4}).record(5.0);

    const std::string csv = to_csv(registry);
    EXPECT_NE(csv.find("kind,name,field,value\n"), std::string::npos);
    EXPECT_NE(csv.find("counter,c,value,3\n"), std::string::npos);
    EXPECT_NE(csv.find("gauge,g,value,1.25\n"), std::string::npos);
    EXPECT_NE(csv.find("histogram,h,count,1\n"), std::string::npos);
    EXPECT_NE(csv.find("histogram,h,bucket_ge_4,1\n"), std::string::npos);
}

TEST(Export, TableRendersEveryMetricName) {
    MetricsRegistry registry;
    registry.counter("layer.counter").add(1234567);
    registry.gauge("layer.gauge").set(0.5);
    registry.histogram("layer.hist").record(1.0);
    const std::string table = render_table(registry);
    EXPECT_NE(table.find("layer.counter"), std::string::npos);
    EXPECT_NE(table.find("layer.gauge"), std::string::npos);
    EXPECT_NE(table.find("layer.hist"), std::string::npos);
    EXPECT_NE(table.find("1 234 567"), std::string::npos);  // grouped digits
}

TEST(Export, WriteJsonFileRoundTripsThroughDisk) {
    MetricsRegistry registry;
    registry.counter("disk.count").add(9);
    const std::string path = ::testing::TempDir() + "spinscope_telemetry_test.json";
    ASSERT_TRUE(write_json_file(registry, path));
    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), to_json(registry) + "\n");
    std::remove(path.c_str());
}

TEST(Merge, CounterAddsAndGaugeTakesMax) {
    Counter a;
    Counter b;
    a.add(3);
    b.add(39);
    a.merge_from(b);
    EXPECT_EQ(a.value(), 42u);

    Gauge g;
    Gauge higher;
    Gauge lower;
    g.set(5.0);
    higher.set(9.0);
    lower.set(1.0);
    g.merge_from(higher);
    EXPECT_DOUBLE_EQ(g.value(), 9.0);
    g.merge_from(lower);
    EXPECT_DOUBLE_EQ(g.value(), 9.0);  // max-merge: smaller shard never wins

    // An empty source gauge must not drag a real value down to 0.
    Gauge untouched;
    g.merge_from(untouched);
    EXPECT_DOUBLE_EQ(g.value(), 9.0);
    // ...and merging into an empty gauge adopts the source value.
    Gauge fresh;
    fresh.merge_from(g);
    EXPECT_DOUBLE_EQ(fresh.value(), 9.0);
}

TEST(Merge, HistogramMergesBucketsCountSumMinMax) {
    const HistogramSpec spec{0.001, 2.0, 16};
    Histogram a{spec};
    Histogram b{spec};
    a.record(0.5);
    a.record(4.0);
    b.record(0.002);
    b.record(32.0);
    b.record(4.0);

    Histogram expected{spec};
    for (const double v : {0.5, 4.0, 0.002, 32.0, 4.0}) expected.record(v);

    a.merge_from(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(a.buckets(), expected.buckets());
    EXPECT_DOUBLE_EQ(a.min(), 0.002);
    EXPECT_DOUBLE_EQ(a.max(), 32.0);
    EXPECT_DOUBLE_EQ(a.sum(), 0.5 + 4.0 + (0.002 + 32.0 + 4.0));

    // Merging an empty histogram is a no-op; merging into an empty one copies.
    Histogram empty{spec};
    a.merge_from(empty);
    EXPECT_EQ(a.count(), 5u);
    Histogram fresh{spec};
    fresh.merge_from(a);
    EXPECT_EQ(fresh.count(), 5u);
    EXPECT_DOUBLE_EQ(fresh.min(), 0.002);
}

TEST(Merge, HistogramGeometryMismatchThrows) {
    Histogram a{HistogramSpec{0.001, 2.0, 16}};
    Histogram coarser{HistogramSpec{0.001, 4.0, 16}};
    Histogram shorter{HistogramSpec{0.001, 2.0, 8}};
    EXPECT_THROW(a.merge_from(coarser), std::invalid_argument);
    EXPECT_THROW(a.merge_from(shorter), std::invalid_argument);
}

TEST(Merge, RegistryMergeCreatesMissingAndCombinesExisting) {
    MetricsRegistry base;
    base.counter("shared.count").add(1);
    base.gauge("shared.gauge").set(2.0);

    MetricsRegistry shard;
    shard.counter("shared.count").add(41);
    shard.gauge("shared.gauge").set(7.0);
    shard.counter("only.in.shard").add(5);
    shard.histogram("shard.hist", HistogramSpec{0.001, 2.0, 8}).record(1.5);

    base.merge_from(shard);
    EXPECT_EQ(base.counter("shared.count").value(), 42u);
    EXPECT_DOUBLE_EQ(base.gauge("shared.gauge").value(), 7.0);
    ASSERT_NE(base.find_counter("only.in.shard"), nullptr);
    EXPECT_EQ(base.find_counter("only.in.shard")->value(), 5u);
    // Histograms created by the merge inherit the source geometry.
    const Histogram* merged = base.find_histogram("shard.hist");
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->spec().bucket_count, 8u);
    EXPECT_EQ(merged->count(), 1u);
}

TEST(Merge, ChunkOrderMergeEqualsSequentialRecording) {
    // The campaign invariant in miniature: recording a stream sequentially
    // and recording it split across per-chunk registries merged in chunk
    // order must agree on every deterministic field.
    MetricsRegistry sequential;
    MetricsRegistry chunk_a;
    MetricsRegistry chunk_b;
    const double values[] = {0.004, 1.0, 0.25, 8.0, 0.06, 2.0};
    for (int i = 0; i < 6; ++i) {
        sequential.counter("m.count").add();
        sequential.histogram("m.hist").record(values[i]);
        (i < 3 ? chunk_a : chunk_b).counter("m.count").add();
        (i < 3 ? chunk_a : chunk_b).histogram("m.hist").record(values[i]);
    }
    MetricsRegistry merged;
    merged.merge_from(chunk_a);
    merged.merge_from(chunk_b);
    EXPECT_EQ(deterministic_csv(merged), deterministic_csv(sequential));
}

TEST(Export, DeterministicCsvExcludesWallClockAndHistogramSums) {
    EXPECT_TRUE(is_wall_clock_metric("scanner.phase.scan_domain"));
    EXPECT_TRUE(is_wall_clock_metric("scanner.domains_per_sec"));
    EXPECT_FALSE(is_wall_clock_metric("scanner.domains_scanned"));
    EXPECT_FALSE(is_wall_clock_metric("netsim.sim.events_executed"));

    MetricsRegistry registry;
    registry.counter("scanner.domains_scanned").add(10);
    registry.gauge("scanner.domains_per_sec").set(123.0);
    registry.histogram("scanner.phase.scan_domain").record(1.0);
    registry.histogram("netsim.sim.horizon_ms").record(2.0);

    const std::string det = deterministic_csv(registry);
    EXPECT_NE(det.find("scanner.domains_scanned"), std::string::npos);
    EXPECT_NE(det.find("netsim.sim.horizon_ms"), std::string::npos);
    EXPECT_EQ(det.find("domains_per_sec"), std::string::npos);
    EXPECT_EQ(det.find("scanner.phase"), std::string::npos);
    EXPECT_EQ(det.find(",sum,"), std::string::npos) << "histogram sums are float-regrouped";

    // The full CSV still carries everything the deterministic view drops.
    const std::string full = to_csv(registry);
    EXPECT_NE(full.find("domains_per_sec"), std::string::npos);
    EXPECT_NE(full.find("scanner.phase.scan_domain"), std::string::npos);
    EXPECT_NE(full.find(",sum,"), std::string::npos);
}

TEST(Export, SnapshotRoundTripsEveryInstrumentExactly) {
    MetricsRegistry registry;
    registry.counter("scanner.connections").add(42);
    registry.gauge("scanner.domains_per_sec").set(123.456789012345678);
    (void)registry.gauge("netsim.queue.high_water");  // registered but never set
    auto& hist = registry.histogram("netsim.link.delay_ms", {0.001, 2.0, 16});
    hist.record(0.0005);  // below bucket 0 → clamped into bucket 0
    hist.record(1.0 / 3.0);
    hist.record(1e9);  // above the last bound → final bucket

    const auto parsed = parse_snapshot(snapshot(registry));
    ASSERT_TRUE(parsed.has_value());
    const auto* counter = parsed->find_counter("scanner.connections");
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->value(), 42u);
    const auto* gauge = parsed->find_gauge("scanner.domains_per_sec");
    ASSERT_NE(gauge, nullptr);
    EXPECT_TRUE(gauge->has_value());
    EXPECT_EQ(gauge->value(), 123.456789012345678);  // %.17g: bit-identical
    const auto* unset = parsed->find_gauge("netsim.queue.high_water");
    ASSERT_NE(unset, nullptr);
    EXPECT_FALSE(unset->has_value()) << "never-set state must survive the round trip";
    const auto* parsed_hist = parsed->find_histogram("netsim.link.delay_ms");
    ASSERT_NE(parsed_hist, nullptr);
    EXPECT_EQ(parsed_hist->count(), 3u);
    EXPECT_EQ(parsed_hist->sum(), hist.sum());
    EXPECT_EQ(parsed_hist->min(), 0.0005);
    EXPECT_EQ(parsed_hist->max(), 1e9);
    EXPECT_EQ(parsed_hist->buckets(), hist.buckets());
    EXPECT_EQ(parsed_hist->spec().bucket_count, 16u);

    // Round-tripped state must MERGE identically to the original — this is
    // what journal replay relies on (DESIGN.md §11).
    MetricsRegistry merged_original;
    merged_original.merge_from(registry);
    MetricsRegistry merged_parsed;
    merged_parsed.merge_from(*parsed);
    EXPECT_EQ(to_csv(merged_original), to_csv(merged_parsed));
}

TEST(Export, ParseSnapshotRejectsMalformedInput) {
    EXPECT_TRUE(parse_snapshot("").has_value()) << "an empty snapshot is an empty registry";
    EXPECT_FALSE(parse_snapshot("bogus kind x 1\n").has_value());
    EXPECT_FALSE(parse_snapshot("counter a.b not_a_number\n").has_value());
    EXPECT_FALSE(parse_snapshot("counter a.b 1 trailing\n").has_value());
    EXPECT_FALSE(parse_snapshot("gauge a.b 2 1.5\n").has_value());  // bad has-value flag
    // Histogram whose bucket counts disagree with its count.
    EXPECT_FALSE(parse_snapshot("hist h 0.001 2 4 5 1.0 0.1 0.9 1 1 1 1\n").has_value());
    // Nonsensical geometry.
    EXPECT_FALSE(parse_snapshot("hist h -1 2 4 0 0 0 0 0 0 0 0\n").has_value());
}

}  // namespace
}  // namespace spinscope::telemetry
