// Storage seam suite (DESIGN.md §16): IoResult semantics, the errno reaction
// taxonomy, real-Io round-trips, atomic-file primitives driven through a
// lying disk (faults::FaultIo), and the fault plans themselves — short
// writes, ENOSPC exhaustion, sticky fsync failure, power loss, bit flips.
//
// The contract under test: write_file_atomic either publishes the complete
// content or leaves the destination untouched (and reports the real errno) —
// no fault plan can make it publish a torn file.

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "faults/storage.hpp"
#include "util/atomic_file.hpp"
#include "util/io.hpp"

namespace spinscope::util {
namespace {

class IoTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("spinscope_io_test_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string read_back(const std::filesystem::path& path) {
        std::ifstream in{path, std::ios::binary};
        return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
    }

    std::filesystem::path dir_;
};

// --- IoResult / taxonomy -----------------------------------------------------

TEST_F(IoTest, IoResultCarriesErrnoAndRendersACause) {
    EXPECT_TRUE(IoResult::success().ok());
    const IoResult failure = IoResult::failure(ENOSPC);
    EXPECT_FALSE(failure.ok());
    EXPECT_EQ(failure.err, ENOSPC);
    EXPECT_NE(failure.message().find("errno 28"), std::string::npos);
    // A libc failure that left errno 0 must not masquerade as success.
    EXPECT_EQ(IoResult::failure(0).err, EIO);
}

TEST_F(IoTest, ErrnoTaxonomyMatchesTheReactionContract) {
    EXPECT_EQ(classify_io_error(EINTR), IoErrorClass::transient);
    EXPECT_EQ(classify_io_error(EAGAIN), IoErrorClass::transient);
    EXPECT_EQ(classify_io_error(ENOMEM), IoErrorClass::transient);
    EXPECT_EQ(classify_io_error(EMFILE), IoErrorClass::transient);
    EXPECT_EQ(classify_io_error(EIO), IoErrorClass::corrupting);
    EXPECT_EQ(classify_io_error(ENOSPC), IoErrorClass::fatal);
    EXPECT_EQ(classify_io_error(EACCES), IoErrorClass::fatal);
    EXPECT_EQ(classify_io_error(EEXIST), IoErrorClass::fatal);
    EXPECT_STREQ(to_cstring(IoErrorClass::transient), "transient");
    EXPECT_STREQ(to_cstring(IoErrorClass::fatal), "fatal");
    EXPECT_STREQ(to_cstring(IoErrorClass::corrupting), "corrupting");
}

// --- Real Io round-trips -----------------------------------------------------

TEST_F(IoTest, RealIoWritesAppendsAndRemoves) {
    Io& io = Io::real();
    const auto path = dir_ / "file.txt";
    IoResult result;
    int fd = io.open_write(path, Io::OpenMode::truncate, result);
    ASSERT_NE(fd, Io::kBadFile) << result.message();
    ASSERT_TRUE(io.write(fd, "hello "));
    ASSERT_TRUE(io.fsync(fd));
    ASSERT_TRUE(io.close(fd));

    fd = io.open_write(path, Io::OpenMode::append, result);
    ASSERT_NE(fd, Io::kBadFile);
    ASSERT_TRUE(io.write(fd, "world"));
    ASSERT_TRUE(io.close(fd));
    EXPECT_EQ(read_back(path), "hello world");

    // Exclusive create refuses an existing file with EEXIST specifically.
    EXPECT_EQ(io.open_write(path, Io::OpenMode::exclusive, result), Io::kBadFile);
    EXPECT_EQ(result.err, EEXIST);

    EXPECT_TRUE(io.remove(path));
    EXPECT_TRUE(io.remove(path)) << "removing an absent file is success";
}

TEST_F(IoTest, RealIoTruncateRollsBackAnAppend) {
    Io& io = Io::real();
    const auto path = dir_ / "rollback.txt";
    IoResult result;
    const int fd = io.open_write(path, Io::OpenMode::append, result);
    ASSERT_NE(fd, Io::kBadFile);
    ASSERT_TRUE(io.write(fd, "keep"));
    ASSERT_TRUE(io.write(fd, "DROP"));
    ASSERT_TRUE(io.truncate(fd, 4));
    // O_APPEND lands the next write at the (new) EOF, not the stale offset —
    // this is what makes the journal's failed-append rollback hole-free.
    ASSERT_TRUE(io.write(fd, "!"));
    ASSERT_TRUE(io.close(fd));
    EXPECT_EQ(read_back(path), "keep!");
}

// --- Atomic-file primitives under fault injection ----------------------------

TEST_F(IoTest, WriteFileAtomicPublishesAllOrNothingUnderWriteFaults) {
    const auto path = dir_ / "out.txt";
    ASSERT_TRUE(write_file_atomic(Io::real(), path, "original"));

    // Every write ordinal: fail it and assert the destination is untouched.
    for (std::uint64_t n = 1; n <= 2; ++n) {
        faults::StorageFaultPlan plan;
        plan.fail_write_at = n;
        plan.write_error = ENOSPC;
        faults::FaultIo io{Io::real(), plan};
        const IoResult result = write_file_atomic(io, path, "replacement");
        if (!result) {
            EXPECT_EQ(result.err, ENOSPC);
            EXPECT_EQ(read_back(path), "original") << "torn publish at write " << n;
        } else {
            EXPECT_EQ(read_back(path), "replacement");
        }
    }
    // A short write is still a failed publish, not a half-published file.
    ASSERT_TRUE(write_file_atomic(Io::real(), path, "original"));
    faults::StorageFaultPlan torn;
    torn.short_write_at = 1;
    faults::FaultIo io{Io::real(), torn};
    EXPECT_FALSE(write_file_atomic(io, path, "torn-content"));
    EXPECT_EQ(read_back(path), "original");
    EXPECT_GE(io.faults_injected(), 1u);
}

TEST_F(IoTest, WriteFileAtomicFailsLoudlyOnFsyncFailure) {
    const auto path = dir_ / "fsync.txt";
    ASSERT_TRUE(write_file_atomic(Io::real(), path, "original"));
    faults::StorageFaultPlan plan;
    plan.fail_fsync_at = 1;
    faults::FaultIo io{Io::real(), plan};
    const IoResult result = write_file_atomic(io, path, "replacement");
    ASSERT_FALSE(result);
    EXPECT_EQ(result.err, EIO);
    EXPECT_EQ(classify_io_error(result.err), IoErrorClass::corrupting);
    EXPECT_EQ(read_back(path), "original");
}

TEST_F(IoTest, CreateFileExclusiveReportsEexistOnALostRace) {
    const auto path = dir_ / "claim";
    ASSERT_TRUE(create_file_exclusive(Io::real(), path, "winner"));
    const IoResult lost = create_file_exclusive(Io::real(), path, "loser");
    ASSERT_FALSE(lost);
    EXPECT_EQ(lost.err, EEXIST);
    EXPECT_EQ(read_back(path), "winner");
}

// --- Fault plans -------------------------------------------------------------

TEST_F(IoTest, FaultPlanValidatesContradictions) {
    faults::StorageFaultPlan both;
    both.fail_write_at = 1;
    both.short_write_at = 1;
    EXPECT_THROW(both.validate(), std::invalid_argument);
    faults::StorageFaultPlan no_errno;
    no_errno.write_error = 0;
    EXPECT_THROW(no_errno.validate(), std::invalid_argument);
}

TEST_F(IoTest, EnospcPersistsExactlyWhatFits) {
    faults::StorageFaultPlan plan;
    plan.enospc_after_bytes = 10;
    faults::FaultIo io{Io::real(), plan};
    const auto path = dir_ / "full.txt";
    IoResult result;
    const int fd = io.open_write(path, Io::OpenMode::truncate, result);
    ASSERT_NE(fd, Io::kBadFile);
    ASSERT_TRUE(io.write(fd, "12345"));  // 5 bytes, fits
    const IoResult overflow = io.write(fd, "678901234");  // 9 more: 5 fit
    ASSERT_FALSE(overflow);
    EXPECT_EQ(overflow.err, ENOSPC);
    (void)io.close(fd);
    EXPECT_EQ(read_back(path), "1234567890");
    // The disk STAYS full: later writes keep failing.
    const int fd2 = io.open_write(dir_ / "more.txt", Io::OpenMode::truncate, result);
    ASSERT_NE(fd2, Io::kBadFile);
    EXPECT_FALSE(io.write(fd2, "x"));
    (void)io.close(fd2);
}

TEST_F(IoTest, StickyFsyncFailureNeverRecovers) {
    faults::StorageFaultPlan plan;
    plan.fail_fsync_at = 2;
    faults::FaultIo io{Io::real(), plan};
    const auto path = dir_ / "sync.txt";
    IoResult result;
    const int fd = io.open_write(path, Io::OpenMode::truncate, result);
    ASSERT_NE(fd, Io::kBadFile);
    ASSERT_TRUE(io.write(fd, "abc"));
    EXPECT_TRUE(io.fsync(fd));   // fsync 1: fine
    EXPECT_FALSE(io.fsync(fd));  // fsync 2: EIO
    EXPECT_FALSE(io.fsync(fd));  // and forever after
    (void)io.close(fd);
}

TEST_F(IoTest, PowerLossDropsEverythingAfterTheLastFsync) {
    faults::StorageFaultPlan plan;
    plan.power_loss_at_write = 3;
    faults::FaultIo io{Io::real(), plan};
    const auto path = dir_ / "wal.txt";
    IoResult result;
    const int fd = io.open_write(path, Io::OpenMode::append, result);
    ASSERT_NE(fd, Io::kBadFile);
    ASSERT_TRUE(io.write(fd, "durable|"));
    ASSERT_TRUE(io.fsync(fd));
    ASSERT_TRUE(io.write(fd, "cached|"));
    ASSERT_TRUE(io.write(fd, "gone"));  // 3rd write: succeeds, then the cut
    EXPECT_TRUE(io.power_lost());
    EXPECT_FALSE(io.write(fd, "post-mortem"));
    EXPECT_TRUE(io.close(fd)) << "close stays quiet so RAII cleanup works";
    // Only the fsync-covered prefix survived the "reboot".
    EXPECT_EQ(read_back(path), "durable|");
}

TEST_F(IoTest, BitFlipAtRenameIsSilentPostHocCorruption) {
    faults::StorageFaultPlan plan;
    plan.flip_bit_at_rename = 1;
    plan.seed = 42;
    faults::FaultIo io{Io::real(), plan};
    const std::string content(256, 'A');
    const auto path = dir_ / "victim.bin";
    // write_file_atomic's publish rename triggers the flip — and reports
    // success, because the media lied AFTER the syscall returned.
    ASSERT_TRUE(write_file_atomic(io, path, content));
    const std::string stored = read_back(path);
    ASSERT_EQ(stored.size(), content.size());
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < stored.size(); ++i) {
        if (stored[i] != content[i]) ++diffs;
    }
    EXPECT_EQ(diffs, 1u) << "exactly one flipped bit";
    EXPECT_EQ(io.renames_done(), 1u);

    // Replayable: the same seed flips the same bit.
    faults::FaultIo replay{Io::real(), plan};
    const auto path2 = dir_ / "victim2.bin";
    ASSERT_TRUE(write_file_atomic(replay, path2, content));
    EXPECT_EQ(read_back(path2), stored);
}

}  // namespace
}  // namespace spinscope::util
