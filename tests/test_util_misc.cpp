// Unit tests for util::Duration/TimePoint arithmetic, format helpers, the
// CRC-32 checksum, crash-safe file publication, and the process helpers
// (pipes, line channels, pid lock files) behind multi-process campaigns.

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "util/atomic_file.hpp"
#include "util/checksum.hpp"
#include "util/format.hpp"
#include "util/proc.hpp"
#include "util/time.hpp"

namespace spinscope::util {
namespace {

TEST(Duration, Constructors) {
    EXPECT_EQ(Duration::millis(3).count_nanos(), 3'000'000);
    EXPECT_EQ(Duration::micros(5).count_nanos(), 5'000);
    EXPECT_EQ(Duration::seconds(2).count_millis(), 2000);
    EXPECT_EQ(Duration::from_ms(1.5).count_micros(), 1500);
    EXPECT_EQ(Duration::from_ms(-1.5).count_micros(), -1500);
}

TEST(Duration, Arithmetic) {
    const auto a = Duration::millis(10);
    const auto b = Duration::millis(4);
    EXPECT_EQ((a + b).count_millis(), 14);
    EXPECT_EQ((a - b).count_millis(), 6);
    EXPECT_EQ((b - a).count_millis(), -6);
    EXPECT_EQ((a * 3).count_millis(), 30);
    EXPECT_EQ((std::int64_t{3} * a).count_millis(), 30);
    EXPECT_EQ((a / 2).count_millis(), 5);
    EXPECT_EQ(a.scaled(2.5).count_millis(), 25);
}

TEST(Duration, ComparisonAndAbs) {
    EXPECT_LT(Duration::millis(1), Duration::millis(2));
    EXPECT_TRUE((Duration::millis(-7)).is_negative());
    EXPECT_EQ(Duration::millis(-7).abs(), Duration::millis(7));
    EXPECT_TRUE(Duration::zero().is_zero());
}

TEST(Duration, UnitConversions) {
    const auto d = Duration::from_ms(1234.567);
    EXPECT_NEAR(d.as_ms(), 1234.567, 1e-6);
    EXPECT_NEAR(d.as_seconds(), 1.234567, 1e-9);
}

TEST(TimePoint, Arithmetic) {
    const auto t0 = TimePoint::origin();
    const auto t1 = t0 + Duration::millis(5);
    EXPECT_EQ((t1 - t0).count_millis(), 5);
    EXPECT_EQ((t1 - Duration::millis(2) - t0).count_millis(), 3);
    EXPECT_LT(t0, t1);
    EXPECT_TRUE(TimePoint::never().is_never());
    EXPECT_FALSE(t1.is_never());
}

TEST(Format, GroupDigits) {
    EXPECT_EQ(group_digits(0), "0");
    EXPECT_EQ(group_digits(999), "999");
    EXPECT_EQ(group_digits(1000), "1 000");
    EXPECT_EQ(group_digits(2732702), "2 732 702");
    EXPECT_EQ(group_digits(216520521), "216 520 521");
}

TEST(Format, Percent) {
    EXPECT_EQ(percent(0.102), "10.2 %");
    EXPECT_EQ(percent(0.0028, 2), "0.28 %");
    EXPECT_EQ(percent(1.0), "100.0 %");
}

TEST(Format, HumanCount) {
    EXPECT_EQ(human_count(950), "950");
    EXPECT_EQ(human_count(802585), "802.6 k");
    EXPECT_EQ(human_count(2257938), "2.26 M");
    EXPECT_EQ(human_count(2.2e9), "2.20 G");
}

TEST(Format, Fixed) {
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(-1.5, 0), "-2");  // round-half-even via printf
}

TEST(Format, TextTableAlignment) {
    TextTable t;
    t.add_row({"h1", "h2"});
    t.add_row({"a", "1234"});
    t.add_row({"bb"});
    const std::string out = t.render();
    // Header rule present, columns padded, missing cells tolerated.
    EXPECT_NE(out.find("h1"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("1234"), std::string::npos);
    const auto first_line_end = out.find('\n');
    const auto rule_end = out.find('\n', first_line_end + 1);
    const auto third_end = out.find('\n', rule_end + 1);
    const auto fourth_end = out.find('\n', third_end + 1);
    // All data rows have equal rendered width.
    EXPECT_EQ(third_end - rule_end, fourth_end - third_end);
}

TEST(Format, BarLineClamps) {
    const auto full = bar_line("x", 1.5, 10);
    EXPECT_NE(full.find("##########"), std::string::npos);
    const auto empty = bar_line("x", -0.5, 10);
    EXPECT_EQ(empty.find('#'), std::string::npos);
}

TEST(Format, DurationToString) {
    EXPECT_EQ(to_string(Duration::nanos(870)), "870 ns");
    EXPECT_EQ(to_string(Duration::micros(12)), "12.00 us");
    EXPECT_EQ(to_string(Duration::from_ms(12.3)), "12.300 ms");
    EXPECT_EQ(to_string(Duration::seconds(3)), "3.000 s");
}

TEST(Checksum, Crc32MatchesKnownVectors) {
    // The IEEE 802.3 check value every CRC-32 implementation must reproduce.
    EXPECT_EQ(crc32(std::string_view{"123456789"}), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string_view{""}), 0x00000000u);
    EXPECT_EQ(crc32(std::string_view{"a"}), 0xE8B7BE43u);
    // constexpr: usable to fold frame checksums of literals at compile time.
    static_assert(crc32(std::string_view{"123456789"}) == 0xCBF43926u);
}

TEST(Checksum, IncrementalUpdateEqualsOneShot) {
    const std::string data = "the quick brown fox jumps over the lazy dog";
    std::uint32_t state = crc32_init();
    for (const char c : data) state = crc32_update(state, &c, 1);
    EXPECT_EQ(crc32_final(state), crc32(std::string_view{data}));
    // Single-bit damage changes the checksum.
    std::string flipped = data;
    flipped[10] ^= 0x01;
    EXPECT_NE(crc32(std::string_view{flipped}), crc32(std::string_view{data}));
}

class AtomicFileTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("spinscope_atomic_file_test_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    [[nodiscard]] std::string slurp(const std::filesystem::path& path) const {
        std::ifstream in{path, std::ios::binary};
        return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
    }

    std::filesystem::path dir_;
};

TEST_F(AtomicFileTest, WriteCreatesAndReplacesWithoutTempDebris) {
    const auto path = dir_ / "out.txt";
    ASSERT_TRUE(write_file_atomic(path, "first\n"));
    EXPECT_EQ(slurp(path), "first\n");
    ASSERT_TRUE(write_file_atomic(path, "second, longer content\n"));
    EXPECT_EQ(slurp(path), "second, longer content\n");
    std::size_t entries = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u) << "temp file leaked next to the target";
}

TEST_F(AtomicFileTest, WriteFailureLeavesTargetUntouched) {
    const auto path = dir_ / "no_such_subdir" / "out.txt";
    EXPECT_FALSE(write_file_atomic(path, "data"));
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(AtomicFileTest, RenameDurableMovesAndFsyncFileReports) {
    const auto from = dir_ / "a.tmp";
    const auto to = dir_ / "a.final";
    ASSERT_TRUE(write_file_atomic(from, "payload"));
    EXPECT_TRUE(fsync_file(from));
    ASSERT_TRUE(rename_durable(from, to));
    EXPECT_FALSE(std::filesystem::exists(from));
    EXPECT_EQ(slurp(to), "payload");
    EXPECT_FALSE(fsync_file(dir_ / "missing"));
    EXPECT_FALSE(rename_durable(dir_ / "missing", to));
    EXPECT_EQ(slurp(to), "payload") << "failed rename must leave the target alone";
}

TEST_F(AtomicFileTest, RenameDurableAcrossDirectoriesSyncsBothParents) {
    const auto src_dir = dir_ / "src";
    const auto dst_dir = dir_ / "dst";
    std::filesystem::create_directories(src_dir);
    std::filesystem::create_directories(dst_dir);
    const auto from = src_dir / "rec.tmp";
    const auto to = dst_dir / "rec.final";
    ASSERT_TRUE(write_file_atomic(from, "cross-dir payload"));
    ASSERT_TRUE(rename_durable(from, to));
    EXPECT_FALSE(std::filesystem::exists(from));
    EXPECT_EQ(slurp(to), "cross-dir payload");
}

TEST_F(AtomicFileTest, FsyncDirReportsOnRealAndMissingDirectories) {
    EXPECT_TRUE(fsync_dir(dir_));
    EXPECT_FALSE(fsync_dir(dir_ / "no_such_dir"));
}

TEST_F(AtomicFileTest, CreateFileExclusiveClaimsExactlyOnce) {
    const auto path = dir_ / "claim.lease";
    ASSERT_TRUE(create_file_exclusive(path, "owner 1\n"));
    EXPECT_EQ(slurp(path), "owner 1\n");
    // A second claim must fail and must NOT clobber the winner's content.
    EXPECT_FALSE(create_file_exclusive(path, "owner 2\n"));
    EXPECT_EQ(slurp(path), "owner 1\n");
    EXPECT_FALSE(create_file_exclusive(dir_ / "missing_dir" / "x", "y"));
}

TEST_F(AtomicFileTest, ConcurrentAtomicWritesToOneTargetNeverTearOrCollide) {
    // Many threads of ONE process publish to the same path: the pid-based
    // temp names must still be unique (per-thread serial), so no thread ever
    // renames another thread's half-written temp into place.
    const auto path = dir_ / "contended.txt";
    constexpr int kThreads = 8;
    constexpr int kRounds = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const std::string content(128, static_cast<char>('a' + t));
            for (int r = 0; r < kRounds; ++r) {
                ASSERT_TRUE(write_file_atomic(path, content));
            }
        });
    }
    for (auto& thread : threads) thread.join();
    const std::string final = slurp(path);
    ASSERT_EQ(final.size(), 128u);
    for (const char c : final) EXPECT_EQ(c, final[0]) << "torn publish";
    std::size_t entries = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u) << "temp debris leaked by concurrent publishes";
}

// --- Process helpers ---------------------------------------------------------

class ProcTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("spinscope_proc_test_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

TEST_F(ProcTest, ProcessLivenessProbe) {
    EXPECT_TRUE(process_alive(current_pid()));
    EXPECT_FALSE(process_alive(0));
    EXPECT_FALSE(process_alive(-1));
#ifndef _WIN32
    EXPECT_TRUE(process_alive(1)) << "pid 1 always exists on POSIX";
#endif
}

#ifndef _WIN32
TEST_F(ProcTest, PipeLineChannelRoundTripsAndReportsEof) {
    Pipe pipe;
    ASSERT_TRUE(set_nonblocking(pipe.read_fd()));
    LineReader reader{pipe.read_fd()};
    std::vector<std::string> lines;
    EXPECT_TRUE(reader.drain(lines));
    EXPECT_TRUE(lines.empty());

    ASSERT_TRUE(write_line(pipe.write_fd(), "hb 123"));
    ASSERT_TRUE(write_line(pipe.write_fd(), "done 4"));
    EXPECT_TRUE(reader.drain(lines));
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "hb 123");
    EXPECT_EQ(lines[1], "done 4");

    // A partial line is held back until its newline (or EOF) arrives.
    ASSERT_EQ(::write(pipe.write_fd(), "par", 3), 3);
    lines.clear();
    EXPECT_TRUE(reader.drain(lines));
    EXPECT_TRUE(lines.empty());
    pipe.close_write();
    EXPECT_FALSE(reader.drain(lines)) << "EOF after the writer closes";
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "par");
}

TEST_F(ProcTest, WriteLineToClosedPipeFailsInsteadOfCrashing) {
    Pipe pipe;
    pipe.close_read();
    // SIGPIPE would kill the test without the write_line contract; gtest
    // runs with SIGPIPE ignored per-call via MSG_NOSIGNAL-free plain write,
    // so ignore it explicitly as workers do.
    ::signal(SIGPIPE, SIG_IGN);
    EXPECT_FALSE(write_line(pipe.write_fd(), "into the void"));
}
#endif

TEST_F(ProcTest, PidLockFileRefusesLiveOwnerAndBreaksStaleLocks) {
    const auto path = dir_ / "journal.lock";

    // Lock held by a live FOREIGN process (pid 1): refuse loudly, naming it.
    {
        std::ofstream out{path};
        out << "1\n";
    }
    PidLockFile lock;
    try {
        lock.acquire(path);
        FAIL() << "acquire must refuse a live owner's lock";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find("pid 1"), std::string::npos) << e.what();
    }
    EXPECT_FALSE(lock.held());

    // A dead owner's lock is stale: broken silently and re-acquired.
    {
        std::ofstream out{path, std::ios::trunc};
        out << "999999999\n";  // far above any real pid_max
    }
    lock.acquire(path);
    EXPECT_TRUE(lock.held());
    EXPECT_EQ(PidLockFile::owner(path), current_pid());
    lock.release();
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_FALSE(PidLockFile::owner(path).has_value());

    // Garbled lock content is stale too.
    {
        std::ofstream out{path, std::ios::trunc};
        out << "not a pid";
    }
    lock.acquire(path);
    EXPECT_TRUE(lock.held());
    lock.release();
}

}  // namespace
}  // namespace spinscope::util
