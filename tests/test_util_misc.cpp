// Unit tests for util::Duration/TimePoint arithmetic, format helpers, the
// CRC-32 checksum and crash-safe file publication.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/atomic_file.hpp"
#include "util/checksum.hpp"
#include "util/format.hpp"
#include "util/time.hpp"

namespace spinscope::util {
namespace {

TEST(Duration, Constructors) {
    EXPECT_EQ(Duration::millis(3).count_nanos(), 3'000'000);
    EXPECT_EQ(Duration::micros(5).count_nanos(), 5'000);
    EXPECT_EQ(Duration::seconds(2).count_millis(), 2000);
    EXPECT_EQ(Duration::from_ms(1.5).count_micros(), 1500);
    EXPECT_EQ(Duration::from_ms(-1.5).count_micros(), -1500);
}

TEST(Duration, Arithmetic) {
    const auto a = Duration::millis(10);
    const auto b = Duration::millis(4);
    EXPECT_EQ((a + b).count_millis(), 14);
    EXPECT_EQ((a - b).count_millis(), 6);
    EXPECT_EQ((b - a).count_millis(), -6);
    EXPECT_EQ((a * 3).count_millis(), 30);
    EXPECT_EQ((std::int64_t{3} * a).count_millis(), 30);
    EXPECT_EQ((a / 2).count_millis(), 5);
    EXPECT_EQ(a.scaled(2.5).count_millis(), 25);
}

TEST(Duration, ComparisonAndAbs) {
    EXPECT_LT(Duration::millis(1), Duration::millis(2));
    EXPECT_TRUE((Duration::millis(-7)).is_negative());
    EXPECT_EQ(Duration::millis(-7).abs(), Duration::millis(7));
    EXPECT_TRUE(Duration::zero().is_zero());
}

TEST(Duration, UnitConversions) {
    const auto d = Duration::from_ms(1234.567);
    EXPECT_NEAR(d.as_ms(), 1234.567, 1e-6);
    EXPECT_NEAR(d.as_seconds(), 1.234567, 1e-9);
}

TEST(TimePoint, Arithmetic) {
    const auto t0 = TimePoint::origin();
    const auto t1 = t0 + Duration::millis(5);
    EXPECT_EQ((t1 - t0).count_millis(), 5);
    EXPECT_EQ((t1 - Duration::millis(2) - t0).count_millis(), 3);
    EXPECT_LT(t0, t1);
    EXPECT_TRUE(TimePoint::never().is_never());
    EXPECT_FALSE(t1.is_never());
}

TEST(Format, GroupDigits) {
    EXPECT_EQ(group_digits(0), "0");
    EXPECT_EQ(group_digits(999), "999");
    EXPECT_EQ(group_digits(1000), "1 000");
    EXPECT_EQ(group_digits(2732702), "2 732 702");
    EXPECT_EQ(group_digits(216520521), "216 520 521");
}

TEST(Format, Percent) {
    EXPECT_EQ(percent(0.102), "10.2 %");
    EXPECT_EQ(percent(0.0028, 2), "0.28 %");
    EXPECT_EQ(percent(1.0), "100.0 %");
}

TEST(Format, HumanCount) {
    EXPECT_EQ(human_count(950), "950");
    EXPECT_EQ(human_count(802585), "802.6 k");
    EXPECT_EQ(human_count(2257938), "2.26 M");
    EXPECT_EQ(human_count(2.2e9), "2.20 G");
}

TEST(Format, Fixed) {
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(-1.5, 0), "-2");  // round-half-even via printf
}

TEST(Format, TextTableAlignment) {
    TextTable t;
    t.add_row({"h1", "h2"});
    t.add_row({"a", "1234"});
    t.add_row({"bb"});
    const std::string out = t.render();
    // Header rule present, columns padded, missing cells tolerated.
    EXPECT_NE(out.find("h1"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("1234"), std::string::npos);
    const auto first_line_end = out.find('\n');
    const auto rule_end = out.find('\n', first_line_end + 1);
    const auto third_end = out.find('\n', rule_end + 1);
    const auto fourth_end = out.find('\n', third_end + 1);
    // All data rows have equal rendered width.
    EXPECT_EQ(third_end - rule_end, fourth_end - third_end);
}

TEST(Format, BarLineClamps) {
    const auto full = bar_line("x", 1.5, 10);
    EXPECT_NE(full.find("##########"), std::string::npos);
    const auto empty = bar_line("x", -0.5, 10);
    EXPECT_EQ(empty.find('#'), std::string::npos);
}

TEST(Format, DurationToString) {
    EXPECT_EQ(to_string(Duration::nanos(870)), "870 ns");
    EXPECT_EQ(to_string(Duration::micros(12)), "12.00 us");
    EXPECT_EQ(to_string(Duration::from_ms(12.3)), "12.300 ms");
    EXPECT_EQ(to_string(Duration::seconds(3)), "3.000 s");
}

TEST(Checksum, Crc32MatchesKnownVectors) {
    // The IEEE 802.3 check value every CRC-32 implementation must reproduce.
    EXPECT_EQ(crc32(std::string_view{"123456789"}), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string_view{""}), 0x00000000u);
    EXPECT_EQ(crc32(std::string_view{"a"}), 0xE8B7BE43u);
    // constexpr: usable to fold frame checksums of literals at compile time.
    static_assert(crc32(std::string_view{"123456789"}) == 0xCBF43926u);
}

TEST(Checksum, IncrementalUpdateEqualsOneShot) {
    const std::string data = "the quick brown fox jumps over the lazy dog";
    std::uint32_t state = crc32_init();
    for (const char c : data) state = crc32_update(state, &c, 1);
    EXPECT_EQ(crc32_final(state), crc32(std::string_view{data}));
    // Single-bit damage changes the checksum.
    std::string flipped = data;
    flipped[10] ^= 0x01;
    EXPECT_NE(crc32(std::string_view{flipped}), crc32(std::string_view{data}));
}

class AtomicFileTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("spinscope_atomic_file_test_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    [[nodiscard]] std::string slurp(const std::filesystem::path& path) const {
        std::ifstream in{path, std::ios::binary};
        return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
    }

    std::filesystem::path dir_;
};

TEST_F(AtomicFileTest, WriteCreatesAndReplacesWithoutTempDebris) {
    const auto path = dir_ / "out.txt";
    ASSERT_TRUE(write_file_atomic(path, "first\n"));
    EXPECT_EQ(slurp(path), "first\n");
    ASSERT_TRUE(write_file_atomic(path, "second, longer content\n"));
    EXPECT_EQ(slurp(path), "second, longer content\n");
    std::size_t entries = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u) << "temp file leaked next to the target";
}

TEST_F(AtomicFileTest, WriteFailureLeavesTargetUntouched) {
    const auto path = dir_ / "no_such_subdir" / "out.txt";
    EXPECT_FALSE(write_file_atomic(path, "data"));
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(AtomicFileTest, RenameDurableMovesAndFsyncFileReports) {
    const auto from = dir_ / "a.tmp";
    const auto to = dir_ / "a.final";
    ASSERT_TRUE(write_file_atomic(from, "payload"));
    EXPECT_TRUE(fsync_file(from));
    ASSERT_TRUE(rename_durable(from, to));
    EXPECT_FALSE(std::filesystem::exists(from));
    EXPECT_EQ(slurp(to), "payload");
    EXPECT_FALSE(fsync_file(dir_ / "missing"));
    EXPECT_FALSE(rename_durable(dir_ / "missing", to));
    EXPECT_EQ(slurp(to), "payload") << "failed rename must leave the target alone";
}

}  // namespace
}  // namespace spinscope::util
