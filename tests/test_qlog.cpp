// Unit tests for qlog trace recording and JSON-lines round-tripping.

#include <gtest/gtest.h>

#include "qlog/trace.hpp"

namespace spinscope::qlog {
namespace {

Trace sample_trace() {
    Trace trace;
    trace.host = "www.example.com";
    trace.ip = "10.1.2.3";
    trace.version = quic::Version::v1;
    trace.outcome = ConnectionOutcome::ok;
    trace.record_sent({TimePoint::from_nanos(1'000'000), quic::PacketType::initial, 0, false,
                       1200, true});
    trace.record_sent({TimePoint::from_nanos(2'500'000), quic::PacketType::one_rtt, 1, true,
                       60, true});
    trace.record_received({TimePoint::from_nanos(2'000'000), quic::PacketType::handshake, 0,
                           false, 40, true});
    trace.record_received({TimePoint::from_nanos(3'000'000), quic::PacketType::one_rtt, 2,
                           true, 1200, false});
    trace.metrics.rtt_samples_ms = {10.5, 11.25};
    trace.metrics.min_rtt_ms = 10.5;
    trace.metrics.smoothed_rtt_ms = 10.9;
    trace.metrics.packets_lost = 1;
    trace.metrics.packets_sent = 2;
    trace.metrics.packets_received = 2;
    return trace;
}

TEST(Qlog, ReceivedOneRttFilter) {
    const auto trace = sample_trace();
    const auto one_rtt = trace.received_one_rtt();
    ASSERT_EQ(one_rtt.size(), 1u);
    EXPECT_EQ(one_rtt[0].packet_number, 2u);
    EXPECT_TRUE(one_rtt[0].spin);
}

TEST(Qlog, JsonlRoundTrip) {
    const auto trace = sample_trace();
    const auto text = to_jsonl(trace);
    const auto parsed = parse_jsonl(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->host, trace.host);
    EXPECT_EQ(parsed->ip, trace.ip);
    EXPECT_EQ(parsed->version, trace.version);
    EXPECT_EQ(parsed->outcome, trace.outcome);
    ASSERT_EQ(parsed->sent.size(), 2u);
    ASSERT_EQ(parsed->received.size(), 2u);
    EXPECT_EQ(parsed->sent[1].type, quic::PacketType::one_rtt);
    EXPECT_TRUE(parsed->sent[1].spin);
    EXPECT_EQ(parsed->sent[1].size, 60u);
    EXPECT_TRUE(parsed->sent[1].ack_eliciting);
    EXPECT_EQ(parsed->received[0].time.count_nanos(), 2'000'000);
    ASSERT_EQ(parsed->metrics.rtt_samples_ms.size(), 2u);
    EXPECT_DOUBLE_EQ(parsed->metrics.rtt_samples_ms[1], 11.25);
    EXPECT_EQ(parsed->metrics.packets_lost, 1u);
}

TEST(Qlog, EscapesQuotesInHost) {
    Trace trace;
    trace.host = "we\"ird\\host";
    trace.ip = "1.2.3.4";
    trace.outcome = ConnectionOutcome::aborted;
    const auto parsed = parse_jsonl(to_jsonl(trace));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->host, trace.host);
}

TEST(Qlog, AllOutcomesRoundTrip) {
    for (const auto outcome : {ConnectionOutcome::ok, ConnectionOutcome::handshake_timeout,
                               ConnectionOutcome::aborted}) {
        Trace trace;
        trace.host = "h";
        trace.ip = "i";
        trace.outcome = outcome;
        const auto parsed = parse_jsonl(to_jsonl(trace));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->outcome, outcome);
    }
}

TEST(Qlog, ParseRejectsGarbage) {
    EXPECT_FALSE(parse_jsonl("").has_value());
    EXPECT_FALSE(parse_jsonl("not json at all\n").has_value());
    EXPECT_FALSE(parse_jsonl("{\"qlog\":\"spinscope\",\"host\":\"h\"}\n").has_value());
}

TEST(Qlog, ParseRejectsBadEvent) {
    Trace trace;
    trace.host = "h";
    trace.ip = "i";
    std::string text = to_jsonl(trace);
    text += "{\"ev\":\"sent\",\"t\":broken}\n";
    EXPECT_FALSE(parse_jsonl(text).has_value());
}

TEST(Qlog, EventBuffersAreBoundedAndTruncationRoundTrips) {
    Trace trace;
    trace.host = "flood.example";
    trace.ip = "192.0.2.9";
    PacketEvent ev;
    ev.type = quic::PacketType::one_rtt;
    for (std::size_t i = 0; i < kMaxTraceEventsPerDirection + 10; ++i) {
        ev.packet_number = i;
        trace.record_sent(ev);
    }
    for (std::size_t i = 0; i < 5; ++i) {
        ev.packet_number = i;
        trace.record_received(ev);
    }
    EXPECT_EQ(trace.sent.size(), kMaxTraceEventsPerDirection);
    EXPECT_EQ(trace.received.size(), 5u);
    EXPECT_EQ(trace.events_truncated, 10u);
    // The last recorded event is the one that arrived at the cap boundary —
    // truncation drops the overflow, it does not evict earlier events.
    EXPECT_EQ(trace.sent.back().packet_number, kMaxTraceEventsPerDirection - 1);

    const auto parsed = parse_jsonl(to_jsonl(trace));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->events_truncated, 10u);
    EXPECT_EQ(parsed->sent.size(), kMaxTraceEventsPerDirection);
}

TEST(Qlog, UntruncatedTraceSerializationIsUnchanged) {
    Trace trace;
    trace.host = "plain.example";
    trace.ip = "192.0.2.10";
    // events_truncated == 0 must not appear in the serialization at all:
    // golden fixtures from before the cap existed stay byte-identical.
    EXPECT_EQ(to_jsonl(trace).find("truncated"), std::string::npos);
    const auto parsed = parse_jsonl(to_jsonl(trace));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->events_truncated, 0u);
}

TEST(Qlog, EmptyTraceRoundTrips) {
    Trace trace;
    trace.host = "empty.example";
    trace.ip = "192.0.2.1";
    trace.outcome = ConnectionOutcome::handshake_timeout;
    const auto parsed = parse_jsonl(to_jsonl(trace));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->sent.empty());
    EXPECT_TRUE(parsed->received.empty());
    EXPECT_TRUE(parsed->metrics.rtt_samples_ms.empty());
}

}  // namespace
}  // namespace spinscope::qlog
